/**
 * @file
 * Ablations of ARQ's design choices (Section IV):
 *  - the shared region (disabled -> PARTIES-style full isolation);
 *  - the rollback-with-penalty-ban step (Algorithm 1, lines 9-11);
 *  - the relative importance RI in E_S (the paper uses 0.8);
 *  - the monitoring interval (the paper justifies 500 ms against
 *    250 ms-2 s alternatives).
 * All on the contentious scenario: Xapian 70%, Moses/Img-dnn 20%,
 * Stream as BE.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

cluster::SimulationResult
runArq(const sched::ArqConfig &arq_cfg,
       const cluster::SimulationConfig &sim_cfg)
{
    const auto node = canonicalNode(0.7, 0.2, 0.2, apps::stream());
    sched::Arq sched(arq_cfg);
    cluster::EpochSimulator sim(node, sim_cfg);
    return sim.run(sched);
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "ARQ ablations (Xapian 70%, Moses/Img-dnn 20%, "
                    "Stream)");

    auto csv = openCsv("ablation_arq.csv",
                       {"variant", "e_lc", "e_be", "e_s", "yield",
                        "violations"});
    report::TextTable t({"variant", "E_LC", "E_BE", "E_S", "yield",
                         "violations"});

    auto report_row = [&](const std::string &name,
                          const cluster::SimulationResult &r) {
        t.addRow({name, num(r.meanELc), num(r.meanEBe),
                  num(r.meanES), num(r.yieldValue, 2),
                  std::to_string(r.violations)});
        csv->addRow({name, num(r.meanELc), num(r.meanEBe),
                     num(r.meanES), num(r.yieldValue, 3),
                     std::to_string(r.violations)});
    };

    // Baseline.
    report_row("ARQ (paper defaults)",
               runArq(sched::ArqConfig{}, standardConfig()));

    // No shared region: degenerate full isolation.
    {
        sched::ArqConfig c;
        c.sharedRegionEnabled = false;
        report_row("no shared region", runArq(c, standardConfig()));
    }

    // No rollback / penalty ban.
    {
        sched::ArqConfig c;
        c.rollbackEnabled = false;
        report_row("no E_S rollback", runArq(c, standardConfig()));
    }

    // RI sweep.
    for (double ri : {0.5, 0.65, 0.8, 0.95}) {
        sched::ArqConfig c;
        c.relativeImportance = ri;
        auto sim_cfg = standardConfig();
        sim_cfg.ri = ri; // measured E_S uses the same weighting
        report_row("RI = " + num(ri, 2), runArq(c, sim_cfg));
    }

    // Monitoring interval sweep (the epoch is the interval).
    for (double interval : {0.25, 0.5, 1.0, 2.0}) {
        auto sim_cfg = standardConfig();
        sim_cfg.epochSeconds = interval;
        sim_cfg.warmupEpochs =
            static_cast<int>(60.0 / interval);
        report_row("interval = " + num(interval, 2) + " s",
                   runArq(sched::ArqConfig{}, sim_cfg));
    }

    t.print(std::cout);
    std::cout << "\nReading: the shared region is the main source "
                 "of ARQ's E_BE advantage; the\nrollback tames "
                 "entropy-increasing moves; RI shifts the LC/BE "
                 "balance as designed;\n500 ms is a reasonable "
                 "sweet spot for the monitoring interval.\n";
    return 0;
}

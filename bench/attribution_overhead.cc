/**
 * @file
 * Attribution/SLO-seam overhead anchor: the per-epoch attribution
 * and burn-rate hooks threaded through EpochSimulator must cost
 * nothing measurable when --attribute/--slo are off. Times the
 * faults-off epoch hot path four ways — plain, SLO monitoring on,
 * attribution on, and both — asserts every variant produces the
 * bitwise-identical E_S (the observer effect is zero by contract),
 * and fails if always-on SLO monitoring costs more than 2% over
 * plain. Attribution's counterfactual model evaluations are real
 * work (one ContentionModel call per co-runner per suffering LC
 * app per epoch), so that row is reported and baselined rather
 * than gated against plain; the off-path regression itself is
 * caught by the pre-seam BENCH_epoch_throughput baseline in
 * `ctest -L perf`. With --json it writes
 * BENCH_attribution_overhead.json, committed as the perf baseline
 * for the gate.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "cluster/cluster_sched.hh"
#include "common.hh"
#include "sched/registry.hh"
#include "trace/fleet_load.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** The hot-path shape: faults off, no retained epochs. */
cluster::SimulationConfig
hotConfig()
{
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1800.0; // 3600 epochs of 500 ms
    cfg.warmupEpochs = 5;
    cfg.keepEpochs = false;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args =
        parseBenchArgs(argc, argv, "attribution_overhead");
    BenchJsonWriter json("attribution_overhead", args);

    report::heading(std::cout,
                    "Attribution overhead: the blame/SLO seams on "
                    "the faults-off epoch hot path (ARQ, 3600 "
                    "epochs)");

    const cluster::SimulationConfig base = hotConfig();
    const double epochs = base.durationSeconds / base.epochSeconds;
    const int reps = 15;

    trace::FleetLoadConfig lc;
    lc.numNodes = 4;
    const trace::FleetLoadGenerator gen(lc);
    const auto mc = machine::MachineConfig::xeonE52630v4();
    const cluster::Node node(mc, cluster::fleetNodeApps(gen, 0));
    const auto arq = sched::makeScheduler("ARQ");

    struct Variant
    {
        const char *name;
        bool attribute;
        bool slo;
        const char *note;
        double seconds = 1e300;
        double es = 0.0;
    };
    Variant variants[] = {
        {"epoch_plain", false, false,
         "epochs=3600 ARQ attribute=off slo=off"},
        {"epoch_slo_on", false, true,
         "epochs=3600 ARQ slo=on (burn-rate monitor)"},
        {"epoch_attr_on", true, false,
         "epochs=3600 ARQ attribute=on (counterfactual evals)"},
        {"epoch_attr_slo", true, true,
         "epochs=3600 ARQ attribute=on slo=on"},
    };

    // A percent-level comparison at ~20 ms per run drowns in
    // scheduling noise if each variant is timed in its own block;
    // interleave the reps so every variant samples the same
    // machine conditions, then take each variant's minimum.
    std::vector<cluster::EpochSimulator> sims;
    sims.reserve(std::size(variants));
    for (const auto &v : variants) {
        cluster::SimulationConfig cfg = base;
        cfg.attribute = v.attribute;
        cfg.slo = v.slo;
        sims.emplace_back(node, cfg);
    }
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < sims.size(); ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            variants[i].es = sims[i].run(*arq).meanES;
            const auto t1 = std::chrono::steady_clock::now();
            variants[i].seconds = std::min(
                variants[i].seconds,
                std::chrono::duration<double>(t1 - t0).count());
        }
    }

    report::TextTable t(
        {"workload", "wall (ms)", "epochs/s", "E_S"});
    for (const auto &v : variants) {
        t.addRow({v.name, num(v.seconds * 1e3),
                  num(epochs / v.seconds, 0), num(v.es)});
        json.add(v.name, v.seconds * 1e3, epochs / v.seconds,
                 "epochs/s", v.note);
    }
    t.print(std::cout);

    // Correctness first: neither seam may perturb a single bit of
    // the result, or the timing comparison is meaningless.
    for (const auto &v : variants) {
        if (v.es != variants[0].es) {
            std::cerr << "FAIL: " << v.name << " changed E_S ("
                      << variants[0].es << " vs " << v.es << ")\n";
            return 1;
        }
    }

    const double slo_over =
        variants[1].seconds / variants[0].seconds - 1.0;
    const double attr_over =
        variants[2].seconds / variants[0].seconds - 1.0;
    std::cout << "slo monitoring overhead on the hot path: "
              << num(slo_over * 100.0, 2) << "% (gate: < 2%)\n"
              << "attribution overhead on the hot path: "
              << num(attr_over * 100.0, 2)
              << "% (reported; baselined, not gated vs plain)\n";
    if (slo_over > 0.02) {
        std::cerr << "FAIL: slo-monitor overhead "
                  << num(slo_over * 100.0, 2) << "% exceeds 2%\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Bench plumbing implementation.
 */

#include "common.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <sys/stat.h>

#include "exec/jobs.hh"
#include "obs/json.hh"
#include "sched/registry.hh"

namespace ahq::bench
{

std::string
outputDir()
{
    // Magic-static init makes the mkdir race-free when pool
    // threads hit the first call concurrently.
    static const std::string dir = [] {
        const char *env = std::getenv("AHQ_BENCH_OUT");
        std::string d =
            env != nullptr && *env != '\0' ? env : "bench_out";
        ::mkdir(d.c_str(), 0755); // best effort; may already exist
        return d;
    }();
    return dir;
}

exec::ThreadPool &
pool()
{
    return exec::globalPool();
}

std::unique_ptr<report::CsvWriter>
openCsv(const std::string &filename,
        const std::vector<std::string> &header)
{
    return std::make_unique<report::CsvWriter>(
        outputDir() + "/" + filename, header);
}

std::unique_ptr<sched::Scheduler>
makeScheduler(const std::string &name)
{
    return sched::makeScheduler(name);
}

obs::Scope
benchScope()
{
    // Magic static: the sink and registry are process-wide and live
    // until exit, so pool workers can hold copies of this scope.
    static const obs::Scope scope = [] {
        obs::Scope s;
        const char *trace = std::getenv("AHQ_TRACE");
        if (trace != nullptr && *trace != '\0') {
            static obs::FileTraceSink sink{std::string(trace)};
            s.sink = &sink;
        }
        const char *metrics = std::getenv("AHQ_METRICS");
        if (metrics != nullptr && *metrics != '\0') {
            s.metrics = &obs::globalMetrics();
            std::atexit(
                [] { obs::globalMetrics().print(std::cerr); });
        }
        return s;
    }();
    return scope;
}

const std::vector<std::string> &
allStrategies()
{
    static const std::vector<std::string> v{
        "Unmanaged", "LC-first", "PARTIES", "CLITE", "ARQ"};
    return v;
}

const std::vector<std::string> &
managedStrategies()
{
    static const std::vector<std::string> v{"PARTIES", "CLITE",
                                            "ARQ"};
    return v;
}

cluster::SimulationConfig
standardConfig()
{
    cluster::SimulationConfig c;
    c.epochSeconds = 0.5;
    c.durationSeconds = 120.0;
    c.warmupEpochs = 120;
    c.seed = 42;
    return c;
}

cluster::SimulationResult
runScenario(const std::string &strategy, const cluster::Node &node,
            const cluster::SimulationConfig &cfg)
{
    const auto sched = makeScheduler(strategy);
    cluster::EpochSimulator sim(node, cfg);
    return sim.run(*sched);
}

std::vector<cluster::SimulationResult>
runScenarios(const std::vector<exec::ScenarioJob> &jobs)
{
    exec::ScenarioRunner runner(&pool());
    runner.setObsScope(benchScope());
    return runner.run(jobs);
}

cluster::Node
canonicalNode(double xapian_load, double moses_load,
              double imgdnn_load, const apps::AppProfile &be_app,
              const machine::MachineConfig &mc)
{
    return cluster::Node(
        mc, {cluster::lcAt(apps::xapian(), xapian_load),
             cluster::lcAt(apps::moses(), moses_load),
             cluster::lcAt(apps::imgDnn(), imgdnn_load),
             cluster::be(be_app)});
}

core::EntropyCurve
entropyVsCores(const std::string &strategy,
               const std::vector<int> &core_counts, int ways,
               const apps::AppProfile &be_app, double xapian_load)
{
    std::vector<exec::ScenarioJob> jobs;
    for (int cores : core_counts) {
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(cores, ways, 10);
        jobs.push_back({strategy,
                        canonicalNode(xapian_load, 0.2, 0.2,
                                      be_app, mc),
                        standardConfig(),
                        strategy + "@" + std::to_string(cores) +
                            "c"});
    }
    const auto results = bench::runScenarios(jobs);
    core::EntropyCurve curve;
    for (std::size_t i = 0; i < results.size(); ++i) {
        curve.push_back({static_cast<double>(core_counts[i]),
                         results[i].meanES});
    }
    return curve;
}

std::string
num(double v, int precision)
{
    return report::TextTable::num(v, precision);
}

std::string
gitRev()
{
#ifdef AHQ_GIT_REV
    return AHQ_GIT_REV;
#else
    return "unknown";
#endif
}

BenchArgs
parseBenchArgs(int argc, char **argv, const std::string &name)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json") {
            args.json = true;
        } else if (a.rfind("--json=", 0) == 0) {
            args.json = true;
            args.jsonPath = a.substr(std::strlen("--json="));
        } else {
            std::cerr << "usage: " << name
                      << " [--json[=FILE]]   (default FILE: "
                      << outputDir() << "/BENCH_" << name
                      << ".json)\n";
            std::exit(2);
        }
    }
    if (args.json && args.jsonPath.empty())
        args.jsonPath = outputDir() + "/BENCH_" + name + ".json";
    return args;
}

BenchJsonWriter::BenchJsonWriter(const std::string &name,
                                 const BenchArgs &args)
    : enabled_(args.json), path_(args.jsonPath)
{
    (void)name;
}

void
BenchJsonWriter::add(const std::string &benchmark, double wall_ms,
                     double throughput, const std::string &unit,
                     const std::string &config)
{
    if (!enabled_)
        return;
    std::string b = "{\"type\":\"bench\",\"benchmark\":";
    obs::json::appendString(b, benchmark);
    b += ",\"wall_ms\":";
    obs::json::appendNumber(b, wall_ms);
    b += ",\"throughput\":";
    obs::json::appendNumber(b, throughput);
    b += ",\"unit\":";
    obs::json::appendString(b, unit);
    b += ",\"config\":";
    obs::json::appendString(b, config);
    b += ",\"git_rev\":";
    obs::json::appendString(b, gitRev());
    b += '}';
    lines_.push_back(std::move(b));
}

BenchJsonWriter::~BenchJsonWriter()
{
    if (!enabled_ || lines_.empty())
        return;
    std::ofstream out(path_);
    if (!out.is_open()) {
        std::cerr << "cannot write " << path_ << "\n";
        return;
    }
    for (const auto &line : lines_)
        out << line << "\n";
    std::cout << "perf trajectory written to " << path_ << "\n";
}

void
loadSweepFigure(const std::string &fig_name,
                const apps::AppProfile &primary,
                const apps::AppProfile &secondary_a,
                const apps::AppProfile &secondary_b,
                const apps::AppProfile &be_app)
{
    auto csv = openCsv(fig_name + ".csv",
                       {"secondary_load", "primary_load",
                        "strategy", "e_lc", "e_be", "e_s", "yield",
                        "p95_primary", "p95_a", "p95_b", "be_ipc"});

    const std::vector<double> sweep{0.1, 0.3, 0.5, 0.7, 0.9};
    const std::vector<double> fixed_loads{0.2, 0.4};

    // Simulate the whole (fixed, load, strategy) grid as one batch
    // across the pool, then render in the original order.
    std::vector<exec::ScenarioJob> grid;
    for (double fixed : fixed_loads) {
        for (double load : sweep) {
            cluster::Node node(
                machine::MachineConfig::xeonE52630v4(),
                {cluster::lcAt(primary, load),
                 cluster::lcAt(secondary_a, fixed),
                 cluster::lcAt(secondary_b, fixed),
                 cluster::be(be_app)});
            for (const auto &s : allStrategies()) {
                grid.push_back({s, node, standardConfig(),
                                fig_name + "/" + s + "@" +
                                    num(fixed * 100, 0) + "-" +
                                    num(load * 100, 0)});
            }
        }
    }
    const auto results = bench::runScenarios(grid);

    std::size_t ji = 0;
    for (double fixed : fixed_loads) {
        report::heading(std::cout,
                        fig_name + " — " + secondary_a.name + "/" +
                            secondary_b.name + " at " +
                            num(fixed * 100, 0) + "%, " +
                            primary.name + " sweeping, BE = " +
                            be_app.name);
        report::TextTable t({primary.name + " load", "strategy",
                             "E_LC", "E_BE", "E_S", "yield",
                             "p95 " + primary.name,
                             "p95 " + secondary_a.name,
                             "p95 " + secondary_b.name,
                             be_app.name + " IPC"});
        std::vector<report::Series> es_series;
        for (const auto &s : allStrategies())
            es_series.push_back({s, {}, {}});

        for (double load : sweep) {
            std::size_t si = 0;
            for (const auto &s : allStrategies()) {
                const auto &res = results[ji++];
                t.addRow({num(load * 100, 0) + "%", s,
                          num(res.meanELc), num(res.meanEBe),
                          num(res.meanES), num(res.yieldValue, 2),
                          num(res.meanP95Ms[0], 2),
                          num(res.meanP95Ms[1], 2),
                          num(res.meanP95Ms[2], 2),
                          num(res.meanIpc[3], 2)});
                csv->addRow({num(fixed, 2), num(load, 2), s,
                             num(res.meanELc), num(res.meanEBe),
                             num(res.meanES),
                             num(res.yieldValue, 3),
                             num(res.meanP95Ms[0], 3),
                             num(res.meanP95Ms[1], 3),
                             num(res.meanP95Ms[2], 3),
                             num(res.meanIpc[3], 3)});
                es_series[si].xs.push_back(load);
                es_series[si].ys.push_back(res.meanES);
                ++si;
            }
        }
        t.print(std::cout);
        report::lineChart(std::cout, es_series, 64, 14,
                          "E_S vs " + primary.name + " load (" +
                              secondary_a.name + "/" +
                              secondary_b.name + " at " +
                              num(fixed * 100, 0) + "%)");
    }
}

} // namespace ahq::bench

/**
 * @file
 * Bench plumbing implementation.
 */

#include "common.hh"

#include <iostream>
#include <stdexcept>
#include <sys/stat.h>

namespace ahq::bench
{

std::string
outputDir()
{
    static const std::string dir = [] {
        std::string d = "bench_out";
        ::mkdir(d.c_str(), 0755); // best effort; may already exist
        return d;
    }();
    return dir;
}

std::unique_ptr<report::CsvWriter>
openCsv(const std::string &filename,
        const std::vector<std::string> &header)
{
    return std::make_unique<report::CsvWriter>(
        outputDir() + "/" + filename, header);
}

std::unique_ptr<sched::Scheduler>
makeScheduler(const std::string &name)
{
    if (name == "Unmanaged")
        return std::make_unique<sched::Unmanaged>();
    if (name == "LC-first")
        return std::make_unique<sched::LcFirst>();
    if (name == "PARTIES")
        return std::make_unique<sched::Parties>();
    if (name == "CLITE")
        return std::make_unique<sched::Clite>();
    if (name == "ARQ")
        return std::make_unique<sched::Arq>();
    throw std::invalid_argument("unknown strategy: " + name);
}

const std::vector<std::string> &
allStrategies()
{
    static const std::vector<std::string> v{
        "Unmanaged", "LC-first", "PARTIES", "CLITE", "ARQ"};
    return v;
}

const std::vector<std::string> &
managedStrategies()
{
    static const std::vector<std::string> v{"PARTIES", "CLITE",
                                            "ARQ"};
    return v;
}

cluster::SimulationConfig
standardConfig()
{
    cluster::SimulationConfig c;
    c.epochSeconds = 0.5;
    c.durationSeconds = 120.0;
    c.warmupEpochs = 120;
    c.seed = 42;
    return c;
}

cluster::SimulationResult
runScenario(const std::string &strategy, const cluster::Node &node,
            const cluster::SimulationConfig &cfg)
{
    const auto sched = makeScheduler(strategy);
    cluster::EpochSimulator sim(node, cfg);
    return sim.run(*sched);
}

cluster::Node
canonicalNode(double xapian_load, double moses_load,
              double imgdnn_load, const apps::AppProfile &be_app,
              const machine::MachineConfig &mc)
{
    return cluster::Node(
        mc, {cluster::lcAt(apps::xapian(), xapian_load),
             cluster::lcAt(apps::moses(), moses_load),
             cluster::lcAt(apps::imgDnn(), imgdnn_load),
             cluster::be(be_app)});
}

core::EntropyCurve
entropyVsCores(const std::string &strategy,
               const std::vector<int> &core_counts, int ways,
               const apps::AppProfile &be_app, double xapian_load)
{
    core::EntropyCurve curve;
    for (int cores : core_counts) {
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(cores, ways, 10);
        const auto node = canonicalNode(xapian_load, 0.2, 0.2,
                                        be_app, mc);
        const auto res = runScenario(strategy, node,
                                     standardConfig());
        curve.push_back({static_cast<double>(cores), res.meanES});
    }
    return curve;
}

std::string
num(double v, int precision)
{
    return report::TextTable::num(v, precision);
}

void
loadSweepFigure(const std::string &fig_name,
                const apps::AppProfile &primary,
                const apps::AppProfile &secondary_a,
                const apps::AppProfile &secondary_b,
                const apps::AppProfile &be_app)
{
    auto csv = openCsv(fig_name + ".csv",
                       {"secondary_load", "primary_load",
                        "strategy", "e_lc", "e_be", "e_s", "yield",
                        "p95_primary", "p95_a", "p95_b", "be_ipc"});

    const std::vector<double> sweep{0.1, 0.3, 0.5, 0.7, 0.9};

    for (double fixed : {0.2, 0.4}) {
        report::heading(std::cout,
                        fig_name + " — " + secondary_a.name + "/" +
                            secondary_b.name + " at " +
                            num(fixed * 100, 0) + "%, " +
                            primary.name + " sweeping, BE = " +
                            be_app.name);
        report::TextTable t({primary.name + " load", "strategy",
                             "E_LC", "E_BE", "E_S", "yield",
                             "p95 " + primary.name,
                             "p95 " + secondary_a.name,
                             "p95 " + secondary_b.name,
                             be_app.name + " IPC"});
        std::vector<report::Series> es_series;
        for (const auto &s : allStrategies())
            es_series.push_back({s, {}, {}});

        for (double load : sweep) {
            cluster::Node node(
                machine::MachineConfig::xeonE52630v4(),
                {cluster::lcAt(primary, load),
                 cluster::lcAt(secondary_a, fixed),
                 cluster::lcAt(secondary_b, fixed),
                 cluster::be(be_app)});
            std::size_t si = 0;
            for (const auto &s : allStrategies()) {
                const auto res = runScenario(s, node,
                                             standardConfig());
                t.addRow({num(load * 100, 0) + "%", s,
                          num(res.meanELc), num(res.meanEBe),
                          num(res.meanES), num(res.yieldValue, 2),
                          num(res.meanP95Ms[0], 2),
                          num(res.meanP95Ms[1], 2),
                          num(res.meanP95Ms[2], 2),
                          num(res.meanIpc[3], 2)});
                csv->addRow({num(fixed, 2), num(load, 2), s,
                             num(res.meanELc), num(res.meanEBe),
                             num(res.meanES),
                             num(res.yieldValue, 3),
                             num(res.meanP95Ms[0], 3),
                             num(res.meanP95Ms[1], 3),
                             num(res.meanP95Ms[2], 3),
                             num(res.meanIpc[3], 3)});
                es_series[si].xs.push_back(load);
                es_series[si].ys.push_back(res.meanES);
                ++si;
            }
        }
        t.print(std::cout);
        report::lineChart(std::cout, es_series, 64, 14,
                          "E_S vs " + primary.name + " load (" +
                              secondary_a.name + "/" +
                              secondary_b.name + " at " +
                              num(fixed * 100, 0) + "%)");
    }
}

} // namespace ahq::bench

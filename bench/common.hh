/**
 * @file
 * Shared plumbing for the table/figure-reproducing bench binaries:
 * standard colocations, strategy registry, scenario runner and CSV
 * output location.
 */

#ifndef AHQ_BENCH_COMMON_HH
#define AHQ_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "core/equivalence.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "obs/scope.hh"
#include "report/ascii_chart.hh"
#include "report/csv.hh"
#include "report/table.hh"
#include "sched/arq.hh"
#include "sched/clite.hh"
#include "sched/lc_first.hh"
#include "sched/parties.hh"
#include "sched/unmanaged.hh"

namespace ahq::bench
{

/**
 * Directory CSV series are written into (created on demand).
 * Overridable via the AHQ_BENCH_OUT environment variable;
 * thread-safe, so pool workers may race on the first call.
 */
std::string outputDir();

/**
 * The bench-wide thread pool: AHQ_JOBS threads, defaulting to the
 * hardware concurrency. All batch helpers below fan out on it.
 */
exec::ThreadPool &pool();

/** Open a CSV in the output directory ("fig08.csv" etc.). */
std::unique_ptr<report::CsvWriter>
openCsv(const std::string &filename,
        const std::vector<std::string> &header);

/**
 * The bench-wide telemetry scope, configured from the environment:
 * AHQ_TRACE=<path> opens a JSONL trace sink (parent directories
 * created on demand), AHQ_METRICS=1 routes counters into the global
 * registry and dumps it to stderr at exit. Both default to off, so
 * an unconfigured bench pays only null-pointer branches.
 */
obs::Scope benchScope();

/** Factory for a named strategy: one fresh instance per run. */
std::unique_ptr<sched::Scheduler>
makeScheduler(const std::string &name);

/** The strategy names in the paper's presentation order. */
const std::vector<std::string> &allStrategies();

/** The managed strategies (PARTIES, CLITE, ARQ). */
const std::vector<std::string> &managedStrategies();

/**
 * The standard simulation configuration used by the Section VI
 * benches: 500 ms epochs, 120 s runs, the last 60 s aggregated.
 */
cluster::SimulationConfig standardConfig();

/**
 * Run one strategy on one node and return the aggregates.
 *
 * @param strategy Strategy name (see allStrategies()).
 * @param node The colocation.
 * @param cfg Simulation configuration.
 */
cluster::SimulationResult
runScenario(const std::string &strategy, const cluster::Node &node,
            const cluster::SimulationConfig &cfg);

/**
 * Batch counterpart of runScenario(): fan the jobs across pool()
 * and return results in job order, bitwise identical to running
 * each job serially (each job carries its own seed).
 */
std::vector<cluster::SimulationResult>
runScenarios(const std::vector<exec::ScenarioJob> &jobs);

/** The paper's canonical 3-LC colocation plus a chosen BE app. */
cluster::Node
canonicalNode(double xapian_load, double moses_load,
              double imgdnn_load, const apps::AppProfile &be_app,
              const machine::MachineConfig &mc =
                  machine::MachineConfig::xeonE52630v4());

/** Sweep helper: E_S as a function of available cores. */
core::EntropyCurve
entropyVsCores(const std::string &strategy,
               const std::vector<int> &core_counts, int ways,
               const apps::AppProfile &be_app,
               double xapian_load = 0.2);

/** Format a double for tables (shortcut). */
std::string num(double v, int precision = 3);

/**
 * The git revision the bench binary was configured from (the
 * AHQ_GIT_REV compile definition; "unknown" outside a checkout) —
 * stamped into BENCH_*.json so bench_diff can name what regressed.
 */
std::string gitRev();

/** Parsed perf-trajectory flags for a bench main(). */
struct BenchArgs
{
    /** --json[=FILE] seen: emit a BENCH_<name>.json trajectory. */
    bool json = false;

    /** Destination; default outputDir()/BENCH_<name>.json. */
    std::string jsonPath;
};

/**
 * Parse a bench binary's argv: `--json` (default path) or
 * `--json=FILE`. Unknown options abort with a usage message on
 * stderr and exit code 2 — bench binaries have no other flags.
 *
 * @param name The bench's short name ("parallel_scaling").
 */
BenchArgs parseBenchArgs(int argc, char **argv,
                         const std::string &name);

/**
 * Perf-trajectory emitter: collects one row per timed workload and
 * writes them as BENCH_<name>.json — JSONL, one flat object per
 * line: {"type":"bench","benchmark":...,"wall_ms":...,
 * "throughput":...,"unit":...,"config":...,"git_rev":...} — the
 * shape obs::parseTraceLine reads back and `ahq report` /
 * `ahq bench-diff` / tools/bench_diff consume. A writer built from
 * BenchArgs with json=false drops every row, so benches call add()
 * unconditionally.
 */
class BenchJsonWriter
{
  public:
    BenchJsonWriter(const std::string &name, const BenchArgs &args);

    /** Writes the collected rows (no-op when --json was absent). */
    ~BenchJsonWriter();

    /**
     * Record one timed workload.
     *
     * @param benchmark Row name, unique within the file.
     * @param wall_ms Wall time in milliseconds.
     * @param throughput Work per second (0 = not meaningful).
     * @param unit What throughput counts ("epochs/s").
     * @param config Free-form knob summary ("threads=4 jobs=15").
     */
    void add(const std::string &benchmark, double wall_ms,
             double throughput, const std::string &unit,
             const std::string &config);

  private:
    bool enabled_;
    std::string path_;
    std::vector<std::string> lines_;
};

/**
 * The Section VI-A load-sweep figure shape shared by Figs. 8, 9 and
 * 11: one primary LC app sweeps 10-90% load while two secondary LC
 * apps sit at a fixed load (20%, then 40%), colocated with one BE
 * app; every strategy reports E_LC / E_BE / E_S plus tail latencies
 * and BE IPC.
 *
 * @param fig_name Short name for headings and the CSV file.
 * @param primary The sweeping LC app.
 * @param secondary_a First fixed-load LC app.
 * @param secondary_b Second fixed-load LC app.
 * @param be_app The BE app.
 */
void loadSweepFigure(const std::string &fig_name,
                     const apps::AppProfile &primary,
                     const apps::AppProfile &secondary_a,
                     const apps::AppProfile &secondary_b,
                     const apps::AppProfile &be_app);

} // namespace ahq::bench

#endif // AHQ_BENCH_COMMON_HH

/**
 * @file
 * Fast perf-trajectory anchor (not a paper figure): epoch-loop
 * throughput of the canonical 4-app colocation under every
 * registered strategy, the span-profiler-on variant, larger-node
 * variants (8 and 32 colocated apps — where the GP window cap and
 * the O(n²) incremental Cholesky keep CLITE's decision cost flat),
 * and a small Fleet run. Finishes in a few seconds total. With
 * --json it writes BENCH_epoch_throughput.json — the file the repo
 * commits as the baseline tools/bench_diff compares future
 * revisions against (see EXPERIMENTS.md).
 */

#include <chrono>
#include <iostream>

#include "common.hh"
#include "cluster/fleet.hh"
#include "obs/span.hh"
#include "sched/registry.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** Best-of-three wall seconds, like parallel_scaling. */
double
secondsOf(const std::function<void()> &fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** Fig. 12's 6 LC + 2 BE colocation. */
cluster::Node
eightAppNode()
{
    return cluster::Node(
        machine::MachineConfig::xeonE52630v4(),
        {cluster::lcAt(apps::moses(), 0.2),
         cluster::lcAt(apps::xapian(), 0.2),
         cluster::lcAt(apps::imgDnn(), 0.2),
         cluster::lcAt(apps::sphinx(), 0.2),
         cluster::lcAt(apps::masstree(), 0.2),
         cluster::lcAt(apps::silo(), 0.2),
         cluster::be(apps::fluidanimate()),
         cluster::be(apps::streamcluster())});
}

/**
 * A deliberately over-colocated 32-app node (8 LC + 24 BE) on the
 * larger Gold 6248 so per-group resource minimums stay feasible.
 * Not a paper scenario — a stress row for the trajectory.
 */
cluster::Node
thirtyTwoAppNode()
{
    std::vector<cluster::ColocatedApp> colocated;
    const double load = 0.15;
    colocated.push_back(cluster::lcAt(apps::moses(), load));
    colocated.push_back(cluster::lcAt(apps::xapian(), load));
    colocated.push_back(cluster::lcAt(apps::imgDnn(), load));
    colocated.push_back(cluster::lcAt(apps::sphinx(), load));
    colocated.push_back(cluster::lcAt(apps::masstree(), load));
    colocated.push_back(cluster::lcAt(apps::silo(), load));
    colocated.push_back(cluster::lcAt(apps::moses(), 2 * load));
    colocated.push_back(cluster::lcAt(apps::xapian(), 2 * load));
    for (int i = 0; i < 8; ++i) {
        colocated.push_back(cluster::be(apps::fluidanimate()));
        colocated.push_back(cluster::be(apps::streamcluster()));
        colocated.push_back(cluster::be(apps::stream()));
    }
    return cluster::Node(machine::MachineConfig::xeonGold6248(),
                         std::move(colocated));
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args =
        parseBenchArgs(argc, argv, "epoch_throughput");
    BenchJsonWriter json("epoch_throughput", args);

    report::heading(std::cout,
                    "Epoch-loop throughput (canonical 4-app node, "
                    "30 simulated seconds)");

    const auto node = canonicalNode(0.5, 0.2, 0.2, apps::stream());
    cluster::SimulationConfig cfg = standardConfig();
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 0;
    const double epochs = cfg.durationSeconds / cfg.epochSeconds;

    report::TextTable t({"workload", "wall (ms)", "epochs/s"});
    auto row = [&](const std::string &name,
                   const cluster::Node &n,
                   const cluster::SimulationConfig &c,
                   const std::string &strategy,
                   const std::string &config) {
        const double s = secondsOf([&] {
            const auto r = runScenario(strategy, n, c);
            if (r.epochs.empty())
                std::cerr << "empty run\n"; // keep r observable
        });
        t.addRow({name, num(s * 1e3), num(epochs / s, 0)});
        json.add(name, s * 1e3, epochs / s, "epochs/s", config);
    };

    // Every registered strategy (the registry's presentation
    // order), not just the headline five.
    for (const auto &strategy : sched::allStrategyNames())
        row(strategy, node, cfg, strategy,
            "epochs=60 " + strategy);

    // The profiler-on variant tracks the span-timing overhead on
    // the same workload (spans: epoch phases + scheduler steps).
    cluster::SimulationConfig prof_cfg = cfg;
    obs::SpanProfiler prof;
    prof_cfg.obs.prof = &prof;
    row("ARQ+profiler", node, prof_cfg, "ARQ",
        "epochs=60 ARQ profile=1");

    // Larger colocations: the decision loops that scale with app
    // count (CLITE's GP over groups x kinds, ARQ's ReT array, the
    // contention fixed point) against 2x and 8x the canonical node.
    const auto node8 = eightAppNode();
    const auto node32 = thirtyTwoAppNode();
    for (const auto &strategy :
         {std::string("Unmanaged"), std::string("CLITE"),
          std::string("ARQ")}) {
        row(strategy + "@8apps", node8, cfg, strategy,
            "epochs=60 apps=8 " + strategy);
        row(strategy + "@32apps", node32, cfg, strategy,
            "epochs=60 apps=32 " + strategy);
    }

    // A small fleet: 4 canonical nodes under ARQ, epochs counted
    // across all nodes (runs on the global pool, byte-identical at
    // any thread count).
    {
        const double s = secondsOf([&] {
            cluster::Fleet fleet;
            for (int i = 0; i < 4; ++i)
                fleet.addNode(node, sched::makeScheduler("ARQ"));
            const auto r = fleet.run(cfg);
            if (r.nodes.empty())
                std::cerr << "empty fleet run\n";
        });
        const double fleet_epochs = 4.0 * epochs;
        t.addRow({"Fleet/ARQ x4", num(s * 1e3),
                  num(fleet_epochs / s, 0)});
        json.add("Fleet/ARQ x4", s * 1e3, fleet_epochs / s,
                 "epochs/s", "epochs=60 nodes=4 ARQ");
    }

    t.print(std::cout);
    return 0;
}

/**
 * @file
 * Fast perf-trajectory anchor (not a paper figure): epoch-loop
 * throughput of the canonical 4-app colocation under every
 * registered strategy, the span-profiler-on variant, larger-node
 * variants (8 and 32 colocated apps — where the GP window cap and
 * the O(n²) incremental Cholesky keep CLITE's decision cost flat),
 * and a small Fleet run. Finishes in a few seconds total. With
 * --json it writes BENCH_epoch_throughput.json — the file the repo
 * commits as the baseline tools/bench_diff compares future
 * revisions against (see EXPERIMENTS.md).
 */

#include <chrono>
#include <iostream>

#include "common.hh"
#include "cluster/fleet.hh"
#include "obs/span.hh"
#include "obs/timeseries.hh"
#include "obs/trace_sink.hh"
#include "sched/registry.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** Best-of-N wall seconds, like parallel_scaling. */
double
secondsOfN(const std::function<void()> &fn, int reps)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

double
secondsOf(const std::function<void()> &fn)
{
    return secondsOfN(fn, 3);
}

/** Fig. 12's 6 LC + 2 BE colocation. */
cluster::Node
eightAppNode()
{
    return cluster::Node(
        machine::MachineConfig::xeonE52630v4(),
        {cluster::lcAt(apps::moses(), 0.2),
         cluster::lcAt(apps::xapian(), 0.2),
         cluster::lcAt(apps::imgDnn(), 0.2),
         cluster::lcAt(apps::sphinx(), 0.2),
         cluster::lcAt(apps::masstree(), 0.2),
         cluster::lcAt(apps::silo(), 0.2),
         cluster::be(apps::fluidanimate()),
         cluster::be(apps::streamcluster())});
}

/**
 * A deliberately over-colocated 32-app node (8 LC + 24 BE) on the
 * larger Gold 6248 so per-group resource minimums stay feasible.
 * Not a paper scenario — a stress row for the trajectory.
 */
cluster::Node
thirtyTwoAppNode()
{
    std::vector<cluster::ColocatedApp> colocated;
    const double load = 0.15;
    colocated.push_back(cluster::lcAt(apps::moses(), load));
    colocated.push_back(cluster::lcAt(apps::xapian(), load));
    colocated.push_back(cluster::lcAt(apps::imgDnn(), load));
    colocated.push_back(cluster::lcAt(apps::sphinx(), load));
    colocated.push_back(cluster::lcAt(apps::masstree(), load));
    colocated.push_back(cluster::lcAt(apps::silo(), load));
    colocated.push_back(cluster::lcAt(apps::moses(), 2 * load));
    colocated.push_back(cluster::lcAt(apps::xapian(), 2 * load));
    for (int i = 0; i < 8; ++i) {
        colocated.push_back(cluster::be(apps::fluidanimate()));
        colocated.push_back(cluster::be(apps::streamcluster()));
        colocated.push_back(cluster::be(apps::stream()));
    }
    return cluster::Node(machine::MachineConfig::xeonGold6248(),
                         std::move(colocated));
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args =
        parseBenchArgs(argc, argv, "epoch_throughput");
    BenchJsonWriter json("epoch_throughput", args);

    report::heading(std::cout,
                    "Epoch-loop throughput (canonical 4-app node, "
                    "30 simulated seconds)");

    const auto node = canonicalNode(0.5, 0.2, 0.2, apps::stream());
    cluster::SimulationConfig cfg = standardConfig();
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 0;
    const double epochs = cfg.durationSeconds / cfg.epochSeconds;

    report::TextTable t({"workload", "wall (ms)", "epochs/s"});
    auto row = [&](const std::string &name,
                   const cluster::Node &n,
                   const cluster::SimulationConfig &c,
                   const std::string &strategy,
                   const std::string &config) {
        const double s = secondsOf([&] {
            const auto r = runScenario(strategy, n, c);
            if (r.epochs.empty())
                std::cerr << "empty run\n"; // keep r observable
        });
        t.addRow({name, num(s * 1e3), num(epochs / s, 0)});
        json.add(name, s * 1e3, epochs / s, "epochs/s", config);
    };

    // Every registered strategy (the registry's presentation
    // order), not just the headline five.
    for (const auto &strategy : sched::allStrategyNames())
        row(strategy, node, cfg, strategy,
            "epochs=60 " + strategy);

    // The profiler-on variant tracks the span-timing overhead on
    // the same workload (spans: epoch phases + scheduler steps).
    cluster::SimulationConfig prof_cfg = cfg;
    obs::SpanProfiler prof;
    prof_cfg.obs.prof = &prof;
    row("ARQ+profiler", node, prof_cfg, "ARQ",
        "epochs=60 ARQ profile=1");

    // Telemetry variants on a 600-epoch run (telemetry's per-run
    // costs — run_start, series handle setup, the final flush —
    // are fixed, so the overhead claim is about the steady state,
    // not the amortization of a short run):
    //   off-path  sink attached, sampling rejects every epoch, no
    //             series registry. This is the shape a fleet node
    //             is in when it loses the sampling draw, and the
    //             gated claim: <2% over plain ARQ.
    //   on-path   series registry recording every epoch plus
    //             head-based sampling keeping 5% of trace events —
    //             the production shape for sampled fleet runs. Its
    //             cost is real (~20 bucket updates per ~1.4 us
    //             simulated epoch) and reported, not gated; both
    //             rows land in the committed baseline so
    //             tools/bench_diff catches drift.
    {
        cluster::SimulationConfig long_cfg = cfg;
        long_cfg.durationSeconds = 300.0;
        const double long_epochs =
            long_cfg.durationSeconds / long_cfg.epochSeconds;
        obs::BufferTraceSink ts_sink;
        obs::TimeSeriesRegistry ts_registry;
        cluster::SimulationConfig ts_cfg = long_cfg;
        ts_cfg.obs.sink = &ts_sink;
        ts_cfg.obs.scenario = "ARQ";
        ts_cfg.obs.series = &ts_registry;
        ts_cfg.traceSampleRate = 0.05;

        obs::BufferTraceSink off_sink;
        cluster::SimulationConfig off_cfg = long_cfg;
        off_cfg.obs.sink = &off_sink;
        off_cfg.obs.scenario = "ARQ";
        off_cfg.traceSampleRate = 0.0;

        // A multi-sided comparison at ~1 ms per run drowns in
        // scheduling noise if each side is timed in its own block;
        // interleave the reps so every side samples the same
        // machine conditions, then take each side's minimum.
        double s_plain = 1e300, s_off = 1e300, s = 1e300;
        auto timeOne = [&](const cluster::SimulationConfig &c,
                           double &best) {
            const auto t0 = std::chrono::steady_clock::now();
            {
                const auto r = runScenario("ARQ", node, c);
                if (r.epochs.empty())
                    std::cerr << "empty run\n";
            }
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best,
                std::chrono::duration<double>(t1 - t0).count());
        };
        for (int rep = 0; rep < 20; ++rep) {
            timeOne(long_cfg, s_plain);
            off_sink.clear();
            timeOne(off_cfg, s_off);
            ts_sink.clear();
            ts_registry.clear();
            timeOne(ts_cfg, s);
        }
        t.addRow({"ARQ+trace-off", num(s_off * 1e3),
                  num(long_epochs / s_off, 0)});
        json.add("ARQ+trace-off", s_off * 1e3, long_epochs / s_off,
                 "epochs/s",
                 "epochs=600 ARQ trace_sample=0 series=0");
        t.addRow({"ARQ+timeseries", num(s * 1e3),
                  num(long_epochs / s, 0)});
        json.add("ARQ+timeseries", s * 1e3, long_epochs / s,
                 "epochs/s",
                 "epochs=600 ARQ trace_sample=0.05 series=1");
        const double off_pct = 100.0 * (s_off / s_plain - 1.0);
        std::cout << "off-path overhead (sampling rejects all) vs "
                     "plain ARQ @"
                  << static_cast<int>(long_epochs)
                  << " epochs: " << num(off_pct)
                  << "% (gate: <2%)\n";
        if (off_pct >= 2.0)
            std::cout << "WARNING: off-path overhead exceeds the "
                         "2% gate\n";
        std::cout << "on-path overhead (series + 5% sampling) vs "
                     "plain ARQ @"
                  << static_cast<int>(long_epochs) << " epochs: "
                  << num(100.0 * (s / s_plain - 1.0)) << "%\n";
    }

    // Larger colocations: the decision loops that scale with app
    // count (CLITE's GP over groups x kinds, ARQ's ReT array, the
    // contention fixed point) against 2x and 8x the canonical node.
    const auto node8 = eightAppNode();
    const auto node32 = thirtyTwoAppNode();
    for (const auto &strategy :
         {std::string("Unmanaged"), std::string("CLITE"),
          std::string("ARQ")}) {
        row(strategy + "@8apps", node8, cfg, strategy,
            "epochs=60 apps=8 " + strategy);
        row(strategy + "@32apps", node32, cfg, strategy,
            "epochs=60 apps=32 " + strategy);
    }

    // A small fleet: 4 canonical nodes under ARQ, epochs counted
    // across all nodes (runs on the global pool, byte-identical at
    // any thread count).
    {
        const double s = secondsOf([&] {
            cluster::Fleet fleet;
            for (int i = 0; i < 4; ++i)
                fleet.addNode(node, sched::makeScheduler("ARQ"));
            const auto r = fleet.run(cfg);
            if (r.nodes.empty())
                std::cerr << "empty fleet run\n";
        });
        const double fleet_epochs = 4.0 * epochs;
        t.addRow({"Fleet/ARQ x4", num(s * 1e3),
                  num(fleet_epochs / s, 0)});
        json.add("Fleet/ARQ x4", s * 1e3, fleet_epochs / s,
                 "epochs/s", "epochs=60 nodes=4 ARQ");
    }

    t.print(std::cout);
    return 0;
}

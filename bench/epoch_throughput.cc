/**
 * @file
 * Fast perf-trajectory anchor (not a paper figure): epoch-loop
 * throughput of the canonical 4-app colocation under each strategy,
 * plus the span-profiler-on variant, in a couple of seconds total.
 * With --json it writes BENCH_epoch_throughput.json — the file the
 * repo commits as the baseline tools/bench_diff compares future
 * revisions against (see EXPERIMENTS.md).
 */

#include <chrono>
#include <iostream>

#include "common.hh"
#include "obs/span.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** Best-of-three wall seconds, like parallel_scaling. */
double
secondsOf(const std::function<void()> &fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args =
        parseBenchArgs(argc, argv, "epoch_throughput");
    BenchJsonWriter json("epoch_throughput", args);

    report::heading(std::cout,
                    "Epoch-loop throughput (canonical 4-app node, "
                    "30 simulated seconds)");

    const auto node = canonicalNode(0.5, 0.2, 0.2, apps::stream());
    cluster::SimulationConfig cfg = standardConfig();
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 0;
    const double epochs = cfg.durationSeconds / cfg.epochSeconds;

    report::TextTable t({"workload", "wall (ms)", "epochs/s"});
    auto row = [&](const std::string &name,
                   const cluster::SimulationConfig &c,
                   const std::string &strategy,
                   const std::string &config) {
        const double s = secondsOf([&] {
            const auto r = runScenario(strategy, node, c);
            if (r.epochs.empty())
                std::cerr << "empty run\n"; // keep r observable
        });
        t.addRow({name, num(s * 1e3), num(epochs / s, 0)});
        json.add(name, s * 1e3, epochs / s, "epochs/s", config);
    };

    for (const auto &strategy : allStrategies())
        row(strategy, cfg, strategy, "epochs=60 " + strategy);

    // The profiler-on variant tracks the span-timing overhead on
    // the same workload (spans: epoch phases + scheduler steps).
    cluster::SimulationConfig prof_cfg = cfg;
    obs::SpanProfiler prof;
    prof_cfg.obs.prof = &prof;
    row("ARQ+profiler", prof_cfg, "ARQ", "epochs=60 ARQ profile=1");

    t.print(std::cout);
    return 0;
}

/**
 * @file
 * Experiment-seam overhead anchor: the policy-swap seam threaded
 * through EpochSimulator must cost nothing measurable when no
 * experiment is running. Times the faults-off epoch hot path three
 * ways — the plain single-scheduler run, the same run through
 * runSwitched with a dormant schedule (the seam engaged but never
 * swapping), and a full switchback runExperiment — and fails if the
 * dormant seam costs more than 2% over plain. With --json it writes
 * BENCH_experiment_overhead.json, committed as the perf baseline
 * for the `ctest -L perf` gate.
 */

#include <chrono>
#include <functional>
#include <iostream>

#include "common.hh"
#include "experiment/harness.hh"
#include "sched/registry.hh"
#include "trace/fleet_load.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

double
secondsOfN(const std::function<void()> &fn, int reps)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** The hot-path shape: faults off, no retained epochs. */
cluster::SimulationConfig
hotConfig()
{
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1800.0; // 3600 epochs of 500 ms
    cfg.warmupEpochs = 5;
    cfg.keepEpochs = false;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args =
        parseBenchArgs(argc, argv, "experiment_overhead");
    BenchJsonWriter json("experiment_overhead", args);

    report::heading(std::cout,
                    "Experiment overhead: the policy-swap seam on "
                    "the faults-off epoch hot path (ARQ, 3600 "
                    "epochs)");

    const cluster::SimulationConfig cfg = hotConfig();
    const double epochs =
        cfg.durationSeconds / cfg.epochSeconds;
    const int reps = 9;

    trace::FleetLoadConfig lc;
    lc.numNodes = 4;
    const trace::FleetLoadGenerator gen(lc);
    const auto mc = machine::MachineConfig::xeonE52630v4();
    const cluster::EpochSimulator sim(
        cluster::Node(mc, cluster::fleetNodeApps(gen, 0)), cfg);

    report::TextTable t(
        {"workload", "wall (ms)", "epochs/s", "E_S"});

    // ---- plain run: the pre-seam contract -----------------------
    const auto arq = sched::makeScheduler("ARQ");
    double es_plain = 0.0;
    const double s_plain = secondsOfN(
        [&] { es_plain = sim.run(*arq).meanES; }, reps);
    t.addRow({"epoch_plain", num(s_plain * 1e3),
              num(epochs / s_plain, 0), num(es_plain)});
    json.add("epoch_plain", s_plain * 1e3, epochs / s_plain,
             "epochs/s", "epochs=3600 ARQ faults=off");

    // ---- dormant seam: runSwitched, one arm, empty schedule -----
    // The contract says this is identical to run(); the timing
    // proves the seam's per-epoch branch is identical too.
    double es_seam = 0.0;
    const double s_seam = secondsOfN(
        [&] {
            es_seam = sim.runSwitched({arq.get()},
                                      cluster::PolicySchedule{})
                          .meanES;
        },
        reps);
    t.addRow({"epoch_seam_idle", num(s_seam * 1e3),
              num(epochs / s_seam, 0), num(es_seam)});
    json.add("epoch_seam_idle", s_seam * 1e3, epochs / s_seam,
             "epochs/s", "epochs=3600 ARQ faults=off seam=idle");

    // ---- a real switchback through the full harness -------------
    {
        experiment::ExperimentRunConfig ec;
        ec.design.kind = experiment::DesignKind::Switchback;
        ec.design.armA = "ARQ";
        ec.design.armB = "Unmanaged";
        ec.design.numNodes = 4;
        ec.design.blocksPerNode = 4;
        ec.design.blockEpochs = 8;
        ec.design.seed = 42;
        ec.estimator.resamples = 200;
        ec.base.seed = 42;
        const int total_epochs = ec.design.numNodes *
                                 ec.design.blocksPerNode *
                                 ec.design.blockEpochs;
        const double s_exp = secondsOfN(
            [&] { (void)experiment::runExperiment(ec); }, 3);
        t.addRow({"experiment_switchback", num(s_exp * 1e3),
                  num(total_epochs / s_exp, 0), "-"});
        json.add("experiment_switchback", s_exp * 1e3,
                 total_epochs / s_exp, "epochs/s",
                 "nodes=4 blocks=4 block_epochs=8 resamples=200");
    }

    t.print(std::cout);

    // Correctness first: the dormant seam must not perturb a single
    // bit of the result, or the timing comparison is meaningless.
    if (es_plain != es_seam) {
        std::cerr << "FAIL: dormant seam changed E_S (" << es_plain
                  << " vs " << es_seam << ")\n";
        return 1;
    }

    const double overhead = s_seam / s_plain - 1.0;
    std::cout << "seam overhead on the hot path: "
              << num(overhead * 100.0, 2) << "% (gate: < 2%)\n";
    if (overhead > 0.02) {
        std::cerr << "FAIL: dormant-seam overhead "
                  << num(overhead * 100.0, 2) << "% exceeds 2%\n";
        return 1;
    }
    return 0;
}

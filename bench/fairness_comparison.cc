/**
 * @file
 * Fairness vs overall experience (the paper's closing related-work
 * contrast: "Dunn cares more about system fairness while ARQ
 * focuses on both fairness and overall system performance").
 *
 * A CoPart-style fairness controller, PARTIES and ARQ run the same
 * colocations; for each we report the per-app slowdown spread,
 * Jain's fairness index over the apps' normalised performance, the
 * system entropy and the yield. The expected reading: the fairness
 * controller equalises slowdowns but pays for it in E_S and yield,
 * ARQ is near-fair *and* entropy-optimal.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

struct Fairness
{
    double maxSlowdown;
    double minSlowdown;
    double jain;
};

Fairness
fairnessOf(const cluster::Node &node,
           const cluster::SimulationResult &res)
{
    std::vector<double> speedups; // 1 / slowdown per app
    double max_s = 1.0, min_s = 1e9;
    for (int i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        const auto ui = static_cast<std::size_t>(i);
        double slowdown;
        if (p.latencyCritical) {
            // Ideal at the app's (constant) load.
            const double ideal =
                p.soloTailP95Ms(node.loadAt(i, 0.0));
            slowdown = std::max(1.0, res.meanP95Ms[ui] / ideal);
        } else {
            slowdown = std::max(
                1.0, p.ipcSolo / std::max(res.meanIpc[ui], 1e-9));
        }
        speedups.push_back(1.0 / slowdown);
        max_s = std::max(max_s, slowdown);
        min_s = std::min(min_s, slowdown);
    }
    double sum = 0.0, sq = 0.0;
    for (double v : speedups) {
        sum += v;
        sq += v * v;
    }
    const double n = static_cast<double>(speedups.size());
    return {max_s, min_s, sum * sum / (n * sq)};
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Fairness vs overall experience "
                    "(Xapian sweeps, Moses/Img-dnn 20% + Stream)");

    report::TextTable t({"xapian load", "strategy", "max/min "
                         "slowdown", "Jain index", "E_S", "yield"});
    auto csv = openCsv("fairness.csv",
                       {"xapian_load", "strategy", "max_slowdown",
                        "min_slowdown", "jain", "e_s", "yield"});

    for (double load : {0.3, 0.7}) {
        const auto node = canonicalNode(load, 0.2, 0.2,
                                        apps::stream());
        struct Entry
        {
            const char *name;
            cluster::SimulationResult res;
        };
        std::vector<Entry> entries;
        entries.push_back(
            {"CoPart",
             runScenario("CoPart", node, standardConfig())});
        entries.push_back(
            {"PARTIES",
             runScenario("PARTIES", node, standardConfig())});
        entries.push_back(
            {"ARQ", runScenario("ARQ", node, standardConfig())});

        for (const auto &e : entries) {
            const auto f = fairnessOf(node, e.res);
            t.addRow({num(load * 100, 0) + "%", e.name,
                      num(f.maxSlowdown, 2) + " / " +
                          num(f.minSlowdown, 2),
                      num(f.jain), num(e.res.meanES),
                      num(e.res.yieldValue, 2)});
            csv->addRow({num(load, 2), e.name,
                         num(f.maxSlowdown), num(f.minSlowdown),
                         num(f.jain), num(e.res.meanES),
                         num(e.res.yieldValue, 3)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading: chasing equal slowdowns with strict "
                 "partitions is unstable — queueing\nslowdowns "
                 "react nonlinearly to resource moves, so CoPart "
                 "ends up neither fair nor\nlow-entropy. ARQ's "
                 "shared region is simultaneously the fairest "
                 "(highest Jain\nindex) AND the lowest-E_S "
                 "configuration: sharing equalises naturally, "
                 "which is\nthe quantitative form of the paper's "
                 "claim that ARQ covers both fairness and\noverall "
                 "performance where Dunn covers only fairness.\n";
    return 0;
}

/**
 * @file
 * Fig. 1: two resource scheduling strategies A and B over the same
 * colocation (Xapian, Moses, Img-dnn + Fluidanimate).
 *
 * Strategy A shares resources (slight, elasticity-tolerable QoS
 * excursion for Img-dnn but a BE app running near full speed);
 * strategy B isolates aggressively (QoS met with margin, BE app
 * starved). Per the paper's argument, raw tail latencies and IPC do
 * not reveal which strategy is better, while E_S does: A wins.
 */

#include <iostream>

#include "common.hh"
#include "core/entropy.hh"
#include "machine/layout.hh"
#include "perf/contention.hh"
#include "perf/queueing.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

struct StrategyOutcome
{
    std::vector<double> tail;  // per LC app, ms
    double ipc;                // BE app
    core::EntropyReport report;
};

/** Evaluate one static layout with the contention model. */
StrategyOutcome
evaluate(const machine::RegionLayout &layout,
         perf::CoreSharePolicy policy)
{
    const auto mc = machine::MachineConfig::xeonE52630v4();
    perf::ContentionModel model(mc);

    const std::vector<apps::AppProfile> profiles{
        apps::xapian(), apps::moses(), apps::imgDnn(),
        apps::fluidanimate()};
    const std::vector<double> loads{0.4, 0.4, 0.6, 0.0};

    std::vector<perf::AppDemand> demands;
    for (std::size_t i = 0; i < profiles.size(); ++i)
        demands.push_back(profiles[i].toDemand(loads[i]));

    const auto out = model.evaluate(layout, demands, policy);

    StrategyOutcome so;
    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const auto &p = profiles[i];
        if (p.latencyCritical) {
            const double t95 =
                p.baseLatencyMs +
                1000.0 * perf::sojournPercentileApprox(
                             out[i].coreEquivalents,
                             demands[i].arrivalRate,
                             out[i].perServerRate,
                             p.svcP95Mult * out[i].serviceStretch);
            so.tail.push_back(t95);
            lc.push_back({p.soloTailP95Ms(loads[i]), t95,
                          p.tailThresholdMs});
        } else {
            so.ipc = out[i].ipc;
            be.push_back({p.ipcSolo, out[i].ipc});
        }
    }
    so.report = core::computeEntropy(lc, be);
    return so;
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Fig. 1 — why E_S beats raw tails and IPC");

    // Strategy A: everything shared, LC priority (ARQ-flavoured).
    const std::vector<machine::AppId> all{0, 1, 2, 3};
    auto layout_a =
        machine::RegionLayout::fullyShared({10, 20, 10}, all);

    // Strategy B: aggressive isolation; the BE app keeps scraps.
    machine::RegionLayout layout_b({10, 20, 10});
    const int lc_cores[3] = {3, 3, 3};
    const int lc_ways[3] = {7, 6, 6};
    for (int i = 0; i < 3; ++i) {
        machine::Region r;
        r.name = "isoB" + std::to_string(i);
        r.shared = false;
        r.members = {i};
        r.res = {lc_cores[i], lc_ways[i], 3};
        layout_b.addRegion(std::move(r));
    }
    machine::Region pool;
    pool.name = "bepool";
    pool.shared = true;
    pool.members = {3};
    pool.res = {1, 1, 1};
    layout_b.addRegion(std::move(pool));

    const auto a = evaluate(layout_a,
                            perf::CoreSharePolicy::LcPriority);
    const auto b = evaluate(layout_b,
                            perf::CoreSharePolicy::FairShare);

    const std::vector<apps::AppProfile> lc_profiles{
        apps::xapian(), apps::moses(), apps::imgDnn()};

    report::TextTable t({"metric", "QoS target", "strategy A",
                         "strategy B"});
    for (std::size_t i = 0; i < lc_profiles.size(); ++i) {
        t.addRow({lc_profiles[i].name + " p95 (ms)",
                  num(lc_profiles[i].tailThresholdMs, 2),
                  num(a.tail[i], 2), num(b.tail[i], 2)});
    }
    t.addRow({"fluidanimate IPC", "-", num(a.ipc, 2),
              num(b.ipc, 2)});
    t.addRow({"E_LC", "-", num(a.report.eLc), num(b.report.eLc)});
    t.addRow({"E_BE", "-", num(a.report.eBe), num(b.report.eBe)});
    t.addRow({"E_S", "-", num(a.report.eS), num(b.report.eS)});
    t.print(std::cout);

    std::cout << "\nReading: strategy "
              << (a.report.eS < b.report.eS ? "A" : "B")
              << " has the lower system entropy";
    if (a.report.eS < b.report.eS) {
        std::cout << " — the small QoS excursion is within the "
                     "threshold elasticity, while B starves the "
                     "BE application.";
    }
    std::cout << "\n";

    auto csv = openCsv("fig01.csv",
                       {"strategy", "xapian_p95", "moses_p95",
                        "imgdnn_p95", "be_ipc", "e_lc", "e_be",
                        "e_s"});
    csv->addRow({"A", num(a.tail[0]), num(a.tail[1]),
                 num(a.tail[2]), num(a.ipc), num(a.report.eLc),
                 num(a.report.eBe), num(a.report.eS)});
    csv->addRow({"B", num(b.tail[0]), num(b.tail[1]),
                 num(b.tail[2]), num(b.ipc), num(b.report.eLc),
                 num(b.report.eBe), num(b.report.eS)});
    return 0;
}

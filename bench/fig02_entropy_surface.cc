/**
 * @file
 * Fig. 2: E_S as a function of available processing units (4-10) and
 * LLC ways (4-20) for the Unmanaged and ARQ strategies, on the
 * Xapian(20%)/Moses(20%)/Img-dnn(20%)/Fluidanimate colocation.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Fig. 2 — E_S over (cores x LLC ways)");

    const std::vector<int> cores{4, 5, 6, 7, 8, 9, 10};
    const std::vector<int> ways{4, 8, 12, 16, 20};

    auto csv = openCsv("fig02.csv",
                       {"strategy", "cores", "ways", "e_s"});

    for (const std::string strategy : {"Unmanaged", "ARQ"}) {
        report::TextTable t({"cores \\ ways", "4", "8", "12", "16",
                             "20"});
        std::vector<std::vector<double>> grid;
        std::vector<std::string> labels;
        for (int c : cores) {
            std::vector<std::string> row{std::to_string(c)};
            std::vector<double> grow;
            for (int w : ways) {
                const auto mc =
                    machine::MachineConfig::xeonE52630v4()
                        .withAvailable(c, w, 10);
                const auto node = canonicalNode(
                    0.2, 0.2, 0.2, apps::fluidanimate(), mc);
                const auto res = runScenario(strategy, node,
                                             standardConfig());
                row.push_back(num(res.meanES));
                grow.push_back(res.meanES);
                csv->addRow({strategy, std::to_string(c),
                             std::to_string(w), num(res.meanES)});
            }
            t.addRow(row);
            grid.push_back(grow);
            labels.push_back(std::to_string(c) + "c");
        }
        report::heading(std::cout, strategy);
        t.print(std::cout);
        report::heatmap(std::cout, grid, labels,
                        strategy + " E_S (rows: cores, cols: ways "
                                   "4..20)");
    }

    std::cout << "\nExpected shape (paper): E_S decreases towards "
                 "the resource-rich corner;\nUnmanaged ~0.006 at "
                 "(10c, 20w) but ~0.53 at (6c, 20w); ARQ stays "
                 "low far longer (0.15 at 6c).\n";
    return 0;
}

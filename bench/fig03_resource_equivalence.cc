/**
 * @file
 * Fig. 3: resource equivalence.
 *
 * (a) E_S vs available cores for Unmanaged and ARQ, and the core
 *     savings ("resource equivalence") at E_S targets 0.25 / 0.40.
 * (b) Isentropic lines at E_S = 0.3: the cores needed as a function
 *     of available LLC ways, for all four managed/unmanaged
 *     strategies the paper plots.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    const std::vector<int> cores{4, 5, 6, 7, 8, 9, 10};

    // ---- (a) ------------------------------------------------------
    report::heading(std::cout,
                    "Fig. 3(a) — E_S vs cores, Unmanaged vs ARQ");

    const auto cu = entropyVsCores("Unmanaged", cores, 20,
                                   apps::fluidanimate());
    const auto ca = entropyVsCores("ARQ", cores, 20,
                                   apps::fluidanimate());

    report::TextTable ta({"cores", "Unmanaged E_S", "ARQ E_S"});
    auto csv_a = openCsv("fig03a.csv",
                         {"cores", "unmanaged_es", "arq_es"});
    for (std::size_t i = 0; i < cores.size(); ++i) {
        ta.addRow({std::to_string(cores[i]), num(cu[i].second),
                   num(ca[i].second)});
        csv_a->addRow({std::to_string(cores[i]), num(cu[i].second),
                       num(ca[i].second)});
    }
    ta.print(std::cout);

    report::Series su{"Unmanaged", {}, {}};
    report::Series sa{"ARQ", {}, {}};
    for (std::size_t i = 0; i < cores.size(); ++i) {
        su.xs.push_back(cu[i].first);
        su.ys.push_back(cu[i].second);
        sa.xs.push_back(ca[i].first);
        sa.ys.push_back(ca[i].second);
    }
    report::lineChart(std::cout, {su, sa}, 64, 14,
                      "E_S vs available cores");

    for (double target : {0.25, 0.40}) {
        const auto ru = core::resourceForEntropy(cu, target);
        const auto ra = core::resourceForEntropy(ca, target);
        std::cout << "target E_S = " << target << ": Unmanaged "
                  << (ru ? num(*ru, 2) : "unreachable")
                  << " cores, ARQ "
                  << (ra ? num(*ra, 2) : "unreachable") << " cores";
        if (ru && ra) {
            std::cout << "  -> resource equivalence "
                      << num(*ru - *ra, 2) << " cores";
        }
        std::cout << "\n";
    }

    // ---- (b) ------------------------------------------------------
    report::heading(std::cout,
                    "Fig. 3(b) — isentropic lines at E_S = 0.3");

    const std::vector<int> ways{4, 6, 8, 10, 12, 16, 20};
    report::TextTable tb({"ways", "Unmanaged", "PARTIES", "CLITE",
                          "ARQ"});
    auto csv_b = openCsv("fig03b.csv",
                         {"ways", "unmanaged_cores",
                          "parties_cores", "clite_cores",
                          "arq_cores"});
    const std::vector<std::string> strategies{
        "Unmanaged", "PARTIES", "CLITE", "ARQ"};

    for (int w : ways) {
        std::vector<std::string> row{std::to_string(w)};
        for (const auto &s : strategies) {
            const auto curve = entropyVsCores(s, cores, w,
                                              apps::fluidanimate());
            const auto needed = core::resourceForEntropy(curve, 0.3);
            row.push_back(needed ? num(*needed, 2) : "-");
        }
        tb.addRow(row);
        csv_b->addRow(row);
    }
    tb.print(std::cout);

    std::cout << "\nExpected shape (paper): with plentiful ways the "
                 "lines converge; below ~10 ways ARQ\nneeds "
                 "~1 fewer core than PARTIES/CLITE and ~2 fewer "
                 "than Unmanaged for the same E_S.\n";
    return 0;
}

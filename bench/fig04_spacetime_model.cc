/**
 * @file
 * Fig. 4: the space-time resource utilisation model. One resource
 * slice over eight time slices for LC1, LC2 and BE; compares
 * exclusive isolation (scenario b) against prioritised sharing
 * (scenario c), reproducing the tick/triangle/cross accounting.
 */

#include <iostream>

#include "common.hh"
#include "sched/spacetime.hh"

using namespace ahq;
using namespace ahq::bench;
using namespace ahq::sched;

namespace
{

const char *
glyph(SlotOutcome o)
{
    switch (o) {
      case SlotOutcome::NotNeeded:
        return ".";
      case SlotOutcome::Served:
        return "v"; // tick
      case SlotOutcome::ServedWithOverhead:
        return "^"; // triangle
      case SlotOutcome::Denied:
        return "x"; // cross
    }
    return "?";
}

void
printGrid(const std::vector<SpacetimeDemand> &demands,
          const SpacetimeResult &res, const std::string &title)
{
    report::heading(std::cout, title);
    std::cout << "         t=  1 2 3 4 5 6 7 8\n";
    for (std::size_t a = 0; a < demands.size(); ++a) {
        std::cout << "  " << demands[a].name
                  << std::string(9 - demands[a].name.size(), ' ');
        for (std::size_t t = 0; t < res.outcomes[a].size(); ++t)
            std::cout << " " << glyph(res.outcomes[a][t]);
        std::cout << "\n";
    }
    std::cout << "  served (v+^): " << res.served
              << "  overheads (^): " << res.overheads
              << "  denied (x): " << res.denied
              << "  idle slices: " << res.idleSlices
              << "  utilisation: " << num(res.utilization(), 2)
              << "\n";
}

} // namespace

int
main()
{
    // The Fig. 4(a) demand pattern: per-slice resource needs of two
    // LC apps and one BE app measured when each runs alone.
    const std::vector<SpacetimeDemand> demands{
        {"LC1", true, {1, 1, 0, 0, 1, 1, 0, 1}},
        {"LC2", true, {0, 1, 0, 1, 0, 1, 1, 0}},
        {"BE", false, {1, 0, 1, 1, 1, 1, 1, 1}},
    };

    report::heading(std::cout,
                    "Fig. 4 — space-time model of one resource "
                    "slice");
    std::cout << "legend: v = served, ^ = served with transition "
                 "overhead, x = denied, . = not needed\n";

    const auto iso = simulateIsolated(demands, 0);
    printGrid(demands, iso,
              "(b) slice exclusively allocated to LC1");

    const auto shared = simulateSharedPriority(demands);
    printGrid(demands, shared,
              "(c) slice shared, LC apps take precedence");

    std::cout << "\nReading: sharing cuts denied demands from "
              << iso.denied << " to " << shared.denied
              << " at the cost of " << shared.overheads
              << " ownership transitions, and lifts utilisation "
              << num(iso.utilization(), 2) << " -> "
              << num(shared.utilization(), 2)
              << " (the paper reports 10 -> 6 crosses and ~2x "
                 "utilisation).\n";

    auto csv = openCsv("fig04.csv",
                       {"scenario", "served", "overheads", "denied",
                        "idle", "utilisation"});
    csv->addRow({"isolated", std::to_string(iso.served),
                 std::to_string(iso.overheads),
                 std::to_string(iso.denied),
                 std::to_string(iso.idleSlices),
                 num(iso.utilization())});
    csv->addRow({"shared_priority", std::to_string(shared.served),
                 std::to_string(shared.overheads),
                 std::to_string(shared.denied),
                 std::to_string(shared.idleSlices),
                 num(shared.utilization())});
    return 0;
}

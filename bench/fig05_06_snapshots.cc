/**
 * @file
 * Figs. 5 and 6: steady-state resource allocation snapshots of
 * PARTIES and ARQ on Xapian/Moses/Img-dnn + Stream, at Xapian loads
 * of 30% (Fig. 5: ARQ should leave the BE app a large shared pool)
 * and 90% (Fig. 6: ARQ should hand Xapian a large isolated region
 * by satisfying the other LC apps out of the shared region).
 */

#include <iostream>

#include "common.hh"
#include "machine/pqos.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

void
snapshot(const std::string &strategy, double xapian_load)
{
    const auto node = canonicalNode(xapian_load, 0.2, 0.2,
                                    apps::stream());
    const auto res = runScenario(strategy, node, standardConfig());
    const auto &rec = res.epochs.back();
    const auto &layout = rec.layout;
    const auto masks = layout.concreteMasks();

    const auto avail =
        machine::MachineConfig::xeonE52630v4().availableResources();

    report::heading(std::cout,
                    strategy + " @ Xapian " +
                        num(xapian_load * 100, 0) + "% load");
    report::TextTable t({"region", "members", "cores", "cores%",
                         "ways", "ways%", "bw", "core mask",
                         "CAT mask"});
    for (int r = 0; r < layout.numRegions(); ++r) {
        const auto &reg = layout.region(r);
        std::string members;
        for (std::size_t m = 0; m < reg.members.size(); ++m) {
            if (m)
                members += ",";
            members += node.profile(reg.members[m]).name;
        }
        t.addRow({reg.name, members,
                  std::to_string(reg.res.cores),
                  num(100.0 * reg.res.cores / avail.cores, 0) + "%",
                  std::to_string(reg.res.llcWays),
                  num(100.0 * reg.res.llcWays / avail.llcWays, 0) +
                      "%",
                  std::to_string(reg.res.memBw),
                  masks.coreMasks[static_cast<std::size_t>(r)]
                      .toString(),
                  masks.wayMasks[static_cast<std::size_t>(r)]
                      .toString()});
    }
    t.print(std::cout);
    std::cout << "  E_LC=" << num(res.meanELc)
              << " E_BE=" << num(res.meanEBe)
              << " E_S=" << num(res.meanES)
              << " stream IPC=" << num(res.meanIpc[3], 2) << "\n";

    static auto csv = openCsv("fig05_06.csv",
                              {"strategy", "xapian_load", "region",
                               "cores", "ways", "bw"});
    for (int r = 0; r < layout.numRegions(); ++r) {
        const auto &reg = layout.region(r);
        csv->addRow({strategy, num(xapian_load, 2), reg.name,
                     std::to_string(reg.res.cores),
                     std::to_string(reg.res.llcWays),
                     std::to_string(reg.res.memBw)});
    }
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Figs. 5/6 — allocation snapshots "
                    "(Xapian, Moses, Img-dnn + Stream)");
    for (double load : {0.3, 0.9}) {
        for (const std::string s : {"PARTIES", "ARQ"})
            snapshot(s, load);
    }

    // What a real deployment would execute for the final ARQ layout
    // at 90% load (Intel CAT/MBA via pqos, affinities via taskset).
    report::heading(std::cout,
                    "pqos/taskset program for ARQ @ 90%");
    {
        const auto node = canonicalNode(0.9, 0.2, 0.2,
                                        apps::stream());
        const auto res = runScenario("ARQ", node, standardConfig());
        machine::PqosProgrammer prog(
            machine::MachineConfig::xeonE52630v4());
        for (const auto &line : machine::PqosProgrammer::toShell(
                 prog.program(res.epochs.back().layout))) {
            std::cout << "  " << line << "\n";
        }
    }
    std::cout << "\nExpected shape (paper): at 30% load ARQ keeps a "
                 "large shared region (BE thrives);\nat 90% load "
                 "ARQ grows Xapian's isolated region (~70% cores in "
                 "the paper) while PARTIES\nmust also provision "
                 "Moses/Img-dnn separately and leaves Xapian "
                 "short.\n";
    return 0;
}

/**
 * @file
 * Fig. 7: p95 tail latency versus request arrival rate for Xapian,
 * Moses, Img-dnn and Sphinx running solo with 1, 2, 4 and 8
 * processing units, reproducing the flat-then-exponential knees and
 * the per-core-count saturation ordering.
 */

#include <iostream>

#include <cmath>
#include <limits>

#include "common.hh"
#include "perf/queueing.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** Solo p95 with the app configured to use the given core count. */
double
soloP95Ms(const apps::AppProfile &p, int cores, double lambda)
{
    const double mu = 1000.0 / p.serviceTimeMs; // per-core rate
    const double t = perf::sojournPercentileApprox(
        static_cast<double>(cores), lambda, mu, p.svcP95Mult);
    if (!std::isfinite(t))
        return std::numeric_limits<double>::infinity();
    return p.baseLatencyMs + 1000.0 * t;
}

void
sweep(const apps::AppProfile &p, report::CsvWriter &csv)
{
    report::heading(std::cout,
                    p.name + " (threshold " +
                        num(p.tailThresholdMs, 2) + " ms)");
    report::TextTable t({"QPS", "1 core", "2 cores", "4 cores",
                         "8 cores"});
    std::vector<report::Series> series;
    for (int cores : {1, 2, 4, 8})
        series.push_back({std::to_string(cores) + "c", {}, {}});

    // Sweep up to 1.5x the published max load.
    const double l_max = 1.5 * p.maxLoadQps;
    for (int step = 1; step <= 15; ++step) {
        const double lambda = l_max * step / 15.0;
        std::vector<std::string> row{num(lambda, 0)};
        int ci = 0;
        for (int cores : {1, 2, 4, 8}) {
            const double p95 = soloP95Ms(p, cores, lambda);
            row.push_back(std::isfinite(p95) ? num(p95, 2) : "sat");
            if (std::isfinite(p95) &&
                p95 < 4.0 * p.tailThresholdMs) {
                series[static_cast<std::size_t>(ci)].xs
                    .push_back(lambda);
                series[static_cast<std::size_t>(ci)].ys
                    .push_back(p95);
            }
            csv.addRow({p.name, std::to_string(cores),
                        num(lambda, 1),
                        std::isfinite(p95) ? num(p95, 3) : "inf"});
            ++ci;
        }
        t.addRow(row);
    }
    t.print(std::cout);
    report::lineChart(std::cout, series, 64, 14,
                      "p95 (ms) vs arrival rate (QPS)");

    // Report where each configuration crosses the QoS threshold
    // (the paper's dashed max-service-rate lines).
    std::cout << "  knee (p95 crosses threshold): ";
    for (int cores : {1, 2, 4, 8}) {
        double knee = 0.0;
        for (double lambda = l_max / 300.0; lambda <= l_max;
             lambda += l_max / 300.0) {
            if (soloP95Ms(p, cores, lambda) <= p.tailThresholdMs)
                knee = lambda;
            else
                break;
        }
        std::cout << cores << "c: " << num(knee, 0) << " QPS  ";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Fig. 7 — tail latency vs arrival rate "
                    "(1/2/4/8 processing units)");
    auto csv = openCsv("fig07.csv",
                       {"app", "cores", "qps", "p95_ms"});
    for (const auto &p : {apps::xapian(), apps::moses(),
                          apps::imgDnn(), apps::sphinx()}) {
        sweep(p, *csv);
    }
    std::cout << "\nExpected shape (paper): each curve is flat then "
                 "rises exponentially; knees scale\nroughly with "
                 "core count, and the 4-core knee sits near the "
                 "published max load.\n";
    return 0;
}

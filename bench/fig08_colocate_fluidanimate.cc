/**
 * @file
 * Fig. 8: Xapian, Moses, Img-dnn colocated with Fluidanimate. The
 * load of Moses and Img-dnn is 20% (left column) then 40% (right
 * column) of max load, Xapian sweeps 10-90%, all five strategies.
 * Also reports the paper's headline deltas for this colocation:
 * tail-latency reduction vs Unmanaged and the low-load BE IPC
 * uplift of ARQ over PARTIES/CLITE.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    loadSweepFigure("fig08", apps::xapian(), apps::moses(),
                    apps::imgDnn(), apps::fluidanimate());

    // Headline numbers for the 40%-secondary case (Fig. 8(b)).
    report::heading(std::cout,
                    "Fig. 8(b) headline deltas (Moses/Img-dnn at "
                    "40%)");
    double tail_red_arq = 0.0, tail_red_parties = 0.0,
        tail_red_clite = 0.0;
    double ipc_arq = 0.0, ipc_parties = 0.0, ipc_clite = 0.0;
    int n_loads = 0, n_low = 0;

    for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const auto node = canonicalNode(load, 0.4, 0.4,
                                        apps::fluidanimate());
        const auto ru = runScenario("Unmanaged", node,
                                    standardConfig());
        const auto rp = runScenario("PARTIES", node,
                                    standardConfig());
        const auto rc = runScenario("CLITE", node,
                                    standardConfig());
        const auto ra = runScenario("ARQ", node, standardConfig());

        auto mean_tail = [](const cluster::SimulationResult &r) {
            return (r.meanP95Ms[0] + r.meanP95Ms[1] +
                    r.meanP95Ms[2]) / 3.0;
        };
        tail_red_arq += 1.0 - mean_tail(ra) / mean_tail(ru);
        tail_red_parties += 1.0 - mean_tail(rp) / mean_tail(ru);
        tail_red_clite += 1.0 - mean_tail(rc) / mean_tail(ru);
        ++n_loads;
        if (load <= 0.5) {
            ipc_arq += ra.meanIpc[3];
            ipc_parties += rp.meanIpc[3];
            ipc_clite += rc.meanIpc[3];
            ++n_low;
        }
    }

    std::cout << "mean tail-latency reduction vs Unmanaged: ARQ "
              << num(100.0 * tail_red_arq / n_loads, 1)
              << "%, CLITE "
              << num(100.0 * tail_red_clite / n_loads, 1)
              << "%, PARTIES "
              << num(100.0 * tail_red_parties / n_loads, 1)
              << "%  (paper: 66.5 / 43.6 / 37.2)\n";
    std::cout << "low-load BE IPC uplift of ARQ: vs PARTIES +"
              << num(100.0 * (ipc_arq / ipc_parties - 1.0), 1)
              << "%, vs CLITE +"
              << num(100.0 * (ipc_arq / ipc_clite - 1.0), 1)
              << "%  (paper: +63.8 / +37.1)\n";
    std::cout << "\nExpected shape (paper): Unmanaged lowest E_S at "
                 "low load, collapsing at high load;\nARQ lowest "
                 "E_S overall; PARTIES/CLITE protect QoS but keep "
                 "E_BE high.\n";
    return 0;
}

/**
 * @file
 * Fig. 9: Xapian, Moses, Img-dnn colocated with a 10-thread STREAM
 * instance — the severe-interference companion of Fig. 8 — plus the
 * paper's highlighted extreme point (Xapian 90%, Moses/Img-dnn 40%)
 * where only ARQ keeps E_LC near zero, and the Section VI-A summary
 * (yield and E_S across the managed strategies).
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    loadSweepFigure("fig09", apps::xapian(), apps::moses(),
                    apps::imgDnn(), apps::stream());

    report::heading(std::cout,
                    "Extreme point: Xapian 90%, Moses/Img-dnn 40% "
                    "+ Stream");
    const auto node = canonicalNode(0.9, 0.4, 0.4, apps::stream());
    report::TextTable t({"strategy", "E_LC", "E_BE", "E_S", "yield",
                         "dE_S vs Unmanaged"});
    const auto ru = runScenario("Unmanaged", node,
                                standardConfig());
    for (const auto &s : allStrategies()) {
        const auto r = runScenario(s, node, standardConfig());
        t.addRow({s, num(r.meanELc), num(r.meanEBe), num(r.meanES),
                  num(r.yieldValue, 2),
                  s == "Unmanaged" ? "-" :
                      num(100.0 * (1.0 - r.meanES / ru.meanES), 1) +
                          "%"});
    }
    t.print(std::cout);
    std::cout << "(paper: ARQ reduces E_S by 73.4% vs Unmanaged "
                 "here, CLITE 53.2%, PARTIES 22.3%,\nand only ARQ "
                 "pushes E_LC to ~0.06)\n";
    return 0;
}

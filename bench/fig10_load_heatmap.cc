/**
 * @file
 * Fig. 10: entropy heatmaps of PARTIES vs ARQ while both Xapian and
 * Img-dnn sweep 10-90% load (Moses fixed at 20%, Stream as BE):
 * E_LC, E_BE and E_S over the load plane.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Fig. 10 — entropy heatmaps over "
                    "(Xapian x Img-dnn) load, Moses 20% + Stream");

    const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9};
    auto csv = openCsv("fig10.csv",
                       {"strategy", "xapian_load", "imgdnn_load",
                        "e_lc", "e_be", "e_s"});

    for (const std::string strategy : {"PARTIES", "ARQ"}) {
        std::vector<std::vector<double>> g_lc, g_be, g_s;
        std::vector<std::string> labels;
        for (double xl : loads) {
            std::vector<double> r_lc, r_be, r_s;
            for (double il : loads) {
                cluster::Node node(
                    machine::MachineConfig::xeonE52630v4(),
                    {cluster::lcAt(apps::xapian(), xl),
                     cluster::lcAt(apps::moses(), 0.2),
                     cluster::lcAt(apps::imgDnn(), il),
                     cluster::be(apps::stream())});
                const auto res = runScenario(strategy, node,
                                             standardConfig());
                r_lc.push_back(res.meanELc);
                r_be.push_back(res.meanEBe);
                r_s.push_back(res.meanES);
                csv->addRow({strategy, num(xl, 1), num(il, 1),
                             num(res.meanELc), num(res.meanEBe),
                             num(res.meanES)});
            }
            g_lc.push_back(r_lc);
            g_be.push_back(r_be);
            g_s.push_back(r_s);
            labels.push_back("x" + num(xl * 100, 0) + "%");
        }
        report::heading(std::cout, strategy);
        report::heatmap(std::cout, g_lc, labels,
                        "E_LC (rows: Xapian load, cols: Img-dnn "
                        "load 10..90%)");
        report::heatmap(std::cout, g_be, labels, "E_BE");
        report::heatmap(std::cout, g_s, labels, "E_S");
    }

    std::cout << "\nExpected shape (paper): in the low-load corner "
                 "ARQ's E_BE is visibly lower than\nPARTIES' (the "
                 "shared region feeds the BE app); in the high-load "
                 "corner ARQ trades\nE_BE for lower E_LC.\n";
    return 0;
}

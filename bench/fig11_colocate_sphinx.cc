/**
 * @file
 * Fig. 11: the second application combination — Img-dnn sweeping
 * with Moses and Sphinx as fixed-load LC apps and Stream as the BE
 * app — plus the paper's summary delta: at high load ARQ reduces
 * E_S versus PARTIES by ~40% on average.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    loadSweepFigure("fig11", apps::imgDnn(), apps::moses(),
                    apps::sphinx(), apps::stream());

    report::heading(std::cout,
                    "High-load E_S delta, ARQ vs PARTIES");
    double delta = 0.0;
    int n = 0;
    for (double load : {0.7, 0.9}) {
        for (double fixed : {0.2, 0.4}) {
            cluster::Node node(
                machine::MachineConfig::xeonE52630v4(),
                {cluster::lcAt(apps::imgDnn(), load),
                 cluster::lcAt(apps::moses(), fixed),
                 cluster::lcAt(apps::sphinx(), fixed),
                 cluster::be(apps::stream())});
            const auto rp = runScenario("PARTIES", node,
                                        standardConfig());
            const auto ra = runScenario("ARQ", node,
                                        standardConfig());
            if (rp.meanES > 1e-9) {
                delta += 1.0 - ra.meanES / rp.meanES;
                ++n;
            }
        }
    }
    std::cout << "mean E_S reduction of ARQ vs PARTIES at high "
                 "load: "
              << num(100.0 * delta / n, 1)
              << "%  (paper: 40.93%)\n";
    return 0;
}

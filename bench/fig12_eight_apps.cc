/**
 * @file
 * Fig. 12: robustness with double the colocation size — six LC apps
 * (Moses, Xapian, Img-dnn, Sphinx, Masstree, Silo at 20% load) and
 * two BE apps (Fluidanimate, Streamcluster) — comparing PARTIES and
 * ARQ per-app tails, BE IPC and E_S.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Fig. 12 — 6 LC + 2 BE colocation at 20% load");

    cluster::Node node(
        machine::MachineConfig::xeonE52630v4(),
        {cluster::lcAt(apps::moses(), 0.2),
         cluster::lcAt(apps::xapian(), 0.2),
         cluster::lcAt(apps::imgDnn(), 0.2),
         cluster::lcAt(apps::sphinx(), 0.2),
         cluster::lcAt(apps::masstree(), 0.2),
         cluster::lcAt(apps::silo(), 0.2),
         cluster::be(apps::fluidanimate()),
         cluster::be(apps::streamcluster())});

    auto csv = openCsv("fig12.csv",
                       {"strategy", "app", "p95_ms", "threshold_ms",
                        "ipc", "ipc_solo"});

    std::vector<cluster::SimulationResult> results;
    const std::vector<std::string> strategies{"PARTIES", "ARQ"};
    for (const auto &s : strategies)
        results.push_back(runScenario(s, node, standardConfig()));

    report::TextTable t({"app", "QoS target",
                         "PARTIES p95/IPC", "ARQ p95/IPC"});
    for (int i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        std::vector<std::string> row{
            p.name, p.latencyCritical ?
                num(p.tailThresholdMs, 2) + " ms" : "-"};
        for (std::size_t s = 0; s < strategies.size(); ++s) {
            const auto &r = results[s];
            if (p.latencyCritical) {
                row.push_back(
                    num(r.meanP95Ms[static_cast<std::size_t>(i)],
                        2) + " ms");
            } else {
                row.push_back(
                    num(r.meanIpc[static_cast<std::size_t>(i)], 2) +
                    " IPC");
            }
            csv->addRow({strategies[s], p.name,
                         num(r.meanP95Ms[
                                 static_cast<std::size_t>(i)], 3),
                         num(p.tailThresholdMs, 3),
                         num(r.meanIpc[
                                 static_cast<std::size_t>(i)], 3),
                         num(p.ipcSolo, 3)});
        }
        t.addRow(row);
    }
    t.print(std::cout);

    report::TextTable e({"strategy", "E_LC", "E_BE", "E_S",
                         "yield"});
    for (std::size_t s = 0; s < strategies.size(); ++s) {
        e.addRow({strategies[s], num(results[s].meanELc),
                  num(results[s].meanEBe), num(results[s].meanES),
                  num(results[s].yieldValue, 2)});
    }
    e.print(std::cout);

    const double red =
        100.0 * (1.0 - results[1].meanES / results[0].meanES);
    std::cout << "ARQ reduces E_S vs PARTIES by " << num(red, 1)
              << "%  (paper: 36.4%, from 0.33 to 0.21)\n";
    return 0;
}

/**
 * @file
 * Fig. 13: fluctuating load. Xapian's load follows the paper's
 * 250-second step trace (10% <-> 90%) while Moses and Img-dnn stay
 * at 20% and Stream runs as the BE app. For LC-first, PARTIES and
 * ARQ the bench reports the entropy timeline, per-strategy QoS
 * violation counts (the paper reports 105 for PARTIES vs 59 for
 * ARQ) and the shared/isolated allocation timeline of PARTIES and
 * ARQ.
 */

#include <iostream>

#include <cmath>
#include <limits>

#include "common.hh"
#include "trace/load_trace.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Fig. 13 — fluctuating Xapian load (250 s)");

    cluster::SimulationConfig cfg = standardConfig();
    cfg.durationSeconds = 250.0;
    cfg.warmupEpochs = 0; // the whole timeline matters here

    auto make_node = [] {
        return cluster::Node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcWith(apps::xapian(),
                             std::shared_ptr<trace::LoadTrace>(
                                 trace::fig13XapianTrace())),
             cluster::lcAt(apps::moses(), 0.2),
             cluster::lcAt(apps::imgDnn(), 0.2),
             cluster::be(apps::stream())});
    };

    auto csv = openCsv("fig13.csv",
                       {"strategy", "time_s", "xapian_load", "e_lc",
                        "e_be", "e_s", "xapian_p95", "be_ipc",
                        "shared_cores", "shared_ways"});

    report::TextTable t({"strategy", "violations (of 1500)",
                         "mean E_LC", "mean E_BE", "mean E_S"});
    std::vector<report::Series> es_series;

    for (const std::string s : {"LC-first", "PARTIES", "ARQ"}) {
        const auto node = make_node();
        const auto res = runScenario(s, node, cfg);

        double sum_lc = 0.0, sum_be = 0.0, sum_s = 0.0;
        report::Series series{s, {}, {}};
        for (const auto &rec : res.epochs) {
            sum_lc += rec.entropy.eLc;
            sum_be += rec.entropy.eBe;
            sum_s += rec.entropy.eS;

            // The shared pool: ARQ's shared region, PARTIES' BE
            // pool, LC-first's single region.
            int shared_cores = 0, shared_ways = 0;
            const auto shared_id = rec.layout.sharedRegion();
            if (shared_id != machine::kNoRegion) {
                shared_cores =
                    rec.layout.region(shared_id).res.cores;
                shared_ways =
                    rec.layout.region(shared_id).res.llcWays;
            }
            csv->addRow({s, num(rec.time, 1),
                         num(rec.obs[0].loadFraction, 2),
                         num(rec.entropy.eLc),
                         num(rec.entropy.eBe),
                         num(rec.entropy.eS),
                         num(rec.obs[0].p95Ms, 3),
                         num(rec.obs[3].ipc, 3),
                         std::to_string(shared_cores),
                         std::to_string(shared_ways)});
            if (static_cast<int>(series.xs.size()) < 250 &&
                std::fmod(rec.time, 1.0) < 0.25) {
                series.xs.push_back(rec.time);
                series.ys.push_back(rec.entropy.eS);
            }
        }
        const double n = static_cast<double>(res.epochs.size());
        t.addRow({s, std::to_string(res.violations),
                  num(sum_lc / n), num(sum_be / n),
                  num(sum_s / n)});
        es_series.push_back(std::move(series));
    }
    t.print(std::cout);
    report::lineChart(std::cout, es_series, 72, 16,
                      "E_S over time (s)");

    // ARQ allocation timeline: shared-region size at key moments.
    report::heading(std::cout,
                    "ARQ shared-region size across load phases");
    const auto node = make_node();
    const auto arq = runScenario("ARQ", node, cfg);
    report::TextTable ta({"time (s)", "Xapian load",
                          "shared cores", "shared ways",
                          "Xapian iso cores", "Xapian iso ways"});
    for (double when : {10.0, 70.0, 110.0, 130.0, 190.0, 240.0}) {
        const auto &rec =
            arq.epochs[static_cast<std::size_t>(when / 0.5)];
        const auto shared_id = rec.layout.sharedRegion();
        const auto iso = rec.layout.isolatedRegionOf(0);
        ta.addRow({num(when, 0), num(rec.obs[0].loadFraction, 1),
                   std::to_string(
                       rec.layout.region(shared_id).res.cores),
                   std::to_string(
                       rec.layout.region(shared_id).res.llcWays),
                   std::to_string(rec.layout.region(iso).res.cores),
                   std::to_string(
                       rec.layout.region(iso).res.llcWays)});
    }
    ta.print(std::cout);

    std::cout << "\nExpected shape (paper): ARQ has materially "
                 "fewer violations than PARTIES (59 vs 105\nover "
                 "500 samples) and smaller E_LC spikes; its shared "
                 "region shrinks in the high-load\nphases and "
                 "recovers afterwards.\n";
    return 0;
}

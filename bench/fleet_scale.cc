/**
 * @file
 * Datacenter-scale fleet anchor: streaming-aggregation Fleet runs at
 * 1k and 10k nodes under the global load generator (nodes/s and
 * epochs/s), a determinism cross-check (pooled E_S bitwise identical
 * at 1/4/16 worker threads), and a 64-node ClusterScheduler round
 * trip. The 10k row is the ROADMAP item-1 shape: keepEpochs=false,
 * so resident memory is O(nodes), verified structurally (no row may
 * retain an epoch vector) and reported as peak RSS. With --json it
 * writes BENCH_fleet_scale.json, committed as the perf baseline for
 * the `ctest -L perf` gate.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstring>
#include <iostream>

#include "common.hh"
#include "cluster/cluster_sched.hh"
#include "exec/thread_pool.hh"
#include "sched/registry.hh"
#include "trace/fleet_load.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

double
secondsOfN(const std::function<void()> &fn, int reps)
{
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** Peak resident set size in MiB (Linux ru_maxrss is KiB). */
double
peakRssMiB()
{
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

cluster::SimulationConfig
fleetConfig()
{
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 10.0; // 20 epochs of 500 ms
    cfg.warmupEpochs = 5;
    cfg.keepEpochs = false;
    return cfg;
}

cluster::Fleet
buildFleet(const trace::FleetLoadGenerator &gen, int nodes)
{
    const auto mc = machine::MachineConfig::xeonE52630v4();
    cluster::Fleet fleet;
    for (int n = 0; n < nodes; ++n) {
        fleet.addNode(
            cluster::Node(mc, cluster::fleetNodeApps(gen, n)),
            sched::makeScheduler("ARQ"));
    }
    return fleet;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv, "fleet_scale");
    BenchJsonWriter json("fleet_scale", args);

    report::heading(std::cout,
                    "Fleet scale: streaming aggregation under the "
                    "global load generator (ARQ, 20 epochs/node)");

    const cluster::SimulationConfig cfg = fleetConfig();
    const double epochs_per_node =
        cfg.durationSeconds / cfg.epochSeconds;

    report::TextTable t({"workload", "wall (ms)", "nodes/s",
                         "epochs/s", "E_S"});

    // ---- determinism: pooled E_S bitwise identical at any ------
    // thread count (the acceptance gate for the streaming path).
    {
        trace::FleetLoadConfig lc;
        lc.numNodes = 256;
        const trace::FleetLoadGenerator gen(lc);
        double ref_es = 0.0;
        bool first = true;
        for (int threads : {1, 4, 16}) {
            exec::ThreadPool pool(threads);
            auto fleet = buildFleet(gen, lc.numNodes);
            const auto r = fleet.run(cfg, &pool);
            if (first) {
                ref_es = r.eS;
                first = false;
            } else if (std::memcmp(&ref_es, &r.eS,
                                   sizeof(double)) != 0) {
                std::cerr << "FAIL: pooled E_S not bitwise "
                             "identical at "
                          << threads << " threads\n";
                return 1;
            }
        }
        std::cout << "determinism: 256-node pooled E_S bitwise "
                     "identical at 1/4/16 threads\n";
    }

    // ---- scale rows: 1k and 10k nodes --------------------------
    for (const int nodes : {1000, 10000}) {
        trace::FleetLoadConfig lc;
        lc.numNodes = nodes;
        lc.numTenants = 1024;
        const trace::FleetLoadGenerator gen(lc);
        double es = 0.0;
        const double s = secondsOfN(
            [&] {
                auto fleet = buildFleet(gen, nodes);
                const auto r = fleet.run(cfg);
                es = r.eS;
                // O(nodes) memory is structural: no slot may
                // retain its per-epoch records.
                for (const auto &res : r.nodes) {
                    if (!res.epochs.empty()) {
                        std::cerr << "FAIL: epochs retained with "
                                     "keepEpochs=false\n";
                        std::exit(1);
                    }
                }
            },
            nodes <= 1000 ? 2 : 1);
        const std::string name =
            "fleet_run_" + std::to_string(nodes / 1000) + "k";
        t.addRow({name, num(s * 1e3), num(nodes / s, 0),
                  num(nodes * epochs_per_node / s, 0), num(es)});
        json.add(name, s * 1e3, nodes / s, "nodes/s",
                 "epochs=20 tenants=1024 ARQ nodes=" +
                     std::to_string(nodes));
        if (nodes / s < 1000.0) {
            std::cout << "WARNING: " << name << " below the 1k "
                      << "nodes/s acceptance floor\n";
        }
    }
    std::cout << "peak RSS after 10k-node run: "
              << num(peakRssMiB(), 1) << " MiB\n";

    // ---- cluster control plane: 64 nodes, 3 rounds -------------
    {
        trace::FleetLoadConfig lc;
        lc.numNodes = 64;
        const trace::FleetLoadGenerator gen(lc);
        const auto mc = machine::MachineConfig::xeonE52630v4();
        double es = 0.0;
        const double s = secondsOfN(
            [&] {
                cluster::ClusterConfig cc;
                cluster::ClusterScheduler cs(cc, "ARQ");
                for (int n = 0; n < lc.numNodes; ++n)
                    cs.addNode(mc, cluster::fleetNodeApps(gen, n));
                es = cs.run(cfg).eS;
            },
            2);
        const double total_epochs =
            3.0 * 20.0 * lc.numNodes; // rounds x epochs x nodes
        t.addRow({"cluster_sched_64", num(s * 1e3),
                  num(lc.numNodes / s, 0), num(total_epochs / s, 0),
                  num(es)});
        json.add("cluster_sched_64", s * 1e3, total_epochs / s,
                 "epochs/s", "rounds=3 epochs=20 ARQ nodes=64");
    }

    t.print(std::cout);
    return 0;
}

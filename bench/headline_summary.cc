/**
 * @file
 * The abstract's headline claims, recomputed over the Fig. 8/9
 * sweeps:
 *  - ARQ's yield gain over PARTIES and CLITE (paper: +25% / +20%);
 *  - ARQ's E_S reduction vs PARTIES and CLITE (paper: -36.4% /
 *    -33.3%);
 *  - ARQ's low-load BE IPC uplift (paper: +63.8% / +37.1%).
 */

#include <chrono>
#include <iostream>

#include "common.hh"
#include "stats/bootstrap.hh"

using namespace ahq;
using namespace ahq::bench;

int
main(int argc, char **argv)
{
    const BenchArgs bench_args =
        parseBenchArgs(argc, argv, "headline_summary");
    BenchJsonWriter json("headline_summary", bench_args);
    const auto wall_start = std::chrono::steady_clock::now();

    report::heading(std::cout,
                    "Headline summary over the Fig. 8/9 sweeps");

    struct Acc
    {
        double yield = 0.0;
        double es = 0.0;
        double low_ipc = 0.0;
        int n = 0;
        int n_low = 0;
        std::vector<double> es_samples;
        std::vector<double> yield_samples;
    };
    Acc parties, clite, arq;

    const std::vector<apps::AppProfile> be_apps{
        apps::fluidanimate(), apps::stream()};

    for (const auto &be_app : be_apps) {
        for (double fixed : {0.2, 0.4}) {
            for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
                const auto node = canonicalNode(load, fixed, fixed,
                                                be_app);
                auto tally = [&](const std::string &name,
                                 Acc &acc) {
                    const auto r = runScenario(name, node,
                                               standardConfig());
                    acc.yield += r.yieldValue;
                    acc.es += r.meanES;
                    acc.es_samples.push_back(r.meanES);
                    acc.yield_samples.push_back(r.yieldValue);
                    ++acc.n;
                    if (load <= 0.5) {
                        acc.low_ipc += r.meanIpc[3];
                        ++acc.n_low;
                    }
                };
                tally("PARTIES", parties);
                tally("CLITE", clite);
                tally("ARQ", arq);
            }
        }
    }

    report::TextTable t({"metric", "PARTIES", "CLITE", "ARQ",
                         "ARQ delta vs PARTIES",
                         "ARQ delta vs CLITE", "paper"});
    const double yp = parties.yield / parties.n;
    const double yc = clite.yield / clite.n;
    const double ya = arq.yield / arq.n;
    t.addRow({"mean yield", num(yp, 3), num(yc, 3), num(ya, 3),
              "+" + num(100.0 * (ya - yp), 1) + "pp",
              "+" + num(100.0 * (ya - yc), 1) + "pp",
              "+25pp / +20pp"});
    const double ep = parties.es / parties.n;
    const double ec = clite.es / clite.n;
    const double ea = arq.es / arq.n;
    t.addRow({"mean E_S", num(ep, 3), num(ec, 3), num(ea, 3),
              "-" + num(100.0 * (1.0 - ea / ep), 1) + "%",
              "-" + num(100.0 * (1.0 - ea / ec), 1) + "%",
              "-36.4% / -33.3%"});
    const double ip = parties.low_ipc / parties.n_low;
    const double ic = clite.low_ipc / clite.n_low;
    const double ia = arq.low_ipc / arq.n_low;
    t.addRow({"low-load BE IPC", num(ip, 2), num(ic, 2),
              num(ia, 2),
              "+" + num(100.0 * (ia / ip - 1.0), 1) + "%",
              "+" + num(100.0 * (ia / ic - 1.0), 1) + "%",
              "+63.8% / +37.1%"});
    t.print(std::cout);

    auto csv = openCsv("headline.csv",
                       {"strategy", "mean_yield", "mean_es",
                        "low_load_be_ipc"});
    csv->addRow({"PARTIES", num(yp), num(ep), num(ip)});
    csv->addRow({"CLITE", num(yc), num(ec), num(ic)});
    csv->addRow({"ARQ", num(ya), num(ea), num(ia)});

    // Bootstrap 95% confidence intervals over the 20 sweep points.
    report::heading(std::cout,
                    "95% bootstrap CIs over the sweep points");
    stats::Rng rng(7);
    auto show_ci = [&](const char *name, const Acc &acc) {
        auto ci_es = stats::bootstrapMeanCi(acc.es_samples, rng);
        auto ci_y = stats::bootstrapMeanCi(acc.yield_samples, rng);
        std::cout << "  " << name << ": E_S " << num(ci_es.estimate)
                  << " [" << num(ci_es.lo) << ", " << num(ci_es.hi)
                  << "], yield " << num(ci_y.estimate, 2) << " ["
                  << num(ci_y.lo, 2) << ", " << num(ci_y.hi, 2)
                  << "]\n";
    };
    show_ci("PARTIES", parties);
    show_ci("CLITE  ", clite);
    show_ci("ARQ    ", arq);

    std::cout << "\nWe reproduce the *direction* of every headline "
                 "claim; magnitudes differ because the\nsubstrate "
                 "is a calibrated simulator, not the authors' "
                 "testbed (see EXPERIMENTS.md).\n";

    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    const int scenarios = parties.n + clite.n + arq.n;
    json.add("headline_summary", wall_s * 1e3,
             scenarios / wall_s, "scenarios/s",
             "scenarios=" + std::to_string(scenarios));
    return 0;
}

/**
 * @file
 * Library micro-benchmarks (google-benchmark): the hot paths a
 * downstream controller would run online — entropy computation,
 * the contention model fixed point, GP fit/acquisition, M/M/c
 * percentiles and full epoch-simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "apps/catalog.hh"
#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "cluster/oracle.hh"
#include "core/entropy.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "fault/plan.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_sink.hh"
#include "perf/queueing.hh"
#include "sched/gp.hh"
#include "sched/registry.hh"
#include "stats/percentile.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq;

void
BM_ComputeEntropy(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<core::LcObservation> lc(n, {2.77, 5.0, 4.22});
    std::vector<core::BeObservation> be(2, {2.63, 1.5});
    for (auto _ : state) {
        auto rep = core::computeEntropy(lc, be);
        benchmark::DoNotOptimize(rep.eS);
    }
}
BENCHMARK(BM_ComputeEntropy)->Arg(3)->Arg(6)->Arg(32);

void
BM_MmcSojournPercentile(benchmark::State &state)
{
    double lambda = 3000.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            perf::mmcSojournPercentile(4.0, lambda, 1200.0, 0.95));
    }
}
BENCHMARK(BM_MmcSojournPercentile);

void
BM_SojournApprox(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            perf::sojournPercentileApprox(4.0, 3000.0, 1200.0,
                                          2.9));
    }
}
BENCHMARK(BM_SojournApprox);

void
BM_ContentionEvaluate(benchmark::State &state)
{
    const auto mc = machine::MachineConfig::xeonE52630v4();
    perf::ContentionModel model(mc);
    auto layout = machine::RegionLayout::arqInitial(
        mc.availableResources(), {0, 1, 2}, {3});
    std::vector<perf::AppDemand> demands{
        apps::xapian().toDemand(0.5), apps::moses().toDemand(0.2),
        apps::imgDnn().toDemand(0.2), apps::stream().toDemand(0.0)};
    for (auto _ : state) {
        auto out = model.evaluate(layout, demands,
                                  perf::CoreSharePolicy::LcPriority);
        benchmark::DoNotOptimize(out[0].serviceRate);
    }
}
BENCHMARK(BM_ContentionEvaluate);

void
BM_GpFitPredict(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    stats::Rng rng(1);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal(0.0, 1.0));
    }
    for (auto _ : state) {
        sched::GaussianProcess gp(0.35, 1.0, 0.01);
        gp.fit(xs, ys);
        benchmark::DoNotOptimize(
            gp.expectedImprovement({0.5, 0.5, 0.5}, 0.0));
    }
}
BENCHMARK(BM_GpFitPredict)->Arg(8)->Arg(24)->Arg(64);

void
BM_P2QuantileAdd(benchmark::State &state)
{
    stats::Rng rng(2);
    stats::P2Quantile q(0.95);
    for (auto _ : state)
        q.add(rng.exponential(1.0));
}
BENCHMARK(BM_P2QuantileAdd);

void
BM_EpochSimulationSecond(benchmark::State &state)
{
    // Cost of one simulated second (two 500 ms epochs) of the
    // canonical colocation under ARQ, measured end to end.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    for (auto _ : state) {
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        auto res = sim.run(*sched);
        benchmark::DoNotOptimize(res.meanES);
    }
}
BENCHMARK(BM_EpochSimulationSecond);

void
BM_EpochSimTracing(benchmark::State &state)
{
    // The obs-layer overhead contract: Arg(0) runs the epoch loop
    // with telemetry disabled (null sink and registry — the default
    // for every production run), Arg(1) with a live in-memory trace
    // sink and metrics registry. Arg(0) must stay within 2% of
    // BM_EpochSimulationSecond; the Arg(1) delta is the real cost
    // of tracing.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    obs::BufferTraceSink sink;
    obs::MetricsRegistry metrics;
    if (state.range(0) == 1) {
        cfg.obs.sink = &sink;
        cfg.obs.metrics = &metrics;
        cfg.obs.scenario = "bench";
    }
    for (auto _ : state) {
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        auto res = sim.run(*sched);
        benchmark::DoNotOptimize(res.meanES);
        sink.clear();
    }
}
BENCHMARK(BM_EpochSimTracing)->Arg(0)->Arg(1);

void
BM_EpochSimProfiling(benchmark::State &state)
{
    // The span-profiler overhead contract: Arg(0) runs the epoch
    // loop with no profiler attached (the default — every
    // obs::Span construction is one null-pointer branch, no clock
    // read), Arg(1) with a live SpanProfiler on every instrumented
    // phase. Arg(0) must stay within 2% of
    // BM_EpochSimulationSecond; the Arg(1) delta is the real cost
    // of span timing (two clock reads + one map update per span).
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    obs::SpanProfiler prof;
    if (state.range(0) == 1)
        cfg.obs.prof = &prof;
    for (auto _ : state) {
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        auto res = sim.run(*sched);
        benchmark::DoNotOptimize(res.meanES);
        prof.clear();
    }
}
BENCHMARK(BM_EpochSimProfiling)->Arg(0)->Arg(1);

void
BM_EpochSimChecking(benchmark::State &state)
{
    // The invariant-audit overhead contract: Arg(0) runs with
    // auditing off (the default — one branch per hook, no layout
    // copies), Arg(1) with the full AHQ_CHECK=log audit of every
    // decision and epoch. Arg(0) must stay within 2% of
    // BM_EpochSimulationSecond; the Arg(1) delta is the real cost
    // of auditing.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    cfg.checkMode = state.range(0) == 1 ? check::Mode::Log
                                        : check::Mode::Off;
    for (auto _ : state) {
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        auto res = sim.run(*sched);
        benchmark::DoNotOptimize(res.meanES);
    }
}
BENCHMARK(BM_EpochSimChecking)->Arg(0)->Arg(1);

void
BM_EpochSimFaults(benchmark::State &state)
{
    // The fault-injection overhead contract: Arg(0) runs with no
    // fault plan attached (the default for every production run),
    // Arg(1) under the builtin chaos plan. Arg(0) must stay within
    // 2% of BM_EpochSimulationSecond; the Arg(1) delta is the real
    // cost of drawing and applying faults every epoch.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    const auto plan = fault::FaultPlan::builtinChaos();
    if (state.range(0) == 1)
        cfg.faults = &plan;
    for (auto _ : state) {
        const auto sched = sched::makeScheduler("ARQ");
        cluster::EpochSimulator sim(node, cfg);
        auto res = sim.run(*sched);
        benchmark::DoNotOptimize(res.meanES);
    }
}
BENCHMARK(BM_EpochSimFaults)->Arg(0)->Arg(1);

void
JobsArgs(benchmark::internal::Benchmark *b)
{
    b->Arg(1)->Arg(2);
    const int hw =
        static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 2)
        b->Arg(hw);
}

void
BM_ScenarioRunnerBatch(benchmark::State &state)
{
    // Eight independent one-second scenarios fanned across the
    // pool — the batch shape every figure bench now uses.
    std::vector<exec::ScenarioJob> jobs;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 1.0;
    cfg.warmupEpochs = 0;
    for (int j = 0; j < 8; ++j) {
        cfg.seed = static_cast<std::uint64_t>(j + 1);
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4(),
            {cluster::lcAt(apps::xapian(), 0.1 * (j + 1)),
             cluster::lcAt(apps::moses(), 0.2),
             cluster::be(apps::stream())});
        jobs.push_back({"ARQ", node, cfg, ""});
    }
    exec::ThreadPool pool(static_cast<int>(state.range(0)));
    exec::ScenarioRunner runner(&pool);
    for (auto _ : state) {
        auto res = runner.run(jobs);
        benchmark::DoNotOptimize(res[0].meanES);
    }
}
BENCHMARK(BM_ScenarioRunnerBatch)
    ->Apply(JobsArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_OracleSearchParallel(benchmark::State &state)
{
    // The oracle-bound workload: exhaustive hybrid search on the
    // canonical colocation, fanned over core splits.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});
    exec::ThreadPool pool(static_cast<int>(state.range(0)));
    cluster::OracleConfig cfg;
    cfg.wayStep = 4;
    cfg.pool = &pool;
    for (auto _ : state) {
        auto res = cluster::bestHybridPartition(node, cfg);
        benchmark::DoNotOptimize(res.report.eS);
    }
}
BENCHMARK(BM_OracleSearchParallel)
    ->Apply(JobsArgs)
    ->Unit(benchmark::kMillisecond);

} // namespace

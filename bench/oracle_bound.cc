/**
 * @file
 * Oracle bound (not a paper figure; quantifies Section IV-A's key
 * insight): for the Stream colocation across Xapian loads, compare
 *
 *   - the best static fully-isolated partition (oracle over the
 *     PARTIES/CLITE family),
 *   - the best static hybrid partition (oracle over the ARQ
 *     family), and
 *   - the live PARTIES and ARQ controllers,
 *
 * all under the same model. The isolated-vs-hybrid oracle gap is
 * the intrinsic value of resource sharing; the controller-vs-oracle
 * gap is convergence loss.
 */

#include <iostream>

#include "cluster/oracle.hh"
#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Oracle bound — isolation vs hybrid optimum "
                    "(Moses/Img-dnn 20% + Stream)");

    cluster::OracleConfig ocfg;
    ocfg.wayStep = 4; // coarse ways keep the search snappy

    report::TextTable t({"xapian load", "iso oracle E_S",
                         "hybrid oracle E_S", "PARTIES live",
                         "ARQ live", "sharing value",
                         "ARQ gap to oracle"});
    auto csv = openCsv("oracle_bound.csv",
                       {"xapian_load", "iso_oracle_es",
                        "hybrid_oracle_es", "parties_es",
                        "arq_es"});

    for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const auto node = canonicalNode(load, 0.2, 0.2,
                                        apps::stream());
        const auto iso = cluster::bestIsolatedPartition(node, ocfg);
        const auto hyb = cluster::bestHybridPartition(node, ocfg);
        const auto rp = runScenario("PARTIES", node,
                                    standardConfig());
        const auto ra = runScenario("ARQ", node, standardConfig());

        t.addRow({num(load * 100, 0) + "%", num(iso.report.eS),
                  num(hyb.report.eS), num(rp.meanES),
                  num(ra.meanES),
                  num(iso.report.eS - hyb.report.eS),
                  num(ra.meanES - hyb.report.eS)});
        csv->addRow({num(load, 2), num(iso.report.eS),
                     num(hyb.report.eS), num(rp.meanES),
                     num(ra.meanES)});
    }
    t.print(std::cout);

    std::cout << "\nReading: 'sharing value' > 0 is the paper's key "
                 "insight in numbers — the best\nhybrid layout "
                 "strictly beats the best possible isolation; the "
                 "ARQ gap shows how\nclose the one-unit-per-epoch "
                 "feedback loop gets to its family's optimum.\n";
    return 0;
}

/**
 * @file
 * Parallel-scaling tracker (not a paper figure): times the two
 * engine-bound workloads — a ScenarioRunner batch and the hybrid
 * oracle search — at 1/2/4/8 threads, checks that every parallel
 * result is identical to the serial one, and writes
 * bench_out/parallel_scaling.csv so future PRs can track the
 * speedup trajectory as the engine evolves.
 */

#include <chrono>
#include <iostream>
#include <thread>

#include "cluster/oracle.hh"
#include "common.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

double
secondsOf(const std::function<void()> &fn)
{
    // Best of three keeps scheduler jitter out of the trajectory.
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

std::vector<exec::ScenarioJob>
scenarioBatch()
{
    std::vector<exec::ScenarioJob> jobs;
    std::uint64_t seed = 1;
    cluster::SimulationConfig cfg = standardConfig();
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 20;
    for (const auto &s : allStrategies()) {
        for (double load : {0.3, 0.6, 0.9}) {
            cfg.seed = seed++;
            jobs.push_back({s,
                            canonicalNode(load, 0.2, 0.2,
                                          apps::stream()),
                            cfg, ""});
        }
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs bench_args =
        parseBenchArgs(argc, argv, "parallel_scaling");
    BenchJsonWriter json("parallel_scaling", bench_args);

    report::heading(std::cout,
                    "Parallel scaling — ScenarioRunner batch and "
                    "oracle search vs thread count");

    const auto jobs = scenarioBatch();
    const auto node = canonicalNode(0.5, 0.2, 0.2, apps::stream());
    cluster::OracleConfig ocfg;
    ocfg.wayStep = 4;

    // Serial reference results for the determinism check.
    exec::ThreadPool ref_pool(1);
    ocfg.pool = &ref_pool;
    const auto ref_batch = exec::ScenarioRunner(&ref_pool).run(jobs);
    const auto ref_oracle = cluster::bestHybridPartition(node, ocfg);

    const unsigned hw = std::thread::hardware_concurrency();
    report::TextTable t({"threads", "batch (s)", "batch speedup",
                         "oracle (s)", "oracle speedup",
                         "identical"});
    auto csv = openCsv("parallel_scaling.csv",
                       {"threads", "hardware_threads",
                        "scenario_batch_s", "scenario_speedup",
                        "oracle_search_s", "oracle_speedup",
                        "bitwise_identical"});

    double batch_t1 = 0.0;
    double oracle_t1 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        exec::ThreadPool pool(threads);
        exec::ScenarioRunner runner(&pool);
        cluster::OracleConfig cfg = ocfg;
        cfg.pool = &pool;

        std::vector<cluster::SimulationResult> batch_res;
        const double batch_s =
            secondsOf([&] { batch_res = runner.run(jobs); });
        cluster::OracleResult oracle_res;
        const double oracle_s = secondsOf([&] {
            oracle_res = cluster::bestHybridPartition(node, cfg);
        });

        bool identical =
            oracle_res.evaluated == ref_oracle.evaluated &&
            oracle_res.report.eS == ref_oracle.report.eS &&
            oracle_res.layout.toString() ==
                ref_oracle.layout.toString() &&
            batch_res.size() == ref_batch.size();
        for (std::size_t i = 0;
             identical && i < batch_res.size(); ++i) {
            identical = batch_res[i].meanES == ref_batch[i].meanES &&
                        batch_res[i].violations ==
                            ref_batch[i].violations;
        }

        if (threads == 1) {
            batch_t1 = batch_s;
            oracle_t1 = oracle_s;
        }
        const double batch_sp = batch_t1 / batch_s;
        const double oracle_sp = oracle_t1 / oracle_s;
        t.addRow({std::to_string(threads), num(batch_s, 3),
                  num(batch_sp, 2), num(oracle_s, 3),
                  num(oracle_sp, 2), identical ? "yes" : "NO"});
        csv->addRow({std::to_string(threads), std::to_string(hw),
                     num(batch_s, 4), num(batch_sp, 3),
                     num(oracle_s, 4), num(oracle_sp, 3),
                     identical ? "1" : "0"});
        const std::string cfg_tag = "threads=" +
            std::to_string(threads) + " hw=" + std::to_string(hw);
        json.add("batch@" + std::to_string(threads) + "t",
                 batch_s * 1e3,
                 static_cast<double>(jobs.size()) / batch_s,
                 "scenarios/s", cfg_tag);
        json.add("oracle@" + std::to_string(threads) + "t",
                 oracle_s * 1e3, 1.0 / oracle_s, "searches/s",
                 cfg_tag);
        if (!identical) {
            std::cerr << "determinism violation at " << threads
                      << " threads\n";
            return 1;
        }
    }
    t.print(std::cout);

    std::cout << "\nReading: speedups are relative to 1 thread on "
                 "this machine ("
              << hw
              << " hardware threads); oversubscribed rows above "
                 "the hardware count are expected to flatten. "
                 "'identical' asserts the bitwise serial==parallel "
                 "determinism contract.\n";
    return 0;
}

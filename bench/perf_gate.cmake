# The `ctest -L perf` regression gate, run via `cmake -P`.
#
# Runs the anchor benchmark with --json and diffs the fresh numbers
# against the committed baseline with tools/bench_diff (default 10%
# threshold). Timing on a loaded machine can transiently dip far
# beyond any sane threshold, so a flagged diff is retried with a
# fresh benchmark run up to 3 attempts — a real regression is
# deterministic and fails all three, transient load noise is not and
# passes a later attempt.
#
# Required -D variables: BENCH (epoch_throughput binary), DIFF
# (bench_diff binary), BASELINE (committed BENCH_*.json), JSON
# (scratch output path). Optional: THRESHOLD (regression fraction
# handed to bench_diff; defaults to bench_diff's own 10% when empty).

foreach(var BENCH DIFF BASELINE JSON)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "perf_gate.cmake: -D${var}= is required")
    endif()
endforeach()
set(threshold_args "")
if(DEFINED THRESHOLD AND NOT THRESHOLD STREQUAL "")
    set(threshold_args "--threshold=${THRESHOLD}")
endif()

set(attempts 3)
foreach(attempt RANGE 1 ${attempts})
    execute_process(COMMAND ${BENCH} --json=${JSON}
        RESULT_VARIABLE bench_rc OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR
            "perf gate: ${BENCH} failed (exit ${bench_rc})")
    endif()
    execute_process(
        COMMAND ${DIFF} ${threshold_args} --baseline ${BASELINE}
            ${JSON}
        RESULT_VARIABLE diff_rc OUTPUT_VARIABLE diff_out)
    message("${diff_out}")
    if(diff_rc EQUAL 0)
        return()
    endif()
    if(diff_rc EQUAL 2)
        message(FATAL_ERROR "perf gate: bench_diff usage error")
    endif()
    if(attempt LESS attempts)
        message(STATUS "perf gate: attempt ${attempt}/${attempts} "
            "flagged a regression; re-measuring")
    endif()
endforeach()
message(FATAL_ERROR "perf gate: regression vs ${BASELINE} "
    "persisted across ${attempts} attempts")

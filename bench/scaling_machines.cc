/**
 * @file
 * Machine scaling (not a paper figure): the Fig. 12 eight-app
 * colocation on the paper's 10-core Broadwell part versus a 20-core
 * Xeon Gold class part with a shallower (11-way) CAT — checking
 * that the strategy ordering is a property of the approach, not of
 * one machine shape.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Machine scaling — 6 LC + 2 BE on two parts");

    auto csv = openCsv("scaling_machines.csv",
                       {"machine", "strategy", "e_lc", "e_be", "e_s",
                        "yield"});
    report::TextTable t({"machine", "strategy", "E_LC", "E_BE",
                         "E_S", "yield"});

    const std::pair<const char *, machine::MachineConfig>
        machines[] = {
            {"E5-2630v4 (10c/20w)",
             machine::MachineConfig::xeonE52630v4()},
            {"Gold 6248 (20c/11w)",
             machine::MachineConfig::xeonGold6248()},
        };

    for (const auto &[label, mc] : machines) {
        cluster::Node node(
            mc, {cluster::lcAt(apps::moses(), 0.2),
                 cluster::lcAt(apps::xapian(), 0.2),
                 cluster::lcAt(apps::imgDnn(), 0.2),
                 cluster::lcAt(apps::sphinx(), 0.2),
                 cluster::lcAt(apps::masstree(), 0.2),
                 cluster::lcAt(apps::silo(), 0.2),
                 cluster::be(apps::fluidanimate()),
                 cluster::be(apps::streamcluster())});
        for (const auto &s : {"Unmanaged", "PARTIES", "ARQ"}) {
            const auto r = runScenario(s, node, standardConfig());
            t.addRow({label, s, num(r.meanELc), num(r.meanEBe),
                      num(r.meanES), num(r.yieldValue, 2)});
            csv->addRow({label, s, num(r.meanELc), num(r.meanEBe),
                         num(r.meanES), num(r.yieldValue, 3)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading: the bigger part relaxes everything, "
                 "but the ordering (ARQ lowest E_S)\nsurvives the "
                 "change of machine shape — including the much "
                 "shallower 11-way CAT.\n";
    return 0;
}

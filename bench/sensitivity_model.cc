/**
 * @file
 * Model sensitivity (not a paper figure): the paper's qualitative
 * conclusions should not hinge on our substrate's tunables. This
 * bench sweeps the most influential modelling constants — the
 * shared-core service penalty, the bandwidth contention curvature,
 * the measurement-noise level and the repartition overhead — and
 * checks that the headline ordering (ARQ <= PARTIES on E_S, and ARQ
 * >= PARTIES on BE IPC) holds at every point.
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

struct Outcome
{
    double arq_es;
    double parties_es;
    double arq_ipc;
    double parties_ipc;
};

Outcome
runPair(const cluster::SimulationConfig &cfg)
{
    const auto node = canonicalNode(0.7, 0.2, 0.2, apps::stream());
    const auto ra = runScenario("ARQ", node, cfg);
    const auto rp = runScenario("PARTIES", node, cfg);
    return {ra.meanES, rp.meanES, ra.meanIpc[3], rp.meanIpc[3]};
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Model sensitivity — does ARQ <= PARTIES "
                    "survive the tunables? (Xapian 70% + Stream)");

    report::TextTable t({"knob", "value", "ARQ E_S", "PARTIES E_S",
                         "ARQ wins E_S", "ARQ BE IPC",
                         "PARTIES BE IPC"});
    auto csv = openCsv("sensitivity.csv",
                       {"knob", "value", "arq_es", "parties_es",
                        "arq_ipc", "parties_ipc"});
    int violations_of_ordering = 0;

    auto record = [&](const std::string &knob,
                      const std::string &value, const Outcome &o) {
        const bool wins = o.arq_es <= o.parties_es + 0.02;
        if (!wins)
            ++violations_of_ordering;
        t.addRow({knob, value, num(o.arq_es), num(o.parties_es),
                  wins ? "yes" : "NO", num(o.arq_ipc, 2),
                  num(o.parties_ipc, 2)});
        csv->addRow({knob, value, num(o.arq_es),
                     num(o.parties_es), num(o.arq_ipc),
                     num(o.parties_ipc)});
    };

    // Shared-core pollution penalty.
    for (double penalty : {1.0, 1.1, 1.15, 1.25, 1.4}) {
        auto cfg = standardConfig();
        cfg.contention.sharedServicePenalty = penalty;
        record("shared penalty", num(penalty, 2), runPair(cfg));
    }

    // Bandwidth contention curvature.
    for (double k : {0.2, 0.8, 2.0}) {
        auto cfg = standardConfig();
        cfg.contention.bandwidth.contentionK = k;
        record("bw curvature k", num(k, 1), runPair(cfg));
    }

    // Measurement noise.
    for (double sigma : {0.0, 0.05, 0.10, 0.20}) {
        auto cfg = standardConfig();
        cfg.noiseSigma = sigma;
        record("noise sigma", num(sigma, 2), runPair(cfg));
    }

    // Repartition overhead scale.
    for (double scale : {0.0, 1.0, 2.0}) {
        auto cfg = standardConfig();
        cfg.overheadEnabled = scale > 0.0;
        cfg.overheadWaysFactor *= scale;
        cfg.overheadCoresFactor *= scale;
        record("overhead x", num(scale, 1), runPair(cfg));
    }

    t.print(std::cout);
    std::cout << "\nOrdering violations: " << violations_of_ordering
              << " of " << t.numRows()
              << " sweep points (expected: 0).\n";
    return violations_of_ordering == 0 ? 0 : 1;
}

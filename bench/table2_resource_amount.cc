/**
 * @file
 * Table II: LC, BE and system entropy under the Unmanaged strategy
 * with 6, 7 and 8 available cores (Xapian/Moses/Img-dnn at 20% load
 * plus Fluidanimate; all 20 LLC ways).
 */

#include <iostream>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Table II — entropy vs available cores "
                    "(Unmanaged)");

    const std::vector<std::string> names{"xapian", "moses",
                                         "img-dnn"};

    report::TextTable t({"cores", "app", "TL_i0", "TL_i1", "M_i",
                         "A_i", "R_i", "ReT_i", "Q_i", "E_LC",
                         "E_BE", "E_S"});
    auto csv = openCsv("table2.csv",
                       {"cores", "app", "tl0", "tl1", "m", "a", "r",
                        "ret", "q", "e_lc", "e_be", "e_s"});

    for (int cores : {6, 7, 8}) {
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(cores, 20, 10);
        const auto node = canonicalNode(0.2, 0.2, 0.2,
                                        apps::fluidanimate(), mc);
        const auto res = runScenario("Unmanaged", node,
                                     standardConfig());

        // Recompute the per-app breakdown from steady-state means.
        std::vector<core::LcObservation> lc;
        for (int i = 0; i < 3; ++i) {
            lc.push_back({node.profile(i).soloTailP95Ms(0.2),
                          res.meanP95Ms[static_cast<std::size_t>(i)],
                          node.profile(i).tailThresholdMs});
        }
        std::vector<core::BeObservation> be{
            {node.profile(3).ipcSolo, res.meanIpc[3]}};
        const auto rep = core::computeEntropy(lc, be);

        for (int i = 0; i < 3; ++i) {
            const auto &b =
                rep.lcDetail[static_cast<std::size_t>(i)];
            t.addRow({std::to_string(cores), names[
                          static_cast<std::size_t>(i)],
                      num(lc[static_cast<std::size_t>(i)]
                              .idealTailMs, 2),
                      num(lc[static_cast<std::size_t>(i)]
                              .actualTailMs, 2),
                      num(lc[static_cast<std::size_t>(i)]
                              .thresholdMs, 2),
                      num(b.tolerance, 2), num(b.interference, 2),
                      num(b.remainingTolerance, 2),
                      num(b.intolerable, 2), "-", "-", "-"});
            csv->addRow({std::to_string(cores),
                         names[static_cast<std::size_t>(i)],
                         num(lc[static_cast<std::size_t>(i)]
                                 .idealTailMs, 3),
                         num(lc[static_cast<std::size_t>(i)]
                                 .actualTailMs, 3),
                         num(lc[static_cast<std::size_t>(i)]
                                 .thresholdMs, 3),
                         num(b.tolerance), num(b.interference),
                         num(b.remainingTolerance),
                         num(b.intolerable), "", "", ""});
        }
        t.addRow({std::to_string(cores), "System", "-", "-", "-",
                  num(rep.meanTolerance, 2),
                  num(rep.meanInterference, 2),
                  num(rep.meanRemainingTolerance, 2), "-",
                  num(rep.eLc, 2), num(rep.eBe, 2),
                  num(rep.eS, 2)});
        csv->addRow({std::to_string(cores), "system", "", "", "",
                     num(rep.meanTolerance),
                     num(rep.meanInterference),
                     num(rep.meanRemainingTolerance), "",
                     num(rep.eLc), num(rep.eBe), num(rep.eS)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): E_LC falls from ~0.64 "
                 "at 6 cores to ~0 at 8 cores;\nE_S follows "
                 "(0.55 -> 0.19 -> ~0 in the paper's testbed).\n";
    return 0;
}

/**
 * @file
 * Table IV: tail latency threshold and max load of each LC
 * application. The bench re-derives the max load from the queueing
 * model (the arrival rate at which the solo p95 reaches the
 * threshold) and compares it with the published value — a round-trip
 * check of the calibration.
 */

#include <iostream>

#include <cmath>
#include <limits>

#include "common.hh"

using namespace ahq;
using namespace ahq::bench;

namespace
{

/** Find the load fraction where solo p95 crosses the threshold. */
double
derivedMaxLoadQps(const apps::AppProfile &p)
{
    double lo = 0.0, hi = 2.0; // load fraction
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double t = p.soloTailP95Ms(mid);
        if (std::isfinite(t) && t <= p.tailThresholdMs)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi) * p.maxLoadQps;
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Table IV — LC application parameters");
    report::TextTable t({"app", "threshold (ms)", "paper max load",
                         "model max load", "ratio"});
    auto csv = openCsv("table4.csv",
                       {"app", "threshold_ms", "paper_max_qps",
                        "model_max_qps"});

    for (const char *name : {"xapian", "moses", "img-dnn",
                             "masstree", "sphinx", "silo"}) {
        const auto p = apps::byName(name);
        const double derived = derivedMaxLoadQps(p);
        t.addRow({p.name, num(p.tailThresholdMs, 2),
                  num(p.maxLoadQps, 1), num(derived, 1),
                  num(derived / p.maxLoadQps, 3)});
        csv->addRow({p.name, num(p.tailThresholdMs, 2),
                     num(p.maxLoadQps, 1), num(derived, 1)});
    }
    t.print(std::cout);
    std::cout << "\nExpected: ratio ~1.000 for every app — the "
                 "calibration solver anchors the knee\nexactly at "
                 "the published (threshold, max load) pair.\n";
    return 0;
}

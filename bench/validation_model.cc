/**
 * @file
 * Model validation (not a paper figure): cross-checks the analytic
 * contention + queueing path the benches rely on against the
 * independent request-level discrete-event simulator, on ARQ-style
 * layouts (isolated servers + prioritised shared pool). If the
 * analytic shortcuts were wrong, every figure built on them would
 * inherit the error — this bench quantifies the gap.
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "perf/queueing.hh"
#include "sim/multiclass_sim.hh"
#include "stats/percentile.hh"
#include "stats/rng.hh"

using namespace ahq;
using namespace ahq::bench;

int
main()
{
    report::heading(std::cout,
                    "Analytic M/M/c path vs request-level DES");

    report::TextTable t({"scenario", "analytic p95 (ms)",
                         "DES p95 (ms)", "ratio"});
    auto csv = openCsv("validation_model.csv",
                       {"scenario", "analytic_ms", "des_ms"});

    struct Case
    {
        const char *name;
        int iso;        // isolated servers for class 0
        int shared;     // shared pool size
        double lambda;  // arrivals/s
        double mu;      // per-server rate /s
        double be_rate; // BE chunk rate (0 = no BE)
        int threads;
    };
    const Case cases[] = {
        {"pool-only, light", 0, 4, 1000.0, 1000.0, 0.0, 4},
        {"pool-only, heavy", 0, 4, 3200.0, 1000.0, 0.0, 4},
        {"pool + saturating BE", 0, 4, 2000.0, 1000.0, 10.0, 4},
        {"iso 2 + shared 2", 2, 2, 2000.0, 1000.0, 10.0, 4},
        {"concurrency-capped", 0, 8, 600.0, 1000.0, 0.0, 2},
    };

    for (const auto &c : cases) {
        // Analytic: M/M/kappa with kappa = min(threads, iso+shared).
        const double kappa =
            std::min<double>(c.threads, c.iso + c.shared);
        const double analytic = 1000.0 *
            perf::mmcSojournPercentile(kappa, c.lambda, c.mu, 0.95);

        // DES measurement.
        sim::LcClassSpec spec;
        spec.arrivalRate = c.lambda;
        spec.serviceRate = c.mu;
        spec.isolatedServers = c.iso;
        spec.maxConcurrency = c.threads;
        sim::MultiClassSimulator des({spec}, c.shared, c.be_rate);
        stats::Rng rng(2023);
        const auto res = des.run(400.0, rng, 20.0);
        const double measured = 1000.0 *
            stats::exactPercentile(res.lcSojournTimes[0], 95.0);

        t.addRow({c.name, num(analytic, 3), num(measured, 3),
                  num(measured / analytic, 3)});
        csv->addRow({c.name, num(analytic, 4), num(measured, 4)});
    }
    t.print(std::cout);

    std::cout << "\nReading: ratios near 1.0 confirm the analytic "
                 "epoch path; preemptive-priority BE\nwork leaves "
                 "LC latency unchanged (the LcPriority model's core "
                 "assumption).\n";
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/ablation_arq.dir/ablation_arq.cc.o"
  "CMakeFiles/ablation_arq.dir/ablation_arq.cc.o.d"
  "ablation_arq"
  "ablation_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_arq.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ahq_bench_common.dir/common.cc.o"
  "CMakeFiles/ahq_bench_common.dir/common.cc.o.d"
  "libahq_bench_common.a"
  "libahq_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

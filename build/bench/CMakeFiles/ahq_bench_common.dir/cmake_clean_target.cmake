file(REMOVE_RECURSE
  "libahq_bench_common.a"
)

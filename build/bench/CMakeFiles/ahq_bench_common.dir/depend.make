# Empty dependencies file for ahq_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_two_strategies.dir/fig01_two_strategies.cc.o"
  "CMakeFiles/fig01_two_strategies.dir/fig01_two_strategies.cc.o.d"
  "fig01_two_strategies"
  "fig01_two_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_two_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

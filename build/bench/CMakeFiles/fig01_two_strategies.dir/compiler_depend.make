# Empty compiler generated dependencies file for fig01_two_strategies.
# This may be replaced when dependencies are built.

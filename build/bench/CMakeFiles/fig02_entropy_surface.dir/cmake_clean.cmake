file(REMOVE_RECURSE
  "CMakeFiles/fig02_entropy_surface.dir/fig02_entropy_surface.cc.o"
  "CMakeFiles/fig02_entropy_surface.dir/fig02_entropy_surface.cc.o.d"
  "fig02_entropy_surface"
  "fig02_entropy_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_entropy_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

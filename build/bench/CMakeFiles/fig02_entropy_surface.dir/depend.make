# Empty dependencies file for fig02_entropy_surface.
# This may be replaced when dependencies are built.

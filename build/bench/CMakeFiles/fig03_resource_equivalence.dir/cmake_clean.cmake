file(REMOVE_RECURSE
  "CMakeFiles/fig03_resource_equivalence.dir/fig03_resource_equivalence.cc.o"
  "CMakeFiles/fig03_resource_equivalence.dir/fig03_resource_equivalence.cc.o.d"
  "fig03_resource_equivalence"
  "fig03_resource_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_resource_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

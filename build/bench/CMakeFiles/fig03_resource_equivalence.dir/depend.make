# Empty dependencies file for fig03_resource_equivalence.
# This may be replaced when dependencies are built.

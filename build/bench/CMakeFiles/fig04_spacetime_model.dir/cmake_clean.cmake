file(REMOVE_RECURSE
  "CMakeFiles/fig04_spacetime_model.dir/fig04_spacetime_model.cc.o"
  "CMakeFiles/fig04_spacetime_model.dir/fig04_spacetime_model.cc.o.d"
  "fig04_spacetime_model"
  "fig04_spacetime_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_spacetime_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

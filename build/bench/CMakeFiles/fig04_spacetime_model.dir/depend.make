# Empty dependencies file for fig04_spacetime_model.
# This may be replaced when dependencies are built.

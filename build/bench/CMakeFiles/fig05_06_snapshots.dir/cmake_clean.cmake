file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_snapshots.dir/fig05_06_snapshots.cc.o"
  "CMakeFiles/fig05_06_snapshots.dir/fig05_06_snapshots.cc.o.d"
  "fig05_06_snapshots"
  "fig05_06_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig07_latency_load.dir/fig07_latency_load.cc.o"
  "CMakeFiles/fig07_latency_load.dir/fig07_latency_load.cc.o.d"
  "fig07_latency_load"
  "fig07_latency_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

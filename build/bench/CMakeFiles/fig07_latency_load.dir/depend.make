# Empty dependencies file for fig07_latency_load.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_colocate_fluidanimate.dir/fig08_colocate_fluidanimate.cc.o"
  "CMakeFiles/fig08_colocate_fluidanimate.dir/fig08_colocate_fluidanimate.cc.o.d"
  "fig08_colocate_fluidanimate"
  "fig08_colocate_fluidanimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_colocate_fluidanimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

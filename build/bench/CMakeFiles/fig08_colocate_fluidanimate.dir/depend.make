# Empty dependencies file for fig08_colocate_fluidanimate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_colocate_stream.dir/fig09_colocate_stream.cc.o"
  "CMakeFiles/fig09_colocate_stream.dir/fig09_colocate_stream.cc.o.d"
  "fig09_colocate_stream"
  "fig09_colocate_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_colocate_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig09_colocate_stream.
# This may be replaced when dependencies are built.

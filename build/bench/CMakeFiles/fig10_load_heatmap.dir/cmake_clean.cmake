file(REMOVE_RECURSE
  "CMakeFiles/fig10_load_heatmap.dir/fig10_load_heatmap.cc.o"
  "CMakeFiles/fig10_load_heatmap.dir/fig10_load_heatmap.cc.o.d"
  "fig10_load_heatmap"
  "fig10_load_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

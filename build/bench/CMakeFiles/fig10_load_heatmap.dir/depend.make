# Empty dependencies file for fig10_load_heatmap.
# This may be replaced when dependencies are built.

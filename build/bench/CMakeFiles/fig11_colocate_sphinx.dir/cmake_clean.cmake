file(REMOVE_RECURSE
  "CMakeFiles/fig11_colocate_sphinx.dir/fig11_colocate_sphinx.cc.o"
  "CMakeFiles/fig11_colocate_sphinx.dir/fig11_colocate_sphinx.cc.o.d"
  "fig11_colocate_sphinx"
  "fig11_colocate_sphinx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_colocate_sphinx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

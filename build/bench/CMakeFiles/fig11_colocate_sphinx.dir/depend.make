# Empty dependencies file for fig11_colocate_sphinx.
# This may be replaced when dependencies are built.

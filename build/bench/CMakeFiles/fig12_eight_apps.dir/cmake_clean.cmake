file(REMOVE_RECURSE
  "CMakeFiles/fig12_eight_apps.dir/fig12_eight_apps.cc.o"
  "CMakeFiles/fig12_eight_apps.dir/fig12_eight_apps.cc.o.d"
  "fig12_eight_apps"
  "fig12_eight_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_eight_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_eight_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13_fluctuating_load.dir/fig13_fluctuating_load.cc.o"
  "CMakeFiles/fig13_fluctuating_load.dir/fig13_fluctuating_load.cc.o.d"
  "fig13_fluctuating_load"
  "fig13_fluctuating_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fluctuating_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

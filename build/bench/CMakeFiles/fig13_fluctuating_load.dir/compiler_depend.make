# Empty compiler generated dependencies file for fig13_fluctuating_load.
# This may be replaced when dependencies are built.

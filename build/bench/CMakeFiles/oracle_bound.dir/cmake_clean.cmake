file(REMOVE_RECURSE
  "CMakeFiles/oracle_bound.dir/oracle_bound.cc.o"
  "CMakeFiles/oracle_bound.dir/oracle_bound.cc.o.d"
  "oracle_bound"
  "oracle_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for oracle_bound.
# This may be replaced when dependencies are built.

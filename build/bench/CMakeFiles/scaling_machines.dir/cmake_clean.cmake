file(REMOVE_RECURSE
  "CMakeFiles/scaling_machines.dir/scaling_machines.cc.o"
  "CMakeFiles/scaling_machines.dir/scaling_machines.cc.o.d"
  "scaling_machines"
  "scaling_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scaling_machines.
# This may be replaced when dependencies are built.

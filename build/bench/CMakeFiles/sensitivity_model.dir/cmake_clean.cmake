file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_model.dir/sensitivity_model.cc.o"
  "CMakeFiles/sensitivity_model.dir/sensitivity_model.cc.o.d"
  "sensitivity_model"
  "sensitivity_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sensitivity_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_resource_amount.dir/table2_resource_amount.cc.o"
  "CMakeFiles/table2_resource_amount.dir/table2_resource_amount.cc.o.d"
  "table2_resource_amount"
  "table2_resource_amount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_resource_amount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

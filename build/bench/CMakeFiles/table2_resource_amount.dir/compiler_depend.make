# Empty compiler generated dependencies file for table2_resource_amount.
# This may be replaced when dependencies are built.

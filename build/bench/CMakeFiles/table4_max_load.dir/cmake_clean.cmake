file(REMOVE_RECURSE
  "CMakeFiles/table4_max_load.dir/table4_max_load.cc.o"
  "CMakeFiles/table4_max_load.dir/table4_max_load.cc.o.d"
  "table4_max_load"
  "table4_max_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_max_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table4_max_load.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/colocation_advisor.dir/colocation_advisor.cpp.o"
  "CMakeFiles/colocation_advisor.dir/colocation_advisor.cpp.o.d"
  "colocation_advisor"
  "colocation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for colocation_advisor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/entropy_monitor.dir/entropy_monitor.cpp.o"
  "CMakeFiles/entropy_monitor.dir/entropy_monitor.cpp.o.d"
  "entropy_monitor"
  "entropy_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for entropy_monitor.
# This may be replaced when dependencies are built.

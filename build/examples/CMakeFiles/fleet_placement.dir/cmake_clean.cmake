file(REMOVE_RECURSE
  "CMakeFiles/fleet_placement.dir/fleet_placement.cpp.o"
  "CMakeFiles/fleet_placement.dir/fleet_placement.cpp.o.d"
  "fleet_placement"
  "fleet_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fleet_placement.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/builder.cc" "src/apps/CMakeFiles/ahq_apps.dir/builder.cc.o" "gcc" "src/apps/CMakeFiles/ahq_apps.dir/builder.cc.o.d"
  "/root/repo/src/apps/catalog.cc" "src/apps/CMakeFiles/ahq_apps.dir/catalog.cc.o" "gcc" "src/apps/CMakeFiles/ahq_apps.dir/catalog.cc.o.d"
  "/root/repo/src/apps/profile.cc" "src/apps/CMakeFiles/ahq_apps.dir/profile.cc.o" "gcc" "src/apps/CMakeFiles/ahq_apps.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/ahq_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ahq_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

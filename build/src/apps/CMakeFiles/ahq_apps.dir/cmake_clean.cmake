file(REMOVE_RECURSE
  "CMakeFiles/ahq_apps.dir/builder.cc.o"
  "CMakeFiles/ahq_apps.dir/builder.cc.o.d"
  "CMakeFiles/ahq_apps.dir/catalog.cc.o"
  "CMakeFiles/ahq_apps.dir/catalog.cc.o.d"
  "CMakeFiles/ahq_apps.dir/profile.cc.o"
  "CMakeFiles/ahq_apps.dir/profile.cc.o.d"
  "libahq_apps.a"
  "libahq_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

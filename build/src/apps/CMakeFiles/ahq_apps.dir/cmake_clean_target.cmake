file(REMOVE_RECURSE
  "libahq_apps.a"
)

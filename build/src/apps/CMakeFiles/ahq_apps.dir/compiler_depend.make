# Empty compiler generated dependencies file for ahq_apps.
# This may be replaced when dependencies are built.

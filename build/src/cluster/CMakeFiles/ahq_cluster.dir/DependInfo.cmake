
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/epoch_sim.cc" "src/cluster/CMakeFiles/ahq_cluster.dir/epoch_sim.cc.o" "gcc" "src/cluster/CMakeFiles/ahq_cluster.dir/epoch_sim.cc.o.d"
  "/root/repo/src/cluster/fleet.cc" "src/cluster/CMakeFiles/ahq_cluster.dir/fleet.cc.o" "gcc" "src/cluster/CMakeFiles/ahq_cluster.dir/fleet.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/ahq_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/ahq_cluster.dir/node.cc.o.d"
  "/root/repo/src/cluster/oracle.cc" "src/cluster/CMakeFiles/ahq_cluster.dir/oracle.cc.o" "gcc" "src/cluster/CMakeFiles/ahq_cluster.dir/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ahq_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ahq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ahq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ahq_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ahq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ahq_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

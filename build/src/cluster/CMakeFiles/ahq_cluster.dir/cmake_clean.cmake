file(REMOVE_RECURSE
  "CMakeFiles/ahq_cluster.dir/epoch_sim.cc.o"
  "CMakeFiles/ahq_cluster.dir/epoch_sim.cc.o.d"
  "CMakeFiles/ahq_cluster.dir/fleet.cc.o"
  "CMakeFiles/ahq_cluster.dir/fleet.cc.o.d"
  "CMakeFiles/ahq_cluster.dir/node.cc.o"
  "CMakeFiles/ahq_cluster.dir/node.cc.o.d"
  "CMakeFiles/ahq_cluster.dir/oracle.cc.o"
  "CMakeFiles/ahq_cluster.dir/oracle.cc.o.d"
  "libahq_cluster.a"
  "libahq_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libahq_cluster.a"
)

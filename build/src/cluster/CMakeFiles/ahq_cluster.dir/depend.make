# Empty dependencies file for ahq_cluster.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dual.cc" "src/core/CMakeFiles/ahq_core.dir/dual.cc.o" "gcc" "src/core/CMakeFiles/ahq_core.dir/dual.cc.o.d"
  "/root/repo/src/core/entropy.cc" "src/core/CMakeFiles/ahq_core.dir/entropy.cc.o" "gcc" "src/core/CMakeFiles/ahq_core.dir/entropy.cc.o.d"
  "/root/repo/src/core/equivalence.cc" "src/core/CMakeFiles/ahq_core.dir/equivalence.cc.o" "gcc" "src/core/CMakeFiles/ahq_core.dir/equivalence.cc.o.d"
  "/root/repo/src/core/weighted.cc" "src/core/CMakeFiles/ahq_core.dir/weighted.cc.o" "gcc" "src/core/CMakeFiles/ahq_core.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ahq_core.dir/dual.cc.o"
  "CMakeFiles/ahq_core.dir/dual.cc.o.d"
  "CMakeFiles/ahq_core.dir/entropy.cc.o"
  "CMakeFiles/ahq_core.dir/entropy.cc.o.d"
  "CMakeFiles/ahq_core.dir/equivalence.cc.o"
  "CMakeFiles/ahq_core.dir/equivalence.cc.o.d"
  "CMakeFiles/ahq_core.dir/weighted.cc.o"
  "CMakeFiles/ahq_core.dir/weighted.cc.o.d"
  "libahq_core.a"
  "libahq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

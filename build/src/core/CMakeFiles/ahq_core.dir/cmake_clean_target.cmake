file(REMOVE_RECURSE
  "libahq_core.a"
)

# Empty compiler generated dependencies file for ahq_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/config.cc" "src/machine/CMakeFiles/ahq_machine.dir/config.cc.o" "gcc" "src/machine/CMakeFiles/ahq_machine.dir/config.cc.o.d"
  "/root/repo/src/machine/layout.cc" "src/machine/CMakeFiles/ahq_machine.dir/layout.cc.o" "gcc" "src/machine/CMakeFiles/ahq_machine.dir/layout.cc.o.d"
  "/root/repo/src/machine/mask.cc" "src/machine/CMakeFiles/ahq_machine.dir/mask.cc.o" "gcc" "src/machine/CMakeFiles/ahq_machine.dir/mask.cc.o.d"
  "/root/repo/src/machine/pqos.cc" "src/machine/CMakeFiles/ahq_machine.dir/pqos.cc.o" "gcc" "src/machine/CMakeFiles/ahq_machine.dir/pqos.cc.o.d"
  "/root/repo/src/machine/resources.cc" "src/machine/CMakeFiles/ahq_machine.dir/resources.cc.o" "gcc" "src/machine/CMakeFiles/ahq_machine.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

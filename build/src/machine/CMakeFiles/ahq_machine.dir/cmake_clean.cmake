file(REMOVE_RECURSE
  "CMakeFiles/ahq_machine.dir/config.cc.o"
  "CMakeFiles/ahq_machine.dir/config.cc.o.d"
  "CMakeFiles/ahq_machine.dir/layout.cc.o"
  "CMakeFiles/ahq_machine.dir/layout.cc.o.d"
  "CMakeFiles/ahq_machine.dir/mask.cc.o"
  "CMakeFiles/ahq_machine.dir/mask.cc.o.d"
  "CMakeFiles/ahq_machine.dir/pqos.cc.o"
  "CMakeFiles/ahq_machine.dir/pqos.cc.o.d"
  "CMakeFiles/ahq_machine.dir/resources.cc.o"
  "CMakeFiles/ahq_machine.dir/resources.cc.o.d"
  "libahq_machine.a"
  "libahq_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libahq_machine.a"
)

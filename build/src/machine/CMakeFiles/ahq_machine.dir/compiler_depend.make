# Empty compiler generated dependencies file for ahq_machine.
# This may be replaced when dependencies are built.

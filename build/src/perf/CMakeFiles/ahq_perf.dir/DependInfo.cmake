
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/bandwidth.cc" "src/perf/CMakeFiles/ahq_perf.dir/bandwidth.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/bandwidth.cc.o.d"
  "/root/repo/src/perf/contention.cc" "src/perf/CMakeFiles/ahq_perf.dir/contention.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/contention.cc.o.d"
  "/root/repo/src/perf/cpi.cc" "src/perf/CMakeFiles/ahq_perf.dir/cpi.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/cpi.cc.o.d"
  "/root/repo/src/perf/mrc.cc" "src/perf/CMakeFiles/ahq_perf.dir/mrc.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/mrc.cc.o.d"
  "/root/repo/src/perf/mrc_fit.cc" "src/perf/CMakeFiles/ahq_perf.dir/mrc_fit.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/mrc_fit.cc.o.d"
  "/root/repo/src/perf/queueing.cc" "src/perf/CMakeFiles/ahq_perf.dir/queueing.cc.o" "gcc" "src/perf/CMakeFiles/ahq_perf.dir/queueing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/ahq_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

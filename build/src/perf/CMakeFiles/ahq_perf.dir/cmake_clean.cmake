file(REMOVE_RECURSE
  "CMakeFiles/ahq_perf.dir/bandwidth.cc.o"
  "CMakeFiles/ahq_perf.dir/bandwidth.cc.o.d"
  "CMakeFiles/ahq_perf.dir/contention.cc.o"
  "CMakeFiles/ahq_perf.dir/contention.cc.o.d"
  "CMakeFiles/ahq_perf.dir/cpi.cc.o"
  "CMakeFiles/ahq_perf.dir/cpi.cc.o.d"
  "CMakeFiles/ahq_perf.dir/mrc.cc.o"
  "CMakeFiles/ahq_perf.dir/mrc.cc.o.d"
  "CMakeFiles/ahq_perf.dir/mrc_fit.cc.o"
  "CMakeFiles/ahq_perf.dir/mrc_fit.cc.o.d"
  "CMakeFiles/ahq_perf.dir/queueing.cc.o"
  "CMakeFiles/ahq_perf.dir/queueing.cc.o.d"
  "libahq_perf.a"
  "libahq_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

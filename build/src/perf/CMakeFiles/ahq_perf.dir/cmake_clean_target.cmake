file(REMOVE_RECURSE
  "libahq_perf.a"
)

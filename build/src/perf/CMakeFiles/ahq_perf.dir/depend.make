# Empty dependencies file for ahq_perf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ahq_report.dir/ascii_chart.cc.o"
  "CMakeFiles/ahq_report.dir/ascii_chart.cc.o.d"
  "CMakeFiles/ahq_report.dir/csv.cc.o"
  "CMakeFiles/ahq_report.dir/csv.cc.o.d"
  "CMakeFiles/ahq_report.dir/table.cc.o"
  "CMakeFiles/ahq_report.dir/table.cc.o.d"
  "libahq_report.a"
  "libahq_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

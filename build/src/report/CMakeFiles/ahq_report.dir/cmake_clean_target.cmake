file(REMOVE_RECURSE
  "libahq_report.a"
)

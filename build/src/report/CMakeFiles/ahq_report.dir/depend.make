# Empty dependencies file for ahq_report.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/arq.cc" "src/sched/CMakeFiles/ahq_sched.dir/arq.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/arq.cc.o.d"
  "/root/repo/src/sched/clite.cc" "src/sched/CMakeFiles/ahq_sched.dir/clite.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/clite.cc.o.d"
  "/root/repo/src/sched/copart.cc" "src/sched/CMakeFiles/ahq_sched.dir/copart.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/copart.cc.o.d"
  "/root/repo/src/sched/gp.cc" "src/sched/CMakeFiles/ahq_sched.dir/gp.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/gp.cc.o.d"
  "/root/repo/src/sched/heracles.cc" "src/sched/CMakeFiles/ahq_sched.dir/heracles.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/heracles.cc.o.d"
  "/root/repo/src/sched/lc_first.cc" "src/sched/CMakeFiles/ahq_sched.dir/lc_first.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/lc_first.cc.o.d"
  "/root/repo/src/sched/parties.cc" "src/sched/CMakeFiles/ahq_sched.dir/parties.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/parties.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/ahq_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/spacetime.cc" "src/sched/CMakeFiles/ahq_sched.dir/spacetime.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/spacetime.cc.o.d"
  "/root/repo/src/sched/unmanaged.cc" "src/sched/CMakeFiles/ahq_sched.dir/unmanaged.cc.o" "gcc" "src/sched/CMakeFiles/ahq_sched.dir/unmanaged.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ahq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ahq_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ahq_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ahq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ahq_sched.dir/arq.cc.o"
  "CMakeFiles/ahq_sched.dir/arq.cc.o.d"
  "CMakeFiles/ahq_sched.dir/clite.cc.o"
  "CMakeFiles/ahq_sched.dir/clite.cc.o.d"
  "CMakeFiles/ahq_sched.dir/copart.cc.o"
  "CMakeFiles/ahq_sched.dir/copart.cc.o.d"
  "CMakeFiles/ahq_sched.dir/gp.cc.o"
  "CMakeFiles/ahq_sched.dir/gp.cc.o.d"
  "CMakeFiles/ahq_sched.dir/heracles.cc.o"
  "CMakeFiles/ahq_sched.dir/heracles.cc.o.d"
  "CMakeFiles/ahq_sched.dir/lc_first.cc.o"
  "CMakeFiles/ahq_sched.dir/lc_first.cc.o.d"
  "CMakeFiles/ahq_sched.dir/parties.cc.o"
  "CMakeFiles/ahq_sched.dir/parties.cc.o.d"
  "CMakeFiles/ahq_sched.dir/scheduler.cc.o"
  "CMakeFiles/ahq_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/ahq_sched.dir/spacetime.cc.o"
  "CMakeFiles/ahq_sched.dir/spacetime.cc.o.d"
  "CMakeFiles/ahq_sched.dir/unmanaged.cc.o"
  "CMakeFiles/ahq_sched.dir/unmanaged.cc.o.d"
  "libahq_sched.a"
  "libahq_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libahq_sched.a"
)

# Empty compiler generated dependencies file for ahq_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ahq_sim.dir/multiclass_sim.cc.o"
  "CMakeFiles/ahq_sim.dir/multiclass_sim.cc.o.d"
  "CMakeFiles/ahq_sim.dir/queue_sim.cc.o"
  "CMakeFiles/ahq_sim.dir/queue_sim.cc.o.d"
  "CMakeFiles/ahq_sim.dir/simulator.cc.o"
  "CMakeFiles/ahq_sim.dir/simulator.cc.o.d"
  "libahq_sim.a"
  "libahq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

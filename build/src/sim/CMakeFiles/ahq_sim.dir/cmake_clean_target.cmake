file(REMOVE_RECURSE
  "libahq_sim.a"
)

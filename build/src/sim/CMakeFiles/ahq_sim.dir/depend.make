# Empty dependencies file for ahq_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ahq_stats.dir/bootstrap.cc.o"
  "CMakeFiles/ahq_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/ahq_stats.dir/histogram.cc.o"
  "CMakeFiles/ahq_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ahq_stats.dir/percentile.cc.o"
  "CMakeFiles/ahq_stats.dir/percentile.cc.o.d"
  "CMakeFiles/ahq_stats.dir/rng.cc.o"
  "CMakeFiles/ahq_stats.dir/rng.cc.o.d"
  "CMakeFiles/ahq_stats.dir/running.cc.o"
  "CMakeFiles/ahq_stats.dir/running.cc.o.d"
  "CMakeFiles/ahq_stats.dir/summary.cc.o"
  "CMakeFiles/ahq_stats.dir/summary.cc.o.d"
  "CMakeFiles/ahq_stats.dir/zipf.cc.o"
  "CMakeFiles/ahq_stats.dir/zipf.cc.o.d"
  "libahq_stats.a"
  "libahq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

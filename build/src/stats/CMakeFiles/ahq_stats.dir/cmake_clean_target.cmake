file(REMOVE_RECURSE
  "libahq_stats.a"
)

# Empty compiler generated dependencies file for ahq_stats.
# This may be replaced when dependencies are built.

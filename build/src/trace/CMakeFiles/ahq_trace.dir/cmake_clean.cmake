file(REMOVE_RECURSE
  "CMakeFiles/ahq_trace.dir/load_trace.cc.o"
  "CMakeFiles/ahq_trace.dir/load_trace.cc.o.d"
  "libahq_trace.a"
  "libahq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

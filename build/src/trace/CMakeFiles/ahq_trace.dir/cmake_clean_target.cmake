file(REMOVE_RECURSE
  "libahq_trace.a"
)

# Empty dependencies file for ahq_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/perf_test.dir/perf/bandwidth_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/bandwidth_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/contention_sweep_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/contention_sweep_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/contention_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/contention_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/cpi_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/cpi_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/mrc_fit_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/mrc_fit_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/mrc_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/mrc_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/percentile_sweep_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/percentile_sweep_test.cc.o.d"
  "CMakeFiles/perf_test.dir/perf/queueing_test.cc.o"
  "CMakeFiles/perf_test.dir/perf/queueing_test.cc.o.d"
  "perf_test"
  "perf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/arq_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/arq_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/baselines_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/baselines_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/clite_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/clite_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/copart_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/copart_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/gp_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/gp_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/heracles_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/heracles_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/parties_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/parties_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/spacetime_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/spacetime_test.cc.o.d"
  "sched_test"
  "sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(machine_test "/root/repo/build/tests/machine_test")
set_tests_properties(machine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(perf_test "/root/repo/build/tests/perf_test")
set_tests_properties(perf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;31;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;42;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;48;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;54;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sched_test "/root/repo/build/tests/sched_test")
set_tests_properties(sched_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;61;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;72;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;79;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(report_test "/root/repo/build/tests/report_test")
set_tests_properties(report_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;83;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;89;ahq_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tools_test "/root/repo/build/tests/tools_test")
set_tests_properties(tools_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")

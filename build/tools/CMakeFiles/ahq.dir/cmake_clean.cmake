file(REMOVE_RECURSE
  "CMakeFiles/ahq.dir/main.cc.o"
  "CMakeFiles/ahq.dir/main.cc.o.d"
  "ahq"
  "ahq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

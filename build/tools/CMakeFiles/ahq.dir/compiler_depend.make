# Empty compiler generated dependencies file for ahq.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ahq_cli.dir/cli.cc.o"
  "CMakeFiles/ahq_cli.dir/cli.cc.o.d"
  "libahq_cli.a"
  "libahq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

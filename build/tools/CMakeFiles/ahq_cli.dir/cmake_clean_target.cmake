file(REMOVE_RECURSE
  "libahq_cli.a"
)

# Empty dependencies file for ahq_cli.
# This may be replaced when dependencies are built.

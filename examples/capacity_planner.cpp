/**
 * @file
 * Capacity planner: "how small a node can run this colocation?"
 *
 * Uses the resource-equivalence machinery (Section II-C): sweeps the
 * available core count, builds the E_S-vs-cores curve for each
 * strategy, and reports the minimum cores needed to keep E_S below
 * a target — plus how many cores choosing ARQ over the others saves
 * (the paper's "resource equivalence" in its capacity-planning
 * form).
 */

#include <iostream>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "core/equivalence.hh"
#include "report/table.hh"
#include "sched/registry.hh"

int
main()
{
    using namespace ahq;

    constexpr double kTargetEs = 0.25;
    const std::vector<int> core_options{4, 5, 6, 7, 8, 9, 10};

    std::cout << "Colocation: xapian 40%, moses 20%, img-dnn 20% + "
                 "fluidanimate\nGoal: E_S <= "
              << kTargetEs << "\n\n";

    auto curve_for = [&](sched::Scheduler &s) {
        core::EntropyCurve curve;
        for (int cores : core_options) {
            const auto mc = machine::MachineConfig::xeonE52630v4()
                                .withAvailable(cores, 20, 10);
            cluster::Node node(
                mc, {cluster::lcAt(apps::xapian(), 0.4),
                     cluster::lcAt(apps::moses(), 0.2),
                     cluster::lcAt(apps::imgDnn(), 0.2),
                     cluster::be(apps::fluidanimate())});
            cluster::SimulationConfig cfg;
            cfg.durationSeconds = 120.0;
            cfg.warmupEpochs = 120;
            cluster::EpochSimulator sim(node, cfg);
            curve.push_back({static_cast<double>(cores),
                             sim.run(s).meanES});
        }
        return curve;
    };

    const auto cu = curve_for(*sched::makeScheduler("Unmanaged"));
    const auto cp = curve_for(*sched::makeScheduler("PARTIES"));
    const auto ca = curve_for(*sched::makeScheduler("ARQ"));

    report::TextTable t({"cores", "Unmanaged E_S", "PARTIES E_S",
                         "ARQ E_S"});
    for (std::size_t i = 0; i < core_options.size(); ++i) {
        t.addRow({std::to_string(core_options[i]),
                  report::TextTable::num(cu[i].second),
                  report::TextTable::num(cp[i].second),
                  report::TextTable::num(ca[i].second)});
    }
    t.print(std::cout);

    auto report_needed = [&](const char *name,
                             const core::EntropyCurve &c) {
        const auto needed = core::resourceForEntropy(c, kTargetEs);
        std::cout << "  " << name << ": ";
        if (needed)
            std::cout << report::TextTable::num(*needed, 2)
                      << " cores\n";
        else
            std::cout << "target unreachable on this node\n";
        return needed;
    };

    std::cout << "\nMinimum cores for E_S <= " << kTargetEs << ":\n";
    const auto nu = report_needed("Unmanaged", cu);
    const auto np = report_needed("PARTIES  ", cp);
    const auto na = report_needed("ARQ      ", ca);

    if (nu && na) {
        std::cout << "\nResource equivalence of ARQ vs Unmanaged: "
                  << report::TextTable::num(*nu - *na, 2)
                  << " cores saved per node\n";
    }
    if (np && na) {
        std::cout << "Resource equivalence of ARQ vs PARTIES:   "
                  << report::TextTable::num(*np - *na, 2)
                  << " cores saved per node\n";
    }
    return 0;
}

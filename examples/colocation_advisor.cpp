/**
 * @file
 * Colocation advisor: given a set of applications and their loads,
 * evaluate every scheduling strategy on the modelled node and
 * recommend the one with the lowest system entropy — the workflow a
 * datacenter operator would run before placing a new tenant.
 *
 * Usage:
 *   colocation_advisor [app=load]... [be_app]...
 * e.g.
 *   colocation_advisor xapian=0.7 moses=0.3 stream
 * With no arguments a representative mix is used. Known apps:
 * xapian, moses, img-dnn, masstree, sphinx, silo (LC);
 * fluidanimate, streamcluster, stream (BE).
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "report/table.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;

std::vector<cluster::ColocatedApp>
parseArgs(int argc, char **argv)
{
    std::vector<cluster::ColocatedApp> apps;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            apps.push_back(cluster::be(apps::byName(arg)));
        } else {
            const std::string name = arg.substr(0, eq);
            const double load = std::stod(arg.substr(eq + 1));
            apps.push_back(cluster::lcAt(apps::byName(name), load));
        }
    }
    if (apps.empty()) {
        std::cout << "(no arguments: using xapian=0.5 moses=0.2 "
                     "img-dnn=0.2 stream)\n";
        apps = {cluster::lcAt(apps::xapian(), 0.5),
                cluster::lcAt(apps::moses(), 0.2),
                cluster::lcAt(apps::imgDnn(), 0.2),
                cluster::be(apps::stream())};
    }
    return apps;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<cluster::ColocatedApp> colocated;
    try {
        colocated = parseArgs(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       std::move(colocated));
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 120.0;
    cfg.warmupEpochs = 120;
    cluster::EpochSimulator sim(node, cfg);

    std::vector<std::unique_ptr<sched::Scheduler>> strategies;
    for (const auto &name :
         {"Unmanaged", "LC-first", "PARTIES", "CLITE", "Heracles",
          "ARQ"}) {
        strategies.push_back(sched::makeScheduler(name));
    }

    report::TextTable t({"strategy", "E_LC", "E_BE", "E_S", "yield",
                         "QoS violations"});
    std::string best;
    double best_es = 2.0;
    for (const auto &s : strategies) {
        const auto r = sim.run(*s);
        t.addRow({s->name(), report::TextTable::num(r.meanELc),
                  report::TextTable::num(r.meanEBe),
                  report::TextTable::num(r.meanES),
                  report::TextTable::num(r.yieldValue, 2),
                  std::to_string(r.violations)});
        if (r.meanES < best_es) {
            best_es = r.meanES;
            best = s->name();
        }
    }

    std::cout << "\nColocation on "
              << node.config().name << " ("
              << node.config().availableCores << " cores, "
              << node.config().availableLlcWays << " LLC ways):\n";
    for (int i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        std::cout << "  - " << p.name
                  << (p.latencyCritical ?
                          " (LC, load " +
                              report::TextTable::num(
                                  node.loadAt(i, 0.0), 2) + ")" :
                          " (BE)")
                  << "\n";
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nRecommendation: " << best
              << " (lowest system entropy " << best_es << ")\n";
    return 0;
}

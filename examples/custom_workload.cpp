/**
 * @file
 * Custom workloads: modelling YOUR application instead of the
 * paper's.
 *
 * The workflow a user follows to bring their own service into the
 * simulator:
 *   1. measure a few (ways, MPKI) points with CAT sweeps and fit a
 *      miss-rate curve (perf::fitMissRateCurve);
 *   2. build a calibrated profile from the numbers they already
 *      track — max load, QoS target, idle-tail latency
 *      (apps::AppBuilder);
 *   3. colocate it with the catalogue apps and compare strategies.
 */

#include <iostream>

#include "apps/builder.hh"
#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "perf/mrc_fit.hh"
#include "report/table.hh"
#include "sched/registry.hh"

int
main()
{
    using namespace ahq;

    // ---- 1. fit an MRC from "measured" CAT-sweep points ----------
    // (These numbers stand in for pqos + perf-counter measurements.)
    const std::vector<perf::MrcSample> measured{
        {2, 21.0}, {4, 15.2}, {6, 12.1}, {8, 10.4},
        {12, 8.4}, {16, 7.3}, {20, 6.7}};
    const auto fit = perf::fitMissRateCurve(measured);
    std::cout << "fitted MRC: mpki_max=" << fit.curve.mpkiMax()
              << " mpki_min=" << fit.curve.mpkiMin()
              << " ways_half=" << fit.curve.waysHalf()
              << " (rmse " << fit.rmse << ")\n";

    // ---- 2. build the profile from operational numbers -----------
    const auto my_service =
        apps::AppBuilder("checkout-api")
            .latencyCritical()
            .maxLoadQps(1200.0)   // measured knee
            .tailThresholdMs(15.0) // SLO
            .idealTailAt20Ms(5.0)  // quiet-hours p95
            .cache(fit.curve.mpkiMax(), fit.curve.mpkiMin(),
                   fit.curve.waysHalf())
            .build();
    std::cout << "calibrated: service=" << my_service.serviceTimeMs
              << " ms, p95 multiplier=" << my_service.svcP95Mult
              << "\n\n";

    // ---- 3. colocate and compare ---------------------------------
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(my_service, 0.6),
                        cluster::lcAt(apps::masstree(), 0.3),
                        cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 120.0;
    cfg.warmupEpochs = 120;
    cluster::EpochSimulator sim(node, cfg);

    report::TextTable t({"strategy", "checkout p95 (ms)",
                         "masstree p95 (ms)", "stream IPC", "E_S",
                         "yield"});
    for (const auto &name : {"PARTIES", "ARQ"}) {
        const auto s = sched::makeScheduler(name);
        const auto r = sim.run(*s);
        t.addRow({s->name(),
                  report::TextTable::num(r.meanP95Ms[0], 2),
                  report::TextTable::num(r.meanP95Ms[1], 2),
                  report::TextTable::num(r.meanIpc[2], 2),
                  report::TextTable::num(r.meanES),
                  report::TextTable::num(r.yieldValue, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(SLO: checkout-api 15 ms, masstree "
              << apps::masstree().tailThresholdMs << " ms)\n";
    return 0;
}

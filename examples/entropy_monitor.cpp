/**
 * @file
 * Entropy monitor: a monitoring-dashboard style view of a node over
 * a simulated day. Xapian's load follows a diurnal pattern (low at
 * night, high in the afternoon) while ARQ manages the node; the
 * example prints a per-interval log line whenever the state changes
 * materially and an hourly summary — the way the paper intends E_S
 * to be consumed as a single figure of merit.
 */

#include <cmath>
#include <iostream>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "report/ascii_chart.hh"
#include "sched/registry.hh"
#include "trace/load_trace.hh"

int
main()
{
    using namespace ahq;

    // A compressed "day": 240 simulated seconds, one diurnal cycle.
    constexpr double kDay = 240.0;
    cluster::Node node(
        machine::MachineConfig::xeonE52630v4(),
        {cluster::lcWith(apps::xapian(),
                         std::make_shared<trace::DiurnalTrace>(
                             0.1, 0.9, kDay)),
         cluster::lcAt(apps::masstree(), 0.3),
         cluster::be(apps::streamcluster())});

    cluster::SimulationConfig cfg;
    cfg.durationSeconds = kDay;
    cfg.warmupEpochs = 0;

    const auto arq = sched::makeScheduler("ARQ");
    cluster::EpochSimulator sim(node, cfg);
    const auto res = sim.run(*arq);

    std::cout << "time    load   E_LC   E_BE   E_S    note\n";
    std::cout << "-------------------------------------------\n";
    double last_es = -1.0;
    for (const auto &rec : res.epochs) {
        const double es = rec.entropy.eS;
        // Log on material change only, like a real monitor.
        if (last_es < 0.0 || std::abs(es - last_es) > 0.05) {
            std::printf("%6.1fs  %4.2f  %.3f  %.3f  %.3f  %s\n",
                        rec.time, rec.obs[0].loadFraction,
                        rec.entropy.eLc, rec.entropy.eBe, es,
                        rec.entropy.eLc > 0.05 ?
                            "LC interference beyond tolerance" :
                            (es > 0.3 ? "high BE pressure" : "ok"));
            last_es = es;
        }
    }

    // "Hourly" (30 s bucket) summary.
    std::cout << "\nbucket summary (30 s):\n";
    std::cout << "start   mean E_S  worst E_LC  min yield-ok\n";
    const int per_bucket = static_cast<int>(30.0 / 0.5);
    for (std::size_t b = 0; b * per_bucket < res.epochs.size();
         ++b) {
        double sum = 0.0, worst_lc = 0.0;
        bool all_ok = true;
        int n = 0;
        for (int i = 0; i < per_bucket; ++i) {
            const std::size_t e = b * per_bucket + i;
            if (e >= res.epochs.size())
                break;
            const auto &rec = res.epochs[e];
            sum += rec.entropy.eS;
            worst_lc = std::max(worst_lc, rec.entropy.eLc);
            all_ok = all_ok && rec.entropy.yieldValue == 1.0;
            ++n;
        }
        std::printf("%5zus   %.3f     %.3f       %s\n",
                    b * 30, sum / n, worst_lc,
                    all_ok ? "yes" : "no");
    }

    // Entropy-vs-load curve over the day.
    report::Series s_load{"xapian load", {}, {}};
    report::Series s_es{"E_S", {}, {}};
    for (const auto &rec : res.epochs) {
        if (std::fmod(rec.time, 2.0) < 0.25) {
            s_load.xs.push_back(rec.time);
            s_load.ys.push_back(rec.obs[0].loadFraction);
            s_es.xs.push_back(rec.time);
            s_es.ys.push_back(rec.entropy.eS);
        }
    }
    std::cout << "\n";
    report::lineChart(std::cout, {s_load, s_es}, 70, 14,
                      "diurnal load vs system entropy (ARQ)");
    return 0;
}

/**
 * @file
 * Fleet placement: use system entropy as a placement objective
 * across several nodes — the datacenter-scale reading of the paper.
 *
 * Eight applications (four LC, four BE, two of them STREAM hogs)
 * must be placed on two identical nodes. The example compares a
 * naive round-robin placement against the entropy-driven greedy
 * advisor, then simulates both fleets under ARQ and reports the
 * datacenter-wide entropy.
 */

#include <iostream>

#include "apps/catalog.hh"
#include "cluster/fleet.hh"
#include "report/table.hh"
#include "sched/registry.hh"

int
main()
{
    using namespace ahq;
    using namespace ahq::cluster;

    const auto mc = machine::MachineConfig::xeonE52630v4();

    const std::vector<ColocatedApp> apps_to_place{
        lcAt(apps::xapian(), 0.5),  lcAt(apps::moses(), 0.3),
        lcAt(apps::imgDnn(), 0.3),  lcAt(apps::masstree(), 0.2),
        be(apps::stream()),         be(apps::stream()),
        be(apps::fluidanimate()),   be(apps::streamcluster())};
    const std::vector<std::string> names{
        "xapian", "moses", "img-dnn", "masstree",
        "stream#1", "stream#2", "fluidanimate", "streamcluster"};

    // ---- entropy-driven placement --------------------------------
    PlacementAdvisor advisor(mc, 2, [] {
        return sched::makeScheduler("ARQ");
    });
    SimulationConfig trial;
    trial.durationSeconds = 20.0;
    trial.warmupEpochs = 20;
    const auto placement = advisor.place(apps_to_place, trial);

    std::cout << "Entropy-driven placement:\n";
    for (std::size_t i = 0; i < apps_to_place.size(); ++i) {
        std::cout << "  " << names[i] << " -> node "
                  << placement.assignment[i] << "\n";
    }

    // ---- build and run both fleets -------------------------------
    auto build_fleet = [&](const std::vector<int> &assignment) {
        std::vector<std::vector<ColocatedApp>> per_node(2);
        for (std::size_t i = 0; i < apps_to_place.size(); ++i) {
            per_node[static_cast<std::size_t>(assignment[i])]
                .push_back(apps_to_place[i]);
        }
        Fleet fleet;
        for (auto &set : per_node) {
            fleet.addNode(Node(mc, std::move(set)),
                          sched::makeScheduler("ARQ"));
        }
        return fleet;
    };

    std::vector<int> round_robin;
    for (std::size_t i = 0; i < apps_to_place.size(); ++i)
        round_robin.push_back(static_cast<int>(i % 2));

    SimulationConfig cfg;
    cfg.durationSeconds = 60.0;
    cfg.warmupEpochs = 60;

    auto fleet_rr = build_fleet(round_robin);
    auto fleet_greedy = build_fleet(placement.assignment);
    const auto res_rr = fleet_rr.run(cfg);
    const auto res_greedy = fleet_greedy.run(cfg);

    report::TextTable t({"placement", "fleet E_LC", "fleet E_BE",
                         "fleet E_S", "yield", "violations"});
    t.addRow({"round-robin", report::TextTable::num(res_rr.eLc),
              report::TextTable::num(res_rr.eBe),
              report::TextTable::num(res_rr.eS),
              report::TextTable::num(res_rr.yieldValue, 2),
              std::to_string(res_rr.violations)});
    t.addRow({"entropy-greedy",
              report::TextTable::num(res_greedy.eLc),
              report::TextTable::num(res_greedy.eBe),
              report::TextTable::num(res_greedy.eS),
              report::TextTable::num(res_greedy.yieldValue, 2),
              std::to_string(res_greedy.violations)});
    std::cout << "\n";
    t.print(std::cout);

    std::cout << "\nThe greedy placement separates the two STREAM "
                 "hogs and balances LC demand, which\nthe "
                 "datacenter-wide E_S captures as a single number."
              << "\n";
    return 0;
}

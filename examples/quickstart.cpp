/**
 * @file
 * Quickstart: the three things most users need from Ah-Q.
 *
 *  1. Compute system entropy from measurements you already have
 *     (tail latencies + QoS targets for LC apps, IPC for BE apps).
 *  2. Simulate a colocation on a modelled node under a scheduling
 *     strategy and read the entropy/yield aggregates.
 *  3. Swap in ARQ and see the difference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "core/entropy.hh"
#include "sched/registry.hh"

int
main()
{
    using namespace ahq;

    // ---- 1. Entropy from your own measurements -------------------
    // Three LC apps: {ideal p95, observed p95, QoS threshold} in ms.
    const std::vector<core::LcObservation> lc{
        {2.77, 3.90, 4.22},  // xapian: satisfied
        {2.80, 16.54, 10.53}, // moses: violated
        {1.41, 3.53, 3.98},  // img-dnn: satisfied
    };
    // One BE app: {solo IPC, observed IPC}.
    const std::vector<core::BeObservation> be{{2.63, 1.20}};

    const auto report = core::computeEntropy(lc, be);
    std::cout << "E_LC = " << report.eLc << ", E_BE = " << report.eBe
              << ", E_S = " << report.eS
              << ", yield = " << report.yieldValue << "\n";
    std::cout << "moses Q (intolerable interference) = "
              << report.lcDetail[1].intolerable << "\n\n";

    // ---- 2. Simulate a colocation --------------------------------
    // The paper's testbed (Table III) with Xapian at 50% load, Moses
    // and Img-dnn at 20%, and a 10-thread STREAM instance.
    cluster::Node node(machine::MachineConfig::xeonE52630v4(),
                       {cluster::lcAt(apps::xapian(), 0.5),
                        cluster::lcAt(apps::moses(), 0.2),
                        cluster::lcAt(apps::imgDnn(), 0.2),
                        cluster::be(apps::stream())});

    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 120.0; // 500 ms epochs
    cfg.warmupEpochs = 120;      // aggregate the last 60 s

    cluster::EpochSimulator sim(node, cfg);

    const auto unmanaged = sched::makeScheduler("Unmanaged");
    const auto r_base = sim.run(*unmanaged);
    std::cout << "Unmanaged: E_S = " << r_base.meanES
              << ", yield = " << r_base.yieldValue
              << ", xapian p95 = " << r_base.meanP95Ms[0]
              << " ms, stream IPC = " << r_base.meanIpc[3] << "\n";

    // ---- 3. Same node, ARQ --------------------------------------
    const auto arq = sched::makeScheduler("ARQ");
    const auto r_arq = sim.run(*arq);
    std::cout << "ARQ:       E_S = " << r_arq.meanES
              << ", yield = " << r_arq.yieldValue
              << ", xapian p95 = " << r_arq.meanP95Ms[0]
              << " ms, stream IPC = " << r_arq.meanIpc[3] << "\n";

    std::cout << "\nARQ cut system entropy by "
              << 100.0 * (1.0 - r_arq.meanES / r_base.meanES)
              << "% on this node.\n";
    return 0;
}

/**
 * @file
 * AppBuilder implementation.
 */

#include "apps/builder.hh"

#include <stdexcept>

namespace ahq::apps
{

AppBuilder::AppBuilder(std::string name)
    : name_(std::move(name))
{
}

AppBuilder &
AppBuilder::latencyCritical()
{
    lc_ = true;
    return *this;
}

AppBuilder &
AppBuilder::bestEffort(double ipc_solo)
{
    lc_ = false;
    ipcSolo_ = ipc_solo;
    return *this;
}

AppBuilder &
AppBuilder::maxLoadQps(double qps)
{
    maxLoad_ = qps;
    return *this;
}

AppBuilder &
AppBuilder::tailThresholdMs(double ms)
{
    threshold_ = ms;
    return *this;
}

AppBuilder &
AppBuilder::idealTailAt20Ms(double ms)
{
    idealTail_ = ms;
    return *this;
}

AppBuilder &
AppBuilder::threads(int n)
{
    threads_ = n;
    return *this;
}

AppBuilder &
AppBuilder::cache(double mpki_max, double mpki_min, double ways_half)
{
    mpkiMax_ = mpki_max;
    mpkiMin_ = mpki_min;
    waysHalf_ = ways_half;
    return *this;
}

AppBuilder &
AppBuilder::cpiBase(double cpi)
{
    cpiBase_ = cpi;
    return *this;
}

AppBuilder &
AppBuilder::mlp(double mlp)
{
    mlp_ = mlp;
    return *this;
}

AppProfile
AppBuilder::build() const
{
    if (name_.empty())
        throw std::invalid_argument("profile needs a name");
    if (!lc_.has_value()) {
        throw std::invalid_argument(
            name_ + ": choose latencyCritical() or bestEffort()");
    }
    if (threads_ < 1)
        throw std::invalid_argument(name_ + ": threads must be >= 1");
    if (mpkiMax_ < mpkiMin_ || mpkiMin_ < 0.0 || waysHalf_ <= 0.0) {
        throw std::invalid_argument(name_ +
                                    ": inconsistent cache traits");
    }

    AppProfile p;
    p.name = name_;
    p.threads = threads_;
    perf::CpiTraits traits;
    traits.cpiBase = cpiBase_;
    traits.mlp = mlp_;
    p.cpi = perf::CpiModel(
        perf::MissRateCurve(mpkiMax_, mpkiMin_, waysHalf_), traits);

    if (!*lc_) {
        if (ipcSolo_ <= 0.0) {
            throw std::invalid_argument(name_ +
                                        ": solo IPC must be > 0");
        }
        p.latencyCritical = false;
        p.ipcSolo = ipcSolo_;
        return p;
    }

    if (!maxLoad_ || !threshold_ || !idealTail_) {
        throw std::invalid_argument(
            name_ + ": LC profiles need maxLoadQps, "
                    "tailThresholdMs and idealTailAt20Ms");
    }
    if (*maxLoad_ <= 0.0)
        throw std::invalid_argument(name_ + ": max load must be > 0");
    if (*idealTail_ <= 0.0 || *idealTail_ >= *threshold_) {
        throw std::invalid_argument(
            name_ + ": need 0 < ideal tail < threshold");
    }
    p.latencyCritical = true;
    calibrateLcProfile(p, {*maxLoad_, *threshold_, *idealTail_});
    return p;
}

} // namespace ahq::apps

/**
 * @file
 * Fluent builder for custom application profiles, so downstream
 * users can model their own workloads without touching the raw
 * AppProfile fields or the calibration solver directly.
 *
 * LC example — everything from published-style numbers:
 *
 *   auto app = apps::AppBuilder("my-api")
 *                  .latencyCritical()
 *                  .maxLoadQps(2500)
 *                  .tailThresholdMs(8.0)
 *                  .idealTailAt20Ms(3.0)
 *                  .cache(18.0, 3.0, 5.0)   // mpki max/min, half ways
 *                  .build();
 *
 * BE example:
 *
 *   auto batch = apps::AppBuilder("encoder")
 *                    .bestEffort(1.8)       // solo IPC
 *                    .threads(8)
 *                    .cache(25.0, 6.0, 8.0)
 *                    .build();
 */

#ifndef AHQ_APPS_BUILDER_HH
#define AHQ_APPS_BUILDER_HH

#include <optional>
#include <string>

#include "apps/profile.hh"

namespace ahq::apps
{

/**
 * Step-by-step construction of an AppProfile with validation at
 * build() time.
 */
class AppBuilder
{
  public:
    /** @param name Catalogue-style name for reports. */
    explicit AppBuilder(std::string name);

    /** Mark as latency-critical (needs the three LC anchors). */
    AppBuilder &latencyCritical();

    /** Mark as best-effort with the given solo IPC. */
    AppBuilder &bestEffort(double ipc_solo);

    /** LC anchor: maximum sustainable load (knee), requests/s. */
    AppBuilder &maxLoadQps(double qps);

    /** LC anchor: QoS threshold M_i, ms. */
    AppBuilder &tailThresholdMs(double ms);

    /** LC anchor: ideal p95 at 20% load, ms. */
    AppBuilder &idealTailAt20Ms(double ms);

    /** Software thread count (default 4). */
    AppBuilder &threads(int n);

    /** Cache behaviour: MPKI at 0/unbounded ways, half-sat ways. */
    AppBuilder &cache(double mpki_max, double mpki_min,
                      double ways_half);

    /** Core-bound CPI component (default 0.6). */
    AppBuilder &cpiBase(double cpi);

    /** Memory-level parallelism (default 2.0). */
    AppBuilder &mlp(double mlp);

    /**
     * Finalise. LC profiles run the calibration solver against the
     * three anchors; BE profiles take the IPC directly.
     *
     * @throws std::invalid_argument when required anchors are
     *         missing or inconsistent (e.g. ideal tail >= threshold,
     *         or a knee that 4 threads cannot sustain).
     */
    AppProfile build() const;

  private:
    std::string name_;
    std::optional<bool> lc_;
    std::optional<double> maxLoad_;
    std::optional<double> threshold_;
    std::optional<double> idealTail_;
    double ipcSolo_ = 1.0;
    int threads_ = 4;
    double mpkiMax_ = 10.0, mpkiMin_ = 2.0, waysHalf_ = 4.0;
    double cpiBase_ = 0.6;
    double mlp_ = 2.0;
};

} // namespace ahq::apps

#endif // AHQ_APPS_BUILDER_HH

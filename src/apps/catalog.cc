/**
 * @file
 * Workload catalogue implementation.
 *
 * LC queueing parameters come from calibrateLcProfile() against the
 * published constants; the microarchitectural traits (MRCs, CPI
 * bases, MLP) are chosen to match each workload's published
 * characterisation qualitatively. All constants are local to this
 * file so recalibration touches exactly one place.
 */

#include "apps/catalog.hh"

#include <stdexcept>

namespace ahq::apps
{

namespace
{

using perf::CpiModel;
using perf::CpiTraits;
using perf::MissRateCurve;

CpiModel
makeCpi(double mpki_max, double mpki_min, double ways_half,
        double cpi_base, double mlp, double penalty = 180.0)
{
    CpiTraits t;
    t.cpiBase = cpi_base;
    t.missPenaltyCycles = penalty;
    t.mlp = mlp;
    t.coreFreqGhz = 2.2; // Table III
    return CpiModel(MissRateCurve(mpki_max, mpki_min, ways_half), t);
}

AppProfile
makeLc(const std::string &name, CpiModel cpi,
       const CalibrationTargets &targets)
{
    AppProfile p;
    p.name = name;
    p.latencyCritical = true;
    p.threads = 4; // "instantiated with 4 threads" (Section V)
    p.cpi = cpi;
    calibrateLcProfile(p, targets);
    return p;
}

AppProfile
makeBe(const std::string &name, CpiModel cpi, double ipc_solo,
       int threads)
{
    AppProfile p;
    p.name = name;
    p.latencyCritical = false;
    p.threads = threads;
    p.ipcSolo = ipc_solo;
    p.cpi = cpi;
    return p;
}

} // namespace

AppProfile
xapian()
{
    // Table IV: threshold 4.22 ms, max load 3400 QPS.
    // Table II: ideal p95 at 20% load is 2.77 ms.
    return makeLc("xapian",
                  makeCpi(20.0, 2.0, 6.0, 0.8, 2.0),
                  {3400.0, 4.22, 2.77});
}

AppProfile
moses()
{
    // Table IV: threshold 10.53 ms, max load 1800 QPS.
    // Table II: ideal p95 at 20% load is 2.80 ms.
    return makeLc("moses",
                  makeCpi(12.0, 3.0, 4.0, 0.7, 2.0),
                  {1800.0, 10.53, 2.80});
}

AppProfile
imgDnn()
{
    // Table IV: threshold 3.98 ms, max load 5300 QPS.
    // Table II: ideal p95 at 20% load is 1.41 ms.
    return makeLc("img-dnn",
                  makeCpi(8.0, 1.5, 3.0, 0.5, 2.5),
                  {5300.0, 3.98, 1.41});
}

AppProfile
masstree()
{
    // Table IV: threshold 1.05 ms, max load 4420 QPS. The ideal tail
    // at 20% load is not published; 0.63 ms keeps A_i mid-range.
    return makeLc("masstree",
                  makeCpi(25.0, 6.0, 8.0, 0.9, 3.0),
                  {4420.0, 1.05, 0.63});
}

AppProfile
sphinx()
{
    // Table IV: threshold 2682 ms, max load 4.8 QPS (second-scale
    // speech decoding). Ideal tail at 20% load chosen at 1450 ms.
    return makeLc("sphinx",
                  makeCpi(6.0, 1.0, 3.0, 0.5, 2.0),
                  {4.8, 2682.0, 1450.0});
}

AppProfile
silo()
{
    // Table IV: threshold 1.27 ms, max load 220 QPS. Ideal tail at
    // 20% load chosen at 0.70 ms.
    return makeLc("silo",
                  makeCpi(15.0, 4.0, 5.0, 0.8, 2.5),
                  {220.0, 1.27, 0.70});
}

AppProfile
fluidanimate()
{
    // Compute-leaning PARSEC code; solo IPC ~2.6 (cf. Fig. 1's 2.63
    // under the near-ideal strategy A).
    return makeBe("fluidanimate",
                  makeCpi(8.0, 1.5, 5.0, 0.55, 2.0), 2.63, 4);
}

AppProfile
streamcluster()
{
    // Cache-hungry online clustering: deep MRC, modest solo IPC.
    return makeBe("streamcluster",
                  makeCpi(32.0, 6.0, 10.0, 0.7, 3.0), 1.30, 4);
}

AppProfile
stream()
{
    // Flat MRC (no reuse), high MLP, 10 threads (Section V): a
    // machine-wide bandwidth hog.
    return makeBe("stream",
                  makeCpi(60.0, 56.0, 2.0, 0.5, 8.0, 200.0), 0.90, 10);
}

std::vector<std::string>
allNames()
{
    return {"xapian", "moses", "img-dnn", "masstree", "sphinx",
            "silo", "fluidanimate", "streamcluster", "stream"};
}

AppProfile
byName(const std::string &name)
{
    if (name == "xapian")
        return xapian();
    if (name == "moses")
        return moses();
    if (name == "img-dnn")
        return imgDnn();
    if (name == "masstree")
        return masstree();
    if (name == "sphinx")
        return sphinx();
    if (name == "silo")
        return silo();
    if (name == "fluidanimate")
        return fluidanimate();
    if (name == "streamcluster")
        return streamcluster();
    if (name == "stream")
        return stream();
    throw std::invalid_argument("unknown application: " + name);
}

} // namespace ahq::apps

/**
 * @file
 * The workload catalogue: profiles of the six Tailbench LC
 * applications and three BE applications the paper evaluates with
 * (Section V), calibrated against Table II / Table IV.
 *
 * These are synthetic analogues, not the real binaries: each profile
 * reproduces the published latency/load/threshold constants and a
 * first-order cache/bandwidth behaviour consistent with the
 * workload's published characterisation (e.g. STREAM is a flat-MRC
 * high-MLP bandwidth hog; Streamcluster is cache-hungry).
 */

#ifndef AHQ_APPS_CATALOG_HH
#define AHQ_APPS_CATALOG_HH

#include <string>
#include <vector>

#include "apps/profile.hh"

namespace ahq::apps
{

/** Xapian search engine (LC; Zipfian Wikipedia queries). */
AppProfile xapian();

/** Moses statistical machine translation (LC). */
AppProfile moses();

/** Img-dnn handwriting recognition (LC; MNIST). */
AppProfile imgDnn();

/** Masstree in-memory key-value store (LC; YCSB-driven). */
AppProfile masstree();

/** Sphinx speech recognition (LC; second-scale requests). */
AppProfile sphinx();

/** Silo in-memory transactional database (LC). */
AppProfile silo();

/** PARSEC Fluidanimate liquid simulation (BE, compute-leaning). */
AppProfile fluidanimate();

/** PARSEC Streamcluster online clustering (BE, cache-sensitive). */
AppProfile streamcluster();

/** STREAM memory bandwidth benchmark (BE, 10 threads, bw-bound). */
AppProfile stream();

/** All profile names known to the catalogue. */
std::vector<std::string> allNames();

/**
 * Look up a profile by its catalogue name (case-sensitive, e.g.
 * "xapian", "img-dnn", "stream").
 *
 * @throws std::invalid_argument for unknown names.
 */
AppProfile byName(const std::string &name);

} // namespace ahq::apps

#endif // AHQ_APPS_CATALOG_HH

/**
 * @file
 * Application profile and calibration implementations.
 */

#include "apps/profile.hh"

#include <cassert>
#include <cmath>
#include <limits>

#include "perf/queueing.hh"

namespace ahq::apps
{

namespace
{

/**
 * Waiting-time component (ms) of the solo p95 at the given arrival
 * rate for a candidate base service time, with c = threads servers.
 */
double
soloWait95Ms(double service_ms, int threads, double lambda)
{
    const double mu = 1000.0 / service_ms; // requests/s per server
    const double c = static_cast<double>(threads);
    if (lambda >= c * mu)
        return std::numeric_limits<double>::infinity();
    const double pc_wait = perf::erlangC(c, lambda, mu);
    if (pc_wait <= 0.05)
        return 0.0;
    return 1000.0 * std::log(pc_wait / 0.05) / (c * mu - lambda);
}

} // namespace

double
AppProfile::arrivalRate(double load_fraction) const
{
    assert(load_fraction >= 0.0);
    return load_fraction * maxLoadQps;
}

double
AppProfile::soloTailP95Ms(double load_fraction) const
{
    const double lambda = arrivalRate(load_fraction);
    const double mu = 1000.0 / serviceTimeMs;
    const double t95 = perf::sojournPercentileApprox(
        static_cast<double>(threads), lambda, mu, svcP95Mult);
    if (t95 == std::numeric_limits<double>::infinity())
        return t95;
    return baseLatencyMs + 1000.0 * t95;
}

double
AppProfile::svcMultAt(double p) const
{
    assert(p > 0.0 && p < 1.0);
    // Exponential-tail scaling: exceedance multipliers grow with
    // -log(1-p); anchored at the calibrated p95 value.
    return svcP95Mult * std::log(1.0 - p) / std::log(0.05);
}

double
AppProfile::soloTailPercentileMs(double load_fraction,
                                 double p) const
{
    const double lambda = arrivalRate(load_fraction);
    const double mu = 1000.0 / serviceTimeMs;
    const double t = perf::sojournPercentileApprox(
        static_cast<double>(threads), lambda, mu, svcMultAt(p), p);
    if (t == std::numeric_limits<double>::infinity())
        return t;
    return baseLatencyMs + 1000.0 * t;
}

perf::AppDemand
AppProfile::toDemand(double load_fraction) const
{
    perf::AppDemand d;
    d.latencyCritical = latencyCritical;
    d.arrivalRate = latencyCritical ? arrivalRate(load_fraction) : 0.0;
    d.serviceTimeMs = serviceTimeMs;
    d.ipcSolo = ipcSolo;
    d.threads = threads;
    d.cpi = cpi;
    return d;
}

void
calibrateLcProfile(AppProfile &profile,
                   const CalibrationTargets &targets)
{
    assert(profile.threads >= 1);
    assert(targets.maxLoadQps > 0.0);
    assert(targets.tailThresholdMs > targets.idealTailAt20Ms);

    profile.latencyCritical = true;
    profile.maxLoadQps = targets.maxLoadQps;
    profile.tailThresholdMs = targets.tailThresholdMs;
    profile.baseLatencyMs =
        targets.baseLatencyFrac * targets.idealTailAt20Ms;

    // The knee condition: the waiting component alone must account
    // for the p95 growth between 20% and 100% load.
    const double wait_gap =
        targets.tailThresholdMs - targets.idealTailAt20Ms;
    const double c = static_cast<double>(profile.threads);
    const double l_max = targets.maxLoadQps;

    // Bisection over the base service time. The upper bound is just
    // under the stability limit c / L; the waiting gap is monotone
    // increasing in the service time.
    double lo = 1e-6;
    double hi = 0.999 * 1000.0 * c / l_max;
    for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double gap = soloWait95Ms(mid, profile.threads, l_max) -
            soloWait95Ms(mid, profile.threads, 0.2 * l_max);
        if (gap < wait_gap)
            lo = mid;
        else
            hi = mid;
    }
    profile.serviceTimeMs = 0.5 * (lo + hi);

    // The service-tail multiplier picks up the remaining ideal tail.
    const double wait20 =
        soloWait95Ms(profile.serviceTimeMs, profile.threads,
                     0.2 * l_max);
    const double svc_tail = targets.idealTailAt20Ms -
        profile.baseLatencyMs - wait20;
    profile.svcP95Mult =
        std::max(0.02, svc_tail / profile.serviceTimeMs);
}

} // namespace ahq::apps

/**
 * @file
 * Application profiles: everything the node simulator needs to know
 * about one colocated application, plus the calibration solver that
 * fits the queueing parameters to the paper's published constants
 * (Table II ideal tail latencies, Table IV thresholds and max loads).
 */

#ifndef AHQ_APPS_PROFILE_HH
#define AHQ_APPS_PROFILE_HH

#include <string>

#include "perf/contention.hh"
#include "perf/cpi.hh"

namespace ahq::apps
{

/**
 * Static description of one application.
 *
 * LC applications are open-loop request servers characterised by a
 * base per-request service demand (serviceTimeMs), a service-tail
 * multiplier (svcP95Mult, the ratio of the p95 service time to the
 * mean), a fixed software/network latency floor (baseLatencyMs), a
 * QoS threshold M_i (tailThresholdMs) and a maximum sustainable load
 * (maxLoadQps). BE applications are characterised by their solo IPC.
 * Both carry a CPI/cache model for the contention substrate.
 */
struct AppProfile
{
    std::string name;
    bool latencyCritical = true;
    int threads = 4;

    // ---- LC parameters -------------------------------------------
    /** Base service demand per request, ms of one core at speed 1. */
    double serviceTimeMs = 1.0;

    /** p95 of the service time as a multiple of its mean. */
    double svcP95Mult = 3.0;

    /** Load-independent latency floor, ms. */
    double baseLatencyMs = 0.0;

    /** QoS target M_i: maximum tolerable p95 tail latency, ms. */
    double tailThresholdMs = 10.0;

    /** Maximum sustainable load, requests/second (Table IV). */
    double maxLoadQps = 1000.0;

    // ---- BE parameters -------------------------------------------
    /** IPC when running solo under ideal conditions. */
    double ipcSolo = 1.0;

    // ---- microarchitectural behaviour ----------------------------
    perf::CpiModel cpi;

    AppProfile()
        : cpi(perf::MissRateCurve(10.0, 1.0, 4.0), perf::CpiTraits{})
    {}

    /** Arrival rate at the given load fraction of max load. */
    double arrivalRate(double load_fraction) const;

    /**
     * Solo p95 tail latency at the given load fraction: the app on
     * the full machine at speed 1 (this is TL_i0 at that load, which
     * the paper obtains by temporarily isolating ample resources).
     */
    double soloTailP95Ms(double load_fraction) const;

    /**
     * Solo tail latency at an arbitrary percentile. The paper uses
     * the 95th "without losing generality" (§V); this generalises
     * the calibrated service tail by scaling its exceedance with
     * log(1-p), exact for exponential-tailed services.
     *
     * @param load_fraction Load as a fraction of max load.
     * @param p Percentile in (0, 1), e.g. 0.99.
     */
    double soloTailPercentileMs(double load_fraction,
                                double p) const;

    /** The calibrated service-tail multiplier at percentile p. */
    double svcMultAt(double p) const;

    /** Contention-model demand for this app at the given load. */
    perf::AppDemand toDemand(double load_fraction) const;
};

/** Published constants a profile is calibrated against. */
struct CalibrationTargets
{
    /** Max sustainable load (Table IV), requests/s. */
    double maxLoadQps;

    /** Tail latency threshold M_i (Table IV), ms. */
    double tailThresholdMs;

    /** Ideal p95 at 20% load (Table II where published), ms. */
    double idealTailAt20Ms;

    /** Fraction of the ideal tail attributed to the latency floor. */
    double baseLatencyFrac = 0.15;
};

/**
 * Fit (serviceTimeMs, svcP95Mult, baseLatencyMs) so that the solo
 * model reproduces the published constants:
 *
 *  - solo p95 at 100% load equals the tail threshold (the paper
 *    defines max load as the knee where p95 reaches the threshold);
 *  - solo p95 at 20% load equals the published ideal tail latency.
 *
 * The waiting-time term depends only on serviceTimeMs, so it is
 * solved first by bisection, then the service-tail multiplier picks
 * up the remainder. Modifies only the queueing fields of profile.
 *
 * @param profile In/out; threads must be set beforehand.
 * @param targets The published constants.
 */
void calibrateLcProfile(AppProfile &profile,
                        const CalibrationTargets &targets);

} // namespace ahq::apps

#endif // AHQ_APPS_PROFILE_HH

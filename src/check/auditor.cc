/**
 * @file
 * InvariantAuditor implementation.
 */

#include "check/auditor.hh"

#include <cmath>
#include <cstring>
#include <sstream>

#include "sched/arq.hh"
#include "sched/scheduler.hh"

namespace ahq::check
{

using machine::kAllResourceKinds;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

namespace
{

/** Record cap: a broken run would otherwise flood memory. */
constexpr std::size_t kMaxRecorded = 256;

/** Tolerance for reconstructed floating-point identities. */
constexpr double kEps = 1e-9;

bool
in01(double v)
{
    return std::isfinite(v) && v >= -kEps && v <= 1.0 + kEps;
}

std::string
describeRegion(const RegionLayout &layout, RegionId id)
{
    std::ostringstream os;
    os << "region " << id << " ('" << layout.region(id).name
       << "')";
    return os.str();
}

/** Whether two layouts hold identical per-region resources. */
bool
sameRes(const RegionLayout &a, const RegionLayout &b)
{
    if (a.numRegions() != b.numRegions())
        return false;
    for (int r = 0; r < a.numRegions(); ++r) {
        if (!(a.region(r).res == b.region(r).res))
            return false;
    }
    return true;
}

} // namespace

InvariantAuditor::InvariantAuditor(Mode mode, obs::Scope scope)
    : mode_(mode), obs_(std::move(scope))
{
}

void
InvariantAuditor::report(const char *check, std::string detail,
                         int epoch, double now_s)
{
    ++total_;
    if (violations_.size() < kMaxRecorded)
        violations_.push_back({check, detail, epoch, now_s});
    obs_.count("check.violations");
    obs_.count(std::string("check.violations.") + check);
    if (obs_.tracing()) {
        obs::Event ev("violation");
        ev.str("check", check).str("detail", detail).num("t", now_s);
        obs_.atEpoch(epoch).emit(ev);
    }
    if (mode_ == Mode::Strict) {
        throw InvariantViolation(
            {check, std::move(detail), epoch, now_s});
    }
}

void
InvariantAuditor::beginRun(const RegionLayout &initial, double now_s)
{
    havePreMove_ = false;
    banUntil_.clear();
    if (mode_ == Mode::Off)
        return;
    checkLayout(initial, -1, now_s);
}

void
InvariantAuditor::checkLayout(const RegionLayout &layout, int epoch,
                              double now_s)
{
    if (mode_ == Mode::Off)
        return;

    for (int r = 0; r < layout.numRegions(); ++r) {
        const machine::Region &region = layout.region(r);
        if (!region.res.nonNegative()) {
            report("capacity.non_negative",
                   describeRegion(layout, r) + " holds " +
                       region.res.toString(),
                   epoch, now_s);
        }
        if (!region.shared && region.members.size() != 1) {
            report("capacity.region_shape",
                   describeRegion(layout, r) + " is isolated but "
                       "has " +
                       std::to_string(region.members.size()) +
                       " members",
                   epoch, now_s);
        }
    }

    const auto allocated = layout.allocated();
    if (!allocated.fitsWithin(layout.available())) {
        report("capacity.fits",
               "allocated " + allocated.toString() +
                   " exceeds available " +
                   layout.available().toString(),
               epoch, now_s);
    }

    for (machine::AppId app : layout.allApps()) {
        if (layout.reachable(app, ResourceKind::Cores) < 1 ||
            layout.reachable(app, ResourceKind::LlcWays) < 1) {
            report("capacity.reachable",
                   "app " + std::to_string(app) +
                       " reaches no core or no LLC way",
                   epoch, now_s);
        }
    }
}

void
InvariantAuditor::afterDecision(const sched::Scheduler &scheduler,
                                const RegionLayout &before,
                                const RegionLayout &after, int epoch,
                                double now_s, bool degraded_inputs)
{
    if (mode_ == Mode::Off)
        return;

    checkLayout(after, epoch, now_s);

    if (after.allocated() != before.allocated()) {
        report("capacity.conserved",
               "decision changed the allocated total from " +
                   before.allocated().toString() + " to " +
                   after.allocated().toString(),
               epoch, now_s);
    }

    const auto *arq = dynamic_cast<const sched::Arq *>(&scheduler);
    if (arq == nullptr || after.numRegions() != before.numRegions())
        return;

    // Per-region unit deltas of this decision.
    int moved_units = 0;
    RegionId gainer = machine::kNoRegion;
    for (int r = 0; r < after.numRegions(); ++r) {
        for (ResourceKind kind : kAllResourceKinds) {
            const int d = after.region(r).res.get(kind) -
                before.region(r).res.get(kind);
            if (d > 0) {
                moved_units += d;
                gainer = r;
            }
        }
    }

    if (moved_units > 1) {
        report("arq.single_move",
               "ARQ moved " + std::to_string(moved_units) +
                   " units in one interval",
               epoch, now_s);
    }

    const std::string action =
        arq->lastAction() != nullptr ? arq->lastAction() : "";

    // A decision consuming a dropped (stale-repeat) sample must not
    // steer: ARQ's contract under degraded inputs is to skip, never
    // to move a unit or judge/cancel the previous move.
    if (degraded_inputs &&
        (action == "move" || action == "rollback")) {
        report("fault.no_stale_decision",
               "ARQ chose '" + action +
                   "' on an interval with dropped samples",
               epoch, now_s);
    }

    // Bans derived from rollbacks observed in *earlier* intervals:
    // while a ban is active the banned region must not be selected
    // as a victim, i.e. must not donate in a "move". (A banned
    // region may still *return* a unit when a move that benefited
    // it gets rolled back — bans constrain FINDVICTIMREGION only.)
    if (action == "move") {
        for (const auto &[region, until] : banUntil_) {
            if (now_s >= until || region >= before.numRegions())
                continue;
            for (ResourceKind kind : kAllResourceKinds) {
                const int d = after.region(region).res.get(kind) -
                    before.region(region).res.get(kind);
                if (d < 0) {
                    std::ostringstream os;
                    os << describeRegion(before, region)
                       << " is banned until t=" << until
                       << " s but donated " << -d << " "
                       << machine::toString(kind) << " at t="
                       << now_s;
                    report("arq.ban_honored", os.str(), epoch,
                           now_s);
                }
            }
        }
    }
    if (action == "move") {
        preMove_ = before;
        havePreMove_ = true;
    } else if (action == "rollback") {
        if (havePreMove_) {
            bool exact =
                after.numRegions() == preMove_.numRegions();
            for (int r = 0; exact && r < after.numRegions(); ++r) {
                exact = after.region(r).res ==
                    preMove_.region(r).res;
            }
            if (!exact) {
                report("arq.rollback_exact",
                       "rollback did not restore the "
                       "pre-adjustment allocation",
                       epoch, now_s);
            }
            havePreMove_ = false;
        }
        if (gainer != machine::kNoRegion) {
            banUntil_[gainer] =
                now_s + arq->config().banSeconds;
        }
    }
}

void
InvariantAuditor::afterActuation(const RegionLayout &intended,
                                 const RegionLayout &applied,
                                 bool ok, int epoch, double now_s)
{
    if (mode_ == Mode::Off)
        return;

    if (ok) {
        if (!sameRes(applied, intended)) {
            report("fault.reconciled",
                   "actuation reported ok but the applied layout "
                   "differs from the intended one",
                   epoch, now_s);
        }
        return;
    }

    // A failed actuation must still leave the knobs in a valid
    // state: capacity invariants hold and the allocated totals are
    // conserved (partial applies flip whole resource kinds, so the
    // per-kind sums cannot change).
    checkLayout(applied, epoch, now_s);
    if (applied.allocated() != intended.allocated()) {
        report("fault.reconciled",
               "failed actuation changed the allocated total from " +
                   intended.allocated().toString() + " to " +
                   applied.allocated().toString(),
               epoch, now_s);
    }
}

void
InvariantAuditor::checkEntropy(const core::EntropyReport &report_in,
                               double ri, bool has_lc, bool has_be,
                               int epoch, double now_s)
{
    if (mode_ == Mode::Off)
        return;

    auto bad_range = [&](const char *what, double v) {
        std::ostringstream os;
        os << what << " = " << v << " outside [0, 1]";
        report("entropy.range", os.str(), epoch, now_s);
    };
    if (!in01(report_in.eLc))
        bad_range("E_LC", report_in.eLc);
    if (!in01(report_in.eBe))
        bad_range("E_BE", report_in.eBe);
    if (!in01(report_in.eS))
        bad_range("E_S", report_in.eS);

    for (std::size_t i = 0; i < report_in.lcDetail.size(); ++i) {
        const core::LcBreakdown &b = report_in.lcDetail[i];
        if (!in01(b.tolerance) || !in01(b.interference) ||
            !in01(b.remainingTolerance) || !in01(b.intolerable)) {
            report("entropy.breakdown_range",
                   "lc app " + std::to_string(i) +
                       " has an Eq. 1-4 term outside [0, 1]",
                   epoch, now_s);
        }
        // Eq. 3-4: ReT_i > 0 requires A_i >= R_i, Q_i > 0 requires
        // R_i >= A_i, so the two can never be positive together.
        if (b.remainingTolerance > kEps && b.intolerable > kEps) {
            std::ostringstream os;
            os << "lc app " << i << " has ReT = "
               << b.remainingTolerance << " and Q = "
               << b.intolerable << " simultaneously";
            report("entropy.ret_q_exclusive", os.str(), epoch,
                   now_s);
        }
        if ((b.remainingTolerance > kEps &&
             b.tolerance < b.interference - kEps) ||
            (b.intolerable > kEps &&
             b.interference < b.tolerance - kEps)) {
            report("entropy.ret_q_exclusive",
                   "lc app " + std::to_string(i) +
                       " ReT/Q inconsistent with A_i vs R_i",
                   epoch, now_s);
        }
    }

    // Eq. 7, including the degenerate single-class scenarios.
    double expected;
    if (has_lc && !has_be)
        expected = report_in.eLc;
    else if (!has_lc && has_be)
        expected = report_in.eBe;
    else if (!has_lc && !has_be)
        expected = 0.0;
    else
        expected = ri * report_in.eLc + (1.0 - ri) * report_in.eBe;
    if (std::abs(report_in.eS - expected) > kEps) {
        std::ostringstream os;
        os << "E_S = " << report_in.eS << " but RI weighting gives "
           << expected;
        report("entropy.weighting", os.str(), epoch, now_s);
    }
}

void
InvariantAuditor::afterEpoch(const core::EntropyReport &report_in,
                             double ri, bool has_lc, bool has_be,
                             int epoch, double now_s)
{
    if (mode_ == Mode::Off)
        return;
    checkEntropy(report_in, ri, has_lc, has_be, epoch, now_s);
}

void
InvariantAuditor::checkP2(const stats::P2Quantile &estimator,
                          int epoch, double now_s)
{
    if (mode_ == Mode::Off)
        return;

    const auto heights = estimator.markerHeights();
    for (std::size_t i = 1; i < heights.size(); ++i) {
        if (!(heights[i] >= heights[i - 1])) { // NaN-proof compare
            std::ostringstream os;
            os << "marker heights not monotone: h[" << i - 1
               << "] = " << heights[i - 1] << ", h[" << i
               << "] = " << heights[i];
            report("p2.markers_monotone", os.str(), epoch, now_s);
        }
    }
    const auto positions = estimator.markerPositions();
    for (std::size_t i = 1; i < positions.size(); ++i) {
        if (!(positions[i] > positions[i - 1])) {
            std::ostringstream os;
            os << "marker positions not strictly increasing: n["
               << i - 1 << "] = " << positions[i - 1] << ", n["
               << i << "] = " << positions[i];
            report("p2.positions_ordered", os.str(), epoch, now_s);
        }
    }
}

} // namespace ahq::check

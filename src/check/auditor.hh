/**
 * @file
 * The InvariantAuditor: continuous audits of scheduler decisions
 * and simulator epochs.
 *
 * The auditor rides the same obs::Scope plumbing the tracing layer
 * threads through SimulationConfig. The epoch simulator calls
 * afterDecision() after every scheduler adjustment and afterEpoch()
 * after every entropy computation; the randomized sweep driver in
 * tests/check/ additionally aims the component checks (checkLayout,
 * checkEntropy, checkP2) at adversarial inputs.
 *
 * With Mode::Off every hook is one branch; in Mode::Log violations
 * are recorded, counted (`check.violations`) and emitted as
 * schema-versioned JSONL `violation` events while tracing; in
 * Mode::Strict the first violation throws InvariantViolation.
 */

#ifndef AHQ_CHECK_AUDITOR_HH
#define AHQ_CHECK_AUDITOR_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "check/check.hh"
#include "core/entropy.hh"
#include "machine/layout.hh"
#include "obs/scope.hh"
#include "stats/percentile.hh"

namespace ahq::sched
{
class Scheduler;
}

namespace ahq::check
{

/**
 * Audits the allocation, entropy-accounting and controller-FSM
 * invariants of one simulation run. One auditor instance per run;
 * not shared across threads (each parallel scenario job owns its
 * own, exactly like its RNG).
 */
class InvariantAuditor
{
  public:
    /**
     * @param mode Audit mode (Off disables every hook).
     * @param scope Telemetry destination for violation events and
     *        the check.violations counter (optional).
     */
    explicit InvariantAuditor(Mode mode, obs::Scope scope = {});

    /** Whether any auditing happens at all. */
    bool enabled() const { return mode_ != Mode::Off; }

    Mode mode() const { return mode_; }

    /**
     * Start auditing a run: validate the initial layout and reset
     * the controller-tracking state.
     */
    void beginRun(const machine::RegionLayout &initial, double now_s);

    /**
     * Audit one scheduler decision (layout before vs after
     * Scheduler::adjust). Runs the capacity checks on the new
     * layout plus the ARQ FSM-legality checks when the scheduler
     * is an ARQ instance.
     *
     * @param degraded_inputs Whether any observation fed into this
     *        decision was a stale repeat (fault injection); an ARQ
     *        move/rollback on such inputs violates
     *        fault.no_stale_decision.
     */
    void afterDecision(const sched::Scheduler &scheduler,
                       const machine::RegionLayout &before,
                       const machine::RegionLayout &after, int epoch,
                       double now_s, bool degraded_inputs = false);

    /**
     * Audit one actuation outcome (fault injection): an `ok`
     * actuation must have applied exactly the intended layout, and
     * a failed one must still leave a capacity-valid layout whose
     * allocated totals match the intent (per-kind conservation of
     * partial applies) — the reconciliation invariant.
     */
    void afterActuation(const machine::RegionLayout &intended,
                        const machine::RegionLayout &applied,
                        bool ok, int epoch, double now_s);

    /**
     * Audit one simulator epoch's entropy accounting.
     *
     * @param report The interval's entropy report.
     * @param ri Relative importance used for E_S.
     * @param has_lc Whether any LC observations entered the report.
     * @param has_be Whether any BE observations entered the report.
     */
    void afterEpoch(const core::EntropyReport &report, double ri,
                    bool has_lc, bool has_be, int epoch,
                    double now_s);

    // ---- component checks (also driven directly by tests) -------

    /** Capacity invariants of one layout. */
    void checkLayout(const machine::RegionLayout &layout, int epoch,
                     double now_s);

    /** Entropy range / consistency invariants of one report. */
    void checkEntropy(const core::EntropyReport &report, double ri,
                      bool has_lc, bool has_be, int epoch,
                      double now_s);

    /** P-square marker sanity of one streaming estimator. */
    void checkP2(const stats::P2Quantile &estimator, int epoch = -1,
                 double now_s = 0.0);

    /**
     * Violations recorded so far (capped at 256 entries; the
     * counter below keeps the true total).
     */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Total violations observed, including past the record cap. */
    std::size_t violationCount() const { return total_; }

  private:
    /**
     * Record one violation: append, count, emit the JSONL event,
     * and throw InvariantViolation in strict mode.
     */
    void report(const char *check, std::string detail, int epoch,
                double now_s);

    Mode mode_;
    obs::Scope obs_;

    std::vector<Violation> violations_;
    std::size_t total_ = 0;

    // ---- ARQ FSM tracking ---------------------------------------

    /** Layout in force before the most recent ARQ "move". */
    machine::RegionLayout preMove_{machine::ResourceVector{}};
    bool havePreMove_ = false;

    /** Region id -> ban expiry derived from observed rollbacks. */
    std::map<machine::RegionId, double> banUntil_;
};

} // namespace ahq::check

#endif // AHQ_CHECK_AUDITOR_HH

/**
 * @file
 * Audit modes and the registry of named checks.
 */

#include "check/check.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ahq::check
{

Mode
modeFromString(const std::string &name)
{
    std::string low = name;
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (low.empty() || low == "off" || low == "0")
        return Mode::Off;
    if (low == "log")
        return Mode::Log;
    if (low == "strict")
        return Mode::Strict;
    throw std::invalid_argument(
        "unknown check mode: '" + name +
        "' (expected off, log or strict)");
}

const char *
toString(Mode mode)
{
    switch (mode) {
      case Mode::Off:
        return "off";
      case Mode::Log:
        return "log";
      case Mode::Strict:
        return "strict";
    }
    return "off";
}

Mode
modeFromEnv()
{
    const char *env = std::getenv("AHQ_CHECK");
    return modeFromString(env != nullptr ? env : "");
}

InvariantViolation::InvariantViolation(Violation violation)
    : std::runtime_error("invariant violated: " + violation.check +
                         ": " + violation.detail),
      violation_(std::move(violation))
{
}

const std::vector<CheckInfo> &
registeredChecks()
{
    static const std::vector<CheckInfo> checks{
        {"capacity.non_negative", "§IV",
         "every region's cores / LLC ways / MB units are >= 0"},
        {"capacity.fits", "§IV",
         "the sum of region resources never exceeds the machine's "
         "available resources (no oversubscription)"},
        {"capacity.conserved", "§IV",
         "a scheduler decision neither creates nor destroys "
         "resource units (the allocated total is unchanged)"},
        {"capacity.reachable", "§IV",
         "every member application can reach at least one core and "
         "one LLC way through its regions"},
        {"capacity.region_shape", "§IV",
         "isolated regions hold exactly one member application, "
         "disjoint from the shared region's resources"},
        {"entropy.range", "Eq. 5-7",
         "E_LC, E_BE and E_S are finite and lie in [0, 1]"},
        {"entropy.breakdown_range", "Eq. 1-4",
         "per-app A_i, R_i, ReT_i and Q_i lie in [0, 1]"},
        {"entropy.ret_q_exclusive", "Eq. 3-4",
         "ReT_i and Q_i are mutually exclusive and consistent with "
         "the A_i / R_i ordering"},
        {"entropy.weighting", "Eq. 7",
         "E_S equals RI * E_LC + (1 - RI) * E_BE, degenerating to "
         "the present class when only one class runs"},
        {"arq.single_move", "Alg. 1",
         "ARQ moves at most one resource unit per monitoring "
         "interval"},
        {"arq.rollback_exact", "Alg. 1",
         "a rollback restores the pre-adjustment allocation "
         "bit-for-bit"},
        {"arq.ban_honored", "Alg. 1",
         "a penalty-banned victim region donates nothing for the "
         "full ban window (60 s by default)"},
        {"p2.markers_monotone", "§V (P-square)",
         "the five P2 marker heights are non-decreasing"},
        {"p2.positions_ordered", "§V (P-square)",
         "the five P2 marker positions are strictly increasing"},
        {"fault.no_stale_decision", "fault injection",
         "no ARQ move/rollback consumes a dropped (stale-repeat) "
         "sample; degraded intervals must skip"},
        {"fault.reconciled", "fault injection",
         "after any actuation outcome the live layout is valid, "
         "conserves allocated totals, and matches the intent "
         "whenever the actuation reported success"},
    };
    return checks;
}

bool
isRegisteredCheck(const std::string &name)
{
    const auto &checks = registeredChecks();
    return std::any_of(checks.begin(), checks.end(),
                       [&](const CheckInfo &c) {
                           return c.name == name;
                       });
}

} // namespace ahq::check

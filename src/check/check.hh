/**
 * @file
 * The invariant-audit vocabulary: audit modes, violations and the
 * registry of named checks.
 *
 * The model the ARQ control loop steers is only trustworthy if it
 * obeys the paper's invariants — E_S ∈ [0, 1] (Eqs. 5–7),
 * allocations that never oversubscribe the machine, rollbacks that
 * restore the exact prior allocation, penalty bans that last the
 * full window. The library asserts some of these, but the tier-1
 * build compiles with NDEBUG, so asserts vanish exactly where the
 * paper-scale runs happen. src/check/ is the always-compiled,
 * opt-in replacement: an InvariantAuditor (auditor.hh) hooked into
 * the epoch loop, governed by the AHQ_CHECK environment variable.
 *
 *   AHQ_CHECK=off     (default) one branch per hook, nothing else
 *   AHQ_CHECK=log     record violations, count check.violations,
 *                     emit a JSONL `violation` event when tracing
 *   AHQ_CHECK=strict  additionally throw InvariantViolation
 *
 * docs/INVARIANTS.md lists every registered check with its paper
 * equation reference.
 */

#ifndef AHQ_CHECK_CHECK_HH
#define AHQ_CHECK_CHECK_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace ahq::check
{

/** How hard the auditor reacts to a violated invariant. */
enum class Mode
{
    /** Checks disabled; hooks cost one branch. */
    Off,

    /** Record + report violations, keep running. */
    Log,

    /** Record + report, then throw InvariantViolation. */
    Strict,
};

/**
 * Parse an audit mode name ("off", "log", "strict";
 * case-insensitive, empty = Off).
 *
 * @throws std::invalid_argument for anything else.
 */
Mode modeFromString(const std::string &name);

/** Render a mode name ("off" / "log" / "strict"). */
const char *toString(Mode mode);

/**
 * The mode requested through the AHQ_CHECK environment variable
 * (unset or empty = Off). Re-read on every call so tests can flip
 * the variable within one process.
 *
 * @throws std::invalid_argument when the variable holds an unknown
 *         mode name.
 */
Mode modeFromEnv();

/** One violated invariant. */
struct Violation
{
    /** Registered check name, e.g. "capacity.conserved". */
    std::string check;

    /** Human-readable description of what was observed. */
    std::string detail;

    /** Epoch index at the violation; -1 outside the epoch loop. */
    int epoch = -1;

    /** Simulated time at the violation, seconds. */
    double time = 0.0;
};

/** Raised by strict-mode audits; carries the violation. */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(Violation violation);

    const Violation &violation() const { return violation_; }

  private:
    Violation violation_;
};

/** Registry metadata for one named check. */
struct CheckInfo
{
    /** Stable name stamped into violation events. */
    std::string name;

    /** Paper anchor ("Eq. 5", "Alg. 1", …) or "—". */
    std::string reference;

    /** One-line description of the invariant. */
    std::string summary;
};

/**
 * Every check the auditor can raise, in documentation order. The
 * list is the source for docs/INVARIANTS.md and `ahq checks`.
 */
const std::vector<CheckInfo> &registeredChecks();

/** Whether the given name is a registered check. */
bool isRegisteredCheck(const std::string &name);

} // namespace ahq::check

#endif // AHQ_CHECK_CHECK_HH

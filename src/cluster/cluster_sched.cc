/**
 * @file
 * Cluster scheduler implementation.
 */

#include "cluster/cluster_sched.hh"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "apps/catalog.hh"
#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "sched/registry.hh"

namespace ahq::cluster
{

namespace
{

/** Seed salt decorrelating the RNG streams of rebalance rounds. */
constexpr std::uint64_t kRoundSeedSalt = 0xc1a5;

} // namespace

ClusterScheduler::ClusterScheduler(ClusterConfig config,
                                   std::string strategy)
    : cfg(config), strategy_(std::move(strategy))
{
    assert(cfg.rounds >= 1);
    assert(cfg.roundEpochs > cfg.roundWarmupEpochs);
}

void
ClusterScheduler::addNode(machine::MachineConfig config,
                          std::vector<ColocatedApp> apps)
{
    configs_.push_back(std::move(config));
    apps_.push_back(std::move(apps));
}

ClusterResult
ClusterScheduler::run(const SimulationConfig &base,
                      exec::ThreadPool *pool)
{
    assert(numNodes() > 0);
    ClusterResult out;
    const obs::Scope &scope = base.obs;
    const bool tracing = scope.tracing();
    exec::ThreadPool &p = pool ? *pool : exec::globalPool();
    const std::size_t nn = configs_.size();
    constexpr double kInf = std::numeric_limits<double>::infinity();

    if (tracing) {
        obs::Event ev("cluster_start");
        ev.integer("nodes", numNodes())
            .integer("rounds", cfg.rounds)
            .num("spread_threshold", cfg.spreadThreshold)
            .integer("seed", static_cast<long long>(base.seed));
        scope.emit(ev);
    }

    // Short, unaudited, untraced trial runs drive every migration
    // decision; one fixed seed keeps candidates comparable and the
    // whole search deterministic per (nodes, config, seed).
    SimulationConfig trial = base;
    trial.obs = {};
    trial.checkMode = check::Mode::Off;
    trial.faults = nullptr;
    trial.durationSeconds = cfg.trialSeconds;
    trial.warmupEpochs = cfg.trialWarmupEpochs;
    trial.keepEpochs = false;

    auto node_es = [&](std::size_t n,
                       const std::vector<ColocatedApp> &set) {
        if (set.empty())
            return 0.0;
        Node node(configs_[n], set);
        EpochSimulator sim(node, trial);
        const auto sched = sched::makeScheduler(strategy_);
        return sim.run(*sched).meanES;
    };

    // Per-node mean E_S estimate: measured each round, patched
    // from trial values between migrations within a rebalance.
    std::vector<double> node_mean(nn, 0.0);
    auto spread_of = [&] {
        double lo = kInf, hi = -kInf;
        for (std::size_t n = 0; n < nn; ++n) {
            if (apps_[n].empty())
                continue;
            lo = std::min(lo, node_mean[n]);
            hi = std::max(hi, node_mean[n]);
        }
        return hi >= lo ? hi - lo : 0.0;
    };

    // Round after which each app instance last migrated, parallel
    // to apps_ (slot-for-slot), driving the per-app cooldown. The
    // sentinel keeps round 0 eligible for any cooldown length.
    constexpr int kNeverMoved = -(1 << 20);
    std::vector<std::vector<int>> last_moved(nn);
    for (std::size_t n = 0; n < nn; ++n)
        last_moved[n].assign(apps_[n].size(), kNeverMoved);

    FleetAccumulator pooled;
    for (int r = 0; r < cfg.rounds; ++r) {
        // ---- measurement round: every node in parallel ----------
        std::vector<obs::BufferTraceSink> buffers(tracing ? nn : 0);
        std::vector<SimulationResult> results(nn);
        std::vector<FleetAccumulator> accums(nn);
        exec::parallelFor(p, nn, [&](std::size_t n) {
            SimulationConfig per_node = base;
            per_node.durationSeconds =
                cfg.roundEpochs * base.epochSeconds;
            per_node.warmupEpochs = cfg.roundWarmupEpochs;
            per_node.keepEpochs = false;
            per_node.seed = base.seed + 0x9e37 * (n + 1) +
                kRoundSeedSalt * static_cast<std::uint64_t>(r + 1);
            if (tracing || scope.series != nullptr) {
                per_node.obs = scope.tagged(
                    (scope.scenario.empty()
                         ? ""
                         : scope.scenario + "/") +
                    "round" + std::to_string(r) + "/node" +
                    std::to_string(n));
                if (tracing)
                    per_node.obs.sink = &buffers[n];
            }
            Node node(configs_[n], apps_[n]);
            EpochSimulator sim(node, per_node);
            const auto sched = sched::makeScheduler(strategy_);
            results[n] = sim.run(*sched);
            accums[n].add(node, results[n]);
        });
        if (tracing) {
            for (std::size_t n = 0; n < nn; ++n)
                buffers[n].flushTo(*scope.sink);
        }
        // Cold windows are consumed by the round that just ran
        // (roundEpochs >= the window): every app is warm again
        // until the next migration marks one cold.
        for (auto &node_apps : apps_) {
            for (auto &app : node_apps) {
                app.coldEpochs = 0;
                app.coldPenalty = 0.0;
            }
        }

        FleetAccumulator round_pool;
        for (const auto &acc : accums)
            round_pool.merge(acc);
        const auto rep = round_pool.entropy(base.ri);
        for (std::size_t n = 0; n < nn; ++n)
            node_mean[n] = results[n].meanES;
        const double spread = spread_of();
        out.roundES.push_back(rep.eS);
        out.roundSpread.push_back(spread);
        out.violations += round_pool.violations;
        pooled.merge(round_pool);
        // (round, node)-ordered merges keep the pooled ledger bits
        // independent of which worker ran which node.
        for (std::size_t n = 0; n < nn; ++n) {
            out.attribution.merge(results[n].attribution);
            out.slo.merge(results[n].slo);
        }
        scope.count("cluster.rounds");
        if (tracing) {
            obs::Event ev("cluster_round");
            ev.integer("round", r)
                .num("e_lc", rep.eLc)
                .num("e_be", rep.eBe)
                .num("e_s", rep.eS)
                .num("spread", spread)
                .integer("violations", round_pool.violations);
            scope.emit(ev);
        }

        // ---- rebalance: migrate off the hottest node ------------
        if (r == cfg.rounds - 1)
            break;
        int done = 0;
        while (spread_of() > cfg.spreadThreshold &&
               done < cfg.maxMigrationsPerRound) {
            // Hottest node that can give an app up (>= 2 apps, so
            // a migration rebalances instead of just relocating a
            // whole node's workload).
            int hot = -1;
            double hot_es = -kInf;
            for (std::size_t n = 0; n < nn; ++n) {
                if (apps_[n].size() >= 2 && node_mean[n] > hot_es) {
                    hot_es = node_mean[n];
                    hot = static_cast<int>(n);
                }
            }
            if (hot < 0)
                break;
            const auto uh = static_cast<std::size_t>(hot);

            // Victim: the app whose removal lowers the hot node's
            // entropy the most (argmin residual E_S, app order),
            // skipping apps still in their migration cooldown —
            // an app bounced last rebalance must settle before it
            // may move again.
            std::vector<double> residual(apps_[uh].size(), kInf);
            exec::parallelFor(
                p, apps_[uh].size(), [&](std::size_t i) {
                    if (r - last_moved[uh][i] <
                        cfg.migrationCooldownRounds)
                        return;
                    auto rest = apps_[uh];
                    rest.erase(rest.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    residual[i] = node_es(uh, rest);
                });
            std::size_t victim = 0;
            double victim_es = kInf;
            for (std::size_t i = 0; i < residual.size(); ++i) {
                if (residual[i] < victim_es) {
                    victim_es = residual[i];
                    victim = i;
                }
            }
            if (!std::isfinite(victim_es))
                break; // every app on the hot node is cooling down

            // Destination: where the victim disturbs least. The
            // trial colocation charges the migration cost — the
            // candidate arrives cold — so a move that only pays
            // off ignoring its own disruption is not taken.
            std::vector<double> dest_es(nn, kInf);
            exec::parallelFor(p, nn, [&](std::size_t d) {
                if (d == uh)
                    return;
                auto set = apps_[d];
                set.push_back(apps_[uh][victim]);
                set.back().coldEpochs = cfg.migrationCostEpochs;
                set.back().coldPenalty = cfg.migrationPenalty;
                dest_es[d] = node_es(d, set);
            });
            int dest = -1;
            double best = kInf;
            for (std::size_t d = 0; d < nn; ++d) {
                if (d != uh && dest_es[d] < best) {
                    best = dest_es[d];
                    dest = static_cast<int>(d);
                }
            }
            if (dest < 0)
                break;
            const auto ud = static_cast<std::size_t>(dest);

            // Hysteresis: apply only if the trial-projected spread
            // improves by at least the configured margin. Without
            // it, two near-equal nodes trade the same app forever
            // on trial noise alone.
            const double spread_now = spread_of();
            const double mean_h = node_mean[uh];
            const double mean_d = node_mean[ud];
            node_mean[uh] = victim_es;
            node_mean[ud] = dest_es[ud];
            const double spread_next = spread_of();
            if (cfg.migrationEpsilon > 0.0 &&
                spread_now - spread_next < cfg.migrationEpsilon) {
                node_mean[uh] = mean_h;
                node_mean[ud] = mean_d;
                break; // best available move is not worth taking
            }

            ColocatedApp moved = apps_[uh][victim];
            moved.coldEpochs = cfg.migrationCostEpochs;
            moved.coldPenalty = cfg.migrationPenalty;
            apps_[uh].erase(apps_[uh].begin() +
                            static_cast<std::ptrdiff_t>(victim));
            last_moved[uh].erase(
                last_moved[uh].begin() +
                static_cast<std::ptrdiff_t>(victim));
            apps_[ud].push_back(std::move(moved));
            last_moved[ud].push_back(r);
            out.migrations.push_back(
                {r, hot, dest, apps_[ud].back().profile.name});
            scope.count("cluster.migrations");
            scope.count("cluster.migration_cost_epochs",
                        cfg.migrationCostEpochs);
            if (tracing) {
                obs::Event ev("cluster_migrate");
                ev.integer("round", r)
                    .str("app", apps_[ud].back().profile.name)
                    .integer("from", hot)
                    .integer("to", dest)
                    .integer("cost_epochs", cfg.migrationCostEpochs);
                // With attribution on, the migration cites who was
                // hurting the moved app on the node it is leaving
                // ("" for BE apps — the ledger only has LC victims).
                if (base.attribute)
                    ev.str("blame",
                           results[uh].attribution.topBlame(
                               apps_[ud].back().profile.name));
                scope.emit(ev);
            }
            ++done;
        }
    }

    const auto rep = pooled.entropy(base.ri);
    out.eLc = rep.eLc;
    out.eBe = rep.eBe;
    out.eS = rep.eS;
    out.yieldValue = rep.yieldValue;
    out.finalNodeES = node_mean;
    for (std::size_t n = 0; n < nn; ++n)
        out.finalAppsPerNode.push_back(
            static_cast<int>(apps_[n].size()));

    if (tracing) {
        obs::Event ev("cluster_end");
        ev.num("e_lc", out.eLc)
            .num("e_be", out.eBe)
            .num("e_s", out.eS)
            .num("yield", out.yieldValue)
            .integer("violations", out.violations)
            .integer("migrations",
                     static_cast<long long>(out.migrations.size()));
        scope.emit(ev);
    }
    scope.count("cluster.runs");
    return out;
}

std::vector<ColocatedApp>
fleetNodeApps(const trace::FleetLoadGenerator &gen, int node)
{
    const auto &fc = gen.config();
    using Maker = apps::AppProfile (*)();
    // Tenant rank picks the LC profile, so every replica of a
    // tenant runs the same application; BE fillers just cycle.
    static constexpr Maker kLc[] = {apps::xapian,   apps::moses,
                                    apps::imgDnn,   apps::sphinx,
                                    apps::masstree, apps::silo};
    static constexpr Maker kBe[] = {apps::stream, apps::fluidanimate,
                                    apps::streamcluster};
    std::vector<ColocatedApp> out;
    out.reserve(static_cast<std::size_t>(fc.lcPerNode) +
                static_cast<std::size_t>(fc.bePerNode));
    for (int s = 0; s < fc.lcPerNode; ++s) {
        const std::uint64_t rank = gen.tenant(node, s);
        auto prof = kLc[(rank - 1) % std::size(kLc)]();
        prof.name += "#t" + std::to_string(rank);
        out.push_back(
            lcWith(std::move(prof), gen.tenantTrace(rank)));
    }
    for (int s = 0; s < fc.bePerNode; ++s) {
        out.push_back(be(kBe[static_cast<std::size_t>(node + s) %
                            std::size(kBe)]()));
    }
    return out;
}

} // namespace ahq::cluster

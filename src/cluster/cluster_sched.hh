/**
 * @file
 * The cluster-level control plane: a scheduler *above* the per-node
 * schedulers, in the two-level split of datacenter reference
 * architectures — nodes partition their own resources every epoch
 * (Ah-Q / ARQ territory), while the cluster layer watches per-node
 * entropy and migrates applications between nodes when the
 * fleet-wide E_S spread says one node is absorbing far more
 * interference than its peers.
 */

#ifndef AHQ_CLUSTER_CLUSTER_SCHED_HH
#define AHQ_CLUSTER_CLUSTER_SCHED_HH

#include <string>
#include <vector>

#include "cluster/fleet.hh"
#include "trace/fleet_load.hh"

namespace ahq::cluster
{

/** Cluster-layer tunables. */
struct ClusterConfig
{
    /** Epochs simulated per rebalance round. */
    int roundEpochs = 20;

    /** Warmup epochs excluded from each round's aggregates. */
    int roundWarmupEpochs = 4;

    /** Number of rounds (migrations happen between rounds). */
    int rounds = 3;

    /**
     * Migrate only while the fleet-wide spread of per-node mean
     * E_S (max - min over occupied nodes) exceeds this.
     */
    double spreadThreshold = 0.10;

    /** Migration budget per inter-round rebalance. */
    int maxMigrationsPerRound = 1;

    /** Duration of each trial simulation, seconds. */
    double trialSeconds = 4.0;

    /** Warmup epochs of each trial simulation. */
    int trialWarmupEpochs = 2;

    /**
     * Hysteresis margin: apply a candidate migration only when the
     * trial-projected spread improves by at least this much. Two
     * near-equal nodes otherwise ping-pong an app between them
     * every rebalance (the trial noise alone flips which node
     * looks hotter). 0 restores the greedy pre-hysteresis
     * behaviour.
     */
    double migrationEpsilon = 0.01;

    /**
     * Per-app cooldown: an app migrated after round r is not
     * eligible to migrate again before round r + cooldown. Breaks
     * the remaining oscillation mode (A→B this round, B→A the
     * next) that a spread margin alone cannot, because the spread
     * genuinely alternates sign. 0 disables.
     */
    int migrationCooldownRounds = 2;

    /**
     * Cold-start window charged to every migration: the moved app
     * runs its first migrationCostEpochs epochs on the new node
     * with service degraded by migrationPenalty (decaying
     * linearly), in both the destination trial and the next live
     * round — a real migration drains the app and re-warms caches,
     * so a move is never free. 0 epochs restores free migrations.
     */
    int migrationCostEpochs = 4;

    /** Peak fractional service degradation of the cold window. */
    double migrationPenalty = 0.25;
};

/** One migration decision. */
struct Migration
{
    /** Round after which the migration was applied. */
    int round = 0;

    int fromNode = 0;
    int toNode = 0;

    /** Name of the migrated application. */
    std::string app;
};

/** Outcome of a ClusterScheduler run. */
struct ClusterResult
{
    /** Fleet-pooled E_S per round, in round order. */
    std::vector<double> roundES;

    /** Per-round spread of node mean E_S (max - min, occupied). */
    std::vector<double> roundSpread;

    /** Entropy pooled over every round's steady state. */
    double eLc = 0.0;
    double eBe = 0.0;
    double eS = 0.0;
    double yieldValue = 1.0;

    /** QoS violations over all rounds and nodes. */
    long long violations = 0;

    /** Applied migrations, in application order. */
    std::vector<Migration> migrations;

    /** Per-node mean E_S measured in the final round. */
    std::vector<double> finalNodeES;

    /** Apps per node after the final round. */
    std::vector<int> finalAppsPerNode;

    /**
     * Attribution ledger pooled over every measurement round in
     * (round, node) order; empty unless the base SimulationConfig
     * sets `attribute`. The same ledger backs the `blame` field
     * migrations cite in `cluster_migrate` trace events.
     */
    obs::AttributionLedger attribution;

    /** Summed alert accounting (zeros unless base config slo). */
    obs::SloSummary slo;
};

/**
 * Entropy-driven cluster scheduler.
 *
 * run() alternates measurement rounds (every node simulates
 * roundEpochs epochs in parallel, aggregated with the same
 * streaming accumulators Fleet uses) with rebalance steps: while
 * the spread of per-node mean E_S exceeds spreadThreshold, the
 * scheduler picks the hottest node (argmax mean E_S, >= 2 apps),
 * finds the app whose removal lowers that node's entropy most
 * (PlacementAdvisor-style trial simulations), and migrates it to
 * the node where a trial colocation yields the lowest E_S. All
 * trials run on the pool; every argmin/argmax scans in index order
 * with strict comparison, so the whole run is deterministic per
 * (nodes, config, seed) at any thread count.
 */
class ClusterScheduler
{
  public:
    /**
     * @param config Cluster-layer tunables.
     * @param strategy Per-node scheduling strategy name (see
     *        sched::allStrategyNames()); each node gets a fresh
     *        instance per round, and each trial its own.
     */
    ClusterScheduler(ClusterConfig config, std::string strategy);

    /** Add a node (its machine plus initial colocation). */
    void addNode(machine::MachineConfig config,
                 std::vector<ColocatedApp> apps);

    int numNodes() const
    {
        return static_cast<int>(configs_.size());
    }

    /** Current colocation of one node (mutated by migrations). */
    const std::vector<ColocatedApp> &apps(int node) const
    {
        return apps_[static_cast<std::size_t>(node)];
    }

    /**
     * Run the full measurement/rebalance loop. `base` supplies the
     * epoch length, seed, noise model and telemetry scope; its
     * duration/warmup fields are overridden per round from the
     * ClusterConfig.
     *
     * @param pool Pool to fan out on; nullptr = globalPool().
     */
    ClusterResult run(const SimulationConfig &base,
                      exec::ThreadPool *pool = nullptr);

  private:
    ClusterConfig cfg;
    std::string strategy_;
    std::vector<machine::MachineConfig> configs_;
    std::vector<std::vector<ColocatedApp>> apps_;
};

/**
 * Materialize one node's colocation from the global load
 * generator: cfg.lcPerNode LC apps — each assigned a tenant
 * (Zipf-skewed) whose shared diurnal/flash trace drives its load,
 * profile cycled from the LC catalogue by tenant rank and tagged
 * "#t<rank>" — plus cfg.bePerNode BE fillers cycled from the BE
 * catalogue. Pure function of (generator, node): any subrange of a
 * 10k-node fleet materializes independently and identically.
 */
std::vector<ColocatedApp>
fleetNodeApps(const trace::FleetLoadGenerator &gen, int node);

} // namespace ahq::cluster

#endif // AHQ_CLUSTER_CLUSTER_SCHED_HH

/**
 * @file
 * Epoch simulator implementation.
 */

#include "cluster/epoch_sim.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <string>

#include "check/auditor.hh"
#include "fault/injector.hh"
#include "obs/span.hh"
#include "obs/timeseries.hh"
#include "perf/queueing.hh"
#include "stats/rng.hh"

namespace ahq::cluster
{

using machine::AppId;
using machine::ResourceKind;

namespace
{

/**
 * Load cap for fault-injected spikes: a spike may push an LC app to
 * the brink of saturation but not beyond it (load generators are
 * closed-loop), and never below its unspiked load when increasing.
 */
constexpr double kSpikeLoadCap = 0.95;

} // namespace

bool
epochTraceSampled(std::uint64_t seed, int epoch, double rate)
{
    if (rate >= 1.0)
        return true;
    if (rate <= 0.0 || epoch < 0)
        return false;
    // +1 keeps epoch 0 off the parent's 0 stream (split(0) would
    // alias the convention other subsystems use for "first child").
    stats::Rng r =
        stats::Rng(seed)
            .split(kTraceSampleStream)
            .split(static_cast<std::uint64_t>(epoch) + 1);
    return r.uniform() < rate;
}

EpochSimulator::EpochSimulator(Node node, SimulationConfig config)
    : node_(std::move(node)), cfg(config)
{
    assert(cfg.epochSeconds > 0.0);
    assert(cfg.durationSeconds >= cfg.epochSeconds);
    assert(cfg.warmupEpochs >= 0);
}

SimulationResult
EpochSimulator::run(sched::Scheduler &scheduler) const
{
    sched::Scheduler *arm = &scheduler;
    return runImpl(&arm, 1, nullptr);
}

SimulationResult
EpochSimulator::runSwitched(
    const std::vector<sched::Scheduler *> &arms,
    const PolicySchedule &schedule) const
{
    assert(!arms.empty());
#ifndef NDEBUG
    for (const auto *a : arms)
        assert(a != nullptr);
    for (const int a : schedule.blockArm)
        assert(a >= 0 &&
               static_cast<std::size_t>(a) < arms.size());
#endif
    return runImpl(arms.data(), arms.size(), &schedule);
}

SimulationResult
EpochSimulator::runImpl(sched::Scheduler *const *arms,
                        std::size_t num_arms,
                        const PolicySchedule *schedule) const
{
    (void)num_arms;
    const int n = node_.numApps();
    const int epochs = static_cast<int>(
        std::round(cfg.durationSeconds / cfg.epochSeconds));
    const double dt = cfg.epochSeconds;

    // Profiling root for the whole run; every phase span below
    // nests under it. One branch when no profiler is attached.
    obs::Span run_span(cfg.obs, "run");

    stats::Rng rng(cfg.seed);
    perf::ContentionModel contention(node_.config(), cfg.contention);

    // The arm in force; a null schedule pins arm 0 for the whole
    // run (the classic single-scheduler path).
    int cur_arm = schedule != nullptr ? schedule->armAt(0) : 0;
    sched::Scheduler *cur = arms[static_cast<std::size_t>(cur_arm)];
    cur->reset();
    // Always (re)attach the run's scope: a scheduler reused across
    // runs must not keep reporting into the previous run's sinks.
    cur->setObsScope(cfg.obs);
    const bool tracing = cfg.obs.tracing();
    const double sample_rate = cfg.traceSampleRate;
    // Head-based sampling: the keep/drop decision is made once at
    // each epoch's head and gates every trace event of that epoch
    // (scheduler decisions, injector faults, the epoch record).
    // run_start/run_end and auditor violations always emit, and
    // metrics / time-series recording is never sampled — series are
    // the bounded-memory signal sampling exists to protect.
    const bool sampling = tracing && sample_rate < 1.0;
    if (tracing) {
        obs::Event ev("run_start");
        ev.str("scheduler", cur->name())
            .str("node", node_.describe())
            .integer("epochs", epochs)
            .num("epoch_seconds", dt)
            .integer("seed", static_cast<long long>(cfg.seed))
            .integer("warmup", std::min(cfg.warmupEpochs, epochs));
        if (sampling)
            ev.num("trace_sample", sample_rate);
        cfg.obs.emit(ev);
    }
    // Scope handed to the scheduler/injector on sampled-out epochs:
    // sink muted, metrics and profiler untouched. Built once — the
    // rejected→rejected steady state performs no scope copies at
    // all, which is what keeps it allocation-free.
    obs::Scope muted_scope = cfg.obs;
    muted_scope.sink = nullptr;
    bool prev_traced = true;
    // Per-run half of the epochTraceSampled() split chain, hoisted
    // out of the loop; the per-epoch decision below must stay
    // identical to the pure function (the tests assert it is).
    const stats::Rng sample_base =
        stats::Rng(cfg.seed).split(kTraceSampleStream);

    auto static_obs = node_.staticObservations();
    machine::RegionLayout layout =
        cur->initialLayout(node_.config(), static_obs);
    assert(layout.valid());

    // Opt-in invariant auditing (AHQ_CHECK / cfg.checkMode). The
    // auditor is per-run local state, so concurrent ScenarioRunner
    // workers never share one. When off, the per-epoch cost is a
    // single branch — no layout copies are taken.
    check::InvariantAuditor auditor(cfg.checkMode, cfg.obs);
    const bool auditing = auditor.enabled();
    if (auditing)
        auditor.beginRun(layout, 0.0);

    // Opt-in fault injection (cfg.faults). Like the auditor, the
    // injector is per-run local state; its RNG stream is split off
    // the run seed so fault draws never perturb the measurement
    // noise stream above. Faults off ⇒ the exact unfaulted path.
    std::optional<fault::FaultInjector> injector;
    if (cfg.faults != nullptr && cfg.faults->active())
        injector.emplace(*cfg.faults, cfg.seed, cfg.obs);
    const bool faulting = injector.has_value();

    // Opt-in counterfactual interference attribution
    // (cfg.attribute). The attributor owns its own contention
    // model — the simulator's instance keeps mutable scratch, so
    // sharing it would be unsafe — and is per-run local state like
    // the auditor and the injector. Off ⇒ one branch per epoch.
    std::optional<obs::InterferenceAttributor> attributor;
    if (cfg.attribute)
        attributor.emplace(node_.config(), cfg.contention);
    const bool attributing = attributor.has_value();
    std::vector<obs::AttributionShare> attr_shares;
    // Victim AppId → index into entropy.lcDetail (LC push order).
    std::vector<int> lc_index;
    if (attributing) {
        lc_index.assign(static_cast<std::size_t>(n), -1);
        for (std::size_t v = 0; v < node_.lcApps().size(); ++v)
            lc_index[static_cast<std::size_t>(
                node_.lcApps()[v])] = static_cast<int>(v);
    }

    // Opt-in online SLO burn-rate monitoring (cfg.slo). Pure
    // function of the violation bit stream, so alert events stay
    // inside the byte-identity contract. Off ⇒ one branch.
    std::optional<obs::SloMonitor> slo_monitor;
    if (cfg.slo)
        slo_monitor.emplace(n, cfg.sloTraits);
    const bool slo_on = slo_monitor.has_value();

    // Degradation carried into the next epoch's decision: whether
    // any (resp. every) app's sample was dropped last epoch.
    bool last_degraded = false;
    bool last_all_dropped = false;

    // Per-run state kept struct-of-arrays so the measure phase
    // iterates contiguous memory; the buffers below are reused
    // across all epochs of the run.
    std::vector<double> backlog(static_cast<std::size_t>(n), 0.0);
    std::vector<int> prev_ways(static_cast<std::size_t>(n), -1);
    std::vector<int> prev_cores(static_cast<std::size_t>(n), -1);

    // Post-migration cold-start windows (ColocatedApp::coldEpochs):
    // a freshly migrated app re-warms its caches over the first
    // cold_epochs[i] epochs, with service times stretched by a
    // linearly decaying factor. All-warm runs (the common case)
    // reduce to one `any_cold` branch per app per epoch.
    std::vector<int> cold_epochs(static_cast<std::size_t>(n), 0);
    std::vector<double> cold_penalty(static_cast<std::size_t>(n),
                                     0.0);
    bool any_cold = false;
    for (AppId i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const auto &app = node_.apps()[ui];
        if (app.coldEpochs > 0 && app.coldPenalty > 0.0) {
            cold_epochs[ui] = app.coldEpochs;
            cold_penalty[ui] = app.coldPenalty;
            any_cold = true;
        }
    }
    std::vector<sched::AppObservation> last_obs;
    std::vector<perf::AppDemand> demands;
    std::vector<core::LcObservation> lc_obs;
    std::vector<core::BeObservation> be_obs;

    // Time-series instrumentation (cfg.obs.series): resolve every
    // handle once up front — std::map references are stable, so the
    // per-epoch recording below is lock-free and allocation-free.
    obs::TimeSeriesRegistry *const tsr = cfg.obs.series;
    struct SeriesHandles
    {
        obs::TimeSeries *eS = nullptr;
        obs::TimeSeries *eLc = nullptr;
        obs::TimeSeries *eBe = nullptr;
        obs::TimeSeries *violations = nullptr;
        obs::TimeSeries *faults = nullptr;
        std::vector<obs::TimeSeries *> p95, ret, queue, ipc, cores,
            ways;
    } series;
    if (tsr != nullptr) {
        const std::string &tag = cfg.obs.scenario;
        auto h = [&](const std::string &name) {
            return &tsr->handle(tag, name);
        };
        series.eS = h("e_s");
        series.eLc = h("e_lc");
        series.eBe = h("e_be");
        series.violations = h("violations");
        series.faults = h("faults");
        const auto un = static_cast<std::size_t>(n);
        series.p95.assign(un, nullptr);
        series.ret.assign(un, nullptr);
        series.queue.assign(un, nullptr);
        series.ipc.assign(un, nullptr);
        series.cores.assign(un, nullptr);
        series.ways.assign(un, nullptr);
        for (AppId i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            const auto &prof = node_.profile(i);
            const std::string suffix =
                "." + std::to_string(i) + "." + prof.name;
            series.cores[ui] = h("cores" + suffix);
            series.ways[ui] = h("ways" + suffix);
            if (prof.latencyCritical) {
                series.p95[ui] = h("p95" + suffix);
                series.ret[ui] = h("ret" + suffix);
                series.queue[ui] = h("queue" + suffix);
            } else {
                series.ipc[ui] = h("ipc" + suffix);
            }
        }
    }

    SimulationResult result;
    result.warmupEpochs = std::min(cfg.warmupEpochs, epochs);
    if (cfg.keepEpochs)
        result.epochs.reserve(static_cast<std::size_t>(epochs));
    result.meanP95Ms.assign(static_cast<std::size_t>(n), 0.0);
    result.meanIpc.assign(static_cast<std::size_t>(n), 0.0);
    result.steadyMeanLoad.assign(static_cast<std::size_t>(n), 0.0);
    int steady = 0;

    for (int e = 0; e < epochs; ++e) {
        const double t = e * dt;
        obs::Span epoch_span(cfg.obs, "epoch");

        // 1) Scheduler reacts to last epoch's measurements.
        const bool epoch_traced = tracing &&
            (!sampling ||
             sample_base.split(static_cast<std::uint64_t>(e) + 1)
                     .uniform() < sample_rate);

        // Policy-swap seam: at a block boundary where the arm
        // changes, the incoming scheduler takes over the *system*
        // state (queue backlog carries; its predecessor's internal
        // state does not) and re-initialises the layout — the
        // repartition is charged through the overhead model below.
        bool swapped = false;
        if (schedule != nullptr) {
            const int a = schedule->armAt(e);
            if (a != cur_arm) {
                cur_arm = a;
                cur = arms[static_cast<std::size_t>(a)];
                cur->reset();
                cur->setObsScope(tracing && !epoch_traced
                                     ? muted_scope
                                     : cfg.obs.atEpoch(e));
                layout =
                    cur->initialLayout(node_.config(), static_obs);
                assert(layout.valid());
                swapped = true;
                cfg.obs.count("sim.policy_swaps");
                if (epoch_traced) {
                    obs::Event ev("policy_swap");
                    ev.str("scheduler", cur->name())
                        .integer("arm", cur_arm);
                    cfg.obs.atEpoch(e).emit(ev);
                }
            }
        }

        if (tracing) {
            if (epoch_traced) {
                cur->setObsScope(cfg.obs.atEpoch(e));
                if (faulting)
                    injector->setEventsEnabled(true);
            } else if (prev_traced || swapped) {
                // First rejected epoch after a kept one (or a swap,
                // whose fresh arm must not inherit a stale sink):
                // mute the scheduler/injector sinks once. Later
                // rejected epochs skip even the scope copy, keeping
                // the rejected steady state allocation-free.
                cur->setObsScope(muted_scope);
                if (faulting)
                    injector->setEventsEnabled(false);
            }
            prev_traced = epoch_traced;
        }
        if (faulting)
            injector->beginEpoch(e, t);
        // A swap epoch skips adjust(): the incoming scheduler just
        // built its initial layout and has observed nothing yet
        // (the same contract as epoch 0 of a plain run).
        if (e > 0 && !swapped) {
            if (faulting && last_all_dropped) {
                // Every input sample was dropped: no scheduler can
                // act on pure staleness, so the interval is skipped
                // uniformly (graceful degradation for strategies
                // with no fault handling of their own).
                cfg.obs.count("fault.decision_skipped");
            } else if (faulting) {
                machine::RegionLayout intent = layout;
                {
                    obs::Span span(cfg.obs, "decide");
                    cur->adjust(intent, last_obs, t);
                }
                if (auditing) {
                    obs::Span span(cfg.obs, "audit");
                    auditor.afterDecision(*cur, layout, intent,
                                          e, t, last_degraded);
                }
                fault::FaultInjector::Actuation act;
                {
                    obs::Span span(cfg.obs, "actuate");
                    act = injector->actuate(layout, intent, e, t);
                    cur->onActuation(act.ok);
                }
                if (auditing) {
                    obs::Span span(cfg.obs, "audit");
                    auditor.afterActuation(intent, act.applied,
                                           act.ok, e, t);
                }
                layout = std::move(act.applied);
            } else if (auditing) {
                const machine::RegionLayout before = layout;
                {
                    obs::Span span(cfg.obs, "decide");
                    cur->adjust(layout, last_obs, t);
                }
                obs::Span span(cfg.obs, "audit");
                auditor.afterDecision(*cur, before, layout,
                                      e, t);
            } else {
                obs::Span span(cfg.obs, "decide");
                cur->adjust(layout, last_obs, t);
            }
            assert(layout.valid());
        }

        EpochRecord rec;
        rec.time = t;
        rec.obs = static_obs;

        lc_obs.clear();
        be_obs.clear();
        int dropped = 0;

        // 2) Contention model under the current layout and loads,
        //    then 3+4) advance queues and produce measurements —
        //    together the epoch's "measure" phase.
        {
        obs::Span measure_span(cfg.obs, "measure");
        node_.demandsAt(t, demands);
        {
            obs::Span span(cfg.obs, "model");
            contention.evaluateInto(layout, demands,
                                    cur->corePolicy(),
                                    rec.outcomes);
        }
        const auto &outcomes = rec.outcomes;

        for (AppId i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            auto &o = rec.obs[ui];
            const auto &out = outcomes[ui];
            const auto &prof = node_.profile(i);

            const int ways_now = layout.reachable(
                i, ResourceKind::LlcWays);
            const int cores_now = layout.reachable(
                i, ResourceKind::Cores);
            double overhead = 1.0;
            if (cfg.overheadEnabled && prev_ways[ui] >= 0) {
                const int d_ways =
                    std::abs(ways_now - prev_ways[ui]);
                const int d_cores =
                    std::abs(cores_now - prev_cores[ui]);
                overhead = std::min(
                    2.0, 1.0 + cfg.overheadWaysFactor * d_ways +
                        cfg.overheadCoresFactor * d_cores);
            }
            prev_ways[ui] = ways_now;
            prev_cores[ui] = cores_now;

            if (prof.latencyCritical) {
                double load = node_.loadAt(i, t);
                if (faulting) {
                    // Injected load spikes scale the offered load,
                    // saturating at the brink rather than diverging
                    // (closed-loop generators bound concurrency).
                    const double f = injector->loadFactor(i, t);
                    if (f != 1.0) {
                        const double spiked = load * f;
                        load = spiked > load
                            ? std::min(spiked, std::max(
                                  load, kSpikeLoadCap))
                            : std::max(spiked, 0.0);
                    }
                }
                const double lambda = prof.arrivalRate(load);
                // Cold-start stretch: a recently migrated app's
                // effective service rates shrink while its caches
                // re-warm (linear decay over the cold window).
                double cold = 1.0;
                if (any_cold && e < cold_epochs[ui]) {
                    cold = 1.0 + cold_penalty[ui] *
                        static_cast<double>(cold_epochs[ui] - e) /
                        static_cast<double>(cold_epochs[ui]);
                }
                const double cap = out.serviceRate / cold;
                const double per_server =
                    out.perServerRate / cold;

                // Explicit backlog dynamics with a generator-side
                // cap on outstanding work.
                const double queue_cap =
                    lambda * cfg.queueCapSeconds + 32.0;
                double b_new = backlog[ui] + (lambda - cap) * dt;
                b_new = std::clamp(b_new, 0.0, queue_cap);
                const double b_mid = 0.5 * (backlog[ui] + b_new);
                backlog[ui] = b_new;

                // Steady queueing term at a stabilised arrival rate
                // plus the drain time of the carried backlog.
                const double lam_eff =
                    std::min(lambda, 0.98 * cap);
                // Timeslice stretching (FairShare oversubscription)
                // inflates the whole service tail.
                const double svc_tail =
                    prof.svcMultAt(cfg.tailPercentile) *
                    out.serviceStretch;
                double t95 = perf::sojournPercentileApprox(
                    out.coreEquivalents, lam_eff, per_server,
                    svc_tail, cfg.tailPercentile);
                if (!std::isfinite(t95)) {
                    t95 = svc_tail / per_server;
                }
                t95 += b_mid / std::max(cap, 1e-9);

                double p95 = prof.baseLatencyMs + 1000.0 * t95;
                p95 *= overhead;
                p95 *= rng.lognormalNoise(cfg.noiseSigma);

                double extra = 1.0;
                const bool valid = !faulting ||
                    injector->sampleMeasurement(i, e, t, &extra);
                if (valid) {
                    o.loadFraction = load;
                    o.arrivalRate = lambda;
                    o.p95Ms = p95 * extra;
                    o.idealP95Ms = prof.soloTailPercentileMs(
                        load, cfg.tailPercentile);
                } else if (e > 0) {
                    // Dropped sample: deliver the previous epoch's
                    // delivered observation, flagged stale. Never
                    // NaN — schedulers sort on these fields.
                    o = last_obs[ui];
                    o.sampleValid = false;
                    ++dropped;
                } else {
                    // Dropped on the very first interval: no prior
                    // delivery exists, so hand out the monitoring
                    // agent's cold default (solo expectations).
                    o.loadFraction = load;
                    o.arrivalRate = lambda;
                    o.idealP95Ms = prof.soloTailPercentileMs(
                        load, cfg.tailPercentile);
                    o.p95Ms = o.idealP95Ms;
                    o.sampleValid = false;
                    ++dropped;
                }
                lc_obs.push_back(
                    {o.idealP95Ms, o.p95Ms, o.thresholdMs});
            } else {
                double ipc = out.ipc;
                // Repartitioning costs BE throughput too (cold ways
                // and thread migrations), at half the latency rate.
                ipc /= 1.0 + 0.5 * (overhead - 1.0);
                // Post-migration cold window slows BE apps the
                // same way it stretches LC service times.
                if (any_cold && e < cold_epochs[ui]) {
                    ipc /= 1.0 + cold_penalty[ui] *
                        static_cast<double>(cold_epochs[ui] - e) /
                        static_cast<double>(cold_epochs[ui]);
                }
                ipc *= rng.lognormalNoise(cfg.noiseSigma);

                double extra = 1.0;
                const bool valid = !faulting ||
                    injector->sampleMeasurement(i, e, t, &extra);
                if (valid) {
                    o.ipc = ipc * extra;
                } else {
                    if (e > 0)
                        o = last_obs[ui];
                    else
                        o.ipc = o.ipcSolo;
                    o.sampleValid = false;
                    ++dropped;
                }
                be_obs.push_back({o.ipcSolo, o.ipc});
            }
        }
        if (faulting) {
            last_degraded = dropped > 0;
            last_all_dropped = n > 0 && dropped == n;
        }

        rec.entropy = core::computeEntropy(lc_obs, be_obs, cfg.ri);
        } // measure phase

        // Counterfactual attribution of this epoch's measured
        // interference. Post-warmup epochs only, matching the
        // violation counter and the steady-state means the ledger
        // is read next to; `demands` still holds exactly what the
        // model evaluated above.
        if (attributing && e >= result.warmupEpochs) {
            obs::Span span(cfg.obs, "attribute");
            attributor->attribute(layout, demands,
                                  cur->corePolicy(), rec.outcomes,
                                  node_.lcApps(),
                                  rec.entropy.lcDetail,
                                  attr_shares);
            std::size_t s = 0;
            while (s < attr_shares.size()) {
                const machine::AppId victim = attr_shares[s].victim;
                std::size_t end = s;
                while (end < attr_shares.size() &&
                       attr_shares[end].victim == victim)
                    ++end;
                const std::string &vname =
                    node_.profile(victim).name;
                for (std::size_t k = s; k < end; ++k) {
                    const obs::AttributionShare &sh =
                        attr_shares[k];
                    result.attribution.add(
                        vname,
                        sh.culprit == obs::kNoiseCulprit
                            ? obs::kNoiseCulpritName
                            : node_.profile(sh.culprit).name,
                        obs::interferenceResourceName(sh.resource),
                        sh.share);
                }
                if (epoch_traced) {
                    std::vector<std::string> culprits, resources;
                    std::vector<double> shares;
                    culprits.reserve(end - s);
                    resources.reserve(end - s);
                    shares.reserve(end - s);
                    for (std::size_t k = s; k < end; ++k) {
                        const obs::AttributionShare &sh =
                            attr_shares[k];
                        culprits.push_back(
                            sh.culprit == obs::kNoiseCulprit
                                ? obs::kNoiseCulpritName
                                : node_.profile(sh.culprit).name);
                        resources.push_back(
                            obs::interferenceResourceName(
                                sh.resource));
                        shares.push_back(sh.share);
                    }
                    obs::Event ev("attribution");
                    ev.str("app", vname)
                        .num("r_i",
                             rec.entropy
                                 .lcDetail[static_cast<std::size_t>(
                                     lc_index[static_cast<
                                         std::size_t>(victim)])]
                                 .interference)
                        .strs("culprits", culprits)
                        .strs("resources", resources)
                        .nums("shares", shares);
                    cfg.obs.atEpoch(e).emit(ev);
                }
                s = end;
            }
            cfg.obs.count("attr.epochs");
        }

        if (auditing) {
            obs::Span span(cfg.obs, "audit");
            auditor.afterEpoch(rec.entropy, cfg.ri, !lc_obs.empty(),
                               !be_obs.empty(), e, t);
        }
        rec.regionRes.reserve(
            static_cast<std::size_t>(layout.numRegions()));
        for (int r = 0; r < layout.numRegions(); ++r)
            rec.regionRes.push_back(layout.region(r).res);
        rec.layout = layout;

        if (tsr != nullptr) {
            series.eS->record(e, rec.entropy.eS);
            series.eLc->record(e, rec.entropy.eLc);
            series.eBe->record(e, rec.entropy.eBe);
            std::size_t lc_j = 0;
            int epoch_violations = 0;
            for (AppId i = 0; i < n; ++i) {
                const auto ui = static_cast<std::size_t>(i);
                const auto &o = rec.obs[ui];
                // prev_ways/prev_cores hold this epoch's values at
                // this point (updated in the measure phase above).
                series.cores[ui]->record(e, prev_cores[ui]);
                series.ways[ui]->record(e, prev_ways[ui]);
                if (o.latencyCritical) {
                    series.p95[ui]->record(e, o.p95Ms);
                    series.queue[ui]->record(e, backlog[ui]);
                    if (lc_j < rec.entropy.lcDetail.size()) {
                        series.ret[ui]->record(
                            e, rec.entropy.lcDetail[lc_j]
                                   .remainingTolerance);
                    }
                    ++lc_j;
                    if (o.p95Ms >
                        o.thresholdMs *
                            (1.0 + core::kThresholdElasticity))
                        ++epoch_violations;
                } else {
                    series.ipc[ui]->record(e, o.ipc);
                }
            }
            series.violations->record(e, epoch_violations);
            series.faults->record(e, dropped);
        }

        if (epoch_traced) {
            std::vector<double> p95, ipc;
            p95.reserve(static_cast<std::size_t>(n));
            ipc.reserve(static_cast<std::size_t>(n));
            for (const auto &o : rec.obs) {
                p95.push_back(o.latencyCritical ? o.p95Ms : 0.0);
                ipc.push_back(o.latencyCritical ? 0.0 : o.ipc);
            }
            obs::Event ev("epoch");
            ev.num("t", t)
                .num("e_lc", rec.entropy.eLc)
                .num("e_be", rec.entropy.eBe)
                .num("e_s", rec.entropy.eS)
                .nums("p95_ms", p95)
                .nums("ipc", ipc);
            cfg.obs.atEpoch(e).emit(ev);
        }

        // SLO burn-rate monitoring: every LC app's violation bit
        // (the elastic QoS predicate the violation counters use)
        // feeds the dual-window detector. Alert transitions emit
        // unconditionally of trace sampling, like `violation` —
        // alerts are the signal sampling must not drop.
        if (slo_on) {
            for (AppId i = 0; i < n; ++i) {
                const auto ui = static_cast<std::size_t>(i);
                const auto &o = rec.obs[ui];
                if (!o.latencyCritical)
                    continue;
                const bool viol = o.p95Ms >
                    o.thresholdMs *
                        (1.0 + core::kThresholdElasticity);
                const obs::SloAlertTransition tr =
                    slo_monitor->observe(i, e, viol);
                if (tr.kind ==
                    obs::SloAlertTransition::Kind::Raise) {
                    cfg.obs.count("slo.alert_raised");
                    if (tracing) {
                        obs::Event ev("alert_raise");
                        ev.str("app", node_.profile(i).name)
                            .num("burn_fast", tr.burnFast)
                            .num("burn_slow", tr.burnSlow);
                        cfg.obs.atEpoch(e).emit(ev);
                    }
                } else if (tr.kind ==
                           obs::SloAlertTransition::Kind::Clear) {
                    cfg.obs.count("slo.alert_cleared");
                    if (tracing) {
                        obs::Event ev("alert_clear");
                        ev.str("app", node_.profile(i).name)
                            .integer("duration", tr.durationEpochs)
                            .num("burn_fast", tr.burnFast)
                            .num("burn_slow", tr.burnSlow);
                        cfg.obs.atEpoch(e).emit(ev);
                    }
                }
            }
        }
        cfg.obs.count("sim.epochs");

        // ---- steady-state aggregation (incremental) --------------
        // Summed here, in epoch order, rather than in a post-run
        // scan over result.epochs: the sums visit the same values
        // in the same order, so aggregates are bitwise identical —
        // and a keepEpochs=false run never needs the record vector
        // at all (O(1) resident state instead of O(epochs)).
        if (e >= result.warmupEpochs) {
            result.meanELc += rec.entropy.eLc;
            result.meanEBe += rec.entropy.eBe;
            result.meanES += rec.entropy.eS;
            for (AppId i = 0; i < n; ++i) {
                const auto ui = static_cast<std::size_t>(i);
                const auto &o = rec.obs[ui];
                if (o.latencyCritical) {
                    result.meanP95Ms[ui] += o.p95Ms;
                    result.steadyMeanLoad[ui] += o.loadFraction;
                    if (o.p95Ms > o.thresholdMs *
                            (1.0 + core::kThresholdElasticity)) {
                        ++result.violations;
                    }
                } else {
                    result.meanIpc[ui] += o.ipc;
                }
            }
            ++steady;
        }

        last_obs = rec.obs;
        if (cfg.keepEpochs) {
            rec.queueBacklog.assign(backlog.begin(),
                                    backlog.end());
            rec.policyArm = cur_arm;
            result.epochs.push_back(std::move(rec));
        }
    }

    if (steady > 0) {
        result.meanELc /= steady;
        result.meanEBe /= steady;
        result.meanES /= steady;
        for (auto &v : result.meanP95Ms)
            v /= steady;
        for (auto &v : result.meanIpc)
            v /= steady;
        for (auto &v : result.steadyMeanLoad)
            v /= steady;
    }

    int lc_total = 0, lc_ok = 0;
    for (AppId i = 0; i < n; ++i) {
        const auto &prof = node_.profile(i);
        if (!prof.latencyCritical)
            continue;
        ++lc_total;
        if (result.meanP95Ms[static_cast<std::size_t>(i)] <=
            prof.tailThresholdMs *
                (1.0 + core::kThresholdElasticity)) {
            ++lc_ok;
        }
    }
    result.yieldValue = lc_total > 0 ?
        static_cast<double>(lc_ok) / lc_total : 1.0;

    if (slo_on) {
        result.slo = slo_monitor->summary();
        cfg.obs.count("slo.alert_epochs",
                      static_cast<double>(result.slo.alertEpochs));
    }
    if (attributing)
        cfg.obs.count("attr.evals",
                      static_cast<double>(
                          attributor->evaluations()));

    if (tracing) {
        obs::Event ev("run_end");
        ev.str("scheduler", cur->name())
            .num("mean_e_lc", result.meanELc)
            .num("mean_e_be", result.meanEBe)
            .num("mean_e_s", result.meanES)
            .num("yield", result.yieldValue)
            .integer("violations", result.violations);
        cfg.obs.emit(ev);
    }
    cfg.obs.count("sim.runs");
    cfg.obs.count("sim.violations", result.violations);
    cfg.obs.observe("sim.mean_e_s", result.meanES);
    return result;
}

} // namespace ahq::cluster

/**
 * @file
 * The epoch-level node simulator.
 *
 * One epoch is one monitoring interval (the paper uses 500 ms). Each
 * epoch the simulator (1) lets the scheduler react to the previous
 * epoch's measurements, (2) evaluates the contention model under the
 * resulting layout and the current loads, (3) advances each LC app's
 * queue backlog explicitly (overload in one epoch spills into the
 * next), (4) produces the measured p95 / IPC including repartition
 * overhead and measurement noise, and (5) computes the entropy
 * report for the interval.
 */

#ifndef AHQ_CLUSTER_EPOCH_SIM_HH
#define AHQ_CLUSTER_EPOCH_SIM_HH

#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "cluster/node.hh"
#include "core/entropy.hh"
#include "fault/plan.hh"
#include "machine/layout.hh"
#include "obs/attribution.hh"
#include "obs/scope.hh"
#include "obs/slo.hh"
#include "perf/contention.hh"
#include "sched/scheduler.hh"

namespace ahq::cluster
{

/** Simulator configuration (defaults match the paper's setup). */
struct SimulationConfig
{
    /** Monitoring interval, seconds (the paper uses 500 ms). */
    double epochSeconds = 0.5;

    /** Total simulated time, seconds. */
    double durationSeconds = 60.0;

    /** Leading epochs excluded from steady-state aggregates. */
    int warmupEpochs = 20;

    /** Lognormal sigma of tail-latency / IPC measurement noise. */
    double noiseSigma = 0.05;

    /**
     * Tail percentile monitored and fed to the entropy metric. The
     * paper uses the 95th "without losing generality"; p99-oriented
     * deployments can raise it. Observation fields named p95Ms hold
     * this percentile.
     */
    double tailPercentile = 0.95;

    /** Relative importance of LC over BE in E_S. */
    double ri = core::kDefaultRelativeImportance;

    /** RNG seed. */
    std::uint64_t seed = 42;

    /** Model repartitioning overhead (cache warm-up, migrations). */
    bool overheadEnabled = true;

    /** p95 inflation per LLC way an app gained or lost this epoch. */
    double overheadWaysFactor = 0.03;

    /** p95 inflation per core an app gained or lost this epoch. */
    double overheadCoresFactor = 0.06;

    /**
     * Queue backlog cap, expressed in seconds of offered work
     * (Tailbench-style load generators bound outstanding requests,
     * so overloaded tails saturate instead of diverging).
     */
    double queueCapSeconds = 0.10;

    /** Contention model tunables. */
    perf::ContentionTraits contention;

    /**
     * Telemetry scope for this run (null sinks by default). The
     * simulator forwards it to the scheduler and emits run/epoch
     * events through it; with no sink attached the instrumentation
     * reduces to one branch per epoch. When a TimeSeriesRegistry is
     * attached (obs.series) the simulator also records per-epoch
     * E_S / ReT / queue / allocation / fault / violation series
     * under the scope's scenario tag.
     */
    obs::Scope obs;

    /**
     * Head-based trace sampling rate in [0, 1]. At 1 (default)
     * every epoch's trace events are emitted; below 1 each epoch is
     * kept iff epochTraceSampled(seed, epoch, rate) — a pure
     * function of (seed, epoch) on its own RNG split, the same
     * discipline as the fault injector — so sampled traces are
     * byte-identical across thread counts and the per-node seed
     * salting makes the decision independent per (run, node).
     * Sampling gates the epoch/decision/fault trace events only:
     * run_start/run_end, auditor violations, metrics counters and
     * time-series recording are unaffected.
     */
    double traceSampleRate = 1.0;

    /**
     * Invariant auditing for this run (see src/check/). Defaults
     * to the AHQ_CHECK environment variable (unset = off, so an
     * unaudited run pays one branch per hook); `log` records and
     * traces violations, `strict` additionally throws
     * check::InvariantViolation at the first one.
     */
    check::Mode checkMode = check::modeFromEnv();

    /**
     * Optional fault plan (see src/fault/). Null or inactive keeps
     * the run on the exact unfaulted code path (and byte-identical
     * traces); an active plan drives a per-run FaultInjector whose
     * RNG stream is split off the run seed, so faulted runs stay
     * deterministic per (seed, plan). The plan must outlive the run.
     */
    const fault::FaultPlan *faults = nullptr;

    /**
     * Retain the per-epoch records in SimulationResult::epochs. On
     * (the default) a run keeps its full timeline — what the paper
     * figures, CSV dumps and timeline tooling consume. Off, the
     * simulator aggregates incrementally and returns an empty
     * epochs vector, so a fleet of N nodes costs O(N) resident
     * memory instead of O(N x epochs). Every steady-state
     * aggregate (meanES, meanP95Ms, steadyMeanLoad, violations,
     * yield) and every trace byte is identical either way: the
     * incremental sums visit the same values in the same epoch
     * order the post-run scan used to.
     */
    bool keepEpochs = true;

    /**
     * Opt-in counterfactual interference attribution (see
     * obs/attribution.hh). On, every post-warmup epoch with a
     * suffering LC app costs n extra contention-model evaluations
     * (one per co-runner removed); the per-(victim, culprit,
     * resource) shares accumulate into SimulationResult::
     * attribution and, when the epoch's trace events are kept,
     * emit one `attribution` event per suffering victim. Off (the
     * default) the hook is a single branch per epoch and the run
     * is byte-identical to a build without the seam.
     */
    bool attribute = false;

    /**
     * Opt-in online SLO burn-rate monitoring (see obs/slo.hh). On,
     * every LC app's per-epoch violation bit feeds a multi-window
     * burn-rate detector; alert transitions emit `alert_raise` /
     * `alert_clear` trace events (never trace-sampled, like
     * `violation`) and bump the slo.* counters, with the run's
     * totals in SimulationResult::slo. Off: one branch per epoch.
     */
    bool slo = false;

    /** Burn-rate windows/thresholds when slo is on. */
    obs::SloTraits sloTraits;
};

/**
 * Epoch→arm mapping driving the policy-swap seam: epoch e runs
 * under arms[blockArm[e / blockEpochs]] (the last block absorbs
 * any trailing epochs). A null schedule — the single-scheduler
 * run() — costs exactly one branch per epoch, the same contract as
 * the fault and audit seams.
 */
struct PolicySchedule
{
    /** Epochs per block (> 0 when the schedule is active). */
    int blockEpochs = 0;

    /** Arm index per block (values < the arm count of the run). */
    std::vector<int> blockArm;

    /** Arm in force at the given epoch. */
    int armAt(int epoch) const
    {
        if (blockEpochs <= 0 || blockArm.empty())
            return 0;
        auto b = static_cast<std::size_t>(epoch / blockEpochs);
        if (b >= blockArm.size())
            b = blockArm.size() - 1;
        return blockArm[b];
    }
};

/** Everything recorded about one epoch. */
struct EpochRecord
{
    double time = 0.0;

    /** Observations with measurements filled (indexed by AppId). */
    std::vector<sched::AppObservation> obs;

    /**
     * Queue backlog (outstanding requests) per app at the end of
     * the epoch (0 for BE apps) — the per-epoch queue-length
     * series Little's-law DQ estimators consume. Only filled when
     * SimulationConfig::keepEpochs retains records at all.
     */
    std::vector<double> queueBacklog;

    /** Policy arm in force during the epoch (0 without a schedule). */
    int policyArm = 0;

    /** Contention-model outcomes (indexed by AppId). */
    std::vector<perf::PerfOutcome> outcomes;

    /** Entropy accounting for the interval. */
    core::EntropyReport entropy;

    /** Per-region resources at the end of the epoch. */
    std::vector<machine::ResourceVector> regionRes;

    /** Copy of the layout in force during the epoch. */
    machine::RegionLayout layout{machine::ResourceVector{}};
};

/** Aggregated outcome of one simulation run. */
struct SimulationResult
{
    std::vector<EpochRecord> epochs;
    int warmupEpochs = 0;

    // Steady-state (post-warmup) aggregates.
    double meanELc = 0.0;
    double meanEBe = 0.0;
    double meanES = 0.0;

    /** Fraction of LC apps whose steady-state mean p95 meets QoS. */
    double yieldValue = 1.0;

    /** (LC app, epoch) pairs violating the elastic QoS target. */
    int violations = 0;

    /** Steady-state mean p95 per app (0 for BE), ms. */
    std::vector<double> meanP95Ms;

    /** Steady-state mean IPC per app (0 for LC). */
    std::vector<double> meanIpc;

    /**
     * Steady-state mean offered load per app (post-warmup mean of
     * the per-epoch loadFraction; 0 for BE). The fleet aggregation
     * evaluates each LC app's solo-tail reference at this load —
     * it must match the regime meanP95Ms was averaged over, so
     * warmup epochs (where a trace may still be ramping) are
     * excluded exactly like they are from meanP95Ms.
     */
    std::vector<double> steadyMeanLoad;

    /**
     * Accumulated interference attribution over the post-warmup
     * epochs (empty unless SimulationConfig::attribute). Keys are
     * app names; per-victim totals equal the sum of the victim's
     * per-epoch R_i over the attributed epochs.
     */
    obs::AttributionLedger attribution;

    /** Alert accounting (zeros unless SimulationConfig::slo). */
    obs::SloSummary slo;
};

/**
 * RNG stream id for head-based trace sampling, split off the run
 * seed (cf. fault::kFaultStream): sampling draws never perturb the
 * measurement-noise stream, so a sampled run's simulation results
 * are bit-identical to an unsampled one.
 */
inline constexpr std::uint64_t kTraceSampleStream = 0x7e1e5;

/**
 * Head-based sampling decision for one epoch: keep iff the draw on
 * split(seed, kTraceSampleStream, epoch) lands under `rate`. Pure
 * function of its arguments — no state, no ordering dependence.
 */
bool epochTraceSampled(std::uint64_t seed, int epoch, double rate);

/**
 * Runs a scheduling strategy on a node for a configured duration.
 */
class EpochSimulator
{
  public:
    EpochSimulator(Node node, SimulationConfig config = {});

    /**
     * Simulate one full run. The scheduler is reset() first, so a
     * scheduler instance can be reused across runs.
     */
    SimulationResult run(sched::Scheduler &scheduler) const;

    /**
     * Policy-swap run: simulate under schedule.armAt(e)'s scheduler
     * each epoch. At a block boundary where the arm changes, the
     * incoming scheduler is reset() and re-initialises the layout
     * (a real policy rollout hands the controller the *system*
     * state, not its predecessor's internal state), so queue
     * backlog carries across the swap — exactly the carryover that
     * makes naive A/B estimates lie — while repartitioning costs
     * are charged through the usual overhead model. Swapping to
     * the already-active arm is a no-op. With a single arm and an
     * empty schedule this is identical to run(scheduler).
     *
     * @param arms Candidate schedulers (non-null, outlive the run).
     * @param schedule Epoch→arm mapping (see PolicySchedule).
     */
    SimulationResult
    runSwitched(const std::vector<sched::Scheduler *> &arms,
                const PolicySchedule &schedule) const;

    const Node &node() const { return node_; }
    const SimulationConfig &config() const { return cfg; }

  private:
    Node node_;
    SimulationConfig cfg;

    SimulationResult
    runImpl(sched::Scheduler *const *arms, std::size_t num_arms,
            const PolicySchedule *schedule) const;
};

} // namespace ahq::cluster

#endif // AHQ_CLUSTER_EPOCH_SIM_HH

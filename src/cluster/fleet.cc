/**
 * @file
 * Fleet and placement advisor implementation.
 */

#include "cluster/fleet.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "exec/jobs.hh"
#include "exec/parallel.hh"

namespace ahq::cluster
{

void
Fleet::addNode(Node node, std::unique_ptr<sched::Scheduler> scheduler)
{
    assert(scheduler != nullptr);
    nodes_.push_back({std::move(node), std::move(scheduler)});
}

core::EntropyReport
fleetEntropy(const std::vector<const Node *> &nodes,
             const std::vector<const SimulationResult *> &results,
             double ri)
{
    assert(nodes.size() == results.size());
    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const Node &node = *nodes[n];
        const SimulationResult &res = *results[n];
        for (machine::AppId i = 0; i < node.numApps(); ++i) {
            const auto &p = node.profile(i);
            const auto ui = static_cast<std::size_t>(i);
            if (p.latencyCritical) {
                // Pool against the app's mean load over the run.
                double load_sum = 0.0;
                for (const auto &rec : res.epochs)
                    load_sum += rec.obs[ui].loadFraction;
                const double mean_load = res.epochs.empty() ? 0.0 :
                    load_sum / static_cast<double>(
                                   res.epochs.size());
                lc.push_back({p.soloTailP95Ms(mean_load),
                              res.meanP95Ms[ui],
                              p.tailThresholdMs});
            } else {
                be.push_back({p.ipcSolo, res.meanIpc[ui]});
            }
        }
    }
    return core::computeEntropy(lc, be, ri);
}

Fleet::FleetResult
Fleet::run(const SimulationConfig &config, exec::ThreadPool *pool)
{
    FleetResult out;
    std::vector<const Node *> node_ptrs;
    std::vector<const SimulationResult *> result_ptrs;

    const obs::Scope &scope = config.obs;
    const bool tracing = scope.tracing();
    if (tracing) {
        obs::Event ev("fleet_start");
        ev.integer("nodes", numNodes())
            .integer("seed", static_cast<long long>(config.seed));
        scope.emit(ev);
    }
    // While tracing, each node's run writes into a private buffer;
    // the buffers flush in node order below, keeping fleet traces
    // byte-identical at any thread count.
    std::vector<obs::BufferTraceSink> buffers(
        tracing ? nodes_.size() : 0);

    out.nodes.resize(nodes_.size());
    exec::ThreadPool &p = pool ? *pool : exec::globalPool();
    // Each task touches only its own node entry (its scheduler
    // instance included) and result slot.
    exec::parallelFor(p, nodes_.size(), [&](std::size_t n) {
        SimulationConfig per_node = config;
        per_node.seed = config.seed + 0x9e37 * (n + 1);
        if (tracing) {
            per_node.obs = scope
                .tagged(scope.scenario.empty()
                            ? "node" + std::to_string(n)
                            : scope.scenario + "/node" +
                                  std::to_string(n))
                .withSink(&buffers[n]);
        }
        EpochSimulator sim(nodes_[n].node, per_node);
        out.nodes[n] = sim.run(*nodes_[n].scheduler);
    });
    for (const auto &res : out.nodes)
        out.violations += res.violations;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        node_ptrs.push_back(&nodes_[n].node);
        result_ptrs.push_back(&out.nodes[n]);
    }

    const auto rep = fleetEntropy(node_ptrs, result_ptrs, config.ri);
    out.eLc = rep.eLc;
    out.eBe = rep.eBe;
    out.eS = rep.eS;
    out.yieldValue = rep.yieldValue;

    if (tracing) {
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            for (const auto &line : buffers[n].lines())
                scope.sink->write(line);
            obs::Event ev("fleet_node");
            ev.integer("node", static_cast<long long>(n))
                .str("colocation", nodes_[n].node.describe())
                .str("scheduler", nodes_[n].scheduler->name())
                .num("mean_e_s", out.nodes[n].meanES)
                .integer("violations", out.nodes[n].violations);
            scope.emit(ev);
        }
        obs::Event ev("fleet_end");
        ev.num("e_lc", out.eLc)
            .num("e_be", out.eBe)
            .num("e_s", out.eS)
            .num("yield", out.yieldValue)
            .integer("violations", out.violations);
        scope.emit(ev);
    }
    scope.count("fleet.runs");
    return out;
}

PlacementAdvisor::PlacementAdvisor(
    machine::MachineConfig node_config, int num_nodes,
    std::function<std::unique_ptr<sched::Scheduler>()> make_scheduler)
    : nodeConfig(std::move(node_config)), numNodes_(num_nodes),
      makeScheduler(std::move(make_scheduler))
{
    assert(num_nodes >= 1);
    assert(makeScheduler != nullptr);
}

PlacementAdvisor::Placement
PlacementAdvisor::place(const std::vector<ColocatedApp> &apps,
                        const SimulationConfig &trial_config,
                        exec::ThreadPool *pool) const
{
    // Hungriest first: LC apps by mean core demand at their initial
    // load, then BE apps by thread count.
    std::vector<std::size_t> order(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i)
        order[i] = i;
    auto hunger = [&](std::size_t i) {
        const auto &a = apps[i];
        if (a.profile.latencyCritical) {
            const double load = a.load ? a.load->at(0.0) : 0.0;
            return a.profile.arrivalRate(load) *
                a.profile.serviceTimeMs / 1000.0;
        }
        return static_cast<double>(a.profile.threads);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return hunger(a) > hunger(b);
                     });

    std::vector<std::vector<ColocatedApp>> per_node(
        static_cast<std::size_t>(numNodes_));
    Placement placement;
    placement.assignment.assign(apps.size(), -1);
    placement.nodeEntropy.assign(
        static_cast<std::size_t>(numNodes_), 0.0);

    auto node_entropy = [&](const std::vector<ColocatedApp> &set) {
        if (set.empty())
            return 0.0;
        Node node(nodeConfig, set);
        EpochSimulator sim(node, trial_config);
        const auto sched = makeScheduler();
        return sim.run(*sched).meanES;
    };

    exec::ThreadPool &p = pool ? *pool : exec::globalPool();
    std::vector<double> trial_es(
        static_cast<std::size_t>(numNodes_), 0.0);
    for (std::size_t oi : order) {
        // Trial-simulate the app on every candidate node in
        // parallel; the argmin below scans in node order with
        // strict <, matching the serial greedy choice exactly.
        exec::parallelFor(
            p, static_cast<std::size_t>(numNodes_),
            [&](std::size_t n) {
                auto trial = per_node[n];
                trial.push_back(apps[oi]);
                trial_es[n] = node_entropy(trial);
            });
        int best_node = 0;
        double best_es = std::numeric_limits<double>::infinity();
        for (int n = 0; n < numNodes_; ++n) {
            const double es =
                trial_es[static_cast<std::size_t>(n)];
            if (es < best_es) {
                best_es = es;
                best_node = n;
            }
        }
        per_node[static_cast<std::size_t>(best_node)].push_back(
            apps[oi]);
        placement.assignment[oi] = best_node;
        placement.nodeEntropy[static_cast<std::size_t>(best_node)] =
            best_es;
    }

    double sum = 0.0;
    for (double e : placement.nodeEntropy)
        sum += e;
    placement.meanEntropy = sum / numNodes_;
    return placement;
}

} // namespace ahq::cluster

/**
 * @file
 * Fleet and placement advisor implementation.
 */

#include "cluster/fleet.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "obs/span.hh"
#include "sched/registry.hh"

namespace ahq::cluster
{

namespace
{

/** Seed salt decorrelating post-failover (phase B) RNG streams. */
constexpr std::uint64_t kRecoverySeedSalt = 0xb10c5;

} // namespace

void
Fleet::addNode(Node node, std::unique_ptr<sched::Scheduler> scheduler)
{
    assert(scheduler != nullptr);
    nodes_.push_back({std::move(node), std::move(scheduler)});
}

void
FleetAccumulator::add(const Node &node, const SimulationResult &res)
{
    violations += res.violations;
    for (machine::AppId i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        const auto ui = static_cast<std::size_t>(i);
        if (p.latencyCritical) {
            // Pool against the app's *steady-state* mean load:
            // meanP95Ms is a post-warmup aggregate, so its solo
            // reference must be too (a trace still ramping during
            // warmup would otherwise drag the reference below the
            // regime the steady tail was measured in).
            double mean_load = 0.0;
            if (ui < res.steadyMeanLoad.size()) {
                mean_load = res.steadyMeanLoad[ui];
            } else if (!res.epochs.empty()) {
                // Hand-built result without steadyMeanLoad: derive
                // it from the retained epochs, post-warmup only.
                double load_sum = 0.0;
                int steady = 0;
                for (std::size_t e = static_cast<std::size_t>(
                         std::max(res.warmupEpochs, 0));
                     e < res.epochs.size(); ++e) {
                    load_sum += res.epochs[e].obs[ui].loadFraction;
                    ++steady;
                }
                if (steady > 0)
                    mean_load =
                        load_sum / static_cast<double>(steady);
            }
            lc.push_back({p.soloTailP95Ms(mean_load),
                          res.meanP95Ms[ui], p.tailThresholdMs});
        } else {
            be.push_back({p.ipcSolo, res.meanIpc[ui]});
        }
    }
}

void
FleetAccumulator::merge(const FleetAccumulator &other)
{
    lc.insert(lc.end(), other.lc.begin(), other.lc.end());
    be.insert(be.end(), other.be.begin(), other.be.end());
    violations += other.violations;
}

core::EntropyReport
FleetAccumulator::entropy(double ri) const
{
    return core::computeEntropy(lc, be, ri);
}

core::EntropyReport
fleetEntropy(const std::vector<const Node *> &nodes,
             const std::vector<const SimulationResult *> &results,
             double ri)
{
    assert(nodes.size() == results.size());
    FleetAccumulator acc;
    for (std::size_t n = 0; n < nodes.size(); ++n)
        acc.add(*nodes[n], *results[n]);
    return acc.entropy(ri);
}

void
Fleet::runEntries(std::vector<Entry> &entries,
                  const SimulationConfig &config,
                  const obs::Scope &scope, bool tracing,
                  std::uint64_t seed_salt, const char *tag_suffix,
                  const std::vector<int> *ids,
                  std::vector<obs::BufferTraceSink> &buffers,
                  std::vector<SimulationResult> &out,
                  std::vector<FleetAccumulator> &accums,
                  exec::ThreadPool &p)
{
    out.resize(entries.size());
    accums.assign(entries.size(), {});
    // Each task touches only its own node entry (its scheduler
    // instance included), buffer, result and accumulator slot.
    exec::parallelFor(p, entries.size(), [&](std::size_t n) {
        const std::size_t id = ids != nullptr
            ? static_cast<std::size_t>((*ids)[n])
            : n;
        SimulationConfig per_node = config;
        per_node.seed = config.seed + 0x9e37 * (id + 1) + seed_salt;
        // A per-node scenario tag is needed when tracing (events
        // must say which node they came from) and also when a
        // time-series registry is attached: per-(series, node) keys
        // are what keep concurrent node recordings disjoint.
        if (tracing || scope.series != nullptr) {
            per_node.obs = scope.tagged(
                (scope.scenario.empty()
                     ? "node" + std::to_string(id)
                     : scope.scenario + "/node" +
                           std::to_string(id)) +
                tag_suffix);
            if (tracing)
                per_node.obs.sink = &buffers[n];
        }
        EpochSimulator sim(entries[n].node, per_node);
        out[n] = sim.run(*entries[n].scheduler);
        accums[n].add(entries[n].node, out[n]);
    });
}

Fleet::FleetResult
Fleet::run(const SimulationConfig &config, exec::ThreadPool *pool)
{
    FleetResult out;

    const obs::Scope &scope = config.obs;
    const bool tracing = scope.tracing();
    if (tracing) {
        obs::Event ev("fleet_start");
        ev.integer("nodes", numNodes())
            .integer("seed", static_cast<long long>(config.seed));
        scope.emit(ev);
    }
    exec::ThreadPool &p = pool ? *pool : exec::globalPool();

    // Fleet-level fault handling: node_crash directives coalesce to
    // the earliest crash epoch; every crashed node stops there and
    // its apps fail over to the survivors. Without valid crashes
    // (or without survivors to fail over to) the run takes the
    // exact single-phase path below, byte-identical to pre-fault
    // builds.
    const int total_epochs = static_cast<int>(
        std::round(config.durationSeconds / config.epochSeconds));
    std::vector<int> crashed;
    int crash_epoch = 0;
    if (config.faults != nullptr && total_epochs >= 2) {
        double crash_at = config.durationSeconds;
        for (const auto &c : config.faults->crashes()) {
            if (c.node < 0 || c.node >= numNodes() ||
                c.atS >= config.durationSeconds)
                continue;
            crash_at = std::min(crash_at, c.atS);
            if (std::find(crashed.begin(), crashed.end(),
                          c.node) == crashed.end())
                crashed.push_back(c.node);
        }
        std::sort(crashed.begin(), crashed.end());
        crash_epoch = std::clamp(
            static_cast<int>(crash_at / config.epochSeconds), 1,
            total_epochs - 1);
    }
    const bool crashing = !crashed.empty() &&
        static_cast<int>(crashed.size()) < numNodes();

    if (!crashing) {
        // While tracing, each node's run writes into a private
        // buffer; the buffers flush in node order below, keeping
        // fleet traces byte-identical at any thread count.
        std::vector<obs::BufferTraceSink> buffers(
            tracing ? nodes_.size() : 0);
        std::vector<FleetAccumulator> accums;
        runEntries(nodes_, config, scope, tracing, 0, "", nullptr,
                   buffers, out.nodes, accums, p);
        for (const auto &res : out.nodes) {
            out.violations += res.violations;
            out.attribution.merge(res.attribution);
            out.slo.merge(res.slo);
        }

        // Streaming reduce: the per-node accumulators built on the
        // pool merge in node order, so the pooled observation
        // sequence — and therefore the E_S bits — match the old
        // collect-then-reduce path at any thread count, without
        // the per-epoch records ever being required.
        const auto rep = [&] {
            obs::Span span(scope, "fleet.entropy");
            FleetAccumulator pooled;
            for (const auto &acc : accums)
                pooled.merge(acc);
            return pooled.entropy(config.ri);
        }();
        out.eLc = rep.eLc;
        out.eBe = rep.eBe;
        out.eS = rep.eS;
        out.yieldValue = rep.yieldValue;

        if (tracing) {
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                buffers[n].flushTo(*scope.sink);
                obs::Event ev("fleet_node");
                ev.integer("node", static_cast<long long>(n))
                    .str("colocation", nodes_[n].node.describe())
                    .str("scheduler", nodes_[n].scheduler->name())
                    .num("mean_e_s", out.nodes[n].meanES)
                    .integer("violations",
                             out.nodes[n].violations);
                scope.emit(ev);
            }
            obs::Event ev("fleet_end");
            ev.num("e_lc", out.eLc)
                .num("e_be", out.eBe)
                .num("e_s", out.eS)
                .num("yield", out.yieldValue)
                .integer("violations", out.violations);
            scope.emit(ev);
        }
        scope.count("fleet.runs");
        return out;
    }

    // ---- phase A: every node runs up to the crash instant --------
    const double ta = crash_epoch * config.epochSeconds;
    out.crashedNodes = crashed;
    for (int n : crashed) {
        scope.count("fault.node_crash");
        if (tracing) {
            obs::Event ev("fault");
            ev.str("fault", "node_crash")
                .integer("node", n)
                .num("t", ta);
            scope.emit(ev);
        }
    }

    SimulationConfig cfg_a = config;
    cfg_a.durationSeconds = ta;
    std::vector<obs::BufferTraceSink> buf_a(
        tracing ? nodes_.size() : 0);
    std::vector<SimulationResult> res_a;
    std::vector<FleetAccumulator> acc_a;
    runEntries(nodes_, cfg_a, scope, tracing, 0, "", nullptr, buf_a,
               res_a, acc_a, p);

    // ---- failover: re-place crashed apps onto the survivors ------
    std::vector<int> survivors;
    for (int n = 0; n < numNodes(); ++n) {
        if (!std::binary_search(crashed.begin(), crashed.end(), n))
            survivors.push_back(n);
    }
    std::vector<ColocatedApp> refugees;
    for (int n : crashed) {
        for (const auto &a :
             nodes_[static_cast<std::size_t>(n)].node.apps())
            refugees.push_back(a);
    }
    std::vector<std::vector<ColocatedApp>> initial;
    for (int n : survivors) {
        initial.push_back(
            nodes_[static_cast<std::size_t>(n)].node.apps());
    }

    // Short, unfaulted, unaudited trial runs drive the placement;
    // the advisor itself is deterministic per (apps, config).
    SimulationConfig trial = config;
    trial.obs = {};
    trial.checkMode = check::Mode::Off;
    trial.faults = nullptr;
    trial.durationSeconds = 8.0 * config.epochSeconds;
    trial.warmupEpochs = 2;
    trial.keepEpochs = false;

    const auto &first =
        nodes_[static_cast<std::size_t>(survivors.front())];
    const std::string strategy = first.scheduler->name();
    PlacementAdvisor advisor(
        first.node.config(), static_cast<int>(survivors.size()),
        [strategy] { return sched::makeScheduler(strategy); });
    // The trial scope is stripped (trial.obs = {}), so no trial
    // simulation records spans — the placement search appears as
    // one caller-side span and the node bodies stay span-free,
    // keeping paths independent of which thread ran which trial.
    const auto placement = [&] {
        obs::Span span(scope, "fleet.place");
        return advisor.place(refugees, trial, &p, &initial);
    }();

    for (std::size_t r = 0; r < refugees.size(); ++r)
        scope.count("recovery.failover");
    out.failovers = static_cast<int>(refugees.size());
    if (tracing) {
        obs::Event ev("recovery");
        ev.str("what", "failover")
            .integer("apps", out.failovers)
            .num("t", ta);
        scope.emit(ev);
    }

    // ---- phase B: survivors finish the run with the refugees -----
    std::vector<Entry> phase_b;
    for (std::size_t s = 0; s < survivors.size(); ++s) {
        auto apps = initial[s];
        for (std::size_t r = 0; r < refugees.size(); ++r) {
            if (placement.assignment[r] == static_cast<int>(s))
                apps.push_back(refugees[r]);
        }
        auto &entry =
            nodes_[static_cast<std::size_t>(survivors[s])];
        phase_b.push_back({Node(entry.node.config(),
                                std::move(apps)),
                           std::move(entry.scheduler)});
    }

    SimulationConfig cfg_b = config;
    cfg_b.durationSeconds = config.durationSeconds - ta;
    cfg_b.warmupEpochs =
        std::max(0, config.warmupEpochs - crash_epoch);
    std::vector<obs::BufferTraceSink> buf_b(
        tracing ? phase_b.size() : 0);
    std::vector<SimulationResult> res_b;
    std::vector<FleetAccumulator> acc_b;
    runEntries(phase_b, cfg_b, scope, tracing, kRecoverySeedSalt,
               "/recovered", &survivors, buf_b, res_b, acc_b, p);

    // Crashed slots report their phase A segment; survivors report
    // the recovered segment they finished with — but their QoS
    // violations cover the whole run: a violation a survivor
    // incurred *before* the crash happened and must not vanish
    // from the fleet totals just because its slot was overwritten
    // with the phase B segment.
    out.nodes.resize(nodes_.size());
    for (int n : crashed)
        out.nodes[static_cast<std::size_t>(n)] = std::move(
            res_a[static_cast<std::size_t>(n)]);
    for (std::size_t s = 0; s < survivors.size(); ++s) {
        auto &slot =
            out.nodes[static_cast<std::size_t>(survivors[s])];
        slot = std::move(res_b[s]);
        const auto &before =
            res_a[static_cast<std::size_t>(survivors[s])];
        slot.violations += before.violations;
        // Same whole-run accounting for the blame ledger and the
        // alert tallies: attribution a survivor accumulated before
        // the crash stays in the fleet totals.
        slot.attribution.merge(before.attribution);
        slot.slo.merge(before.slo);
    }
    for (const auto &res : out.nodes) {
        out.violations += res.violations;
        out.attribution.merge(res.attribution);
        out.slo.merge(res.slo);
    }

    // The datacenter entropy describes the post-recovery fleet:
    // merge the phase B accumulators in node order.
    const auto rep = [&] {
        obs::Span span(scope, "fleet.entropy");
        FleetAccumulator pooled;
        for (const auto &acc : acc_b)
            pooled.merge(acc);
        return pooled.entropy(config.ri);
    }();
    out.eLc = rep.eLc;
    out.eBe = rep.eBe;
    out.eS = rep.eS;
    out.yieldValue = rep.yieldValue;

    if (tracing) {
        std::size_t s = 0;
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            buf_a[n].flushTo(*scope.sink);
            const bool survived = !std::binary_search(
                crashed.begin(), crashed.end(),
                static_cast<int>(n));
            if (survived)
                buf_b[s].flushTo(*scope.sink);
            obs::Event ev("fleet_node");
            ev.integer("node", static_cast<long long>(n))
                .str("colocation",
                     survived ? phase_b[s].node.describe()
                              : nodes_[n].node.describe())
                .str("scheduler",
                     survived ? phase_b[s].scheduler->name()
                              : nodes_[n].scheduler->name())
                .num("mean_e_s", out.nodes[n].meanES)
                .integer("violations", out.nodes[n].violations)
                .str("status", survived ? "recovered" : "crashed");
            scope.emit(ev);
            if (survived)
                ++s;
        }
        obs::Event ev("fleet_end");
        ev.num("e_lc", out.eLc)
            .num("e_be", out.eBe)
            .num("e_s", out.eS)
            .num("yield", out.yieldValue)
            .integer("violations", out.violations)
            .integer("failovers", out.failovers);
        scope.emit(ev);
    }

    // Hand the survivors' schedulers back so the Fleet stays
    // reusable for another run.
    for (std::size_t s = 0; s < survivors.size(); ++s) {
        nodes_[static_cast<std::size_t>(survivors[s])].scheduler =
            std::move(phase_b[s].scheduler);
    }
    scope.count("fleet.runs");
    return out;
}

PlacementAdvisor::PlacementAdvisor(
    machine::MachineConfig node_config, int num_nodes,
    std::function<std::unique_ptr<sched::Scheduler>()> make_scheduler)
    : nodeConfig(std::move(node_config)), numNodes_(num_nodes),
      makeScheduler(std::move(make_scheduler))
{
    assert(num_nodes >= 1);
    assert(makeScheduler != nullptr);
}

PlacementAdvisor::Placement
PlacementAdvisor::place(
    const std::vector<ColocatedApp> &apps,
    const SimulationConfig &trial_config, exec::ThreadPool *pool,
    const std::vector<std::vector<ColocatedApp>> *initial) const
{
    // Hungriest first: LC apps by mean core demand at their initial
    // load, then BE apps by thread count.
    std::vector<std::size_t> order(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i)
        order[i] = i;
    auto hunger = [&](std::size_t i) {
        const auto &a = apps[i];
        if (a.profile.latencyCritical) {
            const double load = a.load ? a.load->at(0.0) : 0.0;
            return a.profile.arrivalRate(load) *
                a.profile.serviceTimeMs / 1000.0;
        }
        return static_cast<double>(a.profile.threads);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return hunger(a) > hunger(b);
                     });

    std::vector<std::vector<ColocatedApp>> per_node(
        static_cast<std::size_t>(numNodes_));
    if (initial != nullptr) {
        assert(static_cast<int>(initial->size()) == numNodes_);
        per_node = *initial;
    }
    Placement placement;
    placement.assignment.assign(apps.size(), -1);
    placement.nodeEntropy.assign(
        static_cast<std::size_t>(numNodes_), 0.0);

    auto node_entropy = [&](const std::vector<ColocatedApp> &set) {
        if (set.empty())
            return 0.0;
        Node node(nodeConfig, set);
        EpochSimulator sim(node, trial_config);
        const auto sched = makeScheduler();
        return sim.run(*sched).meanES;
    };

    exec::ThreadPool &p = pool ? *pool : exec::globalPool();
    std::vector<double> trial_es(
        static_cast<std::size_t>(numNodes_), 0.0);
    for (std::size_t oi : order) {
        // Trial-simulate the app on every candidate node in
        // parallel; the argmin below scans in node order with
        // strict <, matching the serial greedy choice exactly.
        exec::parallelFor(
            p, static_cast<std::size_t>(numNodes_),
            [&](std::size_t n) {
                auto trial = per_node[n];
                trial.push_back(apps[oi]);
                trial_es[n] = node_entropy(trial);
            });
        int best_node = 0;
        double best_es = std::numeric_limits<double>::infinity();
        for (int n = 0; n < numNodes_; ++n) {
            const double es =
                trial_es[static_cast<std::size_t>(n)];
            if (es < best_es) {
                best_es = es;
                best_node = n;
            }
        }
        per_node[static_cast<std::size_t>(best_node)].push_back(
            apps[oi]);
        placement.assignment[oi] = best_node;
    }

    // Report the entropy of the *final* colocation on every node —
    // including nodes that won no assignment but carry `initial`
    // apps, and winners whose mid-greedy trial value went stale as
    // later apps joined them. Empty nodes report 0.
    exec::parallelFor(
        p, static_cast<std::size_t>(numNodes_), [&](std::size_t n) {
            placement.nodeEntropy[n] = node_entropy(per_node[n]);
        });

    double sum = 0.0;
    for (double e : placement.nodeEntropy)
        sum += e;
    placement.meanEntropy = sum / numNodes_;
    return placement;
}

} // namespace ahq::cluster

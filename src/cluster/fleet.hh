/**
 * @file
 * Datacenter-level composition: a fleet of nodes, the pooled
 * system-entropy of all their applications (the paper consistently
 * frames E_S as a *datacenter* metric, with the node as the
 * contention domain), and a greedy entropy-driven placement advisor
 * that demonstrates using E_S as a placement objective.
 */

#ifndef AHQ_CLUSTER_FLEET_HH
#define AHQ_CLUSTER_FLEET_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/epoch_sim.hh"
#include "sched/scheduler.hh"

namespace ahq::exec
{
class ThreadPool;
}

namespace ahq::cluster
{

/**
 * Merge-commutative accumulator of pooled fleet observations.
 *
 * One accumulator holds the steady-state LC/BE observations (and
 * the violation count) of any subset of nodes; accumulators built
 * per node on pool workers merge into the datacenter pool without
 * ever materialising per-epoch records. Merging is commutative in
 * the entropy sense (E_LC / E_BE are means over the pooled
 * observation multiset); the fleet merges in node order anyway so
 * the floating-point sums — and thus the pooled E_S bits — are
 * identical to the serial collect-then-reduce path.
 */
struct FleetAccumulator
{
    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    long long violations = 0;

    /**
     * Fold one node's steady-state result in. Each LC app's
     * solo-tail reference is evaluated at its *steady-state* mean
     * load (SimulationResult::steadyMeanLoad): meanP95Ms is a
     * post-warmup aggregate, so pooling it against a load average
     * that included warmup epochs (where a trace may still be
     * ramping) would compare the steady tail against a reference
     * the steady state never saw. Results lacking steadyMeanLoad
     * (hand-built) fall back to scanning res.epochs from
     * res.warmupEpochs on — the identical sum.
     */
    void add(const Node &node, const SimulationResult &res);

    /** Append another accumulator's observations (in call order). */
    void merge(const FleetAccumulator &other);

    /** Pooled entropy over everything accumulated so far. */
    core::EntropyReport entropy(
        double ri = core::kDefaultRelativeImportance) const;
};

/**
 * A fleet of independently scheduled nodes sharing one entropy
 * accounting.
 */
class Fleet
{
  public:
    Fleet() = default;

    /** Add a node managed by the given strategy (takes ownership). */
    void addNode(Node node,
                 std::unique_ptr<sched::Scheduler> scheduler);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    /** Result of one fleet run. */
    struct FleetResult
    {
        /**
         * Per-node simulation results, in node order. With
         * config.keepEpochs=false each entry carries only the O(1)
         * steady-state aggregates (its epochs vector is empty), so
         * a 10k-node fleet costs O(nodes) resident memory; the
         * default keeps full per-epoch records for small fleets
         * and tests.
         */
        std::vector<SimulationResult> nodes;

        /** Datacenter-wide entropy over all apps of all nodes. */
        double eLc = 0.0;
        double eBe = 0.0;
        double eS = 0.0;

        /** Datacenter-wide yield over all LC apps. */
        double yieldValue = 1.0;

        /** Total QoS violations across nodes. */
        int violations = 0;

        /**
         * Applications re-placed onto surviving nodes after an
         * injected node crash (0 when the fault plan has no crash).
         */
        int failovers = 0;

        /** Nodes that crashed mid-run, in node order. */
        std::vector<int> crashedNodes;

        /**
         * Fleet-wide attribution ledger: the per-node ledgers
         * merged in node order (crash runs fold both phases), so
         * the merged rows are bitwise identical at any --jobs.
         * Empty unless the shared config sets `attribute`.
         */
        obs::AttributionLedger attribution;

        /** Summed alert accounting (zeros unless config.slo). */
        obs::SloSummary slo;
    };

    /**
     * Simulate every node under the shared configuration and pool
     * the steady-state observations into one datacenter entropy.
     * Per-node seeds are derived from config.seed so runs stay
     * deterministic yet nodes see independent noise. Nodes run in
     * parallel across the pool; results are bitwise identical at
     * any thread count.
     *
     * When config.faults carries node_crash directives the run
     * splits in two phases at the (earliest) crash epoch: phase A
     * runs every node to the crash instant, then the crashed nodes'
     * applications fail over to the survivors via the
     * entropy-driven PlacementAdvisor and the survivors finish the
     * run with the refugees colocated ("nodeN/recovered" trace
     * tags). Crashed slots report their phase A result; failovers
     * and crashedNodes record the recovery.
     *
     * @param pool Pool to fan out on; nullptr = globalPool().
     */
    FleetResult run(const SimulationConfig &config,
                    exec::ThreadPool *pool = nullptr);

  private:
    struct Entry
    {
        Node node;
        std::unique_ptr<sched::Scheduler> scheduler;
    };
    std::vector<Entry> nodes_;

    /**
     * Run one phase over a set of entries in parallel. `ids` maps
     * entry index to the original node id for tags and seeds
     * (nullptr = identity); `tag_suffix` distinguishes recovered
     * segments; `seed_salt` decorrelates phase RNG streams. Each
     * worker also folds its node's steady-state observations into
     * its own accums slot — the streaming half of the aggregation;
     * the caller merges the slots in node order.
     */
    static void runEntries(std::vector<Entry> &entries,
                           const SimulationConfig &config,
                           const obs::Scope &scope, bool tracing,
                           std::uint64_t seed_salt,
                           const char *tag_suffix,
                           const std::vector<int> *ids,
                           std::vector<obs::BufferTraceSink> &buffers,
                           std::vector<SimulationResult> &out,
                           std::vector<FleetAccumulator> &accums,
                           exec::ThreadPool &p);
};

/**
 * Pool per-node steady-state measurements into a datacenter-wide
 * entropy report (exposed for tests and custom aggregation).
 *
 * @param nodes The colocations, in the same order as results.
 * @param results Their simulation results.
 * @param ri Relative importance for the pooled E_S.
 */
core::EntropyReport
fleetEntropy(const std::vector<const Node *> &nodes,
             const std::vector<const SimulationResult *> &results,
             double ri = core::kDefaultRelativeImportance);

/**
 * Greedy entropy-driven placement: assign applications to a fixed
 * number of identical nodes, placing the hungriest applications
 * first and each on the node where a short trial simulation yields
 * the lowest node E_S.
 */
class PlacementAdvisor
{
  public:
    /**
     * @param node_config The (identical) node hardware.
     * @param num_nodes Number of nodes available.
     * @param make_scheduler Factory for the strategy evaluating each
     *        trial placement (a fresh instance per trial); called
     *        concurrently from pool workers, so it must be
     *        thread-safe.
     */
    PlacementAdvisor(
        machine::MachineConfig node_config, int num_nodes,
        std::function<std::unique_ptr<sched::Scheduler>()>
            make_scheduler);

    /** One placement decision. */
    struct Placement
    {
        /** apps[i] was placed on node assignment[i]. */
        std::vector<int> assignment;

        /**
         * Predicted E_S per node after the *complete* placement —
         * every node is trial-evaluated once more at the end, so
         * nodes that won no assignment but carry `initial` apps
         * report their real entropy, not 0.0.
         */
        std::vector<double> nodeEntropy;

        /** Mean predicted node E_S (over all nodes). */
        double meanEntropy = 0.0;
    };

    /**
     * Place the given applications. The candidate-node trials for
     * each app run in parallel; the greedy choice itself stays
     * sequential (each decision feeds the next), so the placement
     * matches the serial algorithm exactly.
     *
     * @param apps The applications (with their load traces).
     * @param trial_config Simulation settings for trial runs; keep
     *        short — the advisor runs O(apps x nodes) trials.
     * @param pool Pool to fan out on; nullptr = globalPool().
     * @param initial Optional pre-existing colocation per node
     *        (size num_nodes); trials then colocate each candidate
     *        with the apps already there. Used by Fleet failover,
     *        where survivors are not empty.
     */
    Placement place(const std::vector<ColocatedApp> &apps,
                    const SimulationConfig &trial_config,
                    exec::ThreadPool *pool = nullptr,
                    const std::vector<std::vector<ColocatedApp>>
                        *initial = nullptr) const;

  private:
    machine::MachineConfig nodeConfig;
    int numNodes_;
    std::function<std::unique_ptr<sched::Scheduler>()> makeScheduler;
};

} // namespace ahq::cluster

#endif // AHQ_CLUSTER_FLEET_HH

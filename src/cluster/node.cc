/**
 * @file
 * Node implementation.
 */

#include "cluster/node.hh"

#include <cassert>

namespace ahq::cluster
{

ColocatedApp
lcAt(apps::AppProfile profile, double load_fraction)
{
    assert(profile.latencyCritical);
    return {std::move(profile),
            std::make_shared<trace::ConstantTrace>(load_fraction)};
}

ColocatedApp
lcWith(apps::AppProfile profile,
       std::shared_ptr<trace::LoadTrace> load)
{
    assert(profile.latencyCritical);
    assert(load != nullptr);
    return {std::move(profile), std::move(load)};
}

ColocatedApp
be(apps::AppProfile profile)
{
    assert(!profile.latencyCritical);
    return {std::move(profile), nullptr};
}

Node::Node(machine::MachineConfig config, std::vector<ColocatedApp> apps)
    : config_(std::move(config)), apps_(std::move(apps))
{
    assert(config_.valid());
    assert(!apps_.empty());
    for (int i = 0; i < numApps(); ++i) {
        const auto &a = apps_[static_cast<std::size_t>(i)];
        if (a.profile.latencyCritical) {
            assert(a.load != nullptr &&
                   "LC apps need a load trace");
            lc.push_back(i);
        } else {
            be_.push_back(i);
        }
    }
    // Registration-time curve tables: one per app, over the
    // machine's integer way lattice (see perf/curve_table.hh).
    auto tables = std::make_shared<std::vector<perf::AppCurveTable>>();
    tables->reserve(apps_.size());
    for (const auto &a : apps_)
        tables->emplace_back(a.profile.cpi, config_.totalLlcWays);
    curves_ = std::move(tables);
}

const perf::AppCurveTable &
Node::curves(machine::AppId id) const
{
    assert(id >= 0 && id < numApps());
    return (*curves_)[static_cast<std::size_t>(id)];
}

const apps::AppProfile &
Node::profile(machine::AppId id) const
{
    assert(id >= 0 && id < numApps());
    return apps_[static_cast<std::size_t>(id)].profile;
}

double
Node::loadAt(machine::AppId id, double time_s) const
{
    assert(id >= 0 && id < numApps());
    const auto &a = apps_[static_cast<std::size_t>(id)];
    return a.profile.latencyCritical ? a.load->at(time_s) : 0.0;
}

std::vector<perf::AppDemand>
Node::demandsAt(double time_s) const
{
    std::vector<perf::AppDemand> demands;
    demandsAt(time_s, demands);
    return demands;
}

void
Node::demandsAt(double time_s,
                std::vector<perf::AppDemand> &demands) const
{
    demands.clear();
    demands.reserve(apps_.size());
    for (int i = 0; i < numApps(); ++i) {
        demands.push_back(
            apps_[static_cast<std::size_t>(i)].profile.toDemand(
                loadAt(i, time_s)));
        demands.back().curves =
            &(*curves_)[static_cast<std::size_t>(i)];
    }
}

std::vector<sched::AppObservation>
Node::staticObservations() const
{
    std::vector<sched::AppObservation> obs;
    obs.reserve(apps_.size());
    for (int i = 0; i < numApps(); ++i) {
        const auto &p = apps_[static_cast<std::size_t>(i)].profile;
        sched::AppObservation o;
        o.id = i;
        o.latencyCritical = p.latencyCritical;
        o.threads = p.threads;
        o.thresholdMs = p.tailThresholdMs;
        o.ipcSolo = p.ipcSolo;
        obs.push_back(o);
    }
    return obs;
}

std::string
Node::describe() const
{
    std::string out;
    for (machine::AppId id : lc) {
        if (!out.empty())
            out += '+';
        out += profile(id).name;
    }
    if (!be_.empty()) {
        if (!out.empty())
            out += '|';
        out += "be:";
        bool first = true;
        for (machine::AppId id : be_) {
            if (!first)
                out += '+';
            out += profile(id).name;
            first = false;
        }
    }
    return out;
}

} // namespace ahq::cluster

/**
 * @file
 * A colocation node: one machine plus the applications pinned to it
 * and the load traces driving the LC apps.
 */

#ifndef AHQ_CLUSTER_NODE_HH
#define AHQ_CLUSTER_NODE_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/profile.hh"
#include "machine/config.hh"
#include "perf/contention.hh"
#include "sched/scheduler.hh"
#include "trace/load_trace.hh"

namespace ahq::cluster
{

/** One application colocated on a node with its load trace. */
struct ColocatedApp
{
    apps::AppProfile profile;

    /** Load trace (LC apps only; BE apps always run flat out). */
    std::shared_ptr<trace::LoadTrace> load;

    /**
     * Post-migration cold-start window: for the first coldEpochs
     * epochs of a run this app's service is degraded (its caches
     * drained with the move and must re-warm), so a migration is
     * never free. 0 (the default) is the exact warm path.
     */
    int coldEpochs = 0;

    /**
     * Fractional service degradation at epoch 0 of the cold
     * window, decaying linearly to 0 over coldEpochs: effective
     * service times are stretched by 1 + coldPenalty * remaining /
     * coldEpochs (LC), and BE IPC divided by the same factor.
     */
    double coldPenalty = 0.0;
};

/** Convenience: colocate an LC app at a constant load fraction. */
ColocatedApp lcAt(apps::AppProfile profile, double load_fraction);

/** Convenience: colocate an LC app with an arbitrary trace. */
ColocatedApp lcWith(apps::AppProfile profile,
                    std::shared_ptr<trace::LoadTrace> load);

/** Convenience: colocate a BE app. */
ColocatedApp be(apps::AppProfile profile);

/**
 * A datacenter node with its colocated applications.
 */
class Node
{
  public:
    Node(machine::MachineConfig config, std::vector<ColocatedApp> apps);

    const machine::MachineConfig &config() const { return config_; }

    /** Number of colocated applications. */
    int numApps() const { return static_cast<int>(apps_.size()); }

    /** Profile of one application. */
    const apps::AppProfile &profile(machine::AppId id) const;

    /** Load fraction of one app at the given time (0 for BE). */
    double loadAt(machine::AppId id, double time_s) const;

    /** The colocated applications, in AppId order. */
    const std::vector<ColocatedApp> &apps() const { return apps_; }

    /** Ids of the LC applications. */
    const std::vector<machine::AppId> &lcApps() const { return lc; }

    /** Ids of the BE applications. */
    const std::vector<machine::AppId> &beApps() const { return be_; }

    /** Contention-model demands of every app at the given time. */
    std::vector<perf::AppDemand> demandsAt(double time_s) const;

    /**
     * As demandsAt(), but writing into @p demands so the per-epoch
     * simulation loop recycles one buffer. Each demand carries the
     * node's precomputed per-app curve table.
     */
    void demandsAt(double time_s,
                   std::vector<perf::AppDemand> &demands) const;

    /** Precomputed contention curves of one app (node lifetime). */
    const perf::AppCurveTable &curves(machine::AppId id) const;

    /**
     * Observation skeletons with the static fields (id, kind,
     * threads, threshold, solo IPC) filled in; measurements zeroed.
     */
    std::vector<sched::AppObservation> staticObservations() const;

    /**
     * Compact colocation summary for reports and trace events,
     * e.g. "xapian+moses|be:sphinx" (LC apps, then BE apps).
     */
    std::string describe() const;

  private:
    machine::MachineConfig config_;
    std::vector<ColocatedApp> apps_;
    std::vector<machine::AppId> lc;
    std::vector<machine::AppId> be_;

    /**
     * Per-app curve tables over the machine's way lattice, built
     * once at registration (shared_ptr so Node copies stay cheap
     * and AppDemand::curves pointers remain valid across them).
     */
    std::shared_ptr<const std::vector<perf::AppCurveTable>> curves_;
};

} // namespace ahq::cluster

#endif // AHQ_CLUSTER_NODE_HH

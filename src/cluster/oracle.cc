/**
 * @file
 * Oracle search implementation.
 */

#include "cluster/oracle.hh"

#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "perf/queueing.hh"

namespace ahq::cluster
{

using machine::AppId;
using machine::Region;
using machine::RegionLayout;

namespace
{

/**
 * Enumerate compositions: parts[i] = mins[i] + step * k_i with the
 * total exactly `total` when reachable; the remainder that cannot
 * be expressed in whole steps is added to part 0.
 */
void
forEachComposition(int total, const std::vector<int> &mins, int step,
                   const std::function<void(
                       const std::vector<int> &)> &visit)
{
    const int parts = static_cast<int>(mins.size());
    int base = 0;
    for (int m : mins)
        base += m;
    if (base > total)
        return;
    const int extra_units = (total - base) / step;
    const int leftover = (total - base) % step;

    std::vector<int> units(static_cast<std::size_t>(parts), 0);
    std::function<void(int, int)> rec = [&](int idx,
                                            int remaining) {
        if (idx == parts - 1) {
            units[static_cast<std::size_t>(idx)] = remaining;
            std::vector<int> out(static_cast<std::size_t>(parts));
            for (int i = 0; i < parts; ++i) {
                out[static_cast<std::size_t>(i)] =
                    mins[static_cast<std::size_t>(i)] +
                    step * units[static_cast<std::size_t>(i)];
            }
            out[0] += leftover;
            visit(out);
            return;
        }
        for (int k = 0; k <= remaining; ++k) {
            units[static_cast<std::size_t>(idx)] = k;
            rec(idx + 1, remaining - k);
        }
    };
    rec(0, extra_units);
}

/** Materialize an enumeration so it can be fanned across a pool. */
std::vector<std::vector<int>>
allCompositions(int total, const std::vector<int> &mins, int step)
{
    std::vector<std::vector<int>> out;
    forEachComposition(total, mins, step,
                       [&](const std::vector<int> &c) {
                           out.push_back(c);
                       });
    return out;
}

/**
 * Best layout within one core split. The sentinel es (infinity
 * when the split admitted no way composition) keeps empty splits
 * out of the merge.
 */
struct SplitBest
{
    OracleResult result;
    double es = std::numeric_limits<double>::infinity();
};

/**
 * Merge per-split bests in enumeration order with the same
 * strict-< rule the serial scan applied, so the first global
 * minimum in (core split, way split) order wins either way.
 */
OracleResult
mergeSplitBests(const std::vector<SplitBest> &locals)
{
    OracleResult best;
    double best_es = std::numeric_limits<double>::infinity();
    for (const auto &l : locals) {
        best.evaluated += l.result.evaluated;
        if (l.es < best_es) {
            best_es = l.es;
            best.layout = l.result.layout;
            best.report = l.result.report;
        }
    }
    return best;
}

/** Distribute bandwidth units proportionally to cores. */
std::vector<int>
bwProportionalToCores(const std::vector<int> &cores, int total_bw)
{
    int total_cores = 0;
    for (int c : cores)
        total_cores += c;
    std::vector<int> bw(cores.size(), 0);
    int assigned = 0;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        bw[i] = total_cores > 0 ?
            total_bw * cores[i] / total_cores : 0;
        assigned += bw[i];
    }
    bw[0] += total_bw - assigned;
    return bw;
}

} // namespace

core::EntropyReport
steadyStateEntropy(const Node &node, const RegionLayout &layout,
                   perf::CoreSharePolicy policy,
                   const OracleConfig &cfg)
{
    perf::ContentionModel model(node.config(), cfg.contention);
    const auto demands = node.demandsAt(0.0);
    const auto out = model.evaluate(layout, demands, policy);

    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    for (AppId i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        const auto ui = static_cast<std::size_t>(i);
        if (p.latencyCritical) {
            const double load = node.loadAt(i, 0.0);
            const double lambda = p.arrivalRate(load);
            const double cap = out[ui].serviceRate;
            const double svc_tail =
                p.svcMultAt(cfg.tailPercentile) *
                out[ui].serviceStretch;
            const double lam_eff = std::min(lambda, 0.98 * cap);
            double t = perf::sojournPercentileApprox(
                out[ui].coreEquivalents, lam_eff,
                out[ui].perServerRate, svc_tail,
                cfg.tailPercentile);
            if (!std::isfinite(t))
                t = svc_tail / out[ui].perServerRate;
            if (lambda > cap) {
                // Saturated: the generator-capped backlog drains
                // ahead of every request (cf. the epoch simulator).
                const double backlog = lambda * 0.10 + 32.0;
                t += backlog / std::max(cap, 1e-9);
            }
            lc.push_back(
                {p.soloTailPercentileMs(load, cfg.tailPercentile),
                 p.baseLatencyMs + 1000.0 * t,
                 p.tailThresholdMs});
        } else {
            be.push_back({p.ipcSolo, out[ui].ipc});
        }
    }
    return core::computeEntropy(lc, be, cfg.ri);
}

OracleResult
bestIsolatedPartition(const Node &node, const OracleConfig &cfg)
{
    const auto avail = node.config().availableResources();
    const auto &lc = node.lcApps();
    const bool has_be = !node.beApps().empty();
    const int groups =
        static_cast<int>(lc.size()) + (has_be ? 1 : 0);
    assert(groups >= 1);

    const std::vector<int> core_mins(
        static_cast<std::size_t>(groups), 1);
    const std::vector<int> way_mins(
        static_cast<std::size_t>(groups), 1);

    const auto splits =
        allCompositions(avail.cores, core_mins, cfg.coreStep);
    auto eval_split = [&](const std::vector<int> &cores) {
        SplitBest local;
        const auto bw = bwProportionalToCores(cores, avail.memBw);
        forEachComposition(avail.llcWays, way_mins, cfg.wayStep,
                           [&](const std::vector<int> &ways) {
            RegionLayout layout(avail);
            for (std::size_t g = 0; g < lc.size(); ++g) {
                Region r;
                r.name = "iso" + std::to_string(lc[g]);
                r.shared = false;
                r.members = {lc[g]};
                r.res = {cores[g], ways[g], bw[g]};
                layout.addRegion(std::move(r));
            }
            if (has_be) {
                Region pool;
                pool.name = "bepool";
                pool.shared = true;
                pool.members = node.beApps();
                const auto g = lc.size();
                pool.res = {cores[g], ways[g], bw[g]};
                layout.addRegion(std::move(pool));
            }
            const auto rep = steadyStateEntropy(
                node, layout, perf::CoreSharePolicy::FairShare,
                cfg);
            ++local.result.evaluated;
            if (rep.eS < local.es) {
                local.es = rep.eS;
                local.result.layout = layout;
                local.result.report = rep;
            }
        });
        return local;
    };
    exec::ThreadPool &pool =
        cfg.pool ? *cfg.pool : exec::globalPool();
    return mergeSplitBests(
        exec::parallelMap(pool, splits, eval_split));
}

OracleResult
bestHybridPartition(const Node &node, const OracleConfig &cfg)
{
    const auto avail = node.config().availableResources();
    const auto &lc = node.lcApps();
    const int groups = static_cast<int>(lc.size()) + 1;

    // Group 0 is the shared region (min 1 core / 1 way so that BE
    // members stay viable); iso regions may be empty.
    std::vector<int> core_mins(static_cast<std::size_t>(groups), 0);
    std::vector<int> way_mins(static_cast<std::size_t>(groups), 0);
    core_mins[0] = 1;
    way_mins[0] = 1;

    std::vector<AppId> everyone = lc;
    everyone.insert(everyone.end(), node.beApps().begin(),
                    node.beApps().end());

    const auto splits =
        allCompositions(avail.cores, core_mins, cfg.coreStep);
    auto eval_split = [&](const std::vector<int> &cores) {
        SplitBest local;
        const auto bw = bwProportionalToCores(cores, avail.memBw);
        forEachComposition(avail.llcWays, way_mins, cfg.wayStep,
                           [&](const std::vector<int> &ways) {
            RegionLayout layout(avail);
            Region shared;
            shared.name = "shared";
            shared.shared = true;
            shared.members = everyone;
            shared.res = {cores[0], ways[0], bw[0]};
            layout.addRegion(std::move(shared));
            for (std::size_t g = 0; g < lc.size(); ++g) {
                Region r;
                r.name = "iso" + std::to_string(lc[g]);
                r.shared = false;
                r.members = {lc[g]};
                r.res = {cores[g + 1], ways[g + 1], bw[g + 1]};
                layout.addRegion(std::move(r));
            }
            const auto rep = steadyStateEntropy(
                node, layout, perf::CoreSharePolicy::LcPriority,
                cfg);
            ++local.result.evaluated;
            if (rep.eS < local.es) {
                local.es = rep.eS;
                local.result.layout = layout;
                local.result.report = rep;
            }
        });
        return local;
    };
    exec::ThreadPool &pool =
        cfg.pool ? *cfg.pool : exec::globalPool();
    return mergeSplitBests(
        exec::parallelMap(pool, splits, eval_split));
}

} // namespace ahq::cluster

/**
 * @file
 * Oracle search implementation.
 */

#include "cluster/oracle.hh"

#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

#include "perf/queueing.hh"

namespace ahq::cluster
{

using machine::AppId;
using machine::Region;
using machine::RegionLayout;

namespace
{

/**
 * Enumerate compositions: parts[i] = mins[i] + step * k_i with the
 * total exactly `total` when reachable; the remainder that cannot
 * be expressed in whole steps is added to part 0.
 */
void
forEachComposition(int total, const std::vector<int> &mins, int step,
                   const std::function<void(
                       const std::vector<int> &)> &visit)
{
    const int parts = static_cast<int>(mins.size());
    int base = 0;
    for (int m : mins)
        base += m;
    if (base > total)
        return;
    const int extra_units = (total - base) / step;
    const int leftover = (total - base) % step;

    std::vector<int> units(static_cast<std::size_t>(parts), 0);
    std::function<void(int, int)> rec = [&](int idx,
                                            int remaining) {
        if (idx == parts - 1) {
            units[static_cast<std::size_t>(idx)] = remaining;
            std::vector<int> out(static_cast<std::size_t>(parts));
            for (int i = 0; i < parts; ++i) {
                out[static_cast<std::size_t>(i)] =
                    mins[static_cast<std::size_t>(i)] +
                    step * units[static_cast<std::size_t>(i)];
            }
            out[0] += leftover;
            visit(out);
            return;
        }
        for (int k = 0; k <= remaining; ++k) {
            units[static_cast<std::size_t>(idx)] = k;
            rec(idx + 1, remaining - k);
        }
    };
    rec(0, extra_units);
}

/** Distribute bandwidth units proportionally to cores. */
std::vector<int>
bwProportionalToCores(const std::vector<int> &cores, int total_bw)
{
    int total_cores = 0;
    for (int c : cores)
        total_cores += c;
    std::vector<int> bw(cores.size(), 0);
    int assigned = 0;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        bw[i] = total_cores > 0 ?
            total_bw * cores[i] / total_cores : 0;
        assigned += bw[i];
    }
    bw[0] += total_bw - assigned;
    return bw;
}

} // namespace

core::EntropyReport
steadyStateEntropy(const Node &node, const RegionLayout &layout,
                   perf::CoreSharePolicy policy,
                   const OracleConfig &cfg)
{
    perf::ContentionModel model(node.config(), cfg.contention);
    const auto demands = node.demandsAt(0.0);
    const auto out = model.evaluate(layout, demands, policy);

    std::vector<core::LcObservation> lc;
    std::vector<core::BeObservation> be;
    for (AppId i = 0; i < node.numApps(); ++i) {
        const auto &p = node.profile(i);
        const auto ui = static_cast<std::size_t>(i);
        if (p.latencyCritical) {
            const double load = node.loadAt(i, 0.0);
            const double lambda = p.arrivalRate(load);
            const double cap = out[ui].serviceRate;
            const double svc_tail =
                p.svcMultAt(cfg.tailPercentile) *
                out[ui].serviceStretch;
            const double lam_eff = std::min(lambda, 0.98 * cap);
            double t = perf::sojournPercentileApprox(
                out[ui].coreEquivalents, lam_eff,
                out[ui].perServerRate, svc_tail,
                cfg.tailPercentile);
            if (!std::isfinite(t))
                t = svc_tail / out[ui].perServerRate;
            if (lambda > cap) {
                // Saturated: the generator-capped backlog drains
                // ahead of every request (cf. the epoch simulator).
                const double backlog = lambda * 0.10 + 32.0;
                t += backlog / std::max(cap, 1e-9);
            }
            lc.push_back(
                {p.soloTailPercentileMs(load, cfg.tailPercentile),
                 p.baseLatencyMs + 1000.0 * t,
                 p.tailThresholdMs});
        } else {
            be.push_back({p.ipcSolo, out[ui].ipc});
        }
    }
    return core::computeEntropy(lc, be, cfg.ri);
}

OracleResult
bestIsolatedPartition(const Node &node, const OracleConfig &cfg)
{
    const auto avail = node.config().availableResources();
    const auto &lc = node.lcApps();
    const bool has_be = !node.beApps().empty();
    const int groups =
        static_cast<int>(lc.size()) + (has_be ? 1 : 0);
    assert(groups >= 1);

    OracleResult best;
    double best_es = std::numeric_limits<double>::infinity();

    const std::vector<int> core_mins(
        static_cast<std::size_t>(groups), 1);
    const std::vector<int> way_mins(
        static_cast<std::size_t>(groups), 1);

    forEachComposition(avail.cores, core_mins, cfg.coreStep,
                       [&](const std::vector<int> &cores) {
        const auto bw = bwProportionalToCores(cores, avail.memBw);
        forEachComposition(avail.llcWays, way_mins, cfg.wayStep,
                           [&](const std::vector<int> &ways) {
            RegionLayout layout(avail);
            for (std::size_t g = 0; g < lc.size(); ++g) {
                Region r;
                r.name = "iso" + std::to_string(lc[g]);
                r.shared = false;
                r.members = {lc[g]};
                r.res = {cores[g], ways[g], bw[g]};
                layout.addRegion(std::move(r));
            }
            if (has_be) {
                Region pool;
                pool.name = "bepool";
                pool.shared = true;
                pool.members = node.beApps();
                const auto g = lc.size();
                pool.res = {cores[g], ways[g], bw[g]};
                layout.addRegion(std::move(pool));
            }
            const auto rep = steadyStateEntropy(
                node, layout, perf::CoreSharePolicy::FairShare,
                cfg);
            ++best.evaluated;
            if (rep.eS < best_es) {
                best_es = rep.eS;
                best.layout = layout;
                best.report = rep;
            }
        });
    });
    return best;
}

OracleResult
bestHybridPartition(const Node &node, const OracleConfig &cfg)
{
    const auto avail = node.config().availableResources();
    const auto &lc = node.lcApps();
    const int groups = static_cast<int>(lc.size()) + 1;

    OracleResult best;
    double best_es = std::numeric_limits<double>::infinity();

    // Group 0 is the shared region (min 1 core / 1 way so that BE
    // members stay viable); iso regions may be empty.
    std::vector<int> core_mins(static_cast<std::size_t>(groups), 0);
    std::vector<int> way_mins(static_cast<std::size_t>(groups), 0);
    core_mins[0] = 1;
    way_mins[0] = 1;

    std::vector<AppId> everyone = lc;
    everyone.insert(everyone.end(), node.beApps().begin(),
                    node.beApps().end());

    forEachComposition(avail.cores, core_mins, cfg.coreStep,
                       [&](const std::vector<int> &cores) {
        const auto bw = bwProportionalToCores(cores, avail.memBw);
        forEachComposition(avail.llcWays, way_mins, cfg.wayStep,
                           [&](const std::vector<int> &ways) {
            RegionLayout layout(avail);
            Region shared;
            shared.name = "shared";
            shared.shared = true;
            shared.members = everyone;
            shared.res = {cores[0], ways[0], bw[0]};
            layout.addRegion(std::move(shared));
            for (std::size_t g = 0; g < lc.size(); ++g) {
                Region r;
                r.name = "iso" + std::to_string(lc[g]);
                r.shared = false;
                r.members = {lc[g]};
                r.res = {cores[g + 1], ways[g + 1], bw[g + 1]};
                layout.addRegion(std::move(r));
            }
            const auto rep = steadyStateEntropy(
                node, layout, perf::CoreSharePolicy::LcPriority,
                cfg);
            ++best.evaluated;
            if (rep.eS < best_es) {
                best_es = rep.eS;
                best.layout = layout;
                best.report = rep;
            }
        });
    });
    return best;
}

} // namespace ahq::cluster

/**
 * @file
 * Oracle search over static partitions.
 *
 * The paper's key insight (Section IV-A) is that neither complete
 * isolation nor complete sharing is optimal. This module makes that
 * quantitative: it exhaustively searches static layouts of two
 * families — full isolation (one exclusive region per application
 * group, the PARTIES/CLITE shape) and hybrid (per-LC isolated
 * regions plus one shared region, the ARQ shape) — under the
 * steady-state performance model, and returns the entropy-optimal
 * layout of each. The gap between the two optima is exactly the
 * value of resource sharing; the gap between a live controller and
 * its family's oracle measures the controller's convergence.
 *
 * The search is deliberately noise-free and backlog-free (steady
 * state), so it bounds what any feedback controller could converge
 * to under the same model.
 */

#ifndef AHQ_CLUSTER_ORACLE_HH
#define AHQ_CLUSTER_ORACLE_HH

#include <vector>

#include "cluster/node.hh"
#include "core/entropy.hh"
#include "machine/layout.hh"

namespace ahq::exec
{
class ThreadPool;
}

namespace ahq::cluster
{

/** Search configuration. */
struct OracleConfig
{
    /** Granularity of way enumeration (ways move in these steps). */
    int wayStep = 2;

    /** Granularity of core enumeration. */
    int coreStep = 1;

    /** Relative importance for the entropy objective. */
    double ri = core::kDefaultRelativeImportance;

    /** Tail percentile of the latency model. */
    double tailPercentile = 0.95;

    /** Contention model tunables. */
    perf::ContentionTraits contention;

    /**
     * Pool the search fans out on (the outer core-split loop);
     * nullptr = the process-global pool. The best layout, its
     * report and the evaluated count are bitwise identical at any
     * thread count: per-split bests are merged in enumeration
     * order with the same strict-< rule the serial scan used.
     */
    exec::ThreadPool *pool = nullptr;
};

/** The outcome of one oracle search. */
struct OracleResult
{
    machine::RegionLayout layout{machine::ResourceVector{}};
    core::EntropyReport report;

    /** Layouts evaluated during the search. */
    long evaluated = 0;
};

/**
 * Steady-state entropy of one candidate layout (no noise, no
 * backlog, no repartition overhead) — the objective the oracle
 * minimises, exposed for tests and custom searches.
 *
 * @param node The colocation.
 * @param layout Candidate layout.
 * @param policy Core-sharing policy for shared regions.
 * @param cfg Search configuration (model knobs).
 */
core::EntropyReport
steadyStateEntropy(const Node &node,
                   const machine::RegionLayout &layout,
                   perf::CoreSharePolicy policy,
                   const OracleConfig &cfg = {});

/**
 * Best fully-isolated static partition: one exclusive region per LC
 * app plus one BE pool (FairShare inside the pool).
 */
OracleResult bestIsolatedPartition(const Node &node,
                                   const OracleConfig &cfg = {});

/**
 * Best hybrid partition: one (possibly empty) isolated region per
 * LC app plus one shared region holding everyone, with LC priority
 * in the shared region (the ARQ family).
 */
OracleResult bestHybridPartition(const Node &node,
                                 const OracleConfig &cfg = {});

} // namespace ahq::cluster

#endif // AHQ_CLUSTER_ORACLE_HH

/**
 * @file
 * Dual-metric entropy implementation.
 */

#include "core/dual.hh"

#include <algorithm>
#include <cassert>

namespace ahq::core
{

double
dualIntolerable(const DualObservation &obs, DualPolicy policy)
{
    const double q_lat = lcBreakdown(obs.latency).intolerable;

    assert(obs.throughput.ipcSolo > 0.0);
    const double real = std::max(obs.throughput.ipcReal, 1e-9);
    const double q_thr = std::clamp(
        1.0 - real / obs.throughput.ipcSolo, 0.0, 1.0);

    switch (policy) {
      case DualPolicy::MoreCritical:
        return std::max(q_lat, q_thr);
      case DualPolicy::WeightedAggregate: {
        const double w = std::clamp(obs.latencyWeight, 0.0, 1.0);
        return w * q_lat + (1.0 - w) * q_thr;
      }
    }
    return 0.0;
}

double
dualEntropy(const std::vector<DualObservation> &apps,
            DualPolicy policy)
{
    if (apps.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &o : apps)
        sum += dualIntolerable(o, policy);
    return sum / static_cast<double>(apps.size());
}

double
mixedSystemEntropy(const std::vector<LcObservation> &lc,
                   const std::vector<BeObservation> &be,
                   const std::vector<DualObservation> &dual,
                   DualPolicy policy, double ri)
{
    // Dual apps have QoS expectations, so they average into the LC
    // side of Eq. 7.
    double lc_sum = 0.0;
    for (const auto &o : lc)
        lc_sum += lcBreakdown(o).intolerable;
    for (const auto &o : dual)
        lc_sum += dualIntolerable(o, policy);
    const std::size_t lc_n = lc.size() + dual.size();
    const double e_lc =
        lc_n > 0 ? lc_sum / static_cast<double>(lc_n) : 0.0;

    const double e_be = beEntropy(be);
    return systemEntropy(e_lc, e_be, ri, lc_n > 0, !be.empty());
}

} // namespace ahq::core

/**
 * @file
 * Dual-metric applications — the future work Section VII names:
 * "There may be applications that care about both latency and IPC.
 * In that case, we could either choose a more critical performance
 * metric, or come up with an aggregated metric that takes various
 * metrics into account."
 *
 * Both options are provided. A dual observation carries a latency
 * view (ideal/actual/threshold, like an LC app) and a throughput
 * view (solo/real IPC, like a BE app); its contribution to the
 * entropy is either the more critical of the two intolerable
 * components (MoreCritical) or their convex combination
 * (WeightedAggregate).
 */

#ifndef AHQ_CORE_DUAL_HH
#define AHQ_CORE_DUAL_HH

#include <vector>

#include "core/entropy.hh"

namespace ahq::core
{

/** How a dual-metric app folds its two views into one number. */
enum class DualPolicy
{
    /** Take the worse of the two intolerable components. */
    MoreCritical,

    /** Weighted aggregate: w * latency + (1-w) * throughput. */
    WeightedAggregate,
};

/** One application observed through both lenses. */
struct DualObservation
{
    /** The latency view (TL_i0 / TL_i1 / M_i). */
    LcObservation latency;

    /** The throughput view (IPC solo / real). */
    BeObservation throughput;

    /**
     * Weight of the latency view under WeightedAggregate, in
     * [0, 1]. Ignored under MoreCritical.
     */
    double latencyWeight = 0.5;
};

/**
 * The app's intolerable-interference contribution in [0, 1]:
 * the latency component is Q_i (Eq. 4); the throughput component is
 * the app's normalised slowdown excess 1 - IPC_real/IPC_solo.
 */
double dualIntolerable(const DualObservation &obs, DualPolicy policy);

/**
 * Entropy of a set of dual-metric applications: the mean of their
 * intolerable contributions (the Eq. 5 shape). Returns 0 when empty.
 */
double dualEntropy(const std::vector<DualObservation> &apps,
                   DualPolicy policy);

/**
 * System entropy over a mixed population: classic LC apps, classic
 * BE apps, and dual-metric apps. The dual apps join the LC side of
 * Eq. 7 (they have QoS expectations), with their contributions
 * averaged into E_LC.
 */
double mixedSystemEntropy(const std::vector<LcObservation> &lc,
                          const std::vector<BeObservation> &be,
                          const std::vector<DualObservation> &dual,
                          DualPolicy policy,
                          double ri = kDefaultRelativeImportance);

} // namespace ahq::core

#endif // AHQ_CORE_DUAL_HH

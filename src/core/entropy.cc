/**
 * @file
 * System entropy implementation.
 */

#include "core/entropy.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ahq::core
{

namespace
{

double
clamp01(double v)
{
    return std::clamp(v, 0.0, 1.0);
}

} // namespace

LcBreakdown
lcBreakdown(const LcObservation &obs)
{
    assert(obs.thresholdMs > 0.0);
    assert(obs.idealTailMs >= 0.0);
    assert(obs.actualTailMs >= 0.0);

    LcBreakdown b;

    // Eq. (1): A_i = 1 - TL_i0 / M_i. The paper assumes TL_i0 < M_i;
    // clamp for robustness when callers feed an overloaded ideal.
    b.tolerance = clamp01(1.0 - obs.idealTailMs / obs.thresholdMs);

    // Eq. (2): R_i = 1 - TL_i0 / TL_i1; zero when the observation is
    // at or below the ideal (no interference, or noise).
    if (obs.actualTailMs > obs.idealTailMs && obs.actualTailMs > 0.0) {
        if (std::isinf(obs.actualTailMs))
            b.interference = 1.0;
        else
            b.interference =
                clamp01(1.0 - obs.idealTailMs / obs.actualTailMs);
    } else {
        b.interference = 0.0;
    }

    // Eq. (3): remaining tolerance.
    if (b.tolerance > b.interference) {
        b.remainingTolerance =
            clamp01(1.0 - obs.actualTailMs / obs.thresholdMs);
    } else {
        b.remainingTolerance = 0.0;
    }

    // Eq. (4): intolerable interference.
    if (b.interference > b.tolerance) {
        if (std::isinf(obs.actualTailMs))
            b.intolerable = 1.0;
        else
            b.intolerable =
                clamp01(1.0 - obs.thresholdMs / obs.actualTailMs);
    } else {
        b.intolerable = 0.0;
    }

    return b;
}

double
lcEntropy(const std::vector<LcObservation> &lc)
{
    if (lc.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &obs : lc)
        sum += lcBreakdown(obs).intolerable;
    return sum / static_cast<double>(lc.size());
}

double
beEntropy(const std::vector<BeObservation> &be)
{
    if (be.empty())
        return 0.0;
    double slowdown_sum = 0.0;
    for (const auto &obs : be) {
        assert(obs.ipcSolo > 0.0);
        // Colocation cannot speed an app up in this model; clamp the
        // per-app slowdown at 1 so noise cannot produce negative
        // entropy contributions.
        const double real = std::max(obs.ipcReal, 1e-9);
        slowdown_sum += std::max(1.0, obs.ipcSolo / real);
    }
    const double m = static_cast<double>(be.size());
    return clamp01(1.0 - m / slowdown_sum);
}

double
systemEntropy(double e_lc, double e_be, double ri, bool has_lc,
              bool has_be)
{
    assert(ri >= 0.0 && ri <= 1.0);
    if (has_lc && !has_be)
        return e_lc; // Scenario 1: RI degenerates to 1.
    if (!has_lc && has_be)
        return e_be; // Scenario 2: RI degenerates to 0.
    if (!has_lc && !has_be)
        return 0.0;
    return ri * e_lc + (1.0 - ri) * e_be; // Eq. (7)
}

double
yield(const std::vector<LcObservation> &lc, double elasticity)
{
    if (lc.empty())
        return 1.0;
    int satisfied = 0;
    for (const auto &obs : lc) {
        if (obs.actualTailMs <=
            obs.thresholdMs * (1.0 + elasticity)) {
            ++satisfied;
        }
    }
    return static_cast<double>(satisfied) /
        static_cast<double>(lc.size());
}

EntropyReport
computeEntropy(const std::vector<LcObservation> &lc,
               const std::vector<BeObservation> &be, double ri)
{
    EntropyReport rep;
    computeEntropyInto(lc, be, ri, rep);
    return rep;
}

void
computeEntropyInto(const std::vector<LcObservation> &lc,
                   const std::vector<BeObservation> &be, double ri,
                   EntropyReport &rep)
{
    // Reset every scalar while keeping the detail vector's capacity
    // (per-interval controllers pass the same report object so the
    // monitor phase stays allocation-free once warm).
    auto detail = std::move(rep.lcDetail);
    detail.clear();
    rep = EntropyReport{};
    rep.lcDetail = std::move(detail);
    rep.lcDetail.reserve(lc.size());
    for (const auto &obs : lc)
        rep.lcDetail.push_back(lcBreakdown(obs));

    rep.eLc = lcEntropy(lc);
    rep.eBe = beEntropy(be);
    rep.eS = systemEntropy(rep.eLc, rep.eBe, ri, !lc.empty(),
                           !be.empty());
    rep.yieldValue = yield(lc);

    if (!rep.lcDetail.empty()) {
        for (const auto &b : rep.lcDetail) {
            rep.meanTolerance += b.tolerance;
            rep.meanInterference += b.interference;
            rep.meanRemainingTolerance += b.remainingTolerance;
        }
        const double n = static_cast<double>(rep.lcDetail.size());
        rep.meanTolerance /= n;
        rep.meanInterference /= n;
        rep.meanRemainingTolerance /= n;
    }
}

} // namespace ahq::core

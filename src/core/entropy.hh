/**
 * @file
 * System entropy (E_S): the paper's interference metric.
 *
 * Implements Section II's analytical expressions:
 *
 *   A_i   = 1 - TL_i0 / M_i                     (Eq. 1, tolerance)
 *   R_i   = 1 - TL_i0 / TL_i1                   (Eq. 2, interference)
 *   ReT_i = A_i > R_i ? 1 - TL_i1 / M_i : 0     (Eq. 3)
 *   Q_i   = R_i > A_i ? 1 - M_i / TL_i1 : 0     (Eq. 4)
 *   E_LC  = (1/N) * sum_i Q_i                   (Eq. 5)
 *   E_BE  = 1 - M / sum_i (IPC_solo/IPC_real)   (Eq. 6)
 *   E_S   = RI * E_LC + (1 - RI) * E_BE         (Eq. 7)
 *
 * All quantities are dimensionless and lie in [0, 1] (required
 * property 1 in Section II-A); resource-amount and scheduling
 * sensitivity (properties 2 and 3) are validated by the test suite
 * and the Table II / Fig. 2 benches.
 */

#ifndef AHQ_CORE_ENTROPY_HH
#define AHQ_CORE_ENTROPY_HH

#include <vector>

namespace ahq::core
{

/** The paper's default relative importance of LC over BE (§II-B). */
inline constexpr double kDefaultRelativeImportance = 0.8;

/** The paper's assumed relative elasticity of the QoS target M_i. */
inline constexpr double kThresholdElasticity = 0.05;

/** One LC application's observed latencies for an interval. */
struct LcObservation
{
    /** TL_i0: ideal p95 tail latency at the current load, ms. */
    double idealTailMs = 0.0;

    /** TL_i1: observed p95 tail latency under colocation, ms. */
    double actualTailMs = 0.0;

    /** M_i: maximum tolerable p95 tail latency, ms. */
    double thresholdMs = 1.0;
};

/** One BE application's observed throughput for an interval. */
struct BeObservation
{
    /** IPC when running alone under ideal conditions. */
    double ipcSolo = 1.0;

    /** IPC under colocation. */
    double ipcReal = 1.0;
};

/** Per-LC-app derived quantities (Eqs. 1-4). */
struct LcBreakdown
{
    double tolerance = 0.0;          // A_i
    double interference = 0.0;       // R_i
    double remainingTolerance = 0.0; // ReT_i
    double intolerable = 0.0;        // Q_i
};

/**
 * Compute A_i, R_i, ReT_i and Q_i for one LC application.
 *
 * Inputs are clamped to their physical ranges: observed latencies
 * below the ideal (measurement noise) yield zero interference, and an
 * unbounded observed latency yields Q_i -> 1.
 */
LcBreakdown lcBreakdown(const LcObservation &obs);

/** E_LC over the given LC applications (Eq. 5); 0 when empty. */
double lcEntropy(const std::vector<LcObservation> &lc);

/** E_BE over the given BE applications (Eq. 6); 0 when empty. */
double beEntropy(const std::vector<BeObservation> &be);

/**
 * E_S = RI * E_LC + (1-RI) * E_BE (Eq. 7).
 *
 * When only one application class is present the other term is
 * dropped entirely (Scenario 1/2 of §II-B: RI degenerates to 1 or 0),
 * which the has_lc / has_be flags express.
 */
double systemEntropy(double e_lc, double e_be, double ri, bool has_lc,
                     bool has_be);

/**
 * Yield: the fraction of LC applications whose observed tail latency
 * satisfies its (elasticity-relaxed) QoS target (§I, §VI-A).
 *
 * @param lc Observations.
 * @param elasticity Relative slack on M_i (the paper uses 5%).
 */
double yield(const std::vector<LcObservation> &lc,
             double elasticity = kThresholdElasticity);

/** Complete entropy accounting for one monitoring interval. */
struct EntropyReport
{
    std::vector<LcBreakdown> lcDetail;
    double eLc = 0.0;
    double eBe = 0.0;
    double eS = 0.0;
    double yieldValue = 1.0;

    /** Mean tolerance A over the LC apps ("System" row, Table II). */
    double meanTolerance = 0.0;

    /** Mean interference R over the LC apps. */
    double meanInterference = 0.0;

    /** Mean remaining tolerance ReT over the LC apps. */
    double meanRemainingTolerance = 0.0;
};

/**
 * Compute the full entropy report for one interval.
 *
 * @param lc LC observations (may be empty).
 * @param be BE observations (may be empty).
 * @param ri Relative importance of LC over BE in [0, 1].
 */
EntropyReport computeEntropy(const std::vector<LcObservation> &lc,
                             const std::vector<BeObservation> &be,
                             double ri = kDefaultRelativeImportance);

/**
 * As computeEntropy(), but recycling @p rep (all fields are reset;
 * the lcDetail vector keeps its capacity). Per-interval controllers
 * pass a persistent report so the monitor phase does not allocate.
 */
void computeEntropyInto(const std::vector<LcObservation> &lc,
                        const std::vector<BeObservation> &be,
                        double ri, EntropyReport &rep);

} // namespace ahq::core

#endif // AHQ_CORE_ENTROPY_HH

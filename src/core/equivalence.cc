/**
 * @file
 * Resource equivalence implementation.
 */

#include "core/equivalence.hh"

#include <algorithm>
#include <cassert>

namespace ahq::core
{

EntropyCurve
monotoneEnvelope(EntropyCurve curve)
{
    // Running minimum left-to-right: with more resources the
    // achievable entropy can only stay equal or drop, so any noisy
    // bump above an earlier (cheaper) point is clamped down to it —
    // the lower envelope of the sampled curve.
    for (std::size_t i = 1; i < curve.size(); ++i) {
        curve[i].second =
            std::min(curve[i].second, curve[i - 1].second);
    }
    return curve;
}

std::optional<double>
resourceForEntropy(const EntropyCurve &curve, double target_entropy)
{
    if (curve.empty())
        return std::nullopt;
    for (std::size_t i = 1; i < curve.size(); ++i)
        assert(curve[i].first >= curve[i - 1].first);

    const EntropyCurve env = monotoneEnvelope(curve);

    // Entropy decreases left-to-right; find the first point at or
    // below the target.
    if (env.front().second <= target_entropy)
        return env.front().first;
    for (std::size_t i = 1; i < env.size(); ++i) {
        if (env[i].second <= target_entropy) {
            const auto &[r0, e0] = env[i - 1];
            const auto &[r1, e1] = env[i];
            if (e0 == e1)
                return r1;
            const double frac = (e0 - target_entropy) / (e0 - e1);
            return r0 + frac * (r1 - r0);
        }
    }
    return std::nullopt; // target unreachable in the sampled range
}

std::optional<double>
resourceEquivalence(const EntropyCurve &p1, const EntropyCurve &p2,
                    double target_entropy)
{
    const auto r1 = resourceForEntropy(p1, target_entropy);
    const auto r2 = resourceForEntropy(p2, target_entropy);
    if (!r1 || !r2)
        return std::nullopt;
    return *r1 - *r2;
}

std::vector<IsentropicPoint>
isentropicLine(const std::vector<double> &secondaries,
               const std::vector<EntropyCurve> &curves,
               double target_entropy)
{
    assert(secondaries.size() == curves.size());
    std::vector<IsentropicPoint> line;
    line.reserve(curves.size());
    for (std::size_t k = 0; k < curves.size(); ++k) {
        line.push_back({secondaries[k],
                        resourceForEntropy(curves[k],
                                           target_entropy)});
    }
    return line;
}

} // namespace ahq::core

/**
 * @file
 * Resource equivalence (Section II-C / III-B).
 *
 * A scheduling strategy p2 has resource equivalence dR relative to p1
 * when p1 needs R + dR resources to reach the same E_S that p2
 * reaches with R. The solver works over empirically sampled
 * (resource, E_S) curves: it enforces a monotone envelope (E_S is
 * non-increasing in resources by required property 2, but sampled
 * curves can wiggle) and interpolates linearly, which is how the
 * paper reads fractional values such as "7.61 cores" off Fig. 3(a).
 */

#ifndef AHQ_CORE_EQUIVALENCE_HH
#define AHQ_CORE_EQUIVALENCE_HH

#include <optional>
#include <utility>
#include <vector>

namespace ahq::core
{

/** A sampled (resource amount, E_S) point. */
using EntropyPoint = std::pair<double, double>;

/** A sampled E_S-vs-resource curve; resource values must ascend. */
using EntropyCurve = std::vector<EntropyPoint>;

/**
 * Replace the entropy values with their running minimum from the
 * right, producing a non-increasing curve (the monotone envelope).
 * Sampled curves can wiggle due to measurement noise; property 2
 * guarantees the underlying relation is monotone.
 */
EntropyCurve monotoneEnvelope(EntropyCurve curve);

/**
 * The resource amount at which the curve reaches the target entropy,
 * by linear interpolation on the monotone envelope.
 *
 * @param curve Sampled curve (resource ascending).
 * @param target_entropy Target E_S.
 * @return The interpolated resource amount, or nullopt when the
 *         target is unreachable within the sampled range.
 */
std::optional<double> resourceForEntropy(const EntropyCurve &curve,
                                         double target_entropy);

/**
 * Resource equivalence of strategy p2 relative to p1 at the target
 * entropy: resources p1 needs minus resources p2 needs (positive
 * means p2 is the better strategy).
 *
 * @return nullopt when either strategy cannot reach the target in
 *         the sampled range.
 */
std::optional<double> resourceEquivalence(const EntropyCurve &p1,
                                          const EntropyCurve &p2,
                                          double target_entropy);

/**
 * One point of an isentropic line (Fig. 3(b)): for a fixed secondary
 * resource amount (e.g. LLC ways), the primary resource (e.g. cores)
 * needed to reach the target entropy.
 */
struct IsentropicPoint
{
    double secondary;             // e.g. LLC ways
    std::optional<double> primary; // e.g. cores needed
};

/**
 * Compute an isentropic line from a family of curves: curves[k] is
 * the (primary resource, E_S) curve at secondary amount
 * secondaries[k].
 */
std::vector<IsentropicPoint>
isentropicLine(const std::vector<double> &secondaries,
               const std::vector<EntropyCurve> &curves,
               double target_entropy);

} // namespace ahq::core

#endif // AHQ_CORE_EQUIVALENCE_HH

/**
 * @file
 * Weighted entropy implementation.
 */

#include "core/weighted.hh"

#include <algorithm>
#include <cassert>

namespace ahq::core
{

double
weightedLcEntropy(const std::vector<WeightedLcObservation> &lc)
{
    if (lc.empty())
        return 0.0;
    double num = 0.0, den = 0.0;
    for (const auto &w : lc) {
        assert(w.weight > 0.0);
        num += w.weight * lcBreakdown(w.obs).intolerable;
        den += w.weight;
    }
    return num / den;
}

double
weightedBeEntropy(const std::vector<WeightedBeObservation> &be)
{
    if (be.empty())
        return 0.0;
    double w_sum = 0.0, slow_sum = 0.0;
    for (const auto &w : be) {
        assert(w.weight > 0.0);
        assert(w.obs.ipcSolo > 0.0);
        const double real = std::max(w.obs.ipcReal, 1e-9);
        const double slowdown =
            std::max(1.0, w.obs.ipcSolo / real);
        w_sum += w.weight;
        slow_sum += w.weight * slowdown;
    }
    return std::clamp(1.0 - w_sum / slow_sum, 0.0, 1.0);
}

double
weightedSystemEntropy(const std::vector<WeightedLcObservation> &lc,
                      const std::vector<WeightedBeObservation> &be,
                      double ri)
{
    return systemEntropy(weightedLcEntropy(lc),
                         weightedBeEntropy(be), ri, !lc.empty(),
                         !be.empty());
}

} // namespace ahq::core

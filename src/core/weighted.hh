/**
 * @file
 * Weighted system entropy — the extension Section II-B sketches:
 * "If necessary, the E_S model can be extended to involve different
 * RI factors among the same type of applications."
 *
 * Each LC application gets a criticality weight (its share of E_LC)
 * and each BE application a value weight (its share of the harmonic
 * slowdown). With uniform weights the definitions reduce exactly to
 * Eqs. (5)-(7), which the tests assert.
 */

#ifndef AHQ_CORE_WEIGHTED_HH
#define AHQ_CORE_WEIGHTED_HH

#include <vector>

#include "core/entropy.hh"

namespace ahq::core
{

/** An LC observation with a criticality weight (> 0). */
struct WeightedLcObservation
{
    LcObservation obs;
    double weight = 1.0;
};

/** A BE observation with a value weight (> 0). */
struct WeightedBeObservation
{
    BeObservation obs;
    double weight = 1.0;
};

/**
 * Weighted LC entropy: the weight-normalised mean of the Q_i.
 *
 *   E_LC^w = sum_i w_i Q_i / sum_i w_i
 *
 * Reduces to Eq. (5) for uniform weights. Returns 0 when empty.
 */
double weightedLcEntropy(const std::vector<WeightedLcObservation> &lc);

/**
 * Weighted BE entropy: the weighted harmonic slowdown,
 *
 *   E_BE^w = 1 - (sum_i w_i) / (sum_i w_i * slowdown_i)
 *
 * Reduces to Eq. (6) for uniform weights. Returns 0 when empty.
 */
double weightedBeEntropy(const std::vector<WeightedBeObservation> &be);

/**
 * Weighted system entropy, Eq. (7) over the weighted class
 * entropies, degenerating to a single class exactly as
 * systemEntropy() does.
 */
double
weightedSystemEntropy(const std::vector<WeightedLcObservation> &lc,
                      const std::vector<WeightedBeObservation> &be,
                      double ri = kDefaultRelativeImportance);

} // namespace ahq::core

#endif // AHQ_CORE_WEIGHTED_HH

/**
 * @file
 * Default-jobs resolution and the global pool.
 */

#include "exec/jobs.hh"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/thread_pool.hh"

namespace ahq::exec
{

namespace
{

std::mutex g_mutex;
int g_jobs = 0; // 0 = not resolved yet
std::unique_ptr<ThreadPool> g_pool;

int
resolveJobs()
{
    if (const char *env = std::getenv("AHQ_JOBS")) {
        try {
            const int v = std::stoi(env);
            if (v >= 1)
                return v;
        } catch (const std::exception &) {
            // fall through to the hardware default
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

int
defaultJobs()
{
    std::lock_guard<std::mutex> lk(g_mutex);
    if (g_jobs < 1)
        g_jobs = resolveJobs();
    return g_jobs;
}

void
setDefaultJobs(int jobs)
{
    std::unique_ptr<ThreadPool> retired;
    {
        std::lock_guard<std::mutex> lk(g_mutex);
        g_jobs = jobs >= 1 ? jobs : resolveJobs();
        if (g_pool && g_pool->threads() != g_jobs)
            retired = std::move(g_pool);
    }
    // retired joins its workers here, outside the lock
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lk(g_mutex);
    if (g_jobs < 1)
        g_jobs = resolveJobs();
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_jobs);
    return *g_pool;
}

} // namespace ahq::exec

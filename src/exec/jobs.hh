/**
 * @file
 * Process-wide thread-count policy and the shared pool.
 *
 * Thread count resolves, in order: setDefaultJobs() (the CLI's
 * --jobs flag), the AHQ_JOBS environment variable, then
 * std::thread::hardware_concurrency(). Every parallel entry point
 * in the repo accepts an explicit ThreadPool for tests and falls
 * back to globalPool() — results do not depend on the choice.
 */

#ifndef AHQ_EXEC_JOBS_HH
#define AHQ_EXEC_JOBS_HH

namespace ahq::exec
{

class ThreadPool;

/** Resolved default thread count (>= 1). */
int defaultJobs();

/**
 * Override the default thread count (values < 1 reset to the
 * AHQ_JOBS / hardware default). Recreates the global pool if it
 * already exists at a different size; call while no parallel work
 * is in flight (e.g. during argument parsing).
 */
void setDefaultJobs(int jobs);

/** The lazily-created process-wide pool at defaultJobs() threads. */
ThreadPool &globalPool();

} // namespace ahq::exec

#endif // AHQ_EXEC_JOBS_HH

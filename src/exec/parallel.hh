/**
 * @file
 * Ordered data-parallel primitives on top of ThreadPool.
 *
 * parallelFor(pool, n, fn) runs fn(0..n-1) with the calling thread
 * participating; parallelMap collects fn(items[i]) into slot i of
 * the result vector. Because every index writes only its own slot
 * and carries its own state (the repo's scenarios each own a seeded
 * RNG), results are bitwise identical at any thread count — the
 * scheduling order is unobservable.
 */

#ifndef AHQ_EXEC_PARALLEL_HH
#define AHQ_EXEC_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hh"

namespace ahq::exec
{

/**
 * Run fn(i) for i in [0, n) across the pool, returning when every
 * call has finished. The caller drains indices alongside the
 * workers, and nested calls from inside a pool task run entirely
 * inline, so the primitive cannot deadlock on its own pool. The
 * first exception thrown by fn stops the remaining indices and is
 * rethrown here.
 */
inline void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || pool.threads() <= 1 ||
        ThreadPool::onPoolThread()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct State
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};
        std::mutex m;
        std::condition_variable cv;
        int pending = 0;
        std::exception_ptr error;
        std::size_t n = 0;
        const std::function<void(std::size_t)> *fn = nullptr;
    };
    // shared_ptr: queued helper tasks may start after the caller
    // has already drained every index.
    auto st = std::make_shared<State>();
    st->n = n;
    st->fn = &fn;

    auto drain = [](const std::shared_ptr<State> &s) {
        while (!s->stop.load(std::memory_order_relaxed)) {
            const std::size_t i =
                s->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= s->n)
                break;
            try {
                (*s->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(s->m);
                if (!s->error)
                    s->error = std::current_exception();
                s->stop.store(true, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t helpers = std::min<std::size_t>(
        static_cast<std::size_t>(pool.threads()), n);
    st->pending = static_cast<int>(helpers);
    for (std::size_t t = 0; t < helpers; ++t) {
        pool.post([st, drain] {
            drain(st);
            std::lock_guard<std::mutex> lk(st->m);
            if (--st->pending == 0)
                st->cv.notify_all();
        });
    }
    drain(st);
    std::unique_lock<std::mutex> lk(st->m);
    st->cv.wait(lk, [&] { return st->pending == 0; });
    if (st->error)
        std::rethrow_exception(st->error);
}

/**
 * Map items through fn across the pool; out[i] == fn(items[i]) with
 * results in input order regardless of execution interleaving. The
 * result type must be default-constructible.
 */
template <typename T, typename F>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, F fn)
    -> std::vector<std::invoke_result_t<F &, const T &>>
{
    using R = std::invoke_result_t<F &, const T &>;
    std::vector<R> out(items.size());
    parallelFor(pool, items.size(),
                [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

} // namespace ahq::exec

#endif // AHQ_EXEC_PARALLEL_HH

/**
 * @file
 * ScenarioRunner implementation.
 */

#include "exec/scenario_runner.hh"

#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "sched/registry.hh"

namespace ahq::exec
{

ScenarioRunner::ScenarioRunner(ThreadPool *pool,
                               SchedulerFactory factory)
    : pool_(pool),
      factory_(factory ? std::move(factory)
                       : SchedulerFactory(&sched::makeScheduler))
{
}

std::vector<cluster::SimulationResult>
ScenarioRunner::run(const std::vector<ScenarioJob> &jobs) const
{
    ThreadPool &pool = pool_ ? *pool_ : globalPool();
    return parallelMap(pool, jobs, [&](const ScenarioJob &job) {
        const auto sched = factory_(job.strategy);
        cluster::EpochSimulator sim(job.node, job.config);
        return sim.run(*sched);
    });
}

std::vector<cluster::SimulationResult>
runScenarios(const std::vector<ScenarioJob> &jobs)
{
    return ScenarioRunner().run(jobs);
}

} // namespace ahq::exec

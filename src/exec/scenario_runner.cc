/**
 * @file
 * ScenarioRunner implementation.
 */

#include "exec/scenario_runner.hh"

#include <chrono>

#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "obs/span.hh"
#include "sched/registry.hh"

namespace ahq::exec
{

ScenarioRunner::ScenarioRunner(ThreadPool *pool,
                               SchedulerFactory factory)
    : pool_(pool),
      factory_(factory ? std::move(factory)
                       : SchedulerFactory(&sched::makeScheduler))
{
}

std::vector<cluster::SimulationResult>
ScenarioRunner::run(const std::vector<ScenarioJob> &jobs) const
{
    ThreadPool &pool = pool_ ? *pool_ : globalPool();
    if (!obs_.tracing() && obs_.metrics == nullptr &&
        !obs_.profiling() && obs_.series == nullptr) {
        return parallelMap(pool, jobs, [&](const ScenarioJob &job) {
            const auto sched = factory_(job.strategy);
            cluster::EpochSimulator sim(job.node, job.config);
            return sim.run(*sched);
        });
    }

    // Telemetry path. Each job traces into its own buffer and
    // profiles into its own SpanProfiler; the buffers (span events
    // included) are flushed to the real sink in job order
    // afterwards, so the trace is byte-identical at any thread
    // count. Metrics go straight to the shared registry — counter
    // and histogram updates commute, so those totals are
    // order-independent too, and so are the per-job profiler
    // merges into the runner-level profiler (integer aggregates).
    // The time-series registry (obs_.series) likewise rides along
    // on the per-job scope copies: each job records under its own
    // scenario tag, so concurrent jobs touch disjoint series and
    // the folded buckets are order-independent by construction.
    const bool tracing = obs_.tracing();
    const bool profiling = obs_.profiling();
    std::vector<obs::BufferTraceSink> buffers(jobs.size());
    std::vector<obs::SpanProfiler> profs(
        profiling ? jobs.size() : 0);
    std::vector<cluster::SimulationResult> results(jobs.size());
    parallelFor(pool, jobs.size(), [&](std::size_t i) {
        const ScenarioJob &job = jobs[i];
        obs::Scope scope =
            obs_.tagged(job.tag.empty() ? job.strategy : job.tag);
        if (tracing)
            scope.sink = &buffers[i];
        if (profiling)
            scope.prof = &profs[i];

        const auto start = std::chrono::steady_clock::now();
        if (tracing) {
            obs::Event ev("scenario_start");
            ev.str("scheduler", job.strategy)
                .str("node", job.node.describe())
                .integer("job",
                         static_cast<long long>(i));
            scope.emit(ev);
        }

        const auto sched = factory_(job.strategy);
        cluster::SimulationConfig cfg = job.config;
        cfg.obs = scope;
        {
            obs::Span span(scope, "exec.scenario");
            cluster::EpochSimulator sim(job.node, cfg);
            results[i] = sim.run(*sched);
        }

        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (tracing) {
            obs::Event ev("scenario_end");
            ev.str("scheduler", job.strategy)
                .num("mean_e_s", results[i].meanES)
                .num("yield", results[i].yieldValue);
            // Wall time is opt-in: it varies run to run and would
            // break trace reproducibility.
            if (obs_.wallClock)
                ev.num("wall_ms", wall_ms);
            scope.emit(ev);
        }
        scope.count("exec.scenarios");
        scope.observe("exec.scenario_wall_ms", wall_ms);
        if (profiling) {
            // Span events land in this job's buffer (deterministic
            // content, deterministic flush order below); the fold
            // into the runner-level profiler commutes.
            profs[i].flush(scope);
            obs_.prof->merge(profs[i]);
        }
    });

    if (tracing) {
        for (auto &buf : buffers)
            buf.flushTo(*obs_.sink);
    }
    return results;
}

std::vector<cluster::SimulationResult>
runScenarios(const std::vector<ScenarioJob> &jobs)
{
    return ScenarioRunner().run(jobs);
}

} // namespace ahq::exec

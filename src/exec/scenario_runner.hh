/**
 * @file
 * Batch scenario execution: fan a vector of (strategy, node,
 * config) jobs across the thread pool and collect the simulation
 * results in job order.
 *
 * Determinism contract: each job owns its SimulationConfig::seed
 * and gets a fresh scheduler instance, so the result vector is
 * bitwise identical whether the batch runs on 1 or N threads (the
 * tests/exec determinism suite asserts this field by field).
 */

#ifndef AHQ_EXEC_SCENARIO_RUNNER_HH
#define AHQ_EXEC_SCENARIO_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/epoch_sim.hh"
#include "obs/scope.hh"
#include "sched/scheduler.hh"

namespace ahq::exec
{

class ThreadPool;

/** One unit of batch work. */
struct ScenarioJob
{
    /** Strategy name (resolved through the sched registry). */
    std::string strategy;

    /** The colocation to simulate. */
    cluster::Node node;

    /** Simulation settings, including the job's own seed. */
    cluster::SimulationConfig config;

    /**
     * Scenario id stamped into trace events (defaults to the
     * strategy name when empty). Tag jobs when a batch runs the
     * same strategy more than once.
     */
    std::string tag;
};

/**
 * Runs batches of independent scenario simulations in parallel.
 */
class ScenarioRunner
{
  public:
    /** Name -> fresh scheduler; must be callable concurrently. */
    using SchedulerFactory =
        std::function<std::unique_ptr<sched::Scheduler>(
            const std::string &)>;

    /**
     * @param pool Pool to fan out on; nullptr = globalPool().
     * @param factory Strategy factory; default is the sched
     *        registry (sched::makeScheduler).
     */
    explicit ScenarioRunner(ThreadPool *pool = nullptr,
                            SchedulerFactory factory = {});

    /**
     * Attach telemetry for subsequent batches. While tracing, each
     * job writes into a private buffer that is flushed to the real
     * sink in job order after the batch, so the trace bytes are
     * identical at any thread count.
     */
    void setObsScope(obs::Scope scope) { obs_ = std::move(scope); }

    /** Run every job; results are in job order. */
    std::vector<cluster::SimulationResult>
    run(const std::vector<ScenarioJob> &jobs) const;

  private:
    ThreadPool *pool_;
    SchedulerFactory factory_;
    obs::Scope obs_;
};

/** Convenience: one batch on the global pool, registry factory. */
std::vector<cluster::SimulationResult>
runScenarios(const std::vector<ScenarioJob> &jobs);

} // namespace ahq::exec

#endif // AHQ_EXEC_SCENARIO_RUNNER_HH

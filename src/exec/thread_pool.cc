/**
 * @file
 * ThreadPool implementation.
 */

#include "exec/thread_pool.hh"

#include <chrono>
#include <stdexcept>

#include "obs/span.hh"

namespace ahq::exec
{

namespace
{

thread_local bool t_on_pool_thread = false;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    const int n = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        if (stopping_) // idempotent: workers already joined below
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        // Same lock as the stopping_ flip in shutdown(): a racing
        // post() either enqueues before the drain (and runs) or
        // lands here — never in a queue no worker will ever read.
        if (stopping_) {
            throw std::runtime_error(
                "ThreadPool::post: pool is shut down");
        }
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
ThreadPool::onPoolThread()
{
    return t_on_pool_thread;
}

void
ThreadPool::workerLoop()
{
    t_on_pool_thread = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        obs::SpanProfiler *prof =
            prof_.load(std::memory_order_relaxed);
        if (prof == nullptr) {
            task();
            continue;
        }
        // Recorded directly (not through the thread-local span
        // stack) so a pool-level profiler never becomes a foreign
        // parent in the task's own span hierarchy.
        const auto start = std::chrono::steady_clock::now();
        task();
        prof->record(
            "pool.task",
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
    }
}

} // namespace ahq::exec

/**
 * @file
 * A fixed-size worker pool for fanning independent evaluations
 * (scenario simulations, oracle layout searches) across cores.
 *
 * The pool is deliberately work-stealing-free: tasks run in FIFO
 * submission order on whichever worker frees up first, and every
 * higher-level primitive built on it (exec/parallel.hh) collects
 * results by index, so outputs never depend on interleaving. That
 * is the repo's determinism contract — parallel runs are bitwise
 * identical to serial runs because each task owns its seeded RNG
 * and writes only its own result slot.
 */

#ifndef AHQ_EXEC_THREAD_POOL_HH
#define AHQ_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ahq::obs
{
class SpanProfiler;
} // namespace ahq::obs

namespace ahq::exec
{

/**
 * Fixed set of worker threads draining one FIFO task queue.
 *
 * Lifetime: shutdown() (called by the destructor) drains every task
 * already queued, then joins the workers, so fire-and-forget work
 * posted before shutdown always completes. Posting after shutdown
 * has begun is a defined error: post() throws instead of silently
 * enqueueing work that would never run.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; clamped up to 1. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int threads() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Enqueue fire-and-forget work. Never blocks, so it is safe to
     * call from inside a pool task (nested submission enqueues; the
     * caller must not block waiting on the nested task from a pool
     * thread). The task must not throw — use submit() for work
     * whose exceptions matter.
     *
     * @throws std::runtime_error once shutdown() has begun — the
     *         task would otherwise be dropped on the floor. The
     *         check and the enqueue happen under one lock, so a
     *         racing post() either lands before the drain or
     *         throws; it can never be lost silently.
     */
    void post(std::function<void()> task);

    /**
     * Stop accepting work, drain the queue and join the workers.
     * Idempotent; called by the destructor. Must not be called from
     * a pool thread (a worker cannot join itself).
     */
    void shutdown();

    /**
     * Enqueue work and observe its result — or its exception — via
     * the returned future.
     */
    template <typename F>
    auto submit(F &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        auto fut = task->get_future();
        post([task] { (*task)(); });
        return fut;
    }

    /**
     * True when the calling thread is a pool worker (of any pool in
     * the process). parallelFor() uses this to run nested parallel
     * regions inline instead of deadlocking on its own workers.
     */
    static bool onPoolThread();

    /**
     * Attach a diagnostics profiler: every task drained by a
     * worker is recorded as a root `pool.task` span. Null detaches
     * (the default — one relaxed atomic load per task). The task
     * count depends on pool size and scheduling, so this profiler
     * is for local diagnosis only and is never routed into the
     * deterministic trace stream. The profiler must outlive the
     * pool or be detached first.
     */
    void attachProfiler(obs::SpanProfiler *prof)
    {
        prof_.store(prof, std::memory_order_relaxed);
    }

  private:
    void workerLoop();

    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
    std::atomic<obs::SpanProfiler *> prof_{nullptr};
};

} // namespace ahq::exec

#endif // AHQ_EXEC_THREAD_POOL_HH

/**
 * @file
 * Experiment design implementation.
 */

#include "experiment/design.hh"

#include <stdexcept>

#include "stats/rng.hh"

namespace ahq::experiment
{

namespace
{

/**
 * Balanced arm vector of length n (ceil(n/2) zeros first), then a
 * seeded Fisher-Yates shuffle. Deterministic per rng state.
 */
std::vector<int>
balancedShuffle(std::size_t n, stats::Rng rng)
{
    std::vector<int> arms(n);
    for (std::size_t i = 0; i < n; ++i)
        arms[i] = i < (n + 1) / 2 ? 0 : 1;
    for (std::size_t i = n; i > 1; --i) {
        const auto j =
            static_cast<std::size_t>(rng.uniformInt(i));
        std::swap(arms[i - 1], arms[j]);
    }
    return arms;
}

} // namespace

DesignKind
designKindFromName(const std::string &name)
{
    if (name == "switchback")
        return DesignKind::Switchback;
    if (name == "interleaved")
        return DesignKind::Interleaved;
    throw std::invalid_argument("unknown design: " + name);
}

const char *
designKindName(DesignKind kind)
{
    return kind == DesignKind::Switchback ? "switchback"
                                          : "interleaved";
}

std::vector<int>
nodeBlockArms(const ExperimentDesign &design, int node)
{
    validateDesign(design);
    if (node < 0 || node >= design.numNodes)
        throw std::invalid_argument("node out of range");
    const auto blocks =
        static_cast<std::size_t>(design.blocksPerNode);
    const stats::Rng base =
        stats::Rng(design.seed).split(kDesignStream);

    if (design.kind == DesignKind::Switchback) {
        // Per-node stream: node k's block order is independent of
        // every other node's and of the node count.
        return balancedShuffle(
            blocks,
            base.split(static_cast<std::uint64_t>(node) + 1));
    }

    // Interleaved: one balanced shuffle over the node set; the
    // node's arm repeats across all its blocks.
    const auto partition = balancedShuffle(
        static_cast<std::size_t>(design.numNodes), base);
    return std::vector<int>(
        blocks, partition[static_cast<std::size_t>(node)]);
}

cluster::PolicySchedule
nodeSchedule(const ExperimentDesign &design, int node)
{
    cluster::PolicySchedule s;
    s.blockEpochs = design.blockEpochs;
    s.blockArm = nodeBlockArms(design, node);
    return s;
}

void
validateDesign(const ExperimentDesign &design)
{
    if (design.blockEpochs < 1)
        throw std::invalid_argument("blockEpochs must be >= 1");
    if (design.blocksPerNode < 2)
        throw std::invalid_argument("blocksPerNode must be >= 2");
    if (design.numNodes < 1)
        throw std::invalid_argument("numNodes must be >= 1");
    if (design.kind == DesignKind::Switchback &&
        design.blocksPerNode % 2 != 0)
        throw std::invalid_argument(
            "switchback needs an even blocksPerNode");
    if (design.kind == DesignKind::Interleaved &&
        design.numNodes < 2)
        throw std::invalid_argument(
            "interleaved needs >= 2 nodes");
}

} // namespace ahq::experiment

/**
 * @file
 * Experiment designs for online policy A/B tests on a live fleet.
 *
 * Two designs from the switchback-testing literature, adapted to
 * the epoch simulator's policy-swap seam:
 *
 *  - Switchback: every node alternates between the two candidate
 *    schedulers in time blocks of blockEpochs epochs, with the
 *    block order randomized per node (a balanced permutation, so
 *    each arm gets the same number of blocks). Queue backlog
 *    carries across block boundaries — the carryover interference
 *    that biases naive estimates and motivates the
 *    Differences-in-Q estimator.
 *
 *  - Interleaved: the node set is partitioned between the arms (a
 *    balanced shuffled split); each node runs one scheduler for the
 *    whole experiment. No within-node carryover, but any between-
 *    node load imbalance lands directly in the contrast.
 *
 * Both assignments are pure functions of (design, node): any node's
 * schedule materializes independently, in any order, at any thread
 * count — the same discipline as fleetNodeApps and the fault
 * injector.
 */

#ifndef AHQ_EXPERIMENT_DESIGN_HH
#define AHQ_EXPERIMENT_DESIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/epoch_sim.hh"

namespace ahq::experiment
{

enum class DesignKind
{
    Switchback,
    Interleaved,
};

/** Parse "switchback" / "interleaved" (throws on anything else). */
DesignKind designKindFromName(const std::string &name);

const char *designKindName(DesignKind kind);

/** A two-arm experiment design. Arm 0 is A, arm 1 is B. */
struct ExperimentDesign
{
    DesignKind kind = DesignKind::Switchback;

    /** Candidate schedulers (sched::allStrategyNames()). */
    std::string armA = "ARQ";
    std::string armB = "Unmanaged";

    /** Epochs per block (the estimator's resampling unit). */
    int blockEpochs = 20;

    /** Blocks per node (even, so the within-node split balances). */
    int blocksPerNode = 8;

    /** Fleet size. */
    int numNodes = 4;

    /** Randomization seed (block order / node partition). */
    std::uint64_t seed = 42;

    /** Total epochs each node simulates. */
    int epochsPerNode() const { return blockEpochs * blocksPerNode; }
};

/**
 * RNG stream id for design randomization, split off the experiment
 * seed (cf. cluster::kTraceSampleStream): assignment draws never
 * touch the simulation noise streams, so changing the design seed
 * re-randomizes the assignment without perturbing the per-node
 * measurement noise and vice versa.
 */
inline constexpr std::uint64_t kDesignStream = 0xab7e5;

/**
 * The arm of every block of one node, in block order. Switchback:
 * a balanced per-node permutation (seeded Fisher-Yates on
 * split(seed, kDesignStream, node+1)). Interleaved: every block of
 * a node carries the node's single arm from the balanced node
 * partition (seeded on split(seed, kDesignStream)). Pure function
 * of (design, node).
 */
std::vector<int> nodeBlockArms(const ExperimentDesign &design,
                               int node);

/** The same assignment as a PolicySchedule for runSwitched(). */
cluster::PolicySchedule nodeSchedule(const ExperimentDesign &design,
                                     int node);

/**
 * Validate a design (throws std::invalid_argument): positive block
 * geometry, at least one node, an even within-node block count for
 * switchback, and at least two nodes for interleaved (a one-node
 * partition has an empty arm).
 */
void validateDesign(const ExperimentDesign &design);

} // namespace ahq::experiment

#endif // AHQ_EXPERIMENT_DESIGN_HH

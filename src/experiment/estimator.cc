/**
 * @file
 * Estimator implementation: naive, Differences-in-Q, mixed, and
 * the within-arm block bootstrap behind the intervals.
 */

#include "experiment/estimator.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "stats/rng.hh"

namespace ahq::experiment
{

namespace
{

using Field = double BlockStat::*;

/** Bootstrap RNG stream id (off the estimator seed). */
constexpr std::uint64_t kBootstrapStream = 0xd1ffa;

double
meanOf(const std::vector<BlockStat> &blocks,
       const std::vector<std::size_t> &idx, Field f)
{
    if (idx.empty())
        return 0.0;
    double s = 0.0;
    for (const auto i : idx)
        s += blocks[i].*f;
    return s / static_cast<double>(idx.size());
}

/** Within-arm block means differenced: the naive estimator. */
double
naiveDelta(const std::vector<BlockStat> &blocks,
           const std::vector<std::size_t> &ia,
           const std::vector<std::size_t> &ib, Field f)
{
    return meanOf(blocks, ia, f) - meanOf(blocks, ib, f);
}

/**
 * Pooled within-arm OLS slope of metric f on the inherited queue
 * (startQueue). Centering within arm keeps the treatment effect
 * itself out of the slope; the slope then prices one unit of
 * inherited congestion in units of f.
 */
double
carryoverSlope(const std::vector<BlockStat> &blocks,
               const std::vector<std::size_t> &ia,
               const std::vector<std::size_t> &ib, Field f)
{
    double num = 0.0;
    double den = 0.0;
    for (const auto *idx : {&ia, &ib}) {
        const double qm =
            meanOf(blocks, *idx, &BlockStat::startQueue);
        const double ym = meanOf(blocks, *idx, f);
        for (const auto i : *idx) {
            const double dq = blocks[i].startQueue - qm;
            num += dq * (blocks[i].*f - ym);
            den += dq * dq;
        }
    }
    return den > 0.0 ? num / den : 0.0;
}

/**
 * Differences-in-Q by regression adjustment: subtract from the
 * naive delta the part explained by the arms inheriting different
 * queues at their block starts.
 */
double
dqAdjustedDelta(const std::vector<BlockStat> &blocks,
                const std::vector<std::size_t> &ia,
                const std::vector<std::size_t> &ib, Field f)
{
    const double beta = carryoverSlope(blocks, ia, ib, f);
    const double dq0 =
        meanOf(blocks, ia, &BlockStat::startQueue) -
        meanOf(blocks, ib, &BlockStat::startQueue);
    return naiveDelta(blocks, ia, ib, f) - beta * dq0;
}

/**
 * Differences-in-Q for the latency contrast via Little's law:
 * each arm's mean sojourn is its mean outstanding queue over its
 * mean arrival rate (W = Q / lambda), so the contrast is driven by
 * the queue series rather than the (carryover-contaminated) p95
 * samples. Seconds -> ms.
 */
double
littleDelta(const std::vector<BlockStat> &blocks,
            const std::vector<std::size_t> &ia,
            const std::vector<std::size_t> &ib)
{
    const auto w = [&](const std::vector<std::size_t> &idx) {
        const double q =
            meanOf(blocks, idx, &BlockStat::meanQueue);
        const double lam =
            meanOf(blocks, idx, &BlockStat::meanArrivalRate);
        return lam > 0.0 ? q / lam : 0.0;
    };
    return 1000.0 * (w(ia) - w(ib));
}

double
variance(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = 0.0;
    for (const auto x : v)
        m += x;
    m /= static_cast<double>(v.size());
    double s = 0.0;
    for (const auto x : v)
        s += (x - m) * (x - m);
    return s / static_cast<double>(v.size() - 1);
}

/** Percentile of a sorted sample (linear interpolation). */
double
sortedQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos =
        q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

stats::ConfidenceInterval
percentileCi(std::vector<double> replicates, double estimate,
             double confidence)
{
    stats::ConfidenceInterval ci;
    ci.estimate = estimate;
    if (replicates.empty()) {
        ci.lo = ci.hi = estimate;
        return ci;
    }
    std::sort(replicates.begin(), replicates.end());
    const double tail = 0.5 * (1.0 - confidence);
    ci.lo = sortedQuantile(replicates, tail);
    ci.hi = sortedQuantile(replicates, 1.0 - tail);
    return ci;
}

/** The three per-metric estimators evaluated on one index set. */
struct Deltas
{
    double esNaive, esDq;
    double p95Naive, p95Dq;
    double violNaive, violDq;
};

Deltas
deltasOn(const std::vector<BlockStat> &blocks,
         const std::vector<std::size_t> &ia,
         const std::vector<std::size_t> &ib)
{
    Deltas d{};
    d.esNaive = naiveDelta(blocks, ia, ib, &BlockStat::meanES);
    d.esDq = dqAdjustedDelta(blocks, ia, ib, &BlockStat::meanES);
    d.p95Naive =
        naiveDelta(blocks, ia, ib, &BlockStat::meanP95Ms);
    d.p95Dq = littleDelta(blocks, ia, ib);
    d.violNaive =
        naiveDelta(blocks, ia, ib, &BlockStat::violRate);
    d.violDq =
        dqAdjustedDelta(blocks, ia, ib, &BlockStat::violRate);
    return d;
}

/**
 * Blend replicates by inverse bootstrap variance and interval the
 * result. alpha weights naive. A zero-variance estimator is
 * degenerate, not infinitely precise — every resample returned the
 * same value because its inputs carry no signal (e.g. Little's law
 * on a run whose queues never build) — so it forfeits its weight
 * instead of absorbing all of it; both degenerate splits evenly.
 */
MetricEstimate
blend(const std::vector<double> &naive_r,
      const std::vector<double> &dq_r, double naive_pt,
      double dq_pt, double confidence)
{
    MetricEstimate m;
    const double vn = variance(naive_r);
    const double vd = variance(dq_r);
    if (vn > 0.0 && vd > 0.0)
        m.alpha = vd / (vn + vd);
    else if (vn == 0.0 && vd == 0.0)
        m.alpha = 0.5;
    else
        m.alpha = vd == 0.0 ? 1.0 : 0.0;
    m.naive = percentileCi(naive_r, naive_pt, confidence);
    m.dq = percentileCi(dq_r, dq_pt, confidence);
    std::vector<double> mixed_r(naive_r.size());
    for (std::size_t i = 0; i < naive_r.size(); ++i)
        mixed_r[i] =
            m.alpha * naive_r[i] + (1.0 - m.alpha) * dq_r[i];
    m.mixed = percentileCi(
        mixed_r, m.alpha * naive_pt + (1.0 - m.alpha) * dq_pt,
        confidence);
    return m;
}

} // namespace

ExperimentEstimates
estimate(const std::vector<BlockStat> &blocks,
         const EstimatorConfig &config)
{
    ExperimentEstimates out;

    std::vector<std::size_t> ia;
    std::vector<std::size_t> ib;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        (blocks[i].arm == 0 ? ia : ib).push_back(i);
    out.blocksA = static_cast<int>(ia.size());
    out.blocksB = static_cast<int>(ib.size());
    if (ia.empty() || ib.empty())
        return out; // no contrast without both arms

    const Deltas pt = deltasOn(blocks, ia, ib);

    // Within-arm block bootstrap: each replicate resamples the A
    // blocks among themselves and the B blocks among themselves
    // (stratified — arm sizes are part of the design, not the
    // randomness), then re-runs every estimator on the resample.
    stats::Rng rng =
        stats::Rng(config.seed).split(kBootstrapStream);
    const auto reps =
        static_cast<std::size_t>(std::max(config.resamples, 0));
    std::vector<double> es_n(reps), es_d(reps), p_n(reps),
        p_d(reps), v_n(reps), v_d(reps);
    std::vector<std::size_t> ra(ia.size());
    std::vector<std::size_t> rb(ib.size());
    for (std::size_t r = 0; r < reps; ++r) {
        for (auto &i : ra)
            i = ia[rng.uniformInt(ia.size())];
        for (auto &i : rb)
            i = ib[rng.uniformInt(ib.size())];
        const Deltas d = deltasOn(blocks, ra, rb);
        es_n[r] = d.esNaive;
        es_d[r] = d.esDq;
        p_n[r] = d.p95Naive;
        p_d[r] = d.p95Dq;
        v_n[r] = d.violNaive;
        v_d[r] = d.violDq;
    }

    out.es = blend(es_n, es_d, pt.esNaive, pt.esDq,
                   config.confidence);
    out.p95Ms = blend(p_n, p_d, pt.p95Naive, pt.p95Dq,
                      config.confidence);
    out.violations = blend(v_n, v_d, pt.violNaive, pt.violDq,
                           config.confidence);
    return out;
}

Verdict
verdictOf(const ExperimentEstimates &est)
{
    if (est.blocksA == 0 || est.blocksB == 0)
        return Verdict::Inconclusive;
    if (est.es.mixed.hi < 0.0)
        return Verdict::ArmABetter;
    if (est.es.mixed.lo > 0.0)
        return Verdict::ArmBBetter;
    return Verdict::Inconclusive;
}

const char *
verdictName(Verdict v)
{
    switch (v) {
    case Verdict::ArmABetter:
        return "arm_a_better";
    case Verdict::ArmBBetter:
        return "arm_b_better";
    default:
        return "inconclusive";
    }
}

} // namespace ahq::experiment

/**
 * @file
 * Treatment-effect estimators for policy experiments on queueing
 * systems.
 *
 * The naive estimator (difference of within-arm block means) is
 * biased under switchback designs: queue backlog built by one arm
 * drains during the other arm's blocks, so each arm is measured
 * partly under its rival's congestion. Differences-in-Q corrects
 * for that carryover using the queue-length series itself — via
 * Little's law for the latency contrast, and via a start-of-block
 * queue regression adjustment for the entropy / violation
 * contrasts. The mixed estimator blends the two by inverse
 * bootstrap variance: it leans on naive when carryover is
 * negligible (interleaved designs, light load) and on DQ when the
 * queues say otherwise.
 *
 * All uncertainty is quantified with a seeded within-arm block
 * bootstrap (percentile CIs), the block being the resampling unit
 * precisely because epochs within a block share one policy regime.
 */

#ifndef AHQ_EXPERIMENT_ESTIMATOR_HH
#define AHQ_EXPERIMENT_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "stats/bootstrap.hh"

namespace ahq::experiment
{

/** Per-(node, block) aggregates the estimators consume. */
struct BlockStat
{
    int node = 0;
    int block = 0;

    /** Arm in force during the block (0 = A, 1 = B). */
    int arm = 0;

    /** Epochs aggregated into this block. */
    int epochs = 0;

    /** Mean system entropy over the block's epochs. */
    double meanES = 0.0;

    /** Pooled mean LC p95 over (app, epoch), ms. */
    double meanP95Ms = 0.0;

    /** Mean total LC queue backlog (outstanding requests). */
    double meanQueue = 0.0;

    /** Mean total LC arrival rate, requests/s. */
    double meanArrivalRate = 0.0;

    /**
     * Total LC backlog at the instant the block started (the last
     * epoch of the previous block; 0 for a node's first block) —
     * the inherited congestion the DQ regression adjusts out.
     */
    double startQueue = 0.0;

    /** QoS-violation rate over the block's (LC app, epoch) pairs. */
    double violRate = 0.0;
};

/** Estimator tunables. */
struct EstimatorConfig
{
    /** CI coverage. */
    double confidence = 0.95;

    /** Bootstrap resamples. */
    int resamples = 800;

    /** Bootstrap seed (independent of simulation seeds). */
    std::uint64_t seed = 42;
};

/** Naive / DQ / mixed interval estimates of one metric's A-B. */
struct MetricEstimate
{
    stats::ConfidenceInterval naive;
    stats::ConfidenceInterval dq;
    stats::ConfidenceInterval mixed;

    /** Mixed blend weight on naive (1 - alpha goes to DQ). */
    double alpha = 0.5;
};

/** The experiment's three headline contrasts (all A minus B). */
struct ExperimentEstimates
{
    /** Delta system entropy E_S. */
    MetricEstimate es;

    /** Delta pooled LC p95, ms. */
    MetricEstimate p95Ms;

    /** Delta QoS-violation rate. */
    MetricEstimate violations;

    int blocksA = 0;
    int blocksB = 0;
};

/**
 * Point estimates + bootstrap CIs for all three contrasts.
 * Deterministic per (blocks, config): the bootstrap draws on its
 * own seeded Rng and every pass scans blocks in input order.
 */
ExperimentEstimates estimate(const std::vector<BlockStat> &blocks,
                             const EstimatorConfig &config = {});

/** Experiment outcome, decided on the mixed E_S interval. */
enum class Verdict
{
    ArmABetter,
    ArmBBetter,
    Inconclusive,
};

/**
 * Verdict from the mixed Delta-E_S CI: entirely below zero means A
 * achieves lower entropy (A better); entirely above zero, B;
 * anything straddling zero is inconclusive.
 */
Verdict verdictOf(const ExperimentEstimates &est);

const char *verdictName(Verdict v);

} // namespace ahq::experiment

#endif // AHQ_EXPERIMENT_ESTIMATOR_HH

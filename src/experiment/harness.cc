/**
 * @file
 * Experiment harness implementation.
 */

#include "experiment/harness.hh"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

#include "core/entropy.hh"
#include "exec/jobs.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "obs/trace_sink.hh"
#include "sched/registry.hh"

namespace ahq::experiment
{

namespace
{

/** The Fleet per-node seed salting, reused verbatim. */
std::uint64_t
nodeSeed(std::uint64_t base, std::size_t node)
{
    return base + 0x9e37 * (node + 1);
}

} // namespace

std::vector<BlockStat>
extractBlocks(const cluster::SimulationResult &res,
              const ExperimentDesign &design, int node)
{
    const auto arms = nodeBlockArms(design, node);
    const auto block_epochs =
        static_cast<std::size_t>(design.blockEpochs);
    std::vector<BlockStat> out;
    out.reserve(arms.size());

    for (std::size_t b = 0; b < arms.size(); ++b) {
        const std::size_t first = b * block_epochs;
        const std::size_t last = std::min(
            first + block_epochs, res.epochs.size());
        if (first >= last)
            break;

        BlockStat s;
        s.node = node;
        s.block = static_cast<int>(b);
        s.arm = arms[b];
        s.epochs = static_cast<int>(last - first);

        // The congestion this block inherited: total LC backlog at
        // the end of the previous block (a fresh node starts dry).
        if (first > 0) {
            const auto &prev = res.epochs[first - 1];
            for (std::size_t i = 0;
                 i < prev.queueBacklog.size(); ++i)
                if (prev.obs[i].latencyCritical)
                    s.startQueue += prev.queueBacklog[i];
        }

        double p95_sum = 0.0;
        long long lc_samples = 0;
        long long viols = 0;
        for (std::size_t e = first; e < last; ++e) {
            const auto &rec = res.epochs[e];
            s.meanES += rec.entropy.eS;
            for (std::size_t i = 0; i < rec.obs.size(); ++i) {
                const auto &o = rec.obs[i];
                if (!o.latencyCritical)
                    continue;
                p95_sum += o.p95Ms;
                ++lc_samples;
                s.meanQueue += rec.queueBacklog[i];
                s.meanArrivalRate += o.arrivalRate;
                if (o.p95Ms >
                    o.thresholdMs *
                        (1.0 + core::kThresholdElasticity))
                    ++viols;
            }
        }
        const auto epochs = static_cast<double>(s.epochs);
        s.meanES /= epochs;
        s.meanQueue /= epochs;
        s.meanArrivalRate /= epochs;
        if (lc_samples > 0) {
            s.meanP95Ms =
                p95_sum / static_cast<double>(lc_samples);
            s.violRate = static_cast<double>(viols) /
                static_cast<double>(lc_samples);
        }
        out.push_back(s);
    }
    return out;
}

ExperimentResult
runExperiment(const ExperimentRunConfig &config,
              exec::ThreadPool *pool)
{
    const ExperimentDesign &design = config.design;
    validateDesign(design);

    ExperimentResult out;
    out.design = design;

    const obs::Scope &scope = config.base.obs;
    const bool tracing = scope.tracing();
    if (tracing) {
        obs::Event ev("experiment_start");
        ev.str("design", designKindName(design.kind))
            .str("arm_a", design.armA)
            .str("arm_b", design.armB)
            .integer("nodes", design.numNodes)
            .integer("blocks_per_node", design.blocksPerNode)
            .integer("block_epochs", design.blockEpochs)
            .integer("seed",
                     static_cast<long long>(design.seed));
        scope.emit(ev);
    }

    trace::FleetLoadConfig load = config.load;
    load.numNodes = design.numNodes;
    const trace::FleetLoadGenerator gen(load);

    const auto nn = static_cast<std::size_t>(design.numNodes);
    std::vector<obs::BufferTraceSink> buffers(tracing ? nn : 0);
    std::vector<std::vector<BlockStat>> node_blocks(nn);

    exec::ThreadPool &p = pool ? *pool : exec::globalPool();
    // Each task touches only its own node: its scheduler
    // instances, trace buffer and block slot.
    exec::parallelFor(p, nn, [&](std::size_t n) {
        cluster::SimulationConfig per_node = config.base;
        per_node.seed = nodeSeed(config.base.seed, n);
        per_node.durationSeconds =
            static_cast<double>(design.epochsPerNode()) *
            per_node.epochSeconds;
        per_node.warmupEpochs = 0;
        per_node.keepEpochs = true;
        if (tracing || scope.series != nullptr) {
            per_node.obs = scope.tagged(
                (scope.scenario.empty()
                     ? "node" + std::to_string(n)
                     : scope.scenario + "/node" +
                           std::to_string(n)));
            if (tracing)
                per_node.obs.sink = &buffers[n];
        }

        const auto a = sched::makeScheduler(design.armA);
        const auto b = sched::makeScheduler(design.armB);
        cluster::Node node(config.machine,
                           cluster::fleetNodeApps(
                               gen, static_cast<int>(n)));
        cluster::EpochSimulator sim(std::move(node), per_node);
        const auto res = sim.runSwitched(
            {a.get(), b.get()},
            nodeSchedule(design, static_cast<int>(n)));
        node_blocks[n] =
            extractBlocks(res, design, static_cast<int>(n));
    });

    // Trace buffers replay in node order: experiment traces are
    // byte-identical at any --jobs.
    if (tracing)
        for (auto &b : buffers)
            b.flushTo(*scope.sink);

    for (std::size_t n = 0; n < nn; ++n) {
        const auto arms =
            nodeBlockArms(design, static_cast<int>(n));
        for (std::size_t b = 1; b < arms.size(); ++b)
            if (arms[b] != arms[b - 1])
                ++out.policySwaps;
        for (const auto &s : node_blocks[n]) {
            if (tracing) {
                obs::Event ev("experiment_block");
                ev.integer("node", s.node)
                    .integer("block", s.block)
                    .integer("arm", s.arm)
                    .integer("epochs", s.epochs)
                    .num("mean_es", s.meanES)
                    .num("mean_p95_ms", s.meanP95Ms)
                    .num("mean_queue", s.meanQueue)
                    .num("mean_arrival", s.meanArrivalRate)
                    .num("start_queue", s.startQueue)
                    .num("viol_rate", s.violRate);
                scope.emit(ev);
            }
            out.blocks.push_back(s);
        }
    }

    out.estimates = estimate(out.blocks, config.estimator);
    out.verdict = verdictOf(out.estimates);

    if (tracing) {
        const auto &e = out.estimates;
        const auto ci = [](obs::Event &ev, const char *prefix,
                           const stats::ConfidenceInterval &c) {
            ev.num(std::string(prefix) + "_est", c.estimate)
                .num(std::string(prefix) + "_lo", c.lo)
                .num(std::string(prefix) + "_hi", c.hi);
        };
        obs::Event ev("experiment_end");
        ev.str("verdict", verdictName(out.verdict))
            .integer("blocks_a", e.blocksA)
            .integer("blocks_b", e.blocksB)
            .integer("policy_swaps", out.policySwaps)
            .num("alpha_es", e.es.alpha);
        ci(ev, "es_naive", e.es.naive);
        ci(ev, "es_dq", e.es.dq);
        ci(ev, "es_mixed", e.es.mixed);
        ci(ev, "p95_naive", e.p95Ms.naive);
        ci(ev, "p95_dq", e.p95Ms.dq);
        ci(ev, "p95_mixed", e.p95Ms.mixed);
        ci(ev, "viol_naive", e.violations.naive);
        ci(ev, "viol_dq", e.violations.dq);
        ci(ev, "viol_mixed", e.violations.mixed);
        scope.emit(ev);
    }
    scope.count("experiment.blocks",
                static_cast<double>(out.blocks.size()));
    scope.count("experiment.policy_swaps", out.policySwaps);

    return out;
}

} // namespace ahq::experiment

/**
 * @file
 * The online experiment harness: run a two-arm policy experiment
 * over a live fleet and estimate what switching schedulers would
 * buy, without ever running the counterfactual fleet.
 *
 * Each node simulates its full assignment (switchback blocks or a
 * single interleaved arm) through EpochSimulator::runSwitched — so
 * queue state genuinely carries across policy swaps, the
 * interference an offline pilot never shows. Per-(node, block)
 * aggregates feed the naive / Differences-in-Q / mixed estimators
 * and the experiment verdict.
 *
 * Determinism: node n runs on seed base.seed + 0x9e37 * (n + 1)
 * (the Fleet salting), the design randomization lives on its own
 * RNG stream, nodes fan out on the pool with per-node trace
 * buffers flushed in node order, and every aggregate is summed in
 * epoch order — results and trace bytes are identical at any
 * thread count.
 */

#ifndef AHQ_EXPERIMENT_HARNESS_HH
#define AHQ_EXPERIMENT_HARNESS_HH

#include "cluster/cluster_sched.hh"
#include "cluster/epoch_sim.hh"
#include "experiment/design.hh"
#include "experiment/estimator.hh"
#include "machine/config.hh"
#include "trace/fleet_load.hh"

namespace ahq::exec
{
class ThreadPool;
}

namespace ahq::experiment
{

/** Everything one experiment run needs. */
struct ExperimentRunConfig
{
    ExperimentDesign design;

    EstimatorConfig estimator;

    /**
     * Per-node simulation settings (epoch length, noise, seed,
     * telemetry scope, faults). durationSeconds / warmupEpochs /
     * keepEpochs are overridden by the harness: the design fixes
     * the epoch count, blocks handle their own warmup, and the
     * block extraction needs the per-epoch records.
     */
    cluster::SimulationConfig base;

    /**
     * Fleet workload (tenants, diurnal traces); numNodes is
     * overridden from the design. Nodes materialize through
     * cluster::fleetNodeApps, so the experiment fleet is the same
     * pure function of (load config, node) the fleet CLI runs.
     */
    trace::FleetLoadConfig load;

    /** Node hardware (identical across the fleet). */
    machine::MachineConfig machine =
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 10,
                                                             6);
};

/** Outcome of one experiment run. */
struct ExperimentResult
{
    ExperimentDesign design;

    /** Per-(node, block) aggregates, node-major in block order. */
    std::vector<BlockStat> blocks;

    ExperimentEstimates estimates;

    Verdict verdict = Verdict::Inconclusive;

    /** Policy swaps across all nodes (arm changes in-schedule). */
    int policySwaps = 0;
};

/**
 * Per-(node, block) aggregates of one node's switched run: mean
 * E_S, pooled LC p95, total LC queue / arrival rate, the inherited
 * start-of-block queue, and the QoS-violation rate. Exposed for
 * tests and for estimator studies on hand-built runs.
 *
 * @param res A run with per-epoch records (keepEpochs).
 * @param design The experiment geometry the run followed.
 * @param node This node's index (labels the stats).
 */
std::vector<BlockStat>
extractBlocks(const cluster::SimulationResult &res,
              const ExperimentDesign &design, int node);

/**
 * Run the experiment: materialize the fleet, run every node's
 * assignment in parallel, aggregate blocks, estimate, and decide.
 * Emits experiment_start / experiment_block / experiment_end trace
 * events through config.base.obs when a sink is attached.
 *
 * @param pool Pool to fan out on; nullptr = globalPool().
 */
ExperimentResult
runExperiment(const ExperimentRunConfig &config,
              exec::ThreadPool *pool = nullptr);

} // namespace ahq::experiment

#endif // AHQ_EXPERIMENT_HARNESS_HH

/**
 * @file
 * FaultInjector implementation.
 */

#include "fault/injector.hh"

#include "obs/span.hh"

namespace ahq::fault
{

using machine::kAllResourceKinds;
using machine::RegionLayout;
using machine::ResourceKind;

namespace
{

/** Stream id separating fault draws from the simulator's RNG. */
constexpr std::uint64_t kFaultStream = 0xfa017;

bool
sameRes(const RegionLayout &a, const RegionLayout &b)
{
    if (a.numRegions() != b.numRegions())
        return false;
    for (int r = 0; r < a.numRegions(); ++r) {
        if (!(a.region(r).res == b.region(r).res))
            return false;
    }
    return true;
}

/** Whether two layouts share region structure (shape + members). */
bool
sameStructure(const RegionLayout &a, const RegionLayout &b)
{
    if (a.numRegions() != b.numRegions())
        return false;
    for (int r = 0; r < a.numRegions(); ++r) {
        if (a.region(r).shared != b.region(r).shared ||
            a.region(r).members != b.region(r).members)
            return false;
    }
    return true;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan,
                             std::uint64_t seed, obs::Scope scope)
    : plan_(plan), rng_(stats::Rng(seed).split(kFaultStream)),
      obs_(std::move(scope)), sink_(obs_.sink),
      spikeOn_(plan.spikes().size(), false)
{
}

void
FaultInjector::beginEpoch(int epoch, double now_s)
{
    obs::Span span(obs_, "fault.begin_epoch");
    const auto &spikes = plan_.spikes();
    for (std::size_t s = 0; s < spikes.size(); ++s) {
        const bool on = spikes[s].activeAt(now_s);
        if (on == spikeOn_[s])
            continue;
        spikeOn_[s] = on;
        obs_.count(on ? "fault.load_spike" : "recovery.load_spike");
        if (obs_.tracing()) {
            obs::Event ev(on ? "fault" : "recovery");
            if (on)
                ev.str("fault", "load_spike");
            else
                ev.str("what", "load_spike");
            ev.integer("app", spikes[s].app)
                .num("t", now_s)
                .num("factor", spikes[s].factor);
            obs_.atEpoch(epoch).emit(ev);
        }
    }
}

bool
FaultInjector::sampleMeasurement(int app, int epoch, double now_s,
                                 double *noise_mult)
{
    *noise_mult = 1.0;
    const auto &m = plan_.measurement();
    if (!m.has_value() || !m->appliesTo(app))
        return true;

    if (m->pDrop > 0.0 && rng_.bernoulli(m->pDrop)) {
        ++dropStreak_[app];
        obs_.count("fault.measurement_drop");
        if (obs_.tracing()) {
            obs::Event ev("fault");
            ev.str("fault", "measurement")
                .integer("app", app)
                .num("t", now_s);
            obs_.atEpoch(epoch).emit(ev);
        }
        return false;
    }

    if (m->extraSigma > 0.0)
        *noise_mult = rng_.lognormalNoise(m->extraSigma);

    const auto it = dropStreak_.find(app);
    if (it != dropStreak_.end() && it->second > 0) {
        obs_.count("recovery.measurement");
        if (obs_.tracing()) {
            obs::Event ev("recovery");
            ev.str("what", "measurement")
                .integer("app", app)
                .integer("dropped_epochs", it->second)
                .num("t", now_s);
            obs_.atEpoch(epoch).emit(ev);
        }
        it->second = 0;
    }
    return true;
}

double
FaultInjector::loadFactor(int app, double now_s) const
{
    double factor = 1.0;
    for (const auto &s : plan_.spikes()) {
        if (s.app == app && s.activeAt(now_s))
            factor *= s.factor;
    }
    return factor;
}

FaultInjector::Actuation
FaultInjector::actuate(const RegionLayout &before,
                       const RegionLayout &intended, int epoch,
                       double now_s)
{
    obs::Span span(obs_, "fault.actuate");
    Actuation out;
    out.applied = intended;
    const auto &a = plan_.actuation();
    if (!a.has_value() || a->pFail <= 0.0)
        return out;
    if (!rng_.bernoulli(a->pFail))
        return out;

    // The first knob write failed; retry with (simulated) backoff
    // within the interval.
    bool succeeded = false;
    for (int r = 0; r < a->retries && !succeeded; ++r) {
        ++out.attempts;
        succeeded = !rng_.bernoulli(a->pRetryFail);
    }
    if (succeeded) {
        obs_.count("recovery.actuation_retry");
        if (obs_.tracing()) {
            obs::Event ev("recovery");
            ev.str("what", "actuation_retry")
                .integer("attempts", out.attempts)
                .num("t", now_s);
            obs_.atEpoch(epoch).emit(ev);
        }
        return out;
    }

    // Terminal failure: reconcile to what the knobs really hold.
    // Partial mode flips each resource kind independently between
    // the old and the intended setting, which conserves per-kind
    // totals and keeps the mix a reachable, valid layout; it
    // degenerates to noop when the decision restructured regions.
    if (a->mode == ActuationFault::Mode::Partial &&
        sameStructure(before, intended)) {
        for (ResourceKind kind : kAllResourceKinds) {
            if (rng_.bernoulli(0.5))
                continue; // this kind's write went through
            for (int r = 0; r < out.applied.numRegions(); ++r) {
                out.applied.region(r).res.set(
                    kind, before.region(r).res.get(kind));
            }
        }
    } else {
        out.applied = before;
    }

    // A decision that changed nothing cannot fail to take effect.
    out.ok = sameRes(out.applied, intended);
    if (!out.ok) {
        obs_.count("fault.actuation_fail");
        if (obs_.tracing()) {
            obs::Event ev("fault");
            ev.str("fault", "actuation")
                .str("mode",
                     a->mode == ActuationFault::Mode::Partial
                         ? "partial"
                         : "noop")
                .integer("attempts", out.attempts)
                .num("t", now_s);
            obs_.atEpoch(epoch).emit(ev);
        }
    }
    return out;
}

} // namespace ahq::fault

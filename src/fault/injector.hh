/**
 * @file
 * FaultInjector: the per-run engine executing a FaultPlan.
 *
 * One injector per simulation run (exactly like the run's RNG and
 * auditor — never shared across threads). It draws every fault from
 * its own RNG stream, split off the run seed, so fault outcomes are
 * a pure function of (seed, plan) and never disturb the simulator's
 * measurement-noise stream: the faults-off path of a faulted seed
 * stays bit-identical to an unfaulted run.
 *
 * Fault and recovery occurrences are counted
 * (`fault.*` / `recovery.*`) and, while tracing, emitted as
 * schema-v1 `fault` / `recovery` events (docs/TRACE_SCHEMA.md).
 */

#ifndef AHQ_FAULT_INJECTOR_HH
#define AHQ_FAULT_INJECTOR_HH

#include <map>
#include <vector>

#include "fault/plan.hh"
#include "machine/layout.hh"
#include "obs/scope.hh"
#include "stats/rng.hh"

namespace ahq::fault
{

/** Executes one FaultPlan over one simulation run. */
class FaultInjector
{
  public:
    /**
     * @param plan The plan; must outlive the injector.
     * @param seed The run seed (the injector splits its own stream).
     * @param scope Telemetry destination for fault/recovery events.
     */
    FaultInjector(const FaultPlan &plan, std::uint64_t seed,
                  obs::Scope scope);

    /**
     * Head-based trace sampling seam: mute (or restore) the
     * injector's fault/recovery *events* for the current epoch.
     * The simulator flips this at each epoch head so a sampled-out
     * epoch emits nothing. Fault draws, outcomes and `fault.*`
     * metrics counters are unaffected — sampling changes what is
     * written, never what happens.
     */
    void setEventsEnabled(bool on)
    {
        obs_.sink = on ? sink_ : nullptr;
    }

    /**
     * Per-epoch bookkeeping: announce load-spike activation edges.
     * Call once at the top of every epoch, before the decision.
     */
    void beginEpoch(int epoch, double now_s);

    /**
     * Measurement seam. Returns true when app's sample for this
     * interval survives; *noise_mult then holds the extra noise
     * factor to fold into the measurement (1.0 when none). Returns
     * false when the sample is dropped — the caller must deliver
     * the last delivered observation flagged `sampleValid = false`
     * instead of fresh values.
     */
    bool sampleMeasurement(int app, int epoch, double now_s,
                           double *noise_mult);

    /**
     * Load seam: multiplicative spike factor on app's load at
     * now_s (1.0 when no spike is active for the app).
     */
    double loadFactor(int app, double now_s) const;

    /** Outcome of pushing one decision to the (faulty) knobs. */
    struct Actuation
    {
        /** Whether the applied layout equals the intended one. */
        bool ok = true;

        /** Knob writes attempted (1 = first write succeeded). */
        int attempts = 1;

        /** The layout actually in force after the writes. */
        machine::RegionLayout applied{machine::ResourceVector{}};
    };

    /**
     * Actuation seam: attempt to apply the scheduler's intended
     * layout, retrying per the plan on failure. On terminal failure
     * the applied layout is the pre-decision layout (noop mode) or
     * a per-kind mix of before/intended (partial mode) that
     * conserves per-kind totals. `ok` reports applied == intended,
     * so a decision that changed nothing can never fail.
     */
    Actuation actuate(const machine::RegionLayout &before,
                      const machine::RegionLayout &intended,
                      int epoch, double now_s);

  private:
    const FaultPlan &plan_;
    stats::Rng rng_;
    obs::Scope obs_;

    /** The scope's original sink, for setEventsEnabled(true). */
    obs::TraceSink *sink_ = nullptr;

    /** Consecutive dropped epochs per app, for recovery events. */
    std::map<int, int> dropStreak_;

    /** Per-spike activation state, for edge events. */
    std::vector<bool> spikeOn_;
};

} // namespace ahq::fault

#endif // AHQ_FAULT_INJECTOR_HH

/**
 * @file
 * FaultPlan parsing and validation.
 */

#include "fault/plan.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/trace_reader.hh"

namespace ahq::fault
{

namespace
{

[[noreturn]] void
fail(const std::string &where, const std::string &what)
{
    throw std::runtime_error(where + ": " + what);
}

double
probability(const obs::TraceEvent &ev, const char *key, double def,
            const std::string &where)
{
    const double v = ev.num(key, def);
    if (!(v >= 0.0 && v <= 1.0)) {
        std::ostringstream os;
        os << key << " = " << v << " outside [0, 1]";
        fail(where, os.str());
    }
    return v;
}

int
nonNegativeInt(const obs::TraceEvent &ev, const char *key, int def,
               const std::string &where)
{
    const double v =
        ev.num(key, static_cast<double>(def));
    if (!(v >= 0.0) || std::floor(v) != v) {
        std::ostringstream os;
        os << key << " = " << v << " is not a non-negative integer";
        fail(where, os.str());
    }
    return static_cast<int>(v);
}

} // namespace

bool
MeasurementFault::appliesTo(int app) const
{
    if (apps.empty())
        return true;
    return std::find(apps.begin(), apps.end(), app) != apps.end();
}

bool
FaultPlan::active() const
{
    return measurement_.has_value() || actuation_.has_value() ||
        !spikes_.empty() || !crashes_.empty();
}

FaultPlan
FaultPlan::fromStream(std::istream &in, const std::string &name)
{
    FaultPlan plan;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        const std::string where =
            name + ":" + std::to_string(lineno);

        obs::TraceEvent ev;
        try {
            ev = obs::parseTraceLine(line);
        } catch (const std::exception &e) {
            fail(where, e.what());
        }

        const std::string kind = ev.str("fault");
        if (kind.empty())
            fail(where, "missing 'fault' field");

        if (kind == "measurement") {
            if (plan.measurement_.has_value())
                fail(where, "duplicate measurement directive");
            MeasurementFault m;
            m.pDrop = probability(ev, "p_drop", 0.0, where);
            m.extraSigma = ev.num("extra_sigma", 0.0);
            if (!(m.extraSigma >= 0.0))
                fail(where, "extra_sigma must be >= 0");
            for (double a : ev.nums("apps")) {
                if (!(a >= 0.0) || std::floor(a) != a)
                    fail(where, "apps entries must be app ids >= 0");
                m.apps.push_back(static_cast<int>(a));
            }
            plan.measurement_ = std::move(m);
        } else if (kind == "actuation") {
            if (plan.actuation_.has_value())
                fail(where, "duplicate actuation directive");
            ActuationFault a;
            a.pFail = probability(ev, "p_fail", 0.0, where);
            a.retries = nonNegativeInt(ev, "retries", 0, where);
            a.pRetryFail =
                probability(ev, "p_retry_fail", 0.5, where);
            const std::string mode = ev.str("mode", "noop");
            if (mode == "noop")
                a.mode = ActuationFault::Mode::Noop;
            else if (mode == "partial")
                a.mode = ActuationFault::Mode::Partial;
            else
                fail(where, "mode must be 'noop' or 'partial', got '" +
                     mode + "'");
            plan.actuation_ = a;
        } else if (kind == "load_spike") {
            LoadSpike s;
            s.app = nonNegativeInt(ev, "app", -1, where);
            s.fromS = ev.num("from_s", -1.0);
            s.untilS = ev.num("until_s", -1.0);
            s.factor = ev.num("factor", 0.0);
            if (!(s.fromS >= 0.0))
                fail(where, "from_s must be >= 0");
            if (!(s.untilS > s.fromS))
                fail(where, "until_s must be > from_s");
            if (!(s.factor > 0.0))
                fail(where, "factor must be > 0");
            plan.spikes_.push_back(s);
        } else if (kind == "node_crash") {
            NodeCrash c;
            c.node = nonNegativeInt(ev, "node", -1, where);
            c.atS = ev.num("at_s", -1.0);
            if (!(c.atS >= 0.0))
                fail(where, "at_s must be >= 0");
            plan.crashes_.push_back(c);
        } else {
            fail(where, "unknown fault kind '" + kind +
                 "' (expected measurement, actuation, load_spike "
                 "or node_crash)");
        }
    }
    return plan;
}

FaultPlan
FaultPlan::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open fault plan: " + path);
    return fromStream(in, path);
}

FaultPlan
FaultPlan::builtinChaos()
{
    FaultPlan plan;
    MeasurementFault m;
    m.pDrop = 0.08;
    m.extraSigma = 0.10;
    plan.measurement_ = std::move(m);
    ActuationFault a;
    a.pFail = 0.15;
    a.mode = ActuationFault::Mode::Partial;
    a.retries = 2;
    a.pRetryFail = 0.5;
    plan.actuation_ = a;
    plan.spikes_.push_back({0, 3.0, 6.0, 1.5});
    return plan;
}

} // namespace ahq::fault

/**
 * @file
 * FaultPlan: the declarative description of which faults a run is
 * subjected to.
 *
 * A plan is a JSONL file (one directive per line, `#` comments and
 * blank lines skipped) naming faults at the simulator's injection
 * seams: per-app measurement dropout/extra noise, knob-actuation
 * failures, load spikes layered onto the trace, and node crashes
 * (Fleet runs only). Plans are pure data — all randomness lives in
 * the per-run FaultInjector, which derives its stream from the run
 * seed, so the same seed + the same plan reproduces the same faults
 * bit-for-bit at any thread count. See docs/FAULTS.md for the
 * schema.
 */

#ifndef AHQ_FAULT_PLAN_HH
#define AHQ_FAULT_PLAN_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ahq::fault
{

/** Measurement dropout / extra noise on per-app samples. */
struct MeasurementFault
{
    /** Per-app, per-epoch probability that the sample is dropped. */
    double pDrop = 0.0;

    /** Extra lognormal sigma applied to samples that survive. */
    double extraSigma = 0.0;

    /** Affected app ids; empty = every app. */
    std::vector<int> apps;

    bool appliesTo(int app) const;
};

/** Knob-actuation failures (CAT/MBA/affinity writes that do not take). */
struct ActuationFault
{
    enum class Mode
    {
        /** The whole decision silently does not take effect. */
        Noop,
        /** Each resource kind independently applies or stays put. */
        Partial,
    };

    /** Probability that an interval's first knob write fails. */
    double pFail = 0.0;

    Mode mode = Mode::Noop;

    /** Retries attempted (with simulated backoff) after a failure. */
    int retries = 0;

    /** Probability that each retry also fails. */
    double pRetryFail = 0.5;
};

/** A multiplicative load surge on one LC app's trace. */
struct LoadSpike
{
    int app = -1;
    double fromS = 0.0;
    double untilS = 0.0;
    double factor = 1.0;

    bool activeAt(double now_s) const
    {
        return now_s >= fromS && now_s < untilS;
    }
};

/** A node crash (Fleet runs re-place the node's apps). */
struct NodeCrash
{
    int node = 0;
    double atS = 0.0;
};

/**
 * A parsed, validated fault plan. Immutable once built; shared
 * read-only across concurrent runs (SimulationConfig holds a
 * pointer, so the plan must outlive every run using it).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a JSONL plan from a stream. @p name labels errors
     * ("name:line: ...").
     *
     * @throws std::runtime_error on malformed or invalid directives.
     */
    static FaultPlan fromStream(std::istream &in,
                                const std::string &name = "<plan>");

    /**
     * Parse a JSONL plan file.
     * @throws std::runtime_error when the file cannot be opened or a
     *         directive is malformed.
     */
    static FaultPlan fromFile(const std::string &path);

    /**
     * The fixed default plan behind `ahq chaos` and the chaos
     * benchmarks: measurement dropout + extra noise, partial
     * actuation failures with retries, and one mid-run load spike.
     */
    static FaultPlan builtinChaos();

    /** Whether any directive is present. */
    bool active() const;

    const std::optional<MeasurementFault> &measurement() const
    {
        return measurement_;
    }
    const std::optional<ActuationFault> &actuation() const
    {
        return actuation_;
    }
    const std::vector<LoadSpike> &spikes() const { return spikes_; }
    const std::vector<NodeCrash> &crashes() const { return crashes_; }

    void setMeasurement(MeasurementFault m)
    {
        measurement_ = std::move(m);
    }
    void setActuation(ActuationFault a) { actuation_ = a; }
    void addSpike(LoadSpike s) { spikes_.push_back(s); }
    void addCrash(NodeCrash c) { crashes_.push_back(c); }

  private:
    std::optional<MeasurementFault> measurement_;
    std::optional<ActuationFault> actuation_;
    std::vector<LoadSpike> spikes_;
    std::vector<NodeCrash> crashes_;
};

} // namespace ahq::fault

#endif // AHQ_FAULT_PLAN_HH

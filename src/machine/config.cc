/**
 * @file
 * MachineConfig implementation.
 */

#include "machine/config.hh"

#include <cassert>

namespace ahq::machine
{

MachineConfig
MachineConfig::withAvailable(int cores, int ways, int bw_units) const
{
    MachineConfig c = *this;
    c.availableCores = cores;
    c.availableLlcWays = ways;
    c.availableMemBwUnits = bw_units;
    assert(c.valid());
    return c;
}

bool
MachineConfig::valid() const
{
    return totalCores > 0 && totalLlcWays > 0 && totalMemBwUnits > 0 &&
        llcSizeMib > 0.0 && memBandwidthGibps > 0.0 &&
        availableCores > 0 && availableCores <= totalCores &&
        availableLlcWays > 0 && availableLlcWays <= totalLlcWays &&
        availableMemBwUnits > 0 &&
        availableMemBwUnits <= totalMemBwUnits;
}

MachineConfig
MachineConfig::xeonGold6248()
{
    MachineConfig c;
    c.name = "Intel Xeon Gold 6248";
    c.totalCores = 20;
    c.totalLlcWays = 11;
    c.llcSizeMib = 27.5;
    // 6-channel DDR4-2933 is ~140 GiB/s theoretical; ~110 usable.
    c.memBandwidthGibps = 110.0;
    c.totalMemBwUnits = 10;
    c.availableCores = c.totalCores;
    c.availableLlcWays = c.totalLlcWays;
    c.availableMemBwUnits = c.totalMemBwUnits;
    return c;
}

MachineConfig
MachineConfig::xeonE52630v4()
{
    MachineConfig c;
    c.name = "Intel Xeon E5-2630 v4";
    c.totalCores = 10;
    c.totalLlcWays = 20;
    c.llcSizeMib = 25.0;
    // 4-channel DDR4-2400 is ~76.8 GiB/s theoretical; ~60 GiB/s usable.
    c.memBandwidthGibps = 60.0;
    c.totalMemBwUnits = 10;
    c.availableCores = c.totalCores;
    c.availableLlcWays = c.totalLlcWays;
    c.availableMemBwUnits = c.totalMemBwUnits;
    return c;
}

} // namespace ahq::machine

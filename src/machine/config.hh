/**
 * @file
 * Machine description of the node the applications are colocated on,
 * with a factory for the paper's testbed (Table III).
 */

#ifndef AHQ_MACHINE_CONFIG_HH
#define AHQ_MACHINE_CONFIG_HH

#include <string>

#include "machine/resources.hh"

namespace ahq::machine
{

/**
 * Static description of one datacenter node.
 *
 * The "available" amounts may be smaller than the physical amounts to
 * model the resource-amount sweeps of Section III-A (e.g. restricting
 * the node to 6 of its 10 cores).
 */
struct MachineConfig
{
    std::string name = "generic";

    /** Physical core count (hyper-threading disabled, as in §V). */
    int totalCores = 10;

    /** Total LLC ways per set (CAT-partitionable). */
    int totalLlcWays = 20;

    /** LLC capacity in MiB (for the per-way capacity). */
    double llcSizeMib = 25.0;

    /** Peak usable memory bandwidth in GiB/s. */
    double memBandwidthGibps = 60.0;

    /** MBA-style bandwidth units the peak divides into. */
    int totalMemBwUnits = 10;

    /** Cores offered to the colocation (<= totalCores). */
    int availableCores = 10;

    /** LLC ways offered to the colocation (<= totalLlcWays). */
    int availableLlcWays = 20;

    /** Bandwidth units offered to the colocation. */
    int availableMemBwUnits = 10;

    /** LLC capacity of one way in MiB. */
    double mibPerWay() const { return llcSizeMib / totalLlcWays; }

    /** Bandwidth of one MBA unit in GiB/s. */
    double gibpsPerBwUnit() const
    {
        return memBandwidthGibps / totalMemBwUnits;
    }

    /** The resources offered to the colocation as a vector. */
    ResourceVector availableResources() const
    {
        return {availableCores, availableLlcWays, availableMemBwUnits};
    }

    /** Restrict the available amounts (Section III-A sweeps). */
    MachineConfig withAvailable(int cores, int ways, int bw_units) const;

    /** Sanity-check internal consistency. */
    bool valid() const;

    /**
     * The paper's testbed: Intel Xeon E5-2630 v4, 10 cores at 2.2 GHz,
     * 25 MiB 20-way LLC, 7x16 GiB DDR4-2400 (Table III).
     */
    static MachineConfig xeonE52630v4();

    /**
     * A newer-generation part for scaling studies: Intel Xeon Gold
     * 6248-class, 20 cores, 27.5 MiB 11-way LLC (CAT with 11-way
     * CBMs), six-channel DDR4-2933.
     */
    static MachineConfig xeonGold6248();
};

} // namespace ahq::machine

#endif // AHQ_MACHINE_CONFIG_HH

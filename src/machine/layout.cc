/**
 * @file
 * RegionLayout implementation.
 */

#include "machine/layout.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ahq::machine
{

bool
Region::hasMember(AppId app) const
{
    return std::find(members.begin(), members.end(), app) !=
        members.end();
}

RegionLayout::RegionLayout(ResourceVector available)
    : available_(available)
{
    assert(available.nonNegative());
}

RegionId
RegionLayout::addRegion(Region region)
{
    regions_.push_back(std::move(region));
    return static_cast<RegionId>(regions_.size()) - 1;
}

const Region &
RegionLayout::region(RegionId id) const
{
    assert(id >= 0 && id < numRegions());
    return regions_[static_cast<std::size_t>(id)];
}

Region &
RegionLayout::region(RegionId id)
{
    assert(id >= 0 && id < numRegions());
    return regions_[static_cast<std::size_t>(id)];
}

RegionId
RegionLayout::sharedRegion() const
{
    for (int i = 0; i < numRegions(); ++i) {
        if (regions_[static_cast<std::size_t>(i)].shared)
            return i;
    }
    return kNoRegion;
}

RegionId
RegionLayout::isolatedRegionOf(AppId app) const
{
    for (int i = 0; i < numRegions(); ++i) {
        const Region &r = regions_[static_cast<std::size_t>(i)];
        if (!r.shared && r.members.size() == 1 && r.members[0] == app)
            return i;
    }
    return kNoRegion;
}

std::vector<RegionId>
RegionLayout::regionsOf(AppId app) const
{
    std::vector<RegionId> out;
    for (int i = 0; i < numRegions(); ++i) {
        if (regions_[static_cast<std::size_t>(i)].hasMember(app))
            out.push_back(i);
    }
    return out;
}

std::vector<AppId>
RegionLayout::allApps() const
{
    std::vector<AppId> out;
    for (const Region &r : regions_) {
        for (AppId a : r.members) {
            if (std::find(out.begin(), out.end(), a) == out.end())
                out.push_back(a);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

ResourceVector
RegionLayout::allocated() const
{
    ResourceVector sum;
    for (const Region &r : regions_)
        sum += r.res;
    return sum;
}

ResourceVector
RegionLayout::unallocated() const
{
    return available_ - allocated();
}

int
RegionLayout::reachable(AppId app, ResourceKind kind) const
{
    int total = 0;
    for (const Region &r : regions_) {
        if (r.hasMember(app))
            total += r.res.get(kind);
    }
    return total;
}

bool
RegionLayout::valid() const
{
    for (const Region &r : regions_) {
        if (!r.res.nonNegative())
            return false;
    }
    if (!allocated().fitsWithin(available_))
        return false;
    // Enumerate members region by region instead of materialising
    // allApps(): valid() runs inside every moveResource (ARQ's
    // per-interval search), and the vector build was the search
    // path's only heap allocation. Apps in several regions are
    // simply re-checked — same predicate, no allocation.
    for (const Region &reg : regions_) {
        for (AppId app : reg.members) {
            if (reachable(app, ResourceKind::Cores) < 1)
                return false;
            if (reachable(app, ResourceKind::LlcWays) < 1)
                return false;
        }
    }
    return true;
}

bool
RegionLayout::moveResource(ResourceKind kind, RegionId from, RegionId to,
                           int units)
{
    assert(units > 0);
    assert(from >= 0 && from < numRegions());
    assert(to >= 0 && to < numRegions());
    if (from == to)
        return false;
    Region &src = region(from);
    Region &dst = region(to);
    if (src.res.get(kind) < units)
        return false;

    src.res.ref(kind) -= units;
    dst.res.ref(kind) += units;
    if (!valid()) {
        // Roll back; the move would strand some member application.
        src.res.ref(kind) += units;
        dst.res.ref(kind) -= units;
        return false;
    }
    return true;
}

ConcreteMasks
RegionLayout::concreteMasks() const
{
    ConcreteMasks masks;
    int next_core = 0;
    int next_way = 0;
    for (const Region &r : regions_) {
        masks.coreMasks.push_back(CoreMask::firstN(r.res.cores,
                                                   next_core));
        masks.wayMasks.push_back(WayMask(next_way, r.res.llcWays));
        next_core += r.res.cores;
        next_way += r.res.llcWays;
    }
    return masks;
}

std::string
RegionLayout::toString() const
{
    std::ostringstream os;
    os << "layout(available=" << available_.toString() << ")\n";
    for (int i = 0; i < numRegions(); ++i) {
        const Region &r = region(i);
        os << "  [" << i << "] " << r.name
           << (r.shared ? " (shared)" : " (isolated)") << " "
           << r.res.toString() << " members={";
        for (std::size_t m = 0; m < r.members.size(); ++m) {
            if (m)
                os << ",";
            os << r.members[m];
        }
        os << "}\n";
    }
    return os.str();
}

RegionLayout
RegionLayout::fullyShared(ResourceVector available,
                          const std::vector<AppId> &apps)
{
    RegionLayout layout(available);
    Region shared;
    shared.name = "shared";
    shared.shared = true;
    shared.res = available;
    shared.members = apps;
    layout.addRegion(std::move(shared));
    assert(layout.valid());
    return layout;
}

RegionLayout
RegionLayout::evenlyIsolated(ResourceVector available,
                             const std::vector<AppId> &apps)
{
    assert(!apps.empty());
    RegionLayout layout(available);
    const int n = static_cast<int>(apps.size());
    for (int i = 0; i < n; ++i) {
        Region r;
        r.name = "iso" + std::to_string(apps[static_cast<std::size_t>(i)]);
        r.shared = false;
        r.members = {apps[static_cast<std::size_t>(i)]};
        for (ResourceKind kind : kAllResourceKinds) {
            const int total = available.get(kind);
            const int base = total / n;
            const int extra = i < total % n ? 1 : 0;
            r.res.set(kind, base + extra);
        }
        layout.addRegion(std::move(r));
    }
    assert(layout.valid());
    return layout;
}

RegionLayout
RegionLayout::arqInitial(ResourceVector available,
                         const std::vector<AppId> &lc_apps,
                         const std::vector<AppId> &be_apps)
{
    RegionLayout layout(available);

    Region shared;
    shared.name = "shared";
    shared.shared = true;
    shared.res = available;
    shared.members = lc_apps;
    shared.members.insert(shared.members.end(), be_apps.begin(),
                          be_apps.end());
    layout.addRegion(std::move(shared));

    for (AppId app : lc_apps) {
        Region r;
        r.name = "iso" + std::to_string(app);
        r.shared = false;
        r.members = {app};
        r.res = {}; // grows on demand when the app is interfered with
        layout.addRegion(std::move(r));
    }
    assert(layout.valid());
    return layout;
}

} // namespace ahq::machine

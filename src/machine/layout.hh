/**
 * @file
 * Region-based resource layouts.
 *
 * A RegionLayout partitions the node's available resources into
 * regions. ARQ's layouts have one shared region plus per-LC-app
 * isolated regions; PARTIES/CLITE layouts are fully isolated (one
 * region per application); Unmanaged/LC-first layouts are a single
 * shared region. Schedulers mutate layouts one resource unit at a
 * time via moveResource(), mirroring how CAT/taskset/MBA are
 * reprogrammed on the paper's testbed.
 */

#ifndef AHQ_MACHINE_LAYOUT_HH
#define AHQ_MACHINE_LAYOUT_HH

#include <string>
#include <vector>

#include "machine/mask.hh"
#include "machine/resources.hh"
#include "machine/types.hh"

namespace ahq::machine
{

/** One resource region and the applications allowed to run in it. */
struct Region
{
    std::string name;

    /** Shared regions may host several applications concurrently. */
    bool shared = false;

    /** Resources assigned to this region. */
    ResourceVector res;

    /** Applications allowed to use this region. */
    std::vector<AppId> members;

    /** Whether the given app is a member. */
    bool hasMember(AppId app) const;
};

/** Concrete hardware masks derived from a layout, for reporting. */
struct ConcreteMasks
{
    std::vector<CoreMask> coreMasks; // indexed by RegionId
    std::vector<WayMask> wayMasks;   // indexed by RegionId
};

/**
 * A complete allocation of the node's available resources to regions.
 *
 * Invariants (checked by valid()):
 *  - every region's resources are non-negative;
 *  - the sum of region resources fits within the available resources;
 *  - every application that is a member of at least one region can
 *    reach at least one core and one LLC way through its regions.
 */
class RegionLayout
{
  public:
    /** Create an empty layout over the given available resources. */
    explicit RegionLayout(ResourceVector available);

    /** Append a region; returns its id. */
    RegionId addRegion(Region region);

    /** Number of regions. */
    int numRegions() const { return static_cast<int>(regions_.size()); }

    /** Access a region. @pre 0 <= id < numRegions(). */
    const Region &region(RegionId id) const;

    /** Mutable access to a region. @pre 0 <= id < numRegions(). */
    Region &region(RegionId id);

    /** Id of the first shared region, or kNoRegion. */
    RegionId sharedRegion() const;

    /**
     * Id of the app's isolated region (a non-shared region whose only
     * member is the app), or kNoRegion.
     */
    RegionId isolatedRegionOf(AppId app) const;

    /** All regions the app is a member of. */
    std::vector<RegionId> regionsOf(AppId app) const;

    /** All member apps across all regions (deduplicated). */
    std::vector<AppId> allApps() const;

    /** Resources offered by the node. */
    ResourceVector available() const { return available_; }

    /** Sum of resources across regions. */
    ResourceVector allocated() const;

    /** Resources not assigned to any region. */
    ResourceVector unallocated() const;

    /** Total of the given resource the app can reach via its regions. */
    int reachable(AppId app, ResourceKind kind) const;

    /** Check the layout invariants. */
    bool valid() const;

    /**
     * Move units of one resource kind between regions.
     *
     * Refuses (returns false, layout unchanged) when the source lacks
     * the units or when the move would leave some member application
     * without any reachable core or LLC way.
     *
     * @param kind Resource kind to move.
     * @param from Source region.
     * @param to Destination region.
     * @param units Number of units; must be > 0.
     */
    bool moveResource(ResourceKind kind, RegionId from, RegionId to,
                      int units = 1);

    /**
     * Assign concrete contiguous core and CAT way masks to regions in
     * region order, for display and for hardware programming.
     */
    ConcreteMasks concreteMasks() const;

    /** Multi-line human-readable rendering. */
    std::string toString() const;

    /**
     * Factory: one shared region holding every application and all
     * available resources (the Unmanaged / LC-first layout).
     */
    static RegionLayout fullyShared(ResourceVector available,
                                    const std::vector<AppId> &apps);

    /**
     * Factory: one isolated region per application, resources divided
     * as evenly as integer units allow, remainders to the earliest
     * regions (the PARTIES / CLITE starting layout).
     */
    static RegionLayout evenlyIsolated(ResourceVector available,
                                       const std::vector<AppId> &apps);

    /**
     * Factory: the ARQ starting layout — an (initially empty)
     * isolated region per LC application plus one shared region
     * holding all available resources, whose members are every
     * application.
     */
    static RegionLayout arqInitial(ResourceVector available,
                                   const std::vector<AppId> &lc_apps,
                                   const std::vector<AppId> &be_apps);

  private:
    ResourceVector available_;
    std::vector<Region> regions_;
};

} // namespace ahq::machine

#endif // AHQ_MACHINE_LAYOUT_HH

/**
 * @file
 * Core and way mask implementations.
 */

#include "machine/mask.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace ahq::machine
{

CoreMask
CoreMask::firstN(int n, int offset)
{
    assert(n >= 0 && offset >= 0 && n + offset <= 64);
    if (n == 0)
        return CoreMask(0);
    const std::uint64_t run =
        n == 64 ? ~0ull : ((1ull << n) - 1ull);
    return CoreMask(run << offset);
}

int
CoreMask::count() const
{
    return std::popcount(bits_);
}

bool
CoreMask::contains(int core) const
{
    assert(core >= 0 && core < 64);
    return (bits_ >> core) & 1ull;
}

void
CoreMask::add(int core)
{
    assert(core >= 0 && core < 64);
    bits_ |= (1ull << core);
}

void
CoreMask::remove(int core)
{
    assert(core >= 0 && core < 64);
    bits_ &= ~(1ull << core);
}

int
CoreMask::lowest() const
{
    if (bits_ == 0)
        return -1;
    return std::countr_zero(bits_);
}

CoreMask
CoreMask::operator&(const CoreMask &o) const
{
    return CoreMask(bits_ & o.bits_);
}

CoreMask
CoreMask::operator|(const CoreMask &o) const
{
    return CoreMask(bits_ | o.bits_);
}

std::string
CoreMask::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(bits_));
    return buf;
}

WayMask::WayMask(int first_way, int num_ways)
    : firstWay(first_way), numWays(num_ways)
{
    assert(first_way >= 0 && num_ways >= 0);
    assert(first_way + num_ways <= 64);
}

bool
WayMask::contains(int way) const
{
    return way >= firstWay && way < firstWay + numWays;
}

int
WayMask::overlapWays(const WayMask &o) const
{
    if (empty() || o.empty())
        return 0;
    const int lo = std::max(firstWay, o.firstWay);
    const int hi = std::min(firstWay + numWays, o.firstWay + o.numWays);
    return std::max(0, hi - lo);
}

std::uint64_t
WayMask::bits() const
{
    if (numWays == 0)
        return 0;
    const std::uint64_t run =
        numWays == 64 ? ~0ull : ((1ull << numWays) - 1ull);
    return run << firstWay;
}

std::string
WayMask::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(bits()));
    return buf;
}

} // namespace ahq::machine

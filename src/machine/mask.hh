/**
 * @file
 * Bitmask types mirroring the OS/hardware allocation interfaces the
 * paper's testbed uses: taskset-style core affinity masks and Intel
 * CAT capacity bitmasks (CBMs) for LLC ways.
 *
 * Intel CAT requires CBMs to be a contiguous run of set bits; the
 * WayMask type enforces that, which in turn shapes how the layout
 * assigns ways to regions.
 */

#ifndef AHQ_MACHINE_MASK_HH
#define AHQ_MACHINE_MASK_HH

#include <cstdint>
#include <string>

namespace ahq::machine
{

/**
 * A core-affinity bitmask (taskset equivalent). Bit i set means core i
 * is usable.
 */
class CoreMask
{
  public:
    CoreMask() = default;

    /** Construct from raw bits. */
    explicit CoreMask(std::uint64_t bits) : bits_(bits) {}

    /** Mask of the first n cores starting at the given offset. */
    static CoreMask firstN(int n, int offset = 0);

    /** Number of cores in the mask. */
    int count() const;

    /** Whether the given core is in the mask. */
    bool contains(int core) const;

    /** Add one core. */
    void add(int core);

    /** Remove one core; no-op when absent. */
    void remove(int core);

    /** Lowest set core, or -1 when empty. */
    int lowest() const;

    /** True when no core is set. */
    bool empty() const { return bits_ == 0; }

    /** Set intersection. */
    CoreMask operator&(const CoreMask &o) const;

    /** Set union. */
    CoreMask operator|(const CoreMask &o) const;

    bool operator==(const CoreMask &o) const = default;

    /** Raw bits. */
    std::uint64_t bits() const { return bits_; }

    /** Render as a hex mask, e.g. "0x3f". */
    std::string toString() const;

  private:
    std::uint64_t bits_ = 0;
};

/**
 * An Intel CAT capacity bitmask over LLC ways.
 *
 * Hardware constraint: the set bits must be contiguous and non-empty
 * when the mask is in use. A default-constructed mask is empty and
 * valid only as "no allocation".
 */
class WayMask
{
  public:
    WayMask() = default;

    /**
     * Construct a contiguous mask of the given width starting at the
     * given way.
     *
     * @param first_way Index of the lowest way.
     * @param num_ways Number of contiguous ways; 0 gives empty mask.
     */
    WayMask(int first_way, int num_ways);

    /** Number of ways in the mask. */
    int count() const { return numWays; }

    /** Index of the lowest way (undefined when empty). */
    int first() const { return firstWay; }

    /** Whether the mask is empty. */
    bool empty() const { return numWays == 0; }

    /** Whether the given way is covered. */
    bool contains(int way) const;

    /** Number of ways shared with another mask. */
    int overlapWays(const WayMask &o) const;

    /** Raw CBM bits as the hardware would see them. */
    std::uint64_t bits() const;

    bool operator==(const WayMask &o) const = default;

    /** Render as a hex CBM, e.g. "0xff000". */
    std::string toString() const;

  private:
    int firstWay = 0;
    int numWays = 0;
};

} // namespace ahq::machine

#endif // AHQ_MACHINE_MASK_HH

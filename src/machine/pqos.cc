/**
 * @file
 * PqosProgrammer implementation.
 */

#include "machine/pqos.hh"

#include <cassert>
#include <cstdio>

namespace ahq::machine
{

std::string
coreList(const CoreMask &mask)
{
    std::string out;
    int run_start = -1;
    int prev = -2;
    auto flush = [&](int end) {
        if (run_start < 0)
            return;
        if (!out.empty())
            out += ",";
        if (end == run_start)
            out += std::to_string(run_start);
        else
            out += std::to_string(run_start) + "-" +
                std::to_string(end);
    };
    for (int c = 0; c < 64; ++c) {
        if (!mask.contains(c))
            continue;
        if (c != prev + 1) {
            flush(prev);
            run_start = c;
        }
        prev = c;
    }
    flush(prev);
    return out;
}

PqosProgrammer::PqosProgrammer(MachineConfig config,
                               std::map<AppId, int> pids)
    : config_(std::move(config)), pids_(std::move(pids))
{
}

std::string
PqosProgrammer::coreListOf(const RegionLayout &layout,
                           const ConcreteMasks &masks,
                           AppId app) const
{
    CoreMask combined;
    for (RegionId r : layout.regionsOf(app)) {
        combined = combined |
            masks.coreMasks[static_cast<std::size_t>(r)];
    }
    return coreList(combined);
}

std::vector<HwCommand>
PqosProgrammer::program(const RegionLayout &layout) const
{
    std::vector<HwCommand> cmds;
    const ConcreteMasks masks = layout.concreteMasks();
    char buf[128];

    for (RegionId r = 0; r < layout.numRegions(); ++r) {
        const int cos = r + 1; // COS0 stays the system default
        const auto &way_mask =
            masks.wayMasks[static_cast<std::size_t>(r)];
        if (!way_mask.empty()) {
            std::snprintf(buf, sizeof(buf), "pqos -e \"llc:%d=0x%llx\"",
                          cos,
                          static_cast<unsigned long long>(
                              way_mask.bits()));
            cmds.push_back({HwCommand::Kind::CatDefine, buf});
        }
        const int bw_units = layout.region(r).res.memBw;
        if (bw_units > 0) {
            const int percent =
                100 * bw_units / config_.totalMemBwUnits;
            std::snprintf(buf, sizeof(buf), "pqos -e \"mba:%d=%d\"",
                          cos, percent);
            cmds.push_back({HwCommand::Kind::MbaDefine, buf});
        }
        const auto &core_mask =
            masks.coreMasks[static_cast<std::size_t>(r)];
        if (!core_mask.empty()) {
            std::snprintf(buf, sizeof(buf), "pqos -a \"llc:%d=%s\"",
                          cos, coreList(core_mask).c_str());
            cmds.push_back({HwCommand::Kind::CosAssociate, buf});
        }
    }

    for (AppId app : layout.allApps()) {
        const std::string cores = coreListOf(layout, masks, app);
        if (cores.empty())
            continue;
        const auto pid = pids_.find(app);
        if (pid != pids_.end()) {
            std::snprintf(buf, sizeof(buf), "taskset -cp %s %d",
                          cores.c_str(), pid->second);
        } else {
            std::snprintf(buf, sizeof(buf),
                          "taskset -cp %s $PID_APP%d",
                          cores.c_str(), app);
        }
        cmds.push_back({HwCommand::Kind::Affinity, buf});
    }
    return cmds;
}

std::vector<HwCommand>
PqosProgrammer::delta(const RegionLayout &before,
                      const RegionLayout &after) const
{
    assert(before.numRegions() == after.numRegions());
    const auto full = program(after);
    const ConcreteMasks masks_before = before.concreteMasks();
    const ConcreteMasks masks_after = after.concreteMasks();

    // Which regions changed any resource?
    std::vector<bool> region_changed(
        static_cast<std::size_t>(after.numRegions()), false);
    for (RegionId r = 0; r < after.numRegions(); ++r) {
        region_changed[static_cast<std::size_t>(r)] =
            !(before.region(r).res == after.region(r).res);
    }

    // Which apps' reachable cores moved?
    std::vector<AppId> apps = after.allApps();
    std::vector<bool> app_changed;
    for (AppId app : apps) {
        CoreMask b, a;
        for (RegionId r : before.regionsOf(app))
            b = b | masks_before.coreMasks[
                static_cast<std::size_t>(r)];
        for (RegionId r : after.regionsOf(app))
            a = a | masks_after.coreMasks[
                static_cast<std::size_t>(r)];
        app_changed.push_back(!(b == a));
    }

    std::vector<HwCommand> cmds;
    std::size_t app_cursor = 0;
    for (const auto &cmd : full) {
        if (cmd.kind == HwCommand::Kind::Affinity) {
            if (app_changed[app_cursor])
                cmds.push_back(cmd);
            ++app_cursor;
        } else {
            // Region-scoped commands embed their class of service
            // as "llc:<cos>=" / "mba:<cos>=", and cos = region + 1.
            const auto colon = cmd.text.find(':');
            const int cos = std::stoi(cmd.text.substr(colon + 1));
            const auto r = static_cast<std::size_t>(cos - 1);
            if (r < region_changed.size() && region_changed[r])
                cmds.push_back(cmd);
        }
    }
    return cmds;
}

std::vector<std::string>
PqosProgrammer::toShell(const std::vector<HwCommand> &commands)
{
    std::vector<std::string> lines;
    lines.reserve(commands.size());
    for (const auto &c : commands)
        lines.push_back(c.text);
    return lines;
}

} // namespace ahq::machine

/**
 * @file
 * Hardware-programming shim: renders a RegionLayout into the exact
 * command sequence a real deployment issues on the paper's testbed —
 * Intel CAT class-of-service definitions and core associations via
 * the `pqos` utility (libpqos), MBA throttles, and `taskset` core
 * affinities per application.
 *
 * On the simulator these strings document what *would* be executed;
 * on a real node they can be piped straight to a shell. The command
 * dialect follows pqos(8) from intel-cmt-cat:
 *
 *   pqos -e "llc:<cos>=<cbm>"       define a CAT class of service
 *   pqos -e "mba:<cos>=<percent>"   define an MBA throttle
 *   pqos -a "llc:<cos>=<cores>"     bind cores to the class
 *   taskset -cp <cores> <pid>       pin an app's threads
 */

#ifndef AHQ_MACHINE_PQOS_HH
#define AHQ_MACHINE_PQOS_HH

#include <map>
#include <string>
#include <vector>

#include "machine/config.hh"
#include "machine/layout.hh"

namespace ahq::machine
{

/** One rendered command with its role, for logging and testing. */
struct HwCommand
{
    enum class Kind
    {
        CatDefine,   // pqos -e llc:...
        MbaDefine,   // pqos -e mba:...
        CosAssociate, // pqos -a llc:...
        Affinity,    // taskset -cp ...
    };

    Kind kind;
    std::string text;
};

/**
 * Renders layouts into pqos/taskset command sequences.
 */
class PqosProgrammer
{
  public:
    /**
     * @param config The node (for totals and the MBA percentage
     *               granularity).
     * @param pids Application id -> process id, used by taskset
     *             lines; apps without a pid get a placeholder.
     */
    PqosProgrammer(MachineConfig config,
                   std::map<AppId, int> pids = {});

    /**
     * Full (re)programming sequence for a layout: one CAT class of
     * service per region (COS1..N; COS0 is left as the default), an
     * MBA throttle per region, core associations, and per-app
     * taskset lines covering every region the app may run in.
     */
    std::vector<HwCommand> program(const RegionLayout &layout) const;

    /**
     * Minimal delta sequence between two layouts with the same
     * region structure: only regions whose resources changed are
     * reprogrammed, and only apps whose reachable core set changed
     * are re-pinned — what an online controller issues per epoch.
     *
     * @pre before and after have the same number of regions.
     */
    std::vector<HwCommand> delta(const RegionLayout &before,
                                 const RegionLayout &after) const;

    /** Render only the shell text lines of a sequence. */
    static std::vector<std::string>
    toShell(const std::vector<HwCommand> &commands);

  private:
    MachineConfig config_;
    std::map<AppId, int> pids_;

    std::string coreListOf(const RegionLayout &layout,
                           const ConcreteMasks &masks,
                           AppId app) const;
};

/** Render a CoreMask as a taskset-style core list ("0-3,7"). */
std::string coreList(const CoreMask &mask);

} // namespace ahq::machine

#endif // AHQ_MACHINE_PQOS_HH

/**
 * @file
 * ResourceVector implementation.
 */

#include "machine/resources.hh"

#include <cassert>
#include <cstdio>

namespace ahq::machine
{

std::string
toString(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Cores:
        return "cores";
      case ResourceKind::LlcWays:
        return "llc_ways";
      case ResourceKind::MemBw:
        return "mem_bw";
    }
    return "unknown";
}

int
ResourceVector::get(ResourceKind kind) const
{
    switch (kind) {
      case ResourceKind::Cores:
        return cores;
      case ResourceKind::LlcWays:
        return llcWays;
      case ResourceKind::MemBw:
        return memBw;
    }
    assert(false && "bad resource kind");
    return 0;
}

int &
ResourceVector::ref(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Cores:
        return cores;
      case ResourceKind::LlcWays:
        return llcWays;
      case ResourceKind::MemBw:
        return memBw;
    }
    assert(false && "bad resource kind");
    return cores;
}

void
ResourceVector::set(ResourceKind kind, int value)
{
    ref(kind) = value;
}

ResourceVector
ResourceVector::operator+(const ResourceVector &o) const
{
    return {cores + o.cores, llcWays + o.llcWays, memBw + o.memBw};
}

ResourceVector
ResourceVector::operator-(const ResourceVector &o) const
{
    return {cores - o.cores, llcWays - o.llcWays, memBw - o.memBw};
}

ResourceVector &
ResourceVector::operator+=(const ResourceVector &o)
{
    *this = *this + o;
    return *this;
}

ResourceVector &
ResourceVector::operator-=(const ResourceVector &o)
{
    *this = *this - o;
    return *this;
}

bool
ResourceVector::nonNegative() const
{
    return cores >= 0 && llcWays >= 0 && memBw >= 0;
}

bool
ResourceVector::empty() const
{
    return cores == 0 && llcWays == 0 && memBw == 0;
}

bool
ResourceVector::fitsWithin(const ResourceVector &o) const
{
    return cores <= o.cores && llcWays <= o.llcWays && memBw <= o.memBw;
}

std::string
ResourceVector::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{cores=%d, ways=%d, bw=%d}", cores,
                  llcWays, memBw);
    return buf;
}

} // namespace ahq::machine

/**
 * @file
 * Resource kinds and the discrete resource vector the schedulers
 * allocate: processor cores, LLC ways (Intel CAT granularity) and
 * memory-bandwidth units (Intel MBA granularity).
 */

#ifndef AHQ_MACHINE_RESOURCES_HH
#define AHQ_MACHINE_RESOURCES_HH

#include <array>
#include <string>

namespace ahq::machine
{

/** The partitionable resource types, in PARTIES' FSM rotation order. */
enum class ResourceKind
{
    Cores = 0,
    LlcWays = 1,
    MemBw = 2,
};

/** Number of distinct resource kinds. */
inline constexpr int kNumResourceKinds = 3;

/** All resource kinds, in rotation order. */
inline constexpr std::array<ResourceKind, kNumResourceKinds>
    kAllResourceKinds = {ResourceKind::Cores, ResourceKind::LlcWays,
                         ResourceKind::MemBw};

/** Human-readable name of a resource kind. */
std::string toString(ResourceKind kind);

/**
 * A discrete amount of each resource kind.
 *
 * Units: cores are whole processor cores, LLC ways are CAT ways,
 * memory-bandwidth units are MBA-style tenths of peak bandwidth.
 */
struct ResourceVector
{
    int cores = 0;
    int llcWays = 0;
    int memBw = 0;

    /** Access a component by kind. */
    int get(ResourceKind kind) const;

    /** Mutable access to a component by kind. */
    int &ref(ResourceKind kind);

    /** Set a component by kind. */
    void set(ResourceKind kind, int value);

    /** Component-wise sum. */
    ResourceVector operator+(const ResourceVector &o) const;

    /** Component-wise difference (may go negative; caller checks). */
    ResourceVector operator-(const ResourceVector &o) const;

    ResourceVector &operator+=(const ResourceVector &o);
    ResourceVector &operator-=(const ResourceVector &o);

    bool operator==(const ResourceVector &o) const = default;

    /** True when every component is >= 0. */
    bool nonNegative() const;

    /** True when every component is 0. */
    bool empty() const;

    /** True when every component is <= the other's. */
    bool fitsWithin(const ResourceVector &o) const;

    /** Total units across all kinds (used as a crude size measure). */
    int totalUnits() const { return cores + llcWays + memBw; }

    /** Render as "{cores=c, ways=w, bw=b}". */
    std::string toString() const;
};

} // namespace ahq::machine

#endif // AHQ_MACHINE_RESOURCES_HH

/**
 * @file
 * Shared elementary types for the machine model.
 */

#ifndef AHQ_MACHINE_TYPES_HH
#define AHQ_MACHINE_TYPES_HH

namespace ahq::machine
{

/** Index of an application colocated on the node. */
using AppId = int;

/** Sentinel for "no application". */
inline constexpr AppId kNoApp = -1;

/** Index of a resource region within a RegionLayout. */
using RegionId = int;

/** Sentinel for "no region". */
inline constexpr RegionId kNoRegion = -1;

} // namespace ahq::machine

#endif // AHQ_MACHINE_TYPES_HH

/**
 * @file
 * Thread-local allocation counting via replaceable operator new.
 *
 * Only the throwing single-object/array forms are replaced — they
 * are what std containers and every code path we care about call.
 * The matching operator delete stays the default (both the default
 * and this replacement allocate with malloc, so free pairs with
 * either). Sized/aligned/nothrow forms fall through to the
 * defaults, which on libstdc++ delegate to the replaced forms.
 */

#include "obs/alloc.hh"

#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AHQ_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AHQ_ALLOC_COUNTING 0
#else
#define AHQ_ALLOC_COUNTING 1
#endif
#else
#define AHQ_ALLOC_COUNTING 1
#endif

namespace ahq::obs
{

namespace
{

thread_local std::uint64_t t_allocCount = 0;

} // namespace

std::uint64_t
threadAllocCount() noexcept
{
    return t_allocCount;
}

bool
allocCountingEnabled() noexcept
{
    return AHQ_ALLOC_COUNTING != 0;
}

Arena &
traceArena()
{
    // One arena per thread: event assembly is single-threaded by
    // construction (each worker builds and writes its own events),
    // and thread-locality is what lets mark/release skip locking.
    static thread_local Arena arena;
    return arena;
}

} // namespace ahq::obs

#if AHQ_ALLOC_COUNTING

namespace
{

void *
countedAlloc(std::size_t size)
{
    ++ahq::obs::t_allocCount;
    if (size == 0)
        size = 1;
    for (;;) {
        if (void *p = std::malloc(size))
            return p;
        // Contract of the throwing forms: consult the new-handler
        // until allocation succeeds or no handler is installed.
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            throw std::bad_alloc();
        handler();
    }
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

#endif // AHQ_ALLOC_COUNTING

/**
 * @file
 * Thread-local heap-allocation counting.
 *
 * The perf_opt work (DESIGN.md §12) promises a zero-alloc steady
 * state for the epoch decision loop; this counter is how tests and
 * the span profiler verify it instead of trusting code review. A
 * replaceable global operator new increments a thread-local counter
 * before delegating to malloc, so `threadAllocCount()` deltas give
 * the exact number of heap allocations a region of code performed on
 * the calling thread — no sampling, no instrumentation flags.
 *
 * Under AddressSanitizer/ThreadSanitizer the replacement is compiled
 * out (the sanitizer runtimes intercept operator new themselves, and
 * double-interception breaks their bookkeeping); callers must branch
 * on `allocCountingEnabled()` rather than assume counts move.
 *
 * The counter is thread-local on purpose: spans measure the work of
 * the thread that opened them, and a cross-thread total would make
 * per-span deltas racy and meaningless.
 */

#ifndef AHQ_OBS_ALLOC_HH
#define AHQ_OBS_ALLOC_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace ahq::obs
{

/**
 * Heap allocations (operator new / new[]) performed by the calling
 * thread since it started. Monotonic; take deltas around a region
 * to count its allocations. Always 0 when counting is disabled.
 */
std::uint64_t threadAllocCount() noexcept;

/**
 * True when the counting operator new replacement is linked in
 * (i.e. not a sanitizer build).
 */
bool allocCountingEnabled() noexcept;

/**
 * Bump allocator for trace-event assembly.
 *
 * Events are built, rendered and written within one emission, so
 * their scratch space follows a strict stack discipline: mark() on
 * open, release() on close, blocks retained across events. After
 * the first few events warm the block list, assembling an event
 * performs zero heap allocations — closing the last allocating
 * path of the tracing-on epoch loop (DESIGN.md §13).
 *
 * Not thread-safe; use the per-thread instance from traceArena().
 */
class Arena
{
  public:
    /** A rewind point (current block + offset within it). */
    struct Mark
    {
        std::size_t block = 0;
        std::size_t offset = 0;
    };

    explicit Arena(std::size_t first_block_bytes = 4096)
        : firstBlockBytes_(first_block_bytes)
    {
    }

    /** Bump-allocate n bytes (a fresh block when none has room). */
    char *alloc(std::size_t n)
    {
        while (blocks_.empty() ||
               n > blocks_[block_].size - off_) {
            if (!blocks_.empty() && block_ + 1 < blocks_.size()) {
                ++block_;
                off_ = 0;
            } else {
                addBlock(n);
            }
        }
        char *p = blocks_[block_].data.get() + off_;
        off_ += n;
        return p;
    }

    /**
     * Grow the most recent allocation in place. Succeeds only when
     * `p + old_size` is the current bump tip and the block has
     * room for `add` more bytes.
     */
    bool extend(const char *p, std::size_t old_size,
                std::size_t add)
    {
        if (blocks_.empty())
            return false;
        char *tip = blocks_[block_].data.get() + off_;
        if (p + old_size != tip ||
            add > blocks_[block_].size - off_)
            return false;
        off_ += add;
        return true;
    }

    Mark mark() const { return {block_, off_}; }

    /** Rewind to a mark; blocks are retained for reuse. */
    void release(const Mark &m)
    {
        block_ = m.block;
        off_ = m.offset;
    }

    /** Bytes of block capacity held (warm-up telemetry). */
    std::size_t capacity() const
    {
        std::size_t total = 0;
        for (const auto &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<char[]> data;
        std::size_t size = 0;
    };

    void addBlock(std::size_t need)
    {
        const std::size_t last =
            blocks_.empty() ? firstBlockBytes_ / 2
                            : blocks_.back().size;
        const std::size_t size = need > last * 2 ? need : last * 2;
        blocks_.push_back({std::make_unique<char[]>(size), size});
        block_ = blocks_.size() - 1;
        off_ = 0;
    }

    std::size_t firstBlockBytes_;
    std::vector<Block> blocks_;
    std::size_t block_ = 0;
    std::size_t off_ = 0;
};

/** The calling thread's trace-assembly arena. */
Arena &traceArena();

/**
 * A grow-by-bump string living in an Arena. Mirrors the slice of
 * the std::string interface the JSON helpers use, so event payloads
 * can be assembled without touching the heap once the arena is
 * warm. Relocation on growth is a copy into a fresh arena region
 * (the old bytes stay until the enclosing mark is released).
 */
class ArenaString
{
  public:
    explicit ArenaString(Arena &arena, std::size_t reserve = 64)
        : arena_(&arena), data_(arena.alloc(reserve)),
          cap_(reserve)
    {
    }

    void push_back(char c)
    {
        if (len_ == cap_)
            grow(1);
        data_[len_++] = c;
    }

    void append(const char *p, std::size_t n)
    {
        if (n > cap_ - len_)
            grow(n);
        std::memcpy(data_ + len_, p, n);
        len_ += n;
    }

    /** Two-pointer append (std::to_chars result shape). */
    void append(const char *first, const char *last)
    {
        append(first, static_cast<std::size_t>(last - first));
    }

    ArenaString &operator+=(std::string_view s)
    {
        append(s.data(), s.size());
        return *this;
    }

    ArenaString &operator+=(const char *s)
    {
        return *this += std::string_view(s);
    }

    std::string_view view() const
    {
        return {data_, len_};
    }

    std::size_t size() const { return len_; }
    bool empty() const { return len_ == 0; }

  private:
    void grow(std::size_t need)
    {
        const std::size_t want =
            need > cap_ ? cap_ + need : cap_;
        if (arena_->extend(data_, cap_, want)) {
            cap_ += want;
            return;
        }
        char *moved = arena_->alloc(cap_ + want);
        std::memcpy(moved, data_, len_);
        data_ = moved;
        cap_ += want;
    }

    Arena *arena_;
    char *data_;
    std::size_t len_ = 0;
    std::size_t cap_;
};

} // namespace ahq::obs

#endif // AHQ_OBS_ALLOC_HH

/**
 * @file
 * Thread-local heap-allocation counting.
 *
 * The perf_opt work (DESIGN.md §12) promises a zero-alloc steady
 * state for the epoch decision loop; this counter is how tests and
 * the span profiler verify it instead of trusting code review. A
 * replaceable global operator new increments a thread-local counter
 * before delegating to malloc, so `threadAllocCount()` deltas give
 * the exact number of heap allocations a region of code performed on
 * the calling thread — no sampling, no instrumentation flags.
 *
 * Under AddressSanitizer/ThreadSanitizer the replacement is compiled
 * out (the sanitizer runtimes intercept operator new themselves, and
 * double-interception breaks their bookkeeping); callers must branch
 * on `allocCountingEnabled()` rather than assume counts move.
 *
 * The counter is thread-local on purpose: spans measure the work of
 * the thread that opened them, and a cross-thread total would make
 * per-span deltas racy and meaningless.
 */

#ifndef AHQ_OBS_ALLOC_HH
#define AHQ_OBS_ALLOC_HH

#include <cstdint>

namespace ahq::obs
{

/**
 * Heap allocations (operator new / new[]) performed by the calling
 * thread since it started. Monotonic; take deltas around a region
 * to count its allocations. Always 0 when counting is disabled.
 */
std::uint64_t threadAllocCount() noexcept;

/**
 * True when the counting operator new replacement is linked in
 * (i.e. not a sanitizer build).
 */
bool allocCountingEnabled() noexcept;

} // namespace ahq::obs

#endif // AHQ_OBS_ALLOC_HH

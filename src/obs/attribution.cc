/**
 * @file
 * Counterfactual interference attribution implementation.
 */

#include "obs/attribution.hh"

#include <algorithm>
#include <cassert>

namespace ahq::obs
{

using machine::AppId;

const char *
interferenceResourceName(InterferenceResource r)
{
    switch (r) {
    case InterferenceResource::Ways:
        return "ways";
    case InterferenceResource::Bandwidth:
        return "bandwidth";
    case InterferenceResource::Cores:
        return "cores";
    case InterferenceResource::Other:
        break;
    }
    return "other";
}

InterferenceAttributor::InterferenceAttributor(
    machine::MachineConfig config, perf::ContentionTraits traits)
    : model_(std::move(config), traits)
{
}

void
InterferenceAttributor::attribute(
    const machine::RegionLayout &layout,
    const std::vector<perf::AppDemand> &demands,
    perf::CoreSharePolicy policy,
    const std::vector<perf::PerfOutcome> &base,
    const std::vector<machine::AppId> &lc_ids,
    const std::vector<core::LcBreakdown> &lc_detail,
    std::vector<AttributionShare> &out)
{
    out.clear();
    assert(lc_detail.size() == lc_ids.size());
    assert(base.size() == demands.size());

    // Nothing suffered interference this epoch: skip the (n
    // counterfactual evaluations of the) whole decomposition.
    const std::size_t nv = lc_ids.size();
    bool any = false;
    for (std::size_t v = 0; v < nv; ++v)
        any = any || lc_detail[v].interference > 0.0;
    if (!any)
        return;

    const std::size_t n = demands.size();
    raw_.assign(nv * n * 3, 0.0);

    // One counterfactual per co-runner: zero its demand (threads
    // and arrival rate — a vacated slot), keep the layout, re-run
    // the model, and read how much of each victim's ways /
    // bandwidth headroom / core grant comes back. Recoveries are
    // relative, so they compare across resource channels.
    for (std::size_t j = 0; j < n; ++j) {
        cfDemands_ = demands;
        cfDemands_[j].threads = 0;
        cfDemands_[j].arrivalRate = 0.0;
        model_.evaluateInto(layout, cfDemands_, policy, cfOut_);
        ++evals_;
        for (std::size_t v = 0; v < nv; ++v) {
            const auto i = static_cast<std::size_t>(lc_ids[v]);
            if (i == j || lc_detail[v].interference <= 0.0)
                continue;
            const perf::PerfOutcome &b = base[i];
            const perf::PerfOutcome &c = cfOut_[i];
            double *r = &raw_[(v * n + j) * 3];
            r[0] = std::max(
                0.0, (c.effectiveWays - b.effectiveWays) /
                         std::max(b.effectiveWays, 1e-9));
            r[1] = std::max(0.0, (b.bwDilation - c.bwDilation) /
                                     std::max(c.bwDilation, 1e-9));
            r[2] = std::max(
                       0.0, (c.coreEquivalents - b.coreEquivalents) /
                                std::max(b.coreEquivalents, 1e-9)) +
                   std::max(
                       0.0, (b.serviceStretch - c.serviceStretch) /
                                std::max(c.serviceStretch, 1e-9));
        }
    }

    // Normalize per victim so shares sum to R_i exactly: scale each
    // raw recovery by R_i/sum, then let the last emitted share
    // absorb the floating-point residual of the scaling.
    for (std::size_t v = 0; v < nv; ++v) {
        const double ri = lc_detail[v].interference;
        if (ri <= 0.0)
            continue;
        double sum = 0.0;
        for (std::size_t k = 0; k < n * 3; ++k)
            sum += raw_[v * n * 3 + k];
        if (sum <= 0.0) {
            // The counterfactuals recovered nothing (noise-driven
            // R_i, queueing carryover): keep the decomposition
            // conservative with an explicit residual row.
            out.push_back({lc_ids[v], kNoiseCulprit,
                           InterferenceResource::Other, ri});
            continue;
        }
        const std::size_t first = out.size();
        for (std::size_t j = 0; j < n; ++j) {
            for (int k = 0; k < 3; ++k) {
                const double raw = raw_[(v * n + j) * 3 +
                                        static_cast<std::size_t>(k)];
                if (raw <= 0.0)
                    continue;
                out.push_back(
                    {lc_ids[v], static_cast<AppId>(j),
                     static_cast<InterferenceResource>(k),
                     ri * (raw / sum)});
            }
        }
        double prefix = 0.0;
        for (std::size_t s = first; s + 1 < out.size(); ++s)
            prefix += out[s].share;
        out.back().share = std::max(0.0, ri - prefix);
    }
}

void
AttributionLedger::add(const std::string &victim,
                       const std::string &culprit,
                       const std::string &resource, double share)
{
    Cell &cell = cells_[Key(victim, culprit, resource)];
    cell.share += share;
    cell.epochs += 1;
}

void
AttributionLedger::merge(const AttributionLedger &other)
{
    for (const auto &[key, cell] : other.cells_) {
        Cell &mine = cells_[key];
        mine.share += cell.share;
        mine.epochs += cell.epochs;
    }
}

std::vector<AttributionRow>
AttributionLedger::rows() const
{
    std::vector<AttributionRow> out;
    out.reserve(cells_.size());
    for (const auto &[key, cell] : cells_) {
        out.push_back({std::get<0>(key), std::get<1>(key),
                       std::get<2>(key), cell.share, cell.epochs});
    }
    return out;
}

double
AttributionLedger::victimTotal(const std::string &victim) const
{
    double total = 0.0;
    for (auto it = cells_.lower_bound(Key(victim, "", ""));
         it != cells_.end() && std::get<0>(it->first) == victim;
         ++it) {
        total += it->second.share;
    }
    return total;
}

std::string
AttributionLedger::topBlame(const std::string &victim) const
{
    std::string best;
    double best_share = -1.0;
    bool best_noise = true;
    for (auto it = cells_.lower_bound(Key(victim, "", ""));
         it != cells_.end() && std::get<0>(it->first) == victim;
         ++it) {
        const bool noise =
            std::get<1>(it->first) == kNoiseCulpritName;
        // A real culprit always outranks the residual; among peers
        // the larger accumulated share wins (ties break toward the
        // map's key order, which is deterministic).
        const bool better =
            best.empty() || (best_noise && !noise) ||
            (best_noise == noise && it->second.share > best_share);
        if (better) {
            best = std::get<1>(it->first) + ":" +
                   std::get<2>(it->first);
            best_share = it->second.share;
            best_noise = noise;
        }
    }
    return best;
}

} // namespace ahq::obs

/**
 * @file
 * Interference attribution: who is hurting my LC app, and through
 * which resource?
 *
 * The entropy pipeline measures *that* an LC app suffered
 * interference (R_i = 1 - TL_i0/TL_i1, Eq. 2) but not *who*
 * inflicted it. The InterferenceAttributor closes that gap with
 * counterfactual evaluations of the contention model: for each
 * co-runner j it re-evaluates the epoch with j's demand removed
 * (threads and arrival rate zeroed, layout unchanged) and reads how
 * much each victim's effective ways, bandwidth dilation and core
 * grant recover. The recoveries are normalized per victim so the
 * per-(culprit, resource) shares sum exactly to the victim's
 * measured R_i — an additive decomposition of the epoch's
 * interference.
 *
 * Shares accumulate into an AttributionLedger keyed
 * (victim, culprit, resource). Ledger merges are commutative in
 * structure and deterministic when applied in a fixed order (node
 * order, like FleetAccumulator), which keeps the serial≡parallel
 * byte-identity contract at any --jobs.
 */

#ifndef AHQ_OBS_ATTRIBUTION_HH
#define AHQ_OBS_ATTRIBUTION_HH

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/entropy.hh"
#include "machine/layout.hh"
#include "perf/contention.hh"

namespace ahq::obs
{

/** Resource channel a culprit hurt a victim through. */
enum class InterferenceResource
{
    /** Shared-region LLC way stealing. */
    Ways = 0,

    /** Memory-bandwidth dilation. */
    Bandwidth = 1,

    /** Core contention (grant shrink + timeslice stretch). */
    Cores = 2,

    /**
     * Residual the counterfactuals could not assign to any
     * co-runner (noise, overhead, queueing carryover). Keeps the
     * decomposition conservative: shares always sum to R_i.
     */
    Other = 3,
};

/** Stable lower-case name for trace events and CLI tables. */
const char *interferenceResourceName(InterferenceResource r);

/** Culprit id used for the unattributed residual pseudo-culprit. */
inline constexpr machine::AppId kNoiseCulprit = -1;

/** Name the residual pseudo-culprit renders as. */
inline constexpr const char *kNoiseCulpritName = "(noise)";

/** One victim←culprit share for one epoch. */
struct AttributionShare
{
    machine::AppId victim = 0;

    /** Co-runner blamed; kNoiseCulprit for the residual. */
    machine::AppId culprit = kNoiseCulprit;

    InterferenceResource resource = InterferenceResource::Other;

    /** Fraction of the victim's R_i assigned to this pair. */
    double share = 0.0;
};

/**
 * Decomposes per-victim interference into per-(culprit, resource)
 * shares by counterfactual contention-model evaluation.
 *
 * Owns its own ContentionModel (the model keeps mutable scratch, so
 * sharing the simulator's instance would be a data race waiting to
 * happen); construct one attributor per run, like the auditor and
 * the fault injector. attribute() reuses internal buffers, so a
 * warm epoch allocates nothing beyond the model's memo.
 */
class InterferenceAttributor
{
  public:
    explicit InterferenceAttributor(machine::MachineConfig config,
                                    perf::ContentionTraits traits = {});

    /**
     * Decompose each LC victim's measured interference into
     * additive per-(culprit, resource) shares.
     *
     * @param layout The layout the epoch ran under.
     * @param demands The demands the epoch's evaluation saw.
     * @param policy Core-share policy of the epoch's scheduler.
     * @param base The epoch's real evaluation outcomes.
     * @param lc_ids LC app ids, in the order lc_detail was built.
     * @param lc_detail Per-LC entropy breakdown (R_i source).
     * @param out Shares, victim-major then culprit-major; rows with
     *            zero share are omitted; victims with R_i <= 0
     *            produce no rows. Per victim the emitted shares sum
     *            to R_i exactly (the last share absorbs the
     *            floating-point residual of the normalization).
     */
    void attribute(const machine::RegionLayout &layout,
                   const std::vector<perf::AppDemand> &demands,
                   perf::CoreSharePolicy policy,
                   const std::vector<perf::PerfOutcome> &base,
                   const std::vector<machine::AppId> &lc_ids,
                   const std::vector<core::LcBreakdown> &lc_detail,
                   std::vector<AttributionShare> &out);

    /** Counterfactual evaluations performed so far (telemetry). */
    long long evaluations() const { return evals_; }

  private:
    perf::ContentionModel model_;
    std::vector<perf::AppDemand> cfDemands_;
    std::vector<perf::PerfOutcome> cfOut_;
    std::vector<double> raw_;
    long long evals_ = 0;
};

/** One accumulated ledger row. */
struct AttributionRow
{
    std::string victim;
    std::string culprit;
    std::string resource;

    /** Summed share-of-R_i over the contributing epochs. */
    double share = 0.0;

    /** Epochs that contributed to this row. */
    long long epochs = 0;
};

/**
 * Accumulated per-(victim, culprit, resource) interference shares.
 *
 * Structurally a commutative monoid under merge(): cells are keyed,
 * so the result of merging shards is independent of which shard saw
 * which epoch. For bitwise determinism, callers merge shards in a
 * fixed order (Fleet merges in node order), the same discipline as
 * FleetAccumulator.
 */
class AttributionLedger
{
  public:
    /** Fold one epoch share into the ledger. */
    void add(const std::string &victim, const std::string &culprit,
             const std::string &resource, double share);

    /** Fold another ledger in (commutative, associative). */
    void merge(const AttributionLedger &other);

    bool empty() const { return cells_.empty(); }
    std::size_t size() const { return cells_.size(); }

    /** All rows, key-sorted (victim, culprit, resource). */
    std::vector<AttributionRow> rows() const;

    /** Total share accumulated against one victim. */
    double victimTotal(const std::string &victim) const;

    /**
     * The victim's top (culprit, resource) by accumulated share as
     * "culprit:resource" — the blame string cluster_migrate events
     * cite. Empty when the victim has no rows. The residual
     * pseudo-culprit is only blamed when nothing real was.
     */
    std::string topBlame(const std::string &victim) const;

  private:
    struct Cell
    {
        double share = 0.0;
        long long epochs = 0;
    };

    using Key = std::tuple<std::string, std::string, std::string>;
    std::map<Key, Cell> cells_;
};

} // namespace ahq::obs

#endif // AHQ_OBS_ATTRIBUTION_HH

/**
 * @file
 * JSON helper implementation (the non-template convenience only;
 * the buffer-generic appenders live in the header).
 */

#include "obs/json.hh"

namespace ahq::obs::json
{

std::string
quoted(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    appendString(out, s);
    return out;
}

} // namespace ahq::obs::json

/**
 * @file
 * JSON helper implementation.
 */

#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ahq::obs::json
{

void
appendString(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void
appendNumber(std::string &out, long long v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

std::string
quoted(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    appendString(out, s);
    return out;
}

} // namespace ahq::obs::json

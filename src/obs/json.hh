/**
 * @file
 * Minimal JSON serialisation helpers for the telemetry layer.
 *
 * Only what JSONL trace events need: escaped strings and
 * deterministic number formatting (shortest round-trip via
 * std::to_chars, so the same double always renders as the same
 * bytes — the property the serial==parallel trace-identity test
 * relies on). Non-finite doubles render as null, which keeps every
 * emitted line valid JSON.
 *
 * The helpers are templated over the output buffer so the hot
 * trace-assembly path can write into an arena-backed obs::ArenaString
 * while offline tools keep using std::string; both expose the same
 * push_back / operator+= / append(first, last) slice of the string
 * interface.
 */

#ifndef AHQ_OBS_JSON_HH
#define AHQ_OBS_JSON_HH

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace ahq::obs::json
{

/** Append s as a quoted, escaped JSON string. */
template <class Out>
void
appendString(Out &out, std::string_view s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Append a double (shortest round-trip; null when non-finite). */
template <class Out>
void
appendNumber(Out &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

/** Append an integer. */
template <class Out>
void
appendNumber(Out &out, long long v)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

/** Quoted, escaped JSON string (convenience). */
std::string quoted(std::string_view s);

} // namespace ahq::obs::json

#endif // AHQ_OBS_JSON_HH

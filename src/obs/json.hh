/**
 * @file
 * Minimal JSON serialisation helpers for the telemetry layer.
 *
 * Only what JSONL trace events need: escaped strings and
 * deterministic number formatting (shortest round-trip via
 * std::to_chars, so the same double always renders as the same
 * bytes — the property the serial==parallel trace-identity test
 * relies on). Non-finite doubles render as null, which keeps every
 * emitted line valid JSON.
 */

#ifndef AHQ_OBS_JSON_HH
#define AHQ_OBS_JSON_HH

#include <string>
#include <string_view>

namespace ahq::obs::json
{

/** Append s as a quoted, escaped JSON string. */
void appendString(std::string &out, std::string_view s);

/** Append a double (shortest round-trip; null when non-finite). */
void appendNumber(std::string &out, double v);

/** Append an integer. */
void appendNumber(std::string &out, long long v);

/** Quoted, escaped JSON string (convenience). */
std::string quoted(std::string_view s);

} // namespace ahq::obs::json

#endif // AHQ_OBS_JSON_HH

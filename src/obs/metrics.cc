/**
 * @file
 * MetricsRegistry implementation.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <iomanip>

namespace ahq::obs
{

const std::vector<double> &
MetricsRegistry::defaultBounds()
{
    static const std::vector<double> bounds{
        0.1, 0.25, 0.5, 1.0,  2.5,   5.0,   10.0,
        25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
    return bounds;
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lk(m);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lk(m);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value,
                         const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lk(m);
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        Histogram h;
        h.bounds = bounds;
        std::sort(h.bounds.begin(), h.bounds.end());
        h.counts.assign(h.bounds.size() + 1, 0);
        it = hists_.emplace(name, std::move(h)).first;
    }
    Histogram &h = it->second;
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
        h.bounds.begin());
    ++h.counts[bucket];
    ++h.total;
    h.sum += value;
}

void
MetricsRegistry::observeBucketed(
    const std::string &name,
    const std::vector<std::pair<double, std::uint64_t>>
        &valueCounts,
    double sum, const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lk(m);
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        Histogram h;
        h.bounds = bounds;
        std::sort(h.bounds.begin(), h.bounds.end());
        h.counts.assign(h.bounds.size() + 1, 0);
        it = hists_.emplace(name, std::move(h)).first;
    }
    Histogram &h = it->second;
    for (const auto &[value, n] : valueCounts) {
        const auto bucket = static_cast<std::size_t>(
            std::lower_bound(h.bounds.begin(), h.bounds.end(),
                             value) -
            h.bounds.begin());
        h.counts[bucket] += n;
        h.total += n;
    }
    h.sum += sum;
}

double
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(m);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(m);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(m);
    const auto it = hists_.find(name);
    if (it == hists_.end())
        return {};
    return {it->second.bounds, it->second.counts, it->second.total,
            it->second.sum};
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Copy out first so self-merge and lock ordering are non-issues.
    std::map<std::string, double> counters, gauges;
    std::map<std::string, Histogram> hists;
    {
        std::lock_guard<std::mutex> lk(other.m);
        counters = other.counters_;
        gauges = other.gauges_;
        hists = other.hists_;
    }
    std::lock_guard<std::mutex> lk(m);
    for (const auto &[name, v] : counters)
        counters_[name] += v;
    for (const auto &[name, v] : gauges)
        gauges_[name] = v;
    for (const auto &[name, h] : hists) {
        auto it = hists_.find(name);
        if (it == hists_.end()) {
            hists_.emplace(name, h);
            continue;
        }
        Histogram &mine = it->second;
        if (mine.bounds != h.bounds) {
            // Incompatible layouts: keep ours, fold totals only.
            mine.total += h.total;
            mine.sum += h.sum;
            continue;
        }
        for (std::size_t i = 0; i < mine.counts.size(); ++i)
            mine.counts[i] += h.counts[i];
        mine.total += h.total;
        mine.sum += h.sum;
    }
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lk(m);
    counters_.clear();
    gauges_.clear();
    hists_.clear();
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lk(m);
    return counters_.empty() && gauges_.empty() && hists_.empty();
}

void
MetricsRegistry::print(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(m);
    for (const auto &[name, v] : counters_)
        os << "counter " << name << " = " << v << "\n";
    for (const auto &[name, v] : gauges_)
        os << "gauge " << name << " = " << v << "\n";
    for (const auto &[name, h] : hists_) {
        os << "histogram " << name << " count = " << h.total
           << " sum = " << h.sum << "\n";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (h.counts[i] == 0)
                continue;
            os << "  ";
            if (i < h.bounds.size())
                os << "<= " << h.bounds[i];
            else
                os << "> " << h.bounds.back();
            os << ": " << h.counts[i] << "\n";
        }
    }
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace ahq::obs

/**
 * @file
 * MetricsRegistry: named counters, gauges and fixed-bucket
 * histograms for the telemetry layer.
 *
 * Design constraints (see DESIGN.md §8):
 *  - cheap enough for the epoch hot path: one mutex-protected map
 *    update per recording, and instrumentation sites only call in
 *    when a registry is attached to their obs::Scope;
 *  - mergeable: worker threads may record into one shared registry
 *    (counter and histogram updates commute, so totals are
 *    deterministic at any thread count) or into private registries
 *    merged in job order afterwards — both preserve the exec
 *    layer's serial==parallel contract;
 *  - self-contained: no dependency on any other ahq module.
 */

#ifndef AHQ_OBS_METRICS_HH
#define AHQ_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ahq::obs
{

/** Snapshot of one fixed-bucket histogram. */
struct HistogramSnapshot
{
    /**
     * Upper bounds of the finite buckets, ascending. A value v is
     * counted in the first bucket with v <= bound; values above the
     * last bound land in the implicit overflow bucket.
     */
    std::vector<double> bounds;

    /** Per-bucket counts; size == bounds.size() + 1 (overflow last). */
    std::vector<std::uint64_t> counts;

    std::uint64_t total = 0;
    double sum = 0.0;
};

/**
 * A registry of named metrics. All operations are thread-safe.
 */
class MetricsRegistry
{
  public:
    /** Default histogram bounds (latency-flavoured, ms scale). */
    static const std::vector<double> &defaultBounds();

    /** Add delta to a counter (created at 0 on first use). */
    void add(const std::string &name, double delta = 1.0);

    /** Set a gauge to the given value. */
    void set(const std::string &name, double value);

    /**
     * Record a value into a histogram. The bucket layout is fixed
     * by the first observation for the name; later calls reuse it
     * regardless of the bounds they pass.
     */
    void observe(const std::string &name, double value,
                 const std::vector<double> &bounds = defaultBounds());

    /**
     * Fold pre-aggregated observations into a histogram: for each
     * (value, count) pair, count occurrences of approximately
     * `value`; `sum` is added to the histogram's running sum once
     * (callers that track an exact total pass it here instead of
     * count * value). Used by SpanProfiler to publish `prof.*`
     * histograms from its log2 buckets.
     */
    void observeBucketed(
        const std::string &name,
        const std::vector<std::pair<double, std::uint64_t>>
            &valueCounts,
        double sum,
        const std::vector<double> &bounds = defaultBounds());

    /** Counter value (0 when absent). */
    double counter(const std::string &name) const;

    /** Gauge value (0 when absent). */
    double gauge(const std::string &name) const;

    /** Histogram snapshot (empty when absent). */
    HistogramSnapshot histogram(const std::string &name) const;

    /**
     * Fold another registry into this one: counters and histogram
     * buckets add, gauges take the other registry's value. Merging
     * per-worker registries in job order yields the same totals as
     * a serial run.
     */
    void merge(const MetricsRegistry &other);

    /** Drop every metric. */
    void clear();

    /** True when nothing has been recorded. */
    bool empty() const;

    /** Human-readable dump, one metric per line, sorted by name. */
    void print(std::ostream &os) const;

  private:
    struct Histogram
    {
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    mutable std::mutex m;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> hists_;
};

/** The process-wide registry (what `ahq --metrics` dumps). */
MetricsRegistry &globalMetrics();

} // namespace ahq::obs

#endif // AHQ_OBS_METRICS_HH

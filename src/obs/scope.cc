/**
 * @file
 * Event rendering (arena-backed; see the Event doc in scope.hh for
 * the stack discipline).
 */

#include "obs/scope.hh"

#include <cstring>

#include "obs/json.hh"

namespace ahq::obs
{

namespace
{

std::string_view
copyToArena(Arena &arena, std::string_view s)
{
    if (s.empty())
        return {};
    char *p = arena.alloc(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
}

} // namespace

Event::Event(std::string_view type)
    : arena_(traceArena()), mark_(arena_.mark()),
      type_(copyToArena(arena_, type)), payload_(arena_)
{
}

void
Event::key(std::string_view k)
{
    payload_.push_back(',');
    json::appendString(payload_, k);
    payload_.push_back(':');
}

Event &
Event::num(std::string_view k, double v)
{
    key(k);
    json::appendNumber(payload_, v);
    return *this;
}

Event &
Event::integer(std::string_view k, long long v)
{
    key(k);
    json::appendNumber(payload_, v);
    return *this;
}

Event &
Event::str(std::string_view k, std::string_view v)
{
    key(k);
    json::appendString(payload_, v);
    return *this;
}

Event &
Event::nums(std::string_view k, const std::vector<double> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendNumber(payload_, v[i]);
    }
    payload_.push_back(']');
    return *this;
}

Event &
Event::ints(std::string_view k, const std::vector<int> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendNumber(payload_,
                           static_cast<long long>(v[i]));
    }
    payload_.push_back(']');
    return *this;
}

Event &
Event::strs(std::string_view k, const std::vector<std::string> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendString(payload_, v[i]);
    }
    payload_.push_back(']');
    return *this;
}

std::string_view
Event::render(std::string_view scenario, int epoch) const
{
    ArenaString line(arena_, payload_.size() + 96);
    line += "{\"v\":";
    json::appendNumber(line,
                       static_cast<long long>(kSchemaVersion));
    line += ",\"type\":";
    json::appendString(line, type_);
    if (!scenario.empty()) {
        line += ",\"scenario\":";
        json::appendString(line, scenario);
    }
    if (epoch >= 0) {
        line += ",\"epoch\":";
        json::appendNumber(line, static_cast<long long>(epoch));
    }
    line += payload_.view();
    line.push_back('}');
    return line.view();
}

} // namespace ahq::obs

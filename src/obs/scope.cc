/**
 * @file
 * Event rendering.
 */

#include "obs/scope.hh"

#include "obs/json.hh"

namespace ahq::obs
{

void
Event::key(std::string_view k)
{
    payload_.push_back(',');
    json::appendString(payload_, k);
    payload_.push_back(':');
}

Event &
Event::num(std::string_view k, double v)
{
    key(k);
    json::appendNumber(payload_, v);
    return *this;
}

Event &
Event::integer(std::string_view k, long long v)
{
    key(k);
    json::appendNumber(payload_, v);
    return *this;
}

Event &
Event::str(std::string_view k, std::string_view v)
{
    key(k);
    json::appendString(payload_, v);
    return *this;
}

Event &
Event::nums(std::string_view k, const std::vector<double> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendNumber(payload_, v[i]);
    }
    payload_.push_back(']');
    return *this;
}

Event &
Event::ints(std::string_view k, const std::vector<int> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendNumber(payload_,
                           static_cast<long long>(v[i]));
    }
    payload_.push_back(']');
    return *this;
}

Event &
Event::strs(std::string_view k, const std::vector<std::string> &v)
{
    key(k);
    payload_.push_back('[');
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            payload_.push_back(',');
        json::appendString(payload_, v[i]);
    }
    payload_.push_back(']');
    return *this;
}

std::string
Event::render(std::string_view scenario, int epoch) const
{
    std::string line = "{\"v\":";
    json::appendNumber(line,
                       static_cast<long long>(kSchemaVersion));
    line += ",\"type\":";
    json::appendString(line, type_);
    if (!scenario.empty()) {
        line += ",\"scenario\":";
        json::appendString(line, scenario);
    }
    if (epoch >= 0) {
        line += ",\"epoch\":";
        json::appendNumber(line, static_cast<long long>(epoch));
    }
    line += payload_;
    line.push_back('}');
    return line;
}

} // namespace ahq::obs

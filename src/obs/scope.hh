/**
 * @file
 * obs::Scope — the handle instrumentation sites hold.
 *
 * A Scope bundles an optional TraceSink, an optional
 * MetricsRegistry and the context tags (scenario id, current epoch)
 * that every emitted event carries. Both pointers default to null,
 * so an un-instrumented run pays exactly one branch per potential
 * event — the overhead contract the micro-benchmarks check (<2%
 * on the epoch loop with tracing off).
 *
 * Every event line carries a `v` schema-version field (see
 * docs/TRACE_SCHEMA.md for the event taxonomy and evolution rules).
 */

#ifndef AHQ_OBS_SCOPE_HH
#define AHQ_OBS_SCOPE_HH

#include <string>
#include <string_view>
#include <vector>

#include "obs/alloc.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"

namespace ahq::obs
{

class SpanProfiler;
class TimeSeriesRegistry;

/** Version stamped into every trace event as `"v"`. */
inline constexpr int kSchemaVersion = 1;

/**
 * One trace event under construction. Fields render in call order
 * after the standard header (v, type, scenario, epoch), so a given
 * emission site always produces the same byte layout.
 *
 * All scratch space — the type tag, the payload, and the rendered
 * line — lives in the calling thread's trace arena and is rewound
 * when the Event is destroyed, so a warm steady state assembles
 * events without heap allocations. Consequence: Events follow stack
 * discipline (build, render, write, destroy — in that order, most
 * recent first), and the view render() returns is valid only while
 * the Event is alive.
 */
class Event
{
  public:
    explicit Event(std::string_view type);
    ~Event() { arena_.release(mark_); }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    Event &num(std::string_view key, double v);
    Event &integer(std::string_view key, long long v);
    Event &str(std::string_view key, std::string_view v);
    Event &nums(std::string_view key, const std::vector<double> &v);
    Event &ints(std::string_view key, const std::vector<int> &v);
    Event &strs(std::string_view key,
                const std::vector<std::string> &v);

    /** The full JSONL line (no trailing newline); arena-backed,
        valid until this Event is destroyed. */
    std::string_view render(std::string_view scenario,
                            int epoch) const;

  private:
    void key(std::string_view k);

    Arena &arena_;
    Arena::Mark mark_;
    std::string_view type_;
    ArenaString payload_;
};

/**
 * The instrumentation handle threaded through SimulationConfig and
 * the schedulers. Copyable by design: derived scopes (per scenario
 * tag, per epoch) are value copies pointing at the same sink and
 * registry, so the owner of those objects controls their lifetime.
 */
struct Scope
{
    /** Event destination; null = tracing off. */
    TraceSink *sink = nullptr;

    /** Metric destination; null = metrics off. */
    MetricsRegistry *metrics = nullptr;

    /** Scenario tag stamped into every event (may be empty). */
    std::string scenario;

    /** Current epoch index stamped into events; -1 = omitted. */
    int epoch = -1;

    /**
     * Opt in to wall-clock fields (e.g. scenario_end wall_ms).
     * Off by default: wall times differ run to run, which would
     * break the byte-identical trace reproducibility contract.
     */
    bool wallClock = false;

    /**
     * Span destination; null = profiling off, and every obs::Span
     * constructed against this scope is a single branch. See
     * obs/span.hh for the aggregation and determinism rules.
     */
    SpanProfiler *prof = nullptr;

    /**
     * Time-series destination; null = no series recording. Rides
     * along every derived-scope copy, so attaching a registry at
     * the top level (CLI, Fleet) instruments every nested
     * simulator without further plumbing. See obs/timeseries.hh.
     */
    TimeSeriesRegistry *series = nullptr;

    /** Whether events would actually be written. */
    bool tracing() const { return sink != nullptr; }

    /** Whether spans would actually be recorded. */
    bool profiling() const { return prof != nullptr; }

    /** Render and write an event (no-op without a sink). */
    void emit(const Event &ev) const
    {
        if (sink != nullptr)
            sink->write(ev.render(scenario, epoch));
    }

    /** Counter shortcut (no-op without a registry). */
    void count(const std::string &name, double delta = 1.0) const
    {
        if (metrics != nullptr)
            metrics->add(name, delta);
    }

    /** Gauge shortcut (no-op without a registry). */
    void gauge(const std::string &name, double value) const
    {
        if (metrics != nullptr)
            metrics->set(name, value);
    }

    /** Histogram shortcut (no-op without a registry). */
    void observe(const std::string &name, double value) const
    {
        if (metrics != nullptr)
            metrics->observe(name, value);
    }

    /** Copy of this scope with a different scenario tag. */
    Scope tagged(std::string tag) const
    {
        Scope s = *this;
        s.scenario = std::move(tag);
        return s;
    }

    /** Copy of this scope positioned at an epoch. */
    Scope atEpoch(int e) const
    {
        Scope s = *this;
        s.epoch = e;
        return s;
    }

    /** Copy of this scope writing to a different sink. */
    Scope withSink(TraceSink *s) const
    {
        Scope out = *this;
        out.sink = s;
        return out;
    }

    /** Copy of this scope recording spans into a profiler. */
    Scope withProf(SpanProfiler *p) const
    {
        Scope out = *this;
        out.prof = p;
        return out;
    }
};

} // namespace ahq::obs

#endif // AHQ_OBS_SCOPE_HH

/**
 * @file
 * Multi-window SLO burn-rate monitor implementation.
 */

#include "obs/slo.hh"

#include <algorithm>
#include <cassert>

namespace ahq::obs
{

SloMonitor::SloMonitor(int num_apps, SloTraits traits)
    : traits_(traits),
      budget_(std::max(1e-9, 1.0 - traits.targetAvailability)),
      apps_(static_cast<std::size_t>(std::max(0, num_apps)))
{
    assert(traits_.fastWindowEpochs > 0);
    assert(traits_.slowWindowEpochs > traits_.fastWindowEpochs);
    assert(traits_.burnThreshold > 0.0);
    assert(traits_.clearRatio > 0.0 && traits_.clearRatio <= 1.0);
    for (AppState &s : apps_) {
        s.bits.assign(
            static_cast<std::size_t>(traits_.slowWindowEpochs), 0);
    }
}

SloAlertTransition
SloMonitor::observe(int app, int epoch, bool violated)
{
    AppState &s = apps_[static_cast<std::size_t>(app)];
    const int fast = traits_.fastWindowEpochs;
    const int slow = traits_.slowWindowEpochs;

    // Ring update: retire the bits leaving each window before the
    // new one lands. fast < slow guarantees the fast retiree has
    // not been overwritten yet.
    const std::size_t pos =
        static_cast<std::size_t>(s.seen % slow);
    if (s.seen >= slow)
        s.slowCount -= s.bits[pos];
    if (s.seen >= fast)
        s.fastCount -= s.bits[static_cast<std::size_t>(
            (s.seen - fast) % slow)];
    const unsigned char bit = violated ? 1 : 0;
    s.bits[pos] = bit;
    s.fastCount += bit;
    s.slowCount += bit;
    ++s.seen;

    SloAlertTransition tr;
    const int in_fast = std::min(s.seen, fast);
    const int in_slow = std::min(s.seen, slow);
    tr.burnFast =
        (static_cast<double>(s.fastCount) / in_fast) / budget_;
    tr.burnSlow =
        (static_cast<double>(s.slowCount) / in_slow) / budget_;
    summary_.worstBurn = std::max(summary_.worstBurn, tr.burnFast);

    if (!s.active) {
        // Raising needs a full fast window of evidence; both
        // windows must agree the budget is burning too fast.
        if (s.seen >= fast && tr.burnFast >= traits_.burnThreshold &&
            tr.burnSlow >= traits_.burnThreshold) {
            s.active = true;
            s.raisedEpoch = epoch;
            ++summary_.raises;
            ++summary_.activeAtEnd;
            ++summary_.alertEpochs;
            tr.kind = SloAlertTransition::Kind::Raise;
        }
    } else {
        const double clear_at =
            traits_.burnThreshold * traits_.clearRatio;
        if (tr.burnFast < clear_at && tr.burnSlow < clear_at) {
            s.active = false;
            ++summary_.clears;
            --summary_.activeAtEnd;
            tr.kind = SloAlertTransition::Kind::Clear;
            tr.durationEpochs = epoch - s.raisedEpoch;
            s.raisedEpoch = -1;
        } else {
            ++summary_.alertEpochs;
        }
    }
    return tr;
}

bool
SloMonitor::active(int app) const
{
    return apps_[static_cast<std::size_t>(app)].active;
}

SloSummary
SloMonitor::summary() const
{
    return summary_;
}

} // namespace ahq::obs

/**
 * @file
 * Online SLO burn-rate monitoring.
 *
 * An LC app's SLO here is epoch availability: the fraction of
 * epochs whose measured tail latency meets the elastic QoS target
 * (the same predicate the violation counters use). The monitor
 * tracks each app's violation bits over two sliding windows and
 * computes the *burn rate* — the rate the error budget
 * (1 - targetAvailability) is being consumed, so burn 1.0 means
 * "exactly on budget" and burn 2.0 means "burning twice as fast as
 * the SLO allows". An alert raises when BOTH windows burn above the
 * threshold (the fast window gives responsiveness, the slow window
 * suppresses blips) and clears with hysteresis only when both fall
 * below threshold * clearRatio — the standard multi-window
 * burn-rate policy, sized in epochs rather than wall time.
 *
 * Pure and deterministic: the monitor consumes only (app, epoch,
 * violated) and keeps integer window counts, so alert transitions
 * are a function of the violation bit stream alone — byte-identical
 * trace events at any thread count for free.
 */

#ifndef AHQ_OBS_SLO_HH
#define AHQ_OBS_SLO_HH

#include <vector>

namespace ahq::obs
{

/** Burn-rate policy knobs. */
struct SloTraits
{
    /** Target fraction of epochs meeting QoS; budget = 1 - this. */
    double targetAvailability = 0.99;

    /** Fast (responsive) window, epochs. */
    int fastWindowEpochs = 12;

    /** Slow (confirming) window, epochs; must exceed the fast. */
    int slowWindowEpochs = 96;

    /** Raise when both windows burn at or above this rate. */
    double burnThreshold = 2.0;

    /**
     * Hysteresis: clear only when both windows burn below
     * burnThreshold * clearRatio, so an alert never flaps across
     * a single boundary epoch.
     */
    double clearRatio = 0.5;
};

/** What one observe() call did to the app's alert state. */
struct SloAlertTransition
{
    enum class Kind
    {
        None,
        Raise,
        Clear,
    };

    Kind kind = Kind::None;

    /** Burn rates after folding in the epoch's bit. */
    double burnFast = 0.0;
    double burnSlow = 0.0;

    /** Epochs the alert was active (Clear only). */
    int durationEpochs = 0;
};

/** Run-level alert accounting (merge-commutative across nodes). */
struct SloSummary
{
    long long raises = 0;
    long long clears = 0;

    /** Alerts still active when the run ended. */
    long long activeAtEnd = 0;

    /** (app, epoch) pairs spent under an active alert. */
    long long alertEpochs = 0;

    /** Worst fast-window burn rate seen by any app. */
    double worstBurn = 0.0;

    void merge(const SloSummary &o)
    {
        raises += o.raises;
        clears += o.clears;
        activeAtEnd += o.activeAtEnd;
        alertEpochs += o.alertEpochs;
        worstBurn = worstBurn > o.worstBurn ? worstBurn
                                            : o.worstBurn;
    }
};

/**
 * Multi-window burn-rate detector over per-app violation bits.
 *
 * One instance per run; feed every LC app's violation bit every
 * epoch via observe() (epochs must be fed in order per app). BE
 * apps are simply never observed.
 */
class SloMonitor
{
  public:
    explicit SloMonitor(int num_apps, SloTraits traits = {});

    /**
     * Fold one epoch's violation bit for one app and report the
     * alert transition it caused, if any.
     */
    SloAlertTransition observe(int app, int epoch, bool violated);

    /** Whether the app's alert is currently raised. */
    bool active(int app) const;

    /** Aggregated accounting over all apps so far. */
    SloSummary summary() const;

    const SloTraits &traits() const { return traits_; }

  private:
    struct AppState
    {
        std::vector<unsigned char> bits;
        int seen = 0;
        int fastCount = 0;
        int slowCount = 0;
        bool active = false;
        int raisedEpoch = -1;
    };

    SloTraits traits_;
    double budget_;
    std::vector<AppState> apps_;
    SloSummary summary_;
};

} // namespace ahq::obs

#endif // AHQ_OBS_SLO_HH

#include "obs/span.hh"

#include <bit>
#include <utility>
#include <vector>

#include "obs/alloc.hh"

namespace ahq::obs
{

namespace
{

/** Upper bound (inclusive, ns) of log2 bucket `idx`. */
std::uint64_t
bucketUpperNs(std::size_t idx)
{
    if (idx == 0)
        return 0;
    if (idx >= 64)
        return UINT64_MAX;
    return (std::uint64_t{1} << idx) - 1;
}

std::size_t
bucketIndex(std::uint64_t ns)
{
    const auto w = static_cast<std::size_t>(std::bit_width(ns));
    return w < SpanProfiler::kBuckets ? w
                                      : SpanProfiler::kBuckets - 1;
}

/**
 * One stack of open spans per thread. The shared `path` string is
 * appended to on open and truncated on close, so building a child
 * path is one append — no per-span allocation once the string has
 * grown. `ctxStart` marks where the innermost profiler's root
 * begins: a span whose profiler differs from the top frame's does
 * not inherit the foreign prefix.
 */
struct Frame
{
    SpanProfiler *prof;
    std::size_t prevLen;
    std::size_t ctxStart;
};

struct TlState
{
    std::string path;
    std::vector<Frame> frames;
};

TlState &
tls()
{
    static thread_local TlState t;
    return t;
}

} // namespace

std::uint64_t
SpanProfiler::Stats::quantileNs(double q) const
{
    if (count == 0)
        return 0;
    const double threshold = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += buckets[i];
        if (static_cast<double>(cum) >= threshold)
            return std::min(bucketUpperNs(i), maxNs);
    }
    return maxNs;
}

void
SpanProfiler::record(std::string_view path, std::uint64_t ns,
                     std::uint64_t allocs)
{
    std::lock_guard<std::mutex> lock(m_);
    auto &s = spans_[std::string(path)];
    s.count += 1;
    s.totalNs += ns;
    if (ns > s.maxNs)
        s.maxNs = ns;
    s.allocs += allocs;
    s.buckets[bucketIndex(ns)] += 1;
}

void
SpanProfiler::merge(const SpanProfiler &other)
{
    const auto theirs = other.snapshot();
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[path, st] : theirs) {
        auto &s = spans_[path];
        s.count += st.count;
        s.totalNs += st.totalNs;
        if (st.maxNs > s.maxNs)
            s.maxNs = st.maxNs;
        s.allocs += st.allocs;
        for (std::size_t i = 0; i < kBuckets; ++i)
            s.buckets[i] += st.buckets[i];
    }
}

std::map<std::string, SpanProfiler::Stats>
SpanProfiler::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    return spans_;
}

bool
SpanProfiler::empty() const
{
    std::lock_guard<std::mutex> lock(m_);
    return spans_.empty();
}

void
SpanProfiler::clear()
{
    std::lock_guard<std::mutex> lock(m_);
    spans_.clear();
}

void
SpanProfiler::flush(const Scope &scope) const
{
    if (scope.sink == nullptr && scope.metrics == nullptr)
        return;
    const auto snap = snapshot();
    for (const auto &[path, st] : snap) {
        const auto slash = path.rfind('/');
        const std::string name =
            slash == std::string::npos ? path
                                       : path.substr(slash + 1);
        const std::string parent =
            slash == std::string::npos ? std::string()
                                       : path.substr(0, slash);
        long long depth = 0;
        for (char c : path)
            if (c == '/')
                ++depth;

        Event ev("span");
        ev.str("path", path).str("name", name);
        if (!parent.empty())
            ev.str("parent", parent);
        ev.integer("depth", depth)
            .integer("count",
                     static_cast<long long>(st.count));
        const double totalMs =
            static_cast<double>(st.totalNs) / 1e6;
        if (scope.wallClock) {
            ev.num("total_ms", totalMs)
                .num("mean_ms",
                     totalMs / static_cast<double>(st.count))
                .num("p99_ms",
                     static_cast<double>(st.quantileNs(0.99)) /
                         1e6)
                .num("max_ms",
                     static_cast<double>(st.maxNs) / 1e6)
                .integer("allocs",
                         static_cast<long long>(st.allocs));
        }
        scope.emit(ev);

        if (scope.metrics != nullptr) {
            scope.metrics->add("prof." + path + ".calls",
                               static_cast<double>(st.count));
            if (scope.wallClock) {
                // Allocation totals depend on buffer warm-up (and
                // thus on job placement), so like wall time they
                // ride on the wallClock opt-in.
                scope.metrics->add("prof." + path + ".allocs",
                                   static_cast<double>(st.allocs));
            }
            std::vector<std::pair<double, std::uint64_t>> vc;
            for (std::size_t i = 0; i < kBuckets; ++i)
                if (st.buckets[i] != 0)
                    vc.emplace_back(
                        static_cast<double>(bucketUpperNs(i)) /
                            1e6,
                        st.buckets[i]);
            scope.metrics->observeBucketed("prof." + path + ".ms",
                                           vc, totalMs);
        }
    }
}

void
Span::open(SpanProfiler *prof, std::string_view name)
{
    prof_ = prof;
    auto &t = tls();
    Frame f;
    f.prof = prof;
    f.prevLen = t.path.size();
    if (!t.frames.empty() && t.frames.back().prof == prof) {
        f.ctxStart = t.frames.back().ctxStart;
        t.path += '/';
    } else {
        f.ctxStart = t.path.size();
    }
    t.path.append(name.data(), name.size());
    t.frames.push_back(f);
    allocStart_ = threadAllocCount();
    start_ = std::chrono::steady_clock::now();
}

void
Span::close()
{
    const auto elapsed =
        std::chrono::steady_clock::now() - start_;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            elapsed)
            .count());
    auto &t = tls();
    if (t.frames.empty())
        return;
    const Frame f = t.frames.back();
    prof_->record(std::string_view(t.path).substr(f.ctxStart), ns,
                  threadAllocCount() - allocStart_);
    t.path.resize(f.prevLen);
    t.frames.pop_back();
}

} // namespace ahq::obs

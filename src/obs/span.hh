/**
 * @file
 * SpanProfiler + obs::Span — self-profiling for the hot paths.
 *
 * A Span is an RAII timer: construction notes the steady-clock
 * time, destruction records the elapsed nanoseconds under a
 * hierarchical path built from the thread-local stack of open
 * spans ("run/epoch/decide/arq.search"). A SpanProfiler aggregates
 * those recordings per path: invocation count, total/max wall time
 * as integer nanoseconds (so merge order never changes a total),
 * and a log2-bucket histogram from which approximate quantiles are
 * read deterministically.
 *
 * Determinism contract (DESIGN.md §11): everything a profiler
 * stores is merge-order independent, per-job profilers are flushed
 * in job order by their owners, and the wall-time fields of the
 * emitted `span` events ride on Scope::wallClock — with it off
 * (the default) span-bearing traces stay byte-identical at any
 * thread count because only paths and counts are serialised.
 *
 * Cost contract: a Span whose profiler pointer is null is one
 * branch — no clock read, no allocation — so the profiler-off
 * epoch loop stays inside the established <2% overhead budget
 * (BM_EpochSimProfiling/0 measures it).
 */

#ifndef AHQ_OBS_SPAN_HH
#define AHQ_OBS_SPAN_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/scope.hh"

namespace ahq::obs
{

/**
 * Aggregated wall-time statistics of the spans recorded under one
 * path. Thread-safe to fill concurrently; all fields are integral
 * or derived from integrals, so merges commute.
 */
class SpanProfiler
{
  public:
    /** Number of log2 duration buckets (bucket i holds ns with
     *  bit_width(ns) == i; bucket 0 holds zero-length spans). */
    static constexpr std::size_t kBuckets = 65;

    struct Stats
    {
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
        std::uint64_t maxNs = 0;

        /**
         * Heap allocations performed on the recording thread while
         * the span was open (obs/alloc.hh; 0 in sanitizer builds).
         * Like wall time, allocation counts depend on buffer
         * warm-up and thus on how jobs land on workers, so they are
         * only serialised under Scope::wallClock.
         */
        std::uint64_t allocs = 0;

        std::array<std::uint64_t, kBuckets> buckets{};

        /**
         * Approximate quantile (0..1) in nanoseconds: the upper
         * bound of the first log2 bucket whose cumulative count
         * reaches q * count. Resolution is a factor of two —
         * deterministic, and plenty for "where does the time go".
         */
        std::uint64_t quantileNs(double q) const;
    };

    /** Record one completed span under an already-built path. */
    void record(std::string_view path, std::uint64_t ns,
                std::uint64_t allocs = 0);

    /** Fold another profiler's stats into this one (commutative). */
    void merge(const SpanProfiler &other);

    /** Copy of the per-path aggregates, sorted by path. */
    std::map<std::string, Stats> snapshot() const;

    /** True when nothing has been recorded. */
    bool empty() const;

    /** Drop every recorded span. */
    void clear();

    /**
     * Emit one schema-v1 `span` event per path (sorted by path —
     * deterministic order) into the scope's sink, and fold
     * `prof.*` metrics into its registry. Wall-time fields
     * (total_ms, mean_ms, p99_ms, max_ms) are only rendered when
     * scope.wallClock is set; path/name/parent/depth/count are
     * always present.
     */
    void flush(const Scope &scope) const;

  private:
    mutable std::mutex m_;
    std::map<std::string, Stats> spans_;
};

/**
 * RAII hierarchical timer. Open spans on a thread form a stack;
 * a span's path is its ancestors' names joined with '/'. Spans
 * must be strictly nested (scope-bound), and nested spans on one
 * thread must target the same profiler — a span whose profiler
 * differs from the innermost open one starts a fresh root path,
 * so independently-attached profilers (e.g. ThreadPool's) never
 * leak into a job profiler's hierarchy.
 */
class Span
{
  public:
    /** No-op when prof is null (one branch, no clock read). */
    Span(SpanProfiler *prof, std::string_view name)
    {
        if (prof != nullptr)
            open(prof, name);
    }

    /** Convenience: profile against the scope's profiler. */
    Span(const Scope &scope, std::string_view name)
        : Span(scope.prof, name)
    {
    }

    ~Span()
    {
        if (prof_ != nullptr)
            close();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void open(SpanProfiler *prof, std::string_view name);
    void close();

    SpanProfiler *prof_ = nullptr;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t allocStart_ = 0;
};

} // namespace ahq::obs

#endif // AHQ_OBS_SPAN_HH

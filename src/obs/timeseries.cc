/**
 * @file
 * TimeSeries fold/merge and registry flush.
 */

#include "obs/timeseries.hh"

#include <algorithm>

#include "obs/scope.hh"

namespace ahq::obs
{

TimeSeries::TimeSeries(int capacity)
    : buckets_(static_cast<std::size_t>(std::max(capacity, 1)))
{
    foldLimit_ = static_cast<long long>(buckets_.size());
}

void
TimeSeries::foldTo(int epoch)
{
    while (foldLimit_ <= epoch)
        foldOnce();
}

void
TimeSeries::foldOnce()
{
    const std::size_t n = buckets_.size();
    const std::size_t half = (n + 1) / 2;
    for (std::size_t i = 0; i < half; ++i) {
        Bucket merged = buckets_[2 * i];
        if (2 * i + 1 < n)
            merged.combine(buckets_[2 * i + 1]);
        buckets_[i] = merged;
    }
    for (std::size_t i = half; i < n; ++i)
        buckets_[i] = Bucket{};
    stride_ *= 2;
    ++shift_;
    foldLimit_ = static_cast<long long>(stride_) * capacity();
}

void
TimeSeries::merge(const TimeSeries &other)
{
    if (other.points_ == 0)
        return;
    // Copy the source so both sides can fold to the common stride
    // that covers the union of epoch ranges; the common stride is a
    // symmetric function of the two inputs, which is what makes
    // A.merge(B) and B.merge(A) land on identical buckets.
    TimeSeries src = other;
    const int mx = std::max(maxEpoch_, other.maxEpoch_);
    while (static_cast<long long>(stride_) * capacity() <= mx)
        foldOnce();
    while (static_cast<long long>(src.stride_) * src.capacity() <=
           mx)
        src.foldOnce();
    while (stride_ < src.stride_)
        foldOnce();
    while (src.stride_ < stride_)
        src.foldOnce();
    const int n = std::min(capacity(), src.capacity());
    for (int i = 0; i < n; ++i)
        buckets_[static_cast<std::size_t>(i)].combine(
            src.buckets_[static_cast<std::size_t>(i)]);
    if (mx > maxEpoch_)
        maxEpoch_ = mx;
    points_ += other.points_;
}

TimeSeries &
TimeSeriesRegistry::handle(std::string_view scenario,
                           std::string_view name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(std::string(scenario),
                              std::string(name));
    auto it = series_.find(key);
    if (it == series_.end())
        it = series_
                 .emplace(std::move(key), TimeSeries(capacity_))
                 .first;
    return it->second;
}

void
TimeSeriesRegistry::merge(const TimeSeriesRegistry &other)
{
    if (&other == this)
        return;
    const std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[key, ts] : other.series_) {
        auto it = series_.find(key);
        if (it == series_.end())
            it = series_.emplace(key, TimeSeries(capacity_))
                     .first;
        it->second.merge(ts);
    }
}

bool
TimeSeriesRegistry::empty() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return series_.empty();
}

std::size_t
TimeSeriesRegistry::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return series_.size();
}

void
TimeSeriesRegistry::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    series_.clear();
}

void
TimeSeriesRegistry::flush(const Scope &scope) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total_points = 0;
    for (const auto &[key, ts] : series_) {
        total_points += ts.points();
        if (scope.sink == nullptr)
            continue;
        const int used = ts.bucketsInUse();
        std::vector<int> n(static_cast<std::size_t>(used));
        std::vector<double> mn(static_cast<std::size_t>(used));
        std::vector<double> mx(static_cast<std::size_t>(used));
        std::vector<double> sum(static_cast<std::size_t>(used));
        for (int i = 0; i < used; ++i) {
            const TimeSeries::Bucket &b = ts.bucket(i);
            const std::size_t ui = static_cast<std::size_t>(i);
            n[ui] = static_cast<int>(b.count);
            // Empty buckets render as zeros (count disambiguates)
            // so every array element stays a plain JSON number.
            mn[ui] = b.count > 0 ? b.min : 0.0;
            mx[ui] = b.count > 0 ? b.max : 0.0;
            sum[ui] = b.sum;
        }
        Event ev("series");
        ev.str("series", key.second)
            .integer("stride", ts.stride())
            .integer("epochs",
                     static_cast<long long>(ts.maxEpoch()) + 1)
            .integer("capacity", ts.capacity())
            .integer("points",
                     static_cast<long long>(ts.points()))
            .ints("n", n)
            .nums("min", mn)
            .nums("max", mx)
            .nums("sum", sum);
        // The scenario header comes from the series key: series
        // recorded under per-job/per-node tags flush under those
        // tags no matter which scope drives the flush.
        Scope out = scope;
        out.scenario = key.first;
        out.epoch = -1;
        out.emit(ev);
    }
    if (scope.metrics != nullptr && !series_.empty()) {
        scope.count("ts.series",
                    static_cast<double>(series_.size()));
        scope.count("ts.points",
                    static_cast<double>(total_points));
    }
}

} // namespace ahq::obs

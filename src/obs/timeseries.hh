/**
 * @file
 * Deterministic bounded-memory time series for fleet-scale telemetry.
 *
 * Full JSONL tracing is unaffordable at datacenter scale and scalar
 * aggregates lose the shape of the signal; this layer is the middle
 * ground the paper's headline artifacts (Fig. 13's entropy timeline)
 * actually need. Each series is a fixed-capacity array of buckets,
 * each bucket covering `stride` consecutive epochs and keeping
 * min/max/sum/count — so tails and spikes survive compaction. When
 * an epoch lands past the last bucket the series folds: adjacent
 * bucket pairs merge and the stride doubles (power-of-two
 * downsample), keeping memory constant for any run length.
 *
 * Determinism contract, mirroring MetricsRegistry and SpanProfiler:
 * a folded bucket is a pure function of the multiset of recorded
 * (epoch, value) points — min/max/sum/count all commute — so the
 * final state is independent of recording order, and merging two
 * registries is commutative and associative. That is what lets
 * per-job registries merge into byte-identical `series` events at
 * any `--jobs`.
 */

#ifndef AHQ_OBS_TIMESERIES_HH
#define AHQ_OBS_TIMESERIES_HH

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ahq::obs
{

struct Scope;

/**
 * One bounded ring of downsampling buckets. Not thread-safe; the
 * registry hands out one instance per (scenario, series) key and
 * concurrent writers use distinct keys (per-job / per-node tags),
 * the same ownership rule as per-job trace buffers.
 */
class TimeSeries
{
  public:
    /** Buckets per series; folding keeps memory at this bound. */
    static constexpr int kDefaultCapacity = 128;

    struct Bucket
    {
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
        double sum = 0.0;
        std::uint64_t count = 0;

        void add(double v)
        {
            // Ternaries compile to branchless min/max — the hot
            // record() path must not gamble on the value stream
            // being predictable.
            min = v < min ? v : min;
            max = v > max ? v : max;
            sum += v;
            ++count;
        }

        void combine(const Bucket &o)
        {
            if (o.count == 0)
                return;
            if (o.min < min)
                min = o.min;
            if (o.max > max)
                max = o.max;
            sum += o.sum;
            count += o.count;
        }

        double mean() const
        {
            return count > 0 ? sum / static_cast<double>(count)
                             : 0.0;
        }
    };

    explicit TimeSeries(int capacity = kDefaultCapacity);

    /** Record a value at an epoch (negative epochs are ignored).
        Zero-alloc: folding reuses the bucket array in place. The
        hot path is inline and division-free (stride is a power of
        two) — the simulator calls this ~20x per epoch. */
    void record(int epoch, double value)
    {
        if (epoch < 0)
            return;
        if (epoch >= foldLimit_)
            foldTo(epoch);
        buckets_[static_cast<std::size_t>(epoch) >> shift_].add(
            value);
        if (epoch > maxEpoch_)
            maxEpoch_ = epoch;
        ++points_;
    }

    /**
     * Fold another series of the same capacity into this one.
     * Both are first folded to the common stride that covers the
     * union of their epoch ranges, then combined bucket-wise;
     * commutative and associative because every aggregate is.
     */
    void merge(const TimeSeries &other);

    int capacity() const
    {
        return static_cast<int>(buckets_.size());
    }

    /** Epochs per bucket (power of two, grows on fold). */
    int stride() const { return stride_; }

    /** Highest epoch recorded; -1 when empty. */
    int maxEpoch() const { return maxEpoch_; }

    /** Buckets in use: ceil((maxEpoch+1) / stride). */
    int bucketsInUse() const
    {
        return maxEpoch_ < 0 ? 0 : maxEpoch_ / stride_ + 1;
    }

    /** Total points recorded (including merged-in ones). */
    std::uint64_t points() const { return points_; }

    const Bucket &bucket(int i) const { return buckets_[i]; }

  private:
    void foldOnce();
    /** Cold path of record(): fold until `epoch` fits. */
    void foldTo(int epoch);

    std::vector<Bucket> buckets_;
    int stride_ = 1;
    int shift_ = 0; ///< log2(stride_), for the record() fast path
    long long foldLimit_ = 0; ///< stride_ * capacity(), cached
    int maxEpoch_ = -1;
    std::uint64_t points_ = 0;
};

/**
 * Keyed collection of series, (scenario, name) -> TimeSeries.
 * `handle()` returns a stable reference (std::map nodes do not
 * move), so hot loops resolve their series once per run and then
 * record lock-free and alloc-free; the registry mutex only guards
 * key creation and cross-registry merge.
 */
class TimeSeriesRegistry
{
  public:
    explicit TimeSeriesRegistry(
        int capacity = TimeSeries::kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    /** Find-or-create; the reference stays valid for the registry's
        lifetime. Concurrent callers must use distinct keys. */
    TimeSeries &handle(std::string_view scenario,
                       std::string_view name);

    /** One-shot record for cold paths. */
    void record(std::string_view scenario, std::string_view name,
                int epoch, double value)
    {
        handle(scenario, name).record(epoch, value);
    }

    /** Merge every series of `other` into this registry
        (commutative: A.merge(B) and B.merge(A) print the same). */
    void merge(const TimeSeriesRegistry &other);

    bool empty() const;
    std::size_t size() const;
    void clear();

    /**
     * Emit one schema-v1 `series` JSONL event per series, in
     * sorted (scenario, name) order, through `scope`'s sink; the
     * event's scenario header comes from the series key, not the
     * scope. Also bumps `ts.series` / `ts.points` counters on the
     * scope's metrics registry.
     */
    void flush(const Scope &scope) const;

  private:
    mutable std::mutex mutex_;
    int capacity_;
    std::map<std::pair<std::string, std::string>, TimeSeries>
        series_;
};

} // namespace ahq::obs

#endif // AHQ_OBS_TIMESERIES_HH

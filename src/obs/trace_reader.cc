/**
 * @file
 * JSONL trace parser implementation.
 */

#include "obs/trace_reader.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "obs/metrics.hh"

namespace ahq::obs
{

namespace
{

/** Cursor over one line with parse helpers. */
struct Cursor
{
    const std::string &s;
    std::size_t i = 0;

    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("bad trace line at column " +
                                 std::to_string(i + 1) + ": " +
                                 what);
    }

    void skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    char peek() const { return i < s.size() ? s[i] : '\0'; }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++i;
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++i;
        return true;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (i >= s.size())
                fail("unterminated string");
            const char c = s[i++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (i >= s.size())
                fail("dangling escape");
            const char e = s[i++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                if (i + 4 > s.size())
                    fail("short \\u escape");
                unsigned code = 0;
                const auto res = std::from_chars(
                    s.data() + i, s.data() + i + 4, code, 16);
                if (res.ptr != s.data() + i + 4)
                    fail("bad \\u escape");
                i += 4;
                // The writer only escapes control bytes, so a
                // one-byte reconstruction is exact for our traces.
                if (code > 0xff)
                    fail("unsupported \\u escape > 0xff");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    double parseNumber()
    {
        const std::size_t start = i;
        if (peek() == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        double v = 0.0;
        const auto res =
            std::from_chars(s.data() + start, s.data() + i, v);
        if (res.ec != std::errc() || res.ptr != s.data() + i)
            fail("bad number");
        return v;
    }

    bool consumeWord(const char *w)
    {
        const std::size_t len = std::char_traits<char>::length(w);
        if (s.compare(i, len, w) != 0)
            return false;
        i += len;
        return true;
    }

    TraceValue parseValue()
    {
        skipWs();
        TraceValue v;
        const char c = peek();
        if (c == '"') {
            v.kind = TraceValue::Kind::String;
            v.string = parseString();
        } else if (c == '[') {
            ++i;
            skipWs();
            if (consume(']')) {
                v.kind = TraceValue::Kind::NumberArray;
                return v;
            }
            const bool strings = peek() == '"';
            v.kind = strings ? TraceValue::Kind::StringArray
                             : TraceValue::Kind::NumberArray;
            while (true) {
                skipWs();
                if (strings)
                    v.strings.push_back(parseString());
                else if (consumeWord("null"))
                    v.numbers.push_back(0.0);
                else
                    v.numbers.push_back(parseNumber());
                skipWs();
                if (consume(']'))
                    return v;
                expect(',');
            }
        } else if (consumeWord("null")) {
            v.kind = TraceValue::Kind::Null;
        } else if (consumeWord("true")) {
            v.kind = TraceValue::Kind::Number;
            v.number = 1.0;
        } else if (consumeWord("false")) {
            v.kind = TraceValue::Kind::Number;
            v.number = 0.0;
        } else if (c == '{') {
            fail("nested objects are not part of the trace schema");
        } else {
            v.kind = TraceValue::Kind::Number;
            v.number = parseNumber();
        }
        return v;
    }
};

} // namespace

double
TraceEvent::num(const std::string &key, double def) const
{
    const auto it = fields.find(key);
    return it != fields.end() &&
            it->second.kind == TraceValue::Kind::Number ?
        it->second.number : def;
}

std::string
TraceEvent::str(const std::string &key, const std::string &def) const
{
    const auto it = fields.find(key);
    return it != fields.end() &&
            it->second.kind == TraceValue::Kind::String ?
        it->second.string : def;
}

std::vector<double>
TraceEvent::nums(const std::string &key) const
{
    const auto it = fields.find(key);
    return it != fields.end() &&
            it->second.kind == TraceValue::Kind::NumberArray ?
        it->second.numbers : std::vector<double>{};
}

std::vector<std::string>
TraceEvent::strs(const std::string &key) const
{
    const auto it = fields.find(key);
    return it != fields.end() &&
            it->second.kind == TraceValue::Kind::StringArray ?
        it->second.strings : std::vector<std::string>{};
}

bool
TraceEvent::has(const std::string &key) const
{
    return fields.find(key) != fields.end();
}

TraceEvent
parseTraceLine(const std::string &line)
{
    Cursor c{line};
    c.skipWs();
    c.expect('{');
    TraceEvent ev;
    c.skipWs();
    if (!c.consume('}')) {
        while (true) {
            c.skipWs();
            std::string key = c.parseString();
            c.skipWs();
            c.expect(':');
            ev.fields[std::move(key)] = c.parseValue();
            c.skipWs();
            if (c.consume('}'))
                break;
            c.expect(',');
        }
    }
    c.skipWs();
    if (c.i != line.size())
        c.fail("trailing characters");
    return ev;
}

bool
isKnownTraceType(std::string_view type)
{
    // The schema-v1 taxonomy (docs/TRACE_SCHEMA.md). Sorted so the
    // lookup is a binary search; update alongside the doc table.
    static constexpr std::string_view kKnown[] = {
        "alert_clear",      "alert_raise",
        "arq_decision",     "attribution",
        "bench",            "clite_decision",
        "cluster_end",      "cluster_migrate",
        "cluster_round",    "cluster_start",
        "epoch",            "experiment_block",
        "experiment_end",   "experiment_start",
        "fault",            "fleet_end",
        "fleet_node",       "fleet_start",
        "parties_decision", "policy_swap",
        "recovery",         "run_end",
        "run_start",        "scenario_end",
        "scenario_start",   "series",
        "span",             "violation",
    };
    return std::binary_search(std::begin(kKnown),
                              std::end(kKnown), type);
}

void
forEachTrace(std::istream &in, const TraceEventFn &fn,
             TraceReadStats *stats)
{
    std::string line;
    int n = 0;
    std::uint64_t unknown = 0;
    while (std::getline(in, line)) {
        ++n;
        if (line.empty()) {
            if (stats != nullptr)
                ++stats->skippedLines;
            continue;
        }
        try {
            const TraceEvent ev = parseTraceLine(line);
            if (stats != nullptr) {
                ++stats->events;
                const std::string type = ev.type();
                if (!isKnownTraceType(type)) {
                    ++stats->unknownEvents;
                    ++stats->unknownTypes[type];
                    ++unknown;
                }
            }
            fn(ev, n);
        } catch (const std::exception &e) {
            throw std::runtime_error("line " + std::to_string(n) +
                                     ": " + e.what());
        }
    }
    // Unknown types must leave a trace even when the caller drops
    // the stats struct on the floor.
    if (unknown > 0)
        globalMetrics().add("reader.unknown_events",
                            static_cast<double>(unknown));
}

void
forEachTraceFile(const std::string &path, const TraceEventFn &fn,
                 TraceReadStats *stats)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open trace: " + path);
    try {
        forEachTrace(in, fn, stats);
    } catch (const std::exception &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

std::vector<TraceEvent>
readTrace(std::istream &in)
{
    std::vector<TraceEvent> events;
    forEachTrace(in, [&events](const TraceEvent &ev, int) {
        events.push_back(ev);
    });
    return events;
}

std::vector<TraceEvent>
readTraceFile(const std::string &path)
{
    std::vector<TraceEvent> events;
    forEachTraceFile(path,
                     [&events](const TraceEvent &ev, int) {
                         events.push_back(ev);
                     });
    return events;
}

} // namespace ahq::obs

/**
 * @file
 * Reader for JSONL traces written by obs::Scope.
 *
 * A deliberately small parser covering exactly the shapes the
 * writer produces: flat objects whose values are strings, numbers,
 * booleans, null, or arrays of strings/numbers. Anything else (and
 * any malformed line) raises std::runtime_error with the offending
 * line number, so a truncated or foreign file fails loudly instead
 * of being silently misread.
 */

#ifndef AHQ_OBS_TRACE_READER_HH
#define AHQ_OBS_TRACE_READER_HH

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ahq::obs
{

/** One decoded field value. */
struct TraceValue
{
    enum class Kind
    {
        Null,
        Number,
        String,
        NumberArray,
        StringArray,
    };

    Kind kind = Kind::Null;
    double number = 0.0;
    std::string string;
    std::vector<double> numbers;
    std::vector<std::string> strings;
};

/** One decoded trace event (a flat field map). */
struct TraceEvent
{
    std::map<std::string, TraceValue> fields;

    /** Number field, or def when absent / not a number. */
    double num(const std::string &key, double def = 0.0) const;

    /** String field, or def when absent / not a string. */
    std::string str(const std::string &key,
                    const std::string &def = {}) const;

    /** Number-array field (empty when absent). */
    std::vector<double> nums(const std::string &key) const;

    /** String-array field (empty when absent). */
    std::vector<std::string> strs(const std::string &key) const;

    /** Whether the field exists. */
    bool has(const std::string &key) const;

    /** The event's "type" field ("" when missing). */
    std::string type() const { return str("type"); }
};

/** Parse one JSONL line. @throws std::runtime_error on bad input. */
TraceEvent parseTraceLine(const std::string &line);

/**
 * Whether `type` belongs to the documented schema-v1 taxonomy
 * (docs/TRACE_SCHEMA.md). Readers use this to count — rather than
 * silently drop — event types they do not understand.
 */
bool isKnownTraceType(std::string_view type);

/**
 * Tally of one streaming read. Events whose type is outside the
 * schema taxonomy are still delivered to the callback, but they
 * are counted here and mirrored into the `reader.unknown_events`
 * counter on globalMetrics(), so foreign or future-schema lines
 * always leave a trace instead of vanishing.
 */
struct TraceReadStats
{
    std::uint64_t events = 0;
    std::uint64_t unknownEvents = 0;
    /** Blank lines skipped without being parsed. */
    std::uint64_t skippedLines = 0;
    /** Distinct unknown types with occurrence counts. */
    std::map<std::string, std::uint64_t> unknownTypes;
};

/** Callback receiving each event with its 1-based line number. */
using TraceEventFn =
    std::function<void(const TraceEvent &, int line)>;

/**
 * Stream a trace: parse one line at a time (blank lines skipped)
 * and hand each event to `fn` without materialising the file.
 * This is how `ahq trace`/`ahq profile` read multi-GB traces in
 * constant memory. When `stats` is non-null it is filled with the
 * event / unknown-type tally for the read.
 * @throws std::runtime_error with a "line N:" prefix on the first
 *         malformed line (nothing after it is delivered); anything
 *         `fn` throws propagates with the same line prefix.
 */
void forEachTrace(std::istream &in, const TraceEventFn &fn,
                  TraceReadStats *stats = nullptr);

/**
 * Stream a trace file.
 * @throws std::runtime_error when the file cannot be opened, or as
 *         forEachTrace with the path prefixed.
 */
void forEachTraceFile(const std::string &path,
                      const TraceEventFn &fn,
                      TraceReadStats *stats = nullptr);

/** Parse a whole stream (blank lines skipped). */
std::vector<TraceEvent> readTrace(std::istream &in);

/**
 * Parse a trace file.
 * @throws std::runtime_error when the file cannot be opened or a
 *         line is malformed.
 */
std::vector<TraceEvent> readTraceFile(const std::string &path);

} // namespace ahq::obs

#endif // AHQ_OBS_TRACE_READER_HH

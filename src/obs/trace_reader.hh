/**
 * @file
 * Reader for JSONL traces written by obs::Scope.
 *
 * A deliberately small parser covering exactly the shapes the
 * writer produces: flat objects whose values are strings, numbers,
 * booleans, null, or arrays of strings/numbers. Anything else (and
 * any malformed line) raises std::runtime_error with the offending
 * line number, so a truncated or foreign file fails loudly instead
 * of being silently misread.
 */

#ifndef AHQ_OBS_TRACE_READER_HH
#define AHQ_OBS_TRACE_READER_HH

#include <functional>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace ahq::obs
{

/** One decoded field value. */
struct TraceValue
{
    enum class Kind
    {
        Null,
        Number,
        String,
        NumberArray,
        StringArray,
    };

    Kind kind = Kind::Null;
    double number = 0.0;
    std::string string;
    std::vector<double> numbers;
    std::vector<std::string> strings;
};

/** One decoded trace event (a flat field map). */
struct TraceEvent
{
    std::map<std::string, TraceValue> fields;

    /** Number field, or def when absent / not a number. */
    double num(const std::string &key, double def = 0.0) const;

    /** String field, or def when absent / not a string. */
    std::string str(const std::string &key,
                    const std::string &def = {}) const;

    /** Number-array field (empty when absent). */
    std::vector<double> nums(const std::string &key) const;

    /** String-array field (empty when absent). */
    std::vector<std::string> strs(const std::string &key) const;

    /** Whether the field exists. */
    bool has(const std::string &key) const;

    /** The event's "type" field ("" when missing). */
    std::string type() const { return str("type"); }
};

/** Parse one JSONL line. @throws std::runtime_error on bad input. */
TraceEvent parseTraceLine(const std::string &line);

/** Callback receiving each event with its 1-based line number. */
using TraceEventFn =
    std::function<void(const TraceEvent &, int line)>;

/**
 * Stream a trace: parse one line at a time (blank lines skipped)
 * and hand each event to `fn` without materialising the file.
 * This is how `ahq trace`/`ahq profile` read multi-GB traces in
 * constant memory.
 * @throws std::runtime_error with a "line N:" prefix on the first
 *         malformed line (nothing after it is delivered); anything
 *         `fn` throws propagates with the same line prefix.
 */
void forEachTrace(std::istream &in, const TraceEventFn &fn);

/**
 * Stream a trace file.
 * @throws std::runtime_error when the file cannot be opened, or as
 *         forEachTrace with the path prefixed.
 */
void forEachTraceFile(const std::string &path,
                      const TraceEventFn &fn);

/** Parse a whole stream (blank lines skipped). */
std::vector<TraceEvent> readTrace(std::istream &in);

/**
 * Parse a trace file.
 * @throws std::runtime_error when the file cannot be opened or a
 *         line is malformed.
 */
std::vector<TraceEvent> readTraceFile(const std::string &path);

} // namespace ahq::obs

#endif // AHQ_OBS_TRACE_READER_HH

/**
 * @file
 * Trace sink implementation.
 */

#include "obs/trace_sink.hh"

#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace ahq::obs
{

void
ensureParentDirs(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        throw std::runtime_error(
            "cannot create trace directory '" + parent.string() +
            "' for '" + path + "': " + ec.message());
    }
    // create_directories reports success when the path already
    // exists — even as a regular file; reject that explicitly.
    if (!std::filesystem::is_directory(parent)) {
        throw std::runtime_error(
            "trace path parent '" + parent.string() +
            "' exists and is not a directory (for '" + path + "')");
    }
}

FileTraceSink::FileTraceSink(const std::string &path)
    : path_(path)
{
    ensureParentDirs(path);
    out.open(path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        throw std::runtime_error("cannot open trace file '" + path +
                                 "': " + std::strerror(errno));
    }
}

void
FileTraceSink::write(std::string_view line)
{
    std::lock_guard<std::mutex> lk(m);
    out << line << '\n';
}

void
FileTraceSink::flush()
{
    std::lock_guard<std::mutex> lk(m);
    out.flush();
}

void
BufferTraceSink::write(std::string_view line)
{
    std::lock_guard<std::mutex> lk(m);
    lines_.emplace_back(line);
}

std::string
BufferTraceSink::str() const
{
    std::lock_guard<std::mutex> lk(m);
    std::string out;
    for (const auto &l : lines_) {
        out += l;
        out += '\n';
    }
    return out;
}

std::vector<std::string>
BufferTraceSink::lines() const
{
    std::lock_guard<std::mutex> lk(m);
    return lines_;
}

void
BufferTraceSink::clear()
{
    std::lock_guard<std::mutex> lk(m);
    lines_.clear();
}

} // namespace ahq::obs

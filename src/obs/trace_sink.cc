/**
 * @file
 * Trace sink implementation.
 */

#include "obs/trace_sink.hh"

#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace ahq::obs
{

void
ensureParentDirs(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        throw std::runtime_error(
            "cannot create trace directory '" + parent.string() +
            "' for '" + path + "': " + ec.message());
    }
    // create_directories reports success when the path already
    // exists — even as a regular file; reject that explicitly.
    if (!std::filesystem::is_directory(parent)) {
        throw std::runtime_error(
            "trace path parent '" + parent.string() +
            "' exists and is not a directory (for '" + path + "')");
    }
}

FileTraceSink::FileTraceSink(const std::string &path)
    : path_(path)
{
    ensureParentDirs(path);
    out.open(path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        throw std::runtime_error("cannot open trace file '" + path +
                                 "': " + std::strerror(errno));
    }
}

void
FileTraceSink::write(std::string_view line)
{
    std::lock_guard<std::mutex> lk(m);
    out << line << '\n';
}

void
FileTraceSink::flush()
{
    std::lock_guard<std::mutex> lk(m);
    out.flush();
}

void
BufferTraceSink::write(std::string_view line)
{
    std::lock_guard<std::mutex> lk(m);
    data_.append(line.data(), line.size());
    data_.push_back('\n');
    ends_.push_back(data_.size());
}

std::string
BufferTraceSink::str() const
{
    std::lock_guard<std::mutex> lk(m);
    return data_;
}

std::vector<std::string>
BufferTraceSink::lines() const
{
    std::lock_guard<std::mutex> lk(m);
    std::vector<std::string> out;
    out.reserve(ends_.size());
    std::size_t start = 0;
    for (const std::size_t end : ends_) {
        // end - 1 strips the trailing newline appended by write().
        out.emplace_back(data_, start, end - 1 - start);
        start = end;
    }
    return out;
}

void
BufferTraceSink::flushTo(TraceSink &out) const
{
    std::lock_guard<std::mutex> lk(m);
    std::size_t start = 0;
    for (const std::size_t end : ends_) {
        out.write(std::string_view(data_)
                      .substr(start, end - 1 - start));
        start = end;
    }
}

std::size_t
BufferTraceSink::lineCount() const
{
    std::lock_guard<std::mutex> lk(m);
    return ends_.size();
}

void
BufferTraceSink::clear()
{
    std::lock_guard<std::mutex> lk(m);
    data_.clear();
    ends_.clear();
}

} // namespace ahq::obs

/**
 * @file
 * Trace sinks: where JSONL trace events go.
 *
 * FileTraceSink appends lines to a file (creating parent
 * directories, with a clear error on unwritable paths);
 * BufferTraceSink accumulates lines in memory — the exec layer
 * gives each parallel scenario job its own buffer and flushes them
 * in job order, which is what makes batch traces byte-identical at
 * any thread count.
 */

#ifndef AHQ_OBS_TRACE_SINK_HH
#define AHQ_OBS_TRACE_SINK_HH

#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ahq::obs
{

/** Destination for rendered JSONL event lines (no trailing \n). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one event line. Must be callable concurrently. */
    virtual void write(std::string_view line) = 0;
};

/**
 * Create every missing parent directory of the given file path.
 *
 * @throws std::runtime_error naming the path and the OS error when
 *         a component cannot be created (e.g. it exists as a file).
 */
void ensureParentDirs(const std::string &path);

/** Sink writing one line per event to a file. */
class FileTraceSink : public TraceSink
{
  public:
    /**
     * Open (truncate) the trace file, creating parent directories.
     *
     * @throws std::runtime_error with the path and reason when the
     *         file cannot be created.
     */
    explicit FileTraceSink(const std::string &path);

    void write(std::string_view line) override;

    /** Flush buffered lines to the OS. */
    void flush();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex m;
    std::ofstream out;
};

/**
 * Sink accumulating lines in memory (tests, batch buffering).
 * Stored as one flat byte buffer plus line-end offsets rather than
 * a vector of strings: appends amortise to zero allocations once
 * the buffer is warm (clear() keeps capacity), and flushTo() hands
 * whole batches downstream without per-line copies.
 */
class BufferTraceSink : public TraceSink
{
  public:
    void write(std::string_view line) override;

    /** Everything written so far, newline-terminated lines. */
    std::string str() const;

    /** The individual lines (copied; analysis/test convenience). */
    std::vector<std::string> lines() const;

    /** Replay every buffered line, in order, into another sink. */
    void flushTo(TraceSink &out) const;

    std::size_t lineCount() const;

    /** Drop content, keeping buffer capacity for reuse. */
    void clear();

  private:
    mutable std::mutex m;
    std::string data_;
    std::vector<std::size_t> ends_;
};

} // namespace ahq::obs

#endif // AHQ_OBS_TRACE_SINK_HH

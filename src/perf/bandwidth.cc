/**
 * @file
 * Bandwidth model implementation.
 */

#include "perf/bandwidth.hh"

#include <algorithm>
#include <cassert>

namespace ahq::perf
{

BandwidthModel::BandwidthModel(BandwidthTraits traits)
    : traits_(traits)
{
    assert(traits.contentionK >= 0.0);
    assert(traits.rhoCap > 0.0 && traits.rhoCap < 1.0);
    assert(traits.maxDilation >= 1.0);
}

double
BandwidthModel::dilation(double rho) const
{
    if (rho <= 0.0)
        return 1.0;
    const double r = std::min(rho, traits_.rhoCap);
    const double d = 1.0 + traits_.contentionK * r * r / (1.0 - r);
    return std::min(d, traits_.maxDilation);
}

double
BandwidthModel::throughputScale(double demand, double capacity) const
{
    assert(capacity > 0.0);
    if (demand <= capacity)
        return 1.0;
    return capacity / demand;
}

} // namespace ahq::perf

/**
 * @file
 * Memory-bandwidth contention model.
 *
 * When the aggregate bandwidth demand of the colocated applications
 * approaches the node's (or an MBA partition's) capacity, memory
 * access latency dilates, inflating every consumer's CPI. The model
 * uses the standard queueing-flavoured dilation
 *
 *     d(rho) = 1 + k * rho^2 / (1 - rho)      (rho capped below 1)
 *
 * which is ~1 at low utilisation and grows sharply near saturation —
 * the behaviour STREAM-style colocations exhibit on real parts.
 */

#ifndef AHQ_PERF_BANDWIDTH_HH
#define AHQ_PERF_BANDWIDTH_HH

namespace ahq::perf
{

/** Parameters of the bandwidth dilation curve. */
struct BandwidthTraits
{
    /** Dilation curvature constant. */
    double contentionK = 0.8;

    /** Utilisation is clamped to this before the 1/(1-rho) pole. */
    double rhoCap = 0.97;

    /** Upper bound on dilation to keep the fixed point well-behaved. */
    double maxDilation = 8.0;
};

/**
 * Memory bandwidth dilation model.
 */
class BandwidthModel
{
  public:
    explicit BandwidthModel(BandwidthTraits traits = {});

    /**
     * Latency dilation (>= 1) at the given utilisation.
     * @param rho Demand / capacity; values above rhoCap are clamped.
     */
    double dilation(double rho) const;

    /**
     * Throughput scale factor in (0, 1]: when demand exceeds
     * capacity, consumers are collectively throttled to fit.
     */
    double throughputScale(double demand, double capacity) const;

    const BandwidthTraits &traits() const { return traits_; }

  private:
    BandwidthTraits traits_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_BANDWIDTH_HH

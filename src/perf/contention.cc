/**
 * @file
 * Contention model implementation.
 *
 * Hot-path note: evaluate() runs once (or more, under schedulers that
 * probe candidate layouts) per simulated epoch, so everything that
 * does not change across the fixed-point iterations — iso-core
 * grants, per-app offered load, MBA caps, shared-region member
 * splits — is computed once per call, and all loop state lives in a
 * reusable workspace instead of per-iteration vectors.
 */

#include "perf/contention.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace ahq::perf
{

using machine::AppId;
using machine::Region;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

namespace
{

double
damp(double old_v, double new_v, double alpha)
{
    return (1.0 - alpha) * old_v + alpha * new_v;
}

/**
 * Weighted max-min water-filling: distribute capacity among demands
 * with the given weights, never exceeding a consumer's cap. Writes
 * the grants into @p grant (scratch @p frozen is resized to match).
 */
void
waterFillInto(double capacity, const std::vector<double> &caps,
              const std::vector<double> &weights,
              std::vector<double> &grant, std::vector<char> &frozen)
{
    const std::size_t n = caps.size();
    grant.assign(n, 0.0);
    frozen.assign(n, 0);
    double remaining = capacity;
    for (int round = 0; round < static_cast<int>(n) + 1; ++round) {
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!frozen[i])
                weight_sum += weights[i];
        }
        if (weight_sum <= 0.0 || remaining <= 1e-12)
            break;
        bool saturated = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            const double offer = remaining * weights[i] / weight_sum;
            if (grant[i] + offer >= caps[i] - 1e-12) {
                saturated = true;
            }
        }
        double consumed = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            const double offer = remaining * weights[i] / weight_sum;
            const double take = std::min(offer, caps[i] - grant[i]);
            grant[i] += take;
            consumed += take;
            if (grant[i] >= caps[i] - 1e-12)
                frozen[i] = 1;
        }
        remaining -= consumed;
        if (!saturated)
            break;
    }
}

/**
 * Canonicalise every model input evaluate() reads into a flat key of
 * doubles: the policy, each region's shape/resources/members and each
 * app's demand and curve parameters. Two calls producing the same key
 * are guaranteed to compute byte-identical outcomes.
 */
void
buildMemoKey(const RegionLayout &layout,
             const std::vector<AppDemand> &demands,
             CoreSharePolicy policy, std::vector<double> &key)
{
    key.clear();
    key.push_back(static_cast<double>(policy));
    key.push_back(static_cast<double>(layout.numRegions()));
    for (RegionId r = 0; r < layout.numRegions(); ++r) {
        const Region &reg = layout.region(r);
        key.push_back(reg.shared ? 1.0 : 0.0);
        key.push_back(static_cast<double>(reg.res.cores));
        key.push_back(static_cast<double>(reg.res.llcWays));
        key.push_back(static_cast<double>(reg.res.memBw));
        key.push_back(static_cast<double>(reg.members.size()));
        for (AppId m : reg.members)
            key.push_back(static_cast<double>(m));
    }
    key.push_back(static_cast<double>(demands.size()));
    for (const AppDemand &d : demands) {
        key.push_back(d.latencyCritical ? 1.0 : 0.0);
        key.push_back(d.arrivalRate);
        key.push_back(d.serviceTimeMs);
        key.push_back(d.ipcSolo);
        key.push_back(static_cast<double>(d.threads));
        const CpiTraits &t = d.cpi.traits();
        key.push_back(t.cpiBase);
        key.push_back(t.missPenaltyCycles);
        key.push_back(t.mlp);
        key.push_back(t.coreFreqGhz);
        key.push_back(t.bytesPerMiss);
        const MissRateCurve &m = d.cpi.mrc();
        key.push_back(m.mpkiMax());
        key.push_back(m.mpkiMin());
        key.push_back(m.waysHalf());
    }
}

} // namespace

ContentionModel::ContentionModel(machine::MachineConfig config,
                                 ContentionTraits traits)
    : config_(std::move(config)), traits_(traits),
      bwModel(traits.bandwidth),
      memo_(traits.memoCapacity > 0
                ? static_cast<std::size_t>(traits.memoCapacity)
                : 0)
{
    assert(config_.valid());
    assert(traits_.iterations > 0);
    assert(traits_.damping > 0.0 && traits_.damping <= 1.0);
}

std::vector<PerfOutcome>
ContentionModel::evaluate(const RegionLayout &layout,
                          const std::vector<AppDemand> &demands,
                          CoreSharePolicy policy) const
{
    std::vector<PerfOutcome> out;
    evaluateInto(layout, demands, policy, out);
    return out;
}

void
ContentionModel::evaluateInto(const RegionLayout &layout,
                              const std::vector<AppDemand> &demands,
                              CoreSharePolicy policy,
                              std::vector<PerfOutcome> &out) const
{
    assert(layout.valid());
    const std::size_t n = demands.size();
    // "Ideal" conditions use the machine's full physical cache, as the
    // paper measures TL_i0 / IPC_solo with ample resources.
    const double ideal_ways = static_cast<double>(config_.totalLlcWays);
    const double bw_per_unit = config_.gibpsPerBwUnit();
    const double machine_bw_cap =
        config_.availableMemBwUnits * bw_per_unit;

    Workspace &ws = ws_;

    // Exact-key memo: an epoch whose layout and demands repeat a
    // previous evaluation gets the stored outcomes back — bitwise
    // what recomputation would produce.
    buildMemoKey(layout, demands, policy, ws.memoKey);
    if (const auto *cached = memo_.find(ws.memoKey)) {
        out = *cached;
        return;
    }

    ws.st.assign(n, AppState{});
    std::vector<AppState> &st = ws.st;
    // Hoist the per-app ideal CPI (constant across the fixed point;
    // CpiModel::speed would otherwise recompute it per call). The
    // curve table, when registered, supplies the identical value.
    ws.cpiIdeal.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const AppDemand &d = demands[i];
        ws.cpiIdeal[i] = d.curves != nullptr
            ? d.curves->cpiIdeal()
            : d.cpi.cpiIdeal(ideal_ways);
        st[i].ways = std::max(
            1.0, static_cast<double>(layout.reachable(
                     static_cast<AppId>(i), ResourceKind::LlcWays)));
        st[i].speed = ws.cpiIdeal[i] / d.cpi.cpi(st[i].ways, 1.0);
    }

    // ---- iteration-invariant precompute -------------------------
    // Isolated core grants never change across iterations.
    ws.isoLc.assign(n, 0.0);
    ws.isoBe.assign(n, 0.0);
    // Per-app MBA cap: sum of the app's regions' bandwidth units
    // (integer-valued, so the region iteration order cannot change
    // the sum). Shared-region units count fully — they are a cap,
    // not a grant; contention shows up through rho.
    ws.capGibps.assign(n, 0.0);
    // Shared-region member splits by kind.
    ws.lcOf.resize(static_cast<std::size_t>(layout.numRegions()));
    ws.beOf.resize(static_cast<std::size_t>(layout.numRegions()));
    for (RegionId r = 0; r < layout.numRegions(); ++r) {
        const Region &reg = layout.region(r);
        auto &lc = ws.lcOf[static_cast<std::size_t>(r)];
        auto &be = ws.beOf[static_cast<std::size_t>(r)];
        lc.clear();
        be.clear();
        if (reg.members.empty())
            continue;
        for (AppId m : reg.members) {
            ws.capGibps[static_cast<std::size_t>(m)] +=
                static_cast<double>(reg.res.memBw);
            if (demands[static_cast<std::size_t>(m)].latencyCritical)
                lc.push_back(m);
            else
                be.push_back(m);
        }
        if (!reg.shared) {
            // Non-shared regions are single-member by construction of
            // all scheduler layouts; split evenly if not.
            const double per = static_cast<double>(reg.res.cores) /
                static_cast<double>(reg.members.size());
            for (AppId m : reg.members) {
                const auto i = static_cast<std::size_t>(m);
                if (demands[i].latencyCritical)
                    ws.isoLc[i] += per;
                else
                    ws.isoBe[i] += per;
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        ws.capGibps[i] =
            std::max(0.25, ws.capGibps[i]) * bw_per_unit;
    }
    // LC offered load in core-seconds per second (at speed 1).
    ws.lambda.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ws.lambda[i] =
            demands[i].arrivalRate * demands[i].serviceTimeMs / 1000.0;
    }

    const double alpha = traits_.damping;

    for (int iter = 0; iter < traits_.iterations; ++iter) {
        // Bitwise convergence detector: the next iteration's inputs
        // are exactly this iterate's {ways, mbaScale, dilation,
        // speed, stretch}. When an iteration leaves all five bitwise
        // unchanged, every remaining iteration reproduces the same
        // state, so breaking early is output-identical (NaNs compare
        // unequal to themselves and simply disable the exit).
        bool changed = false;

        // ---- core grant reset (iso grants are precomputed) ------
        ws.prevStretch.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            ws.prevStretch[i] = st[i].stretch;
            st[i].isoCores = ws.isoLc[i];
            st[i].sharedGrant = 0.0;
            st[i].stretch = 1.0;
            st[i].beCores = ws.isoBe[i];
        }

        // ---- shared region core sharing -------------------------
        for (RegionId r = 0; r < layout.numRegions(); ++r) {
            const Region &reg = layout.region(r);
            if (!reg.shared || reg.members.empty())
                continue;
            const double c_r = static_cast<double>(reg.res.cores);

            const auto &lc = ws.lcOf[static_cast<std::size_t>(r)];
            const auto &be = ws.beOf[static_cast<std::size_t>(r)];

            // Mean work each LC member pushes into this region.
            ws.resid.assign(lc.size(), 0.0);
            ws.burstCap.assign(lc.size(), 0.0);
            for (std::size_t k = 0; k < lc.size(); ++k) {
                const auto i = static_cast<std::size_t>(lc[k]);
                const auto &d = demands[i];
                // Timeslice stretching (previous iterate) inflates
                // the occupancy, which feeds back into the stretch —
                // the compounding that makes heavy oversubscription
                // catastrophic on real CFS nodes.
                const double util = ws.lambda[i] /
                    std::max(1e-9, st[i].speed) *
                    traits_.lcOccupancyHeadroom * ws.prevStretch[i];
                ws.resid[k] = std::max(0.0, util - st[i].isoCores);
                ws.burstCap[k] = std::max(
                    0.0, static_cast<double>(d.threads) -
                        st[i].isoCores);
            }

            if (policy == CoreSharePolicy::LcPriority) {
                double occupied = 0.0;
                for (std::size_t k = 0; k < lc.size(); ++k)
                    occupied += std::min(ws.resid[k], ws.burstCap[k]);
                if (occupied <= c_r) {
                    // Stable: each LC app can burst into whatever the
                    // other LC apps leave idle on average.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double own =
                            std::min(ws.resid[k], ws.burstCap[k]);
                        const double avail = c_r - (occupied - own);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += std::min(ws.burstCap[k],
                                                     avail);
                    }
                } else if (occupied > 0.0) {
                    // Overload: ration proportionally to demand.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double own =
                            std::min(ws.resid[k], ws.burstCap[k]);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += c_r * own / occupied;
                    }
                }
                // BE apps get the leftover, water-filled by threads.
                const double c_be = std::max(0.0, c_r - occupied);
                if (!be.empty() && c_be > 0.0) {
                    ws.caps.clear();
                    ws.weights.clear();
                    for (AppId m : be) {
                        const auto &d =
                            demands[static_cast<std::size_t>(m)];
                        const double cap =
                            std::max(0.0,
                                     static_cast<double>(d.threads) -
                                         st[static_cast<std::size_t>(m)]
                                             .beCores);
                        ws.caps.push_back(cap);
                        ws.weights.push_back(
                            static_cast<double>(d.threads));
                    }
                    waterFillInto(c_be, ws.caps, ws.weights,
                                  ws.grants, ws.frozen);
                    for (std::size_t k = 0; k < be.size(); ++k) {
                        st[static_cast<std::size_t>(be[k])].beCores +=
                            ws.grants[k];
                    }
                }
            } else {
                // FairShare (CFS). Each LC app keeps roughly its
                // mean occupancy plus a partially-awake burst thread
                // runnable; BE threads are always runnable. When the
                // region is over-subscribed, cores are granted by
                // thread-weighted water-filling (the CFS weight) and
                // every request's service stretches by the runnable/
                // cores ratio (timeslicing + wake-up latency).
                double active_total = 0.0;
                ws.activeLc.assign(lc.size(), 0.0);
                for (std::size_t k = 0; k < lc.size(); ++k) {
                    if (ws.resid[k] > 0.0) {
                        ws.activeLc[k] = std::min(
                            ws.burstCap[k], 1.2 * ws.resid[k] + 0.5);
                    }
                    active_total += ws.activeLc[k];
                }
                for (AppId m : be) {
                    active_total += static_cast<double>(
                        demands[static_cast<std::size_t>(m)].threads);
                }
                if (active_total <= c_r) {
                    // Enough cores: everyone can burst into the
                    // average idle capacity of the others.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double avail =
                            c_r - (active_total - ws.activeLc[k]);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += std::min(ws.burstCap[k],
                                                     avail);
                    }
                    for (AppId m : be) {
                        const auto i = static_cast<std::size_t>(m);
                        st[i].beCores += static_cast<double>(
                            demands[i].threads);
                    }
                } else {
                    const double region_stretch = active_total / c_r;
                    // Thread-weighted fair sharing, capped at what
                    // each member's runnable threads can occupy.
                    ws.caps.clear();
                    ws.weights.clear();
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        ws.caps.push_back(
                            std::min(ws.burstCap[k],
                                     1.3 * ws.activeLc[k]));
                        ws.weights.push_back(static_cast<double>(
                            demands[static_cast<std::size_t>(lc[k])]
                                .threads));
                    }
                    for (AppId m : be) {
                        const auto i = static_cast<std::size_t>(m);
                        ws.caps.push_back(static_cast<double>(
                            demands[i].threads));
                        ws.weights.push_back(static_cast<double>(
                            demands[i].threads));
                    }
                    waterFillInto(c_r, ws.caps, ws.weights,
                                  ws.grants, ws.frozen);
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const auto i =
                            static_cast<std::size_t>(lc[k]);
                        st[i].sharedGrant += ws.grants[k];
                        st[i].stretch =
                            std::max(st[i].stretch, region_stretch);
                    }
                    for (std::size_t k = 0; k < be.size(); ++k) {
                        const auto i =
                            static_cast<std::size_t>(be[k]);
                        st[i].beCores += ws.grants[lc.size() + k];
                    }
                }
            }
        }

        // Cap LC server counts at thread counts and compute busy
        // cores; stretched servers provide proportionally less
        // capacity, which the per-server rate accounts for below.
        for (std::size_t i = 0; i < n; ++i) {
            const auto &d = demands[i];
            if (d.latencyCritical) {
                const double kappa = std::min(
                    static_cast<double>(d.threads),
                    st[i].isoCores + st[i].sharedGrant);
                const double util =
                    ws.lambda[i] / std::max(1e-9, st[i].speed);
                st[i].busyCores = std::min(util, kappa);
            } else {
                st[i].beCores = std::min(
                    st[i].beCores, static_cast<double>(d.threads));
                st[i].busyCores = st[i].beCores;
            }
        }

        // ---- LLC way sharing -------------------------------------
        ws.newWays.assign(n, 0.0);
        for (RegionId r = 0; r < layout.numRegions(); ++r) {
            const Region &reg = layout.region(r);
            if (reg.members.empty() || reg.res.llcWays == 0)
                continue;
            if (!reg.shared) {
                const double per =
                    static_cast<double>(reg.res.llcWays) /
                    static_cast<double>(reg.members.size());
                for (AppId m : reg.members)
                    ws.newWays[static_cast<std::size_t>(m)] += per;
                continue;
            }
            double intensity_sum = 0.0;
            ws.intensity.assign(reg.members.size(), 0.0);
            for (std::size_t k = 0; k < reg.members.size(); ++k) {
                const auto i =
                    static_cast<std::size_t>(reg.members[k]);
                const double occ = std::max(0.02, st[i].busyCores);
                ws.intensity[k] =
                    demands[i].cpi.mrc().accessIntensity(st[i].ways) *
                    occ;
                intensity_sum += ws.intensity[k];
            }
            if (intensity_sum <= 0.0)
                continue;
            for (std::size_t k = 0; k < reg.members.size(); ++k) {
                const auto i =
                    static_cast<std::size_t>(reg.members[k]);
                ws.newWays[i] +=
                    static_cast<double>(reg.res.llcWays) *
                    ws.intensity[k] / intensity_sum;
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            const double next_ways = damp(
                st[i].ways, std::max(0.25, ws.newWays[i]), alpha);
            changed = changed || next_ways != st[i].ways;
            st[i].ways = next_ways;
        }

        // The bandwidth and speed updates below both evaluate the
        // miss rate at this iterate's (just damped) way allocation;
        // one evaluation serves both bitwise-identically.
        ws.mpki.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            ws.mpki[i] = demands[i].cpi.mrc().mpki(st[i].ways);

        // ---- memory bandwidth ------------------------------------
        // Machine pressure counts MBA-throttled traffic: a capped
        // consumer stops pressuring the bus beyond its partition.
        double total_demand = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            st[i].bwDemand = st[i].busyCores *
                demands[i].cpi.bwDemandPerCoreWithMpki(
                    ws.mpki[i], st[i].dilation);
            total_demand += st[i].bwDemand * st[i].mbaScale;
        }
        const double rho_machine = total_demand / machine_bw_cap;

        const double new_dilation = bwModel.dilation(rho_machine);
        for (std::size_t i = 0; i < n; ++i) {
            const double new_scale = bwModel.throughputScale(
                st[i].bwDemand, ws.capGibps[i]);
            const double next_scale =
                damp(st[i].mbaScale, new_scale, alpha);
            const double next_dilation =
                damp(st[i].dilation, new_dilation, alpha);
            changed = changed || next_scale != st[i].mbaScale ||
                next_dilation != st[i].dilation;
            st[i].mbaScale = next_scale;
            st[i].dilation = next_dilation;
        }

        // ---- speed update ----------------------------------------
        for (std::size_t i = 0; i < n; ++i) {
            const double raw =
                ws.cpiIdeal[i] /
                demands[i].cpi.cpiWithMpki(ws.mpki[i],
                                           st[i].dilation) *
                st[i].mbaScale;
            const double next_speed = damp(st[i].speed, raw, alpha);
            changed = changed || next_speed != st[i].speed;
            st[i].speed = next_speed;
        }
        for (std::size_t i = 0; i < n && !changed; ++i)
            changed = st[i].stretch != ws.prevStretch[i];
        if (!changed)
            break;
    }

    // ---- produce outcomes ---------------------------------------
    out.assign(n, PerfOutcome{});
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = demands[i];
        PerfOutcome &o = out[i];
        o.effectiveWays = st[i].ways;
        o.bwDilation = st[i].dilation;
        o.speed = st[i].speed;
        o.serviceStretch = st[i].stretch;
        o.bwDemandGibps = st[i].bwDemand;
        if (d.latencyCritical) {
            const double kappa = std::min(
                static_cast<double>(d.threads),
                st[i].isoCores + st[i].sharedGrant);
            o.coreEquivalents = std::max(kappa, 1e-6);
            // Base per-core rate, requests/s.
            const double mu0 =
                1000.0 * st[i].speed / d.serviceTimeMs;
            // Timeslicing stretches latency, not throughput: the
            // granted cores deliver their full service rate, and the
            // stretch is surfaced separately for the latency model.
            // Shared-region cores pay the context-switch/pollution
            // penalty; the app's own thread count bounds capacity.
            const double capacity = std::min(
                static_cast<double>(d.threads) * mu0,
                (st[i].isoCores +
                 st[i].sharedGrant /
                     traits_.sharedServicePenalty) * mu0);
            o.serviceRate = std::max(capacity, 1e-9);
            o.perServerRate = o.serviceRate / o.coreEquivalents;
            o.utilization = d.arrivalRate / o.serviceRate;
            o.ipc = 0.0;
        } else {
            o.coreEquivalents = st[i].beCores;
            o.ipc = d.ipcSolo * st[i].speed *
                std::min(1.0, st[i].beCores /
                    std::max(1.0, static_cast<double>(d.threads)));
            o.serviceRate = 0.0;
            o.perServerRate = 0.0;
            o.utilization = 0.0;
        }
    }
    memo_.store(ws.memoKey, out);
}

} // namespace ahq::perf

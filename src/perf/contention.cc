/**
 * @file
 * Contention model implementation.
 */

#include "perf/contention.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace ahq::perf
{

using machine::AppId;
using machine::Region;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

namespace
{

/** Mutable per-app state threaded through the fixed point. */
struct AppState
{
    double speed = 1.0;       // cache+memory speed factor
    double ways = 1.0;        // effective LLC ways
    double dilation = 1.0;    // memory latency dilation
    double isoCores = 0.0;    // cores from isolated regions
    double sharedGrant = 0.0; // core-equivalents from shared regions
    double stretch = 1.0;     // PS service-time stretch
    double beCores = 0.0;     // BE: granted cores (iso + shared)
    double busyCores = 0.0;   // cores actively executing
    double bwDemand = 0.0;    // GiB/s
    double mbaScale = 1.0;    // throttle when demand exceeds MBA cap
};

double
damp(double old_v, double new_v, double alpha)
{
    return (1.0 - alpha) * old_v + alpha * new_v;
}

/**
 * Weighted max-min water-filling: distribute capacity among demands
 * with the given weights, never exceeding a consumer's cap.
 */
std::vector<double>
waterFill(double capacity, const std::vector<double> &caps,
          const std::vector<double> &weights)
{
    const std::size_t n = caps.size();
    std::vector<double> grant(n, 0.0);
    std::vector<bool> frozen(n, false);
    double remaining = capacity;
    for (int round = 0; round < static_cast<int>(n) + 1; ++round) {
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!frozen[i])
                weight_sum += weights[i];
        }
        if (weight_sum <= 0.0 || remaining <= 1e-12)
            break;
        bool saturated = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            const double offer = remaining * weights[i] / weight_sum;
            if (grant[i] + offer >= caps[i] - 1e-12) {
                saturated = true;
            }
        }
        double consumed = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            const double offer = remaining * weights[i] / weight_sum;
            const double take = std::min(offer, caps[i] - grant[i]);
            grant[i] += take;
            consumed += take;
            if (grant[i] >= caps[i] - 1e-12)
                frozen[i] = true;
        }
        remaining -= consumed;
        if (!saturated)
            break;
    }
    return grant;
}

} // namespace

ContentionModel::ContentionModel(machine::MachineConfig config,
                                 ContentionTraits traits)
    : config_(std::move(config)), traits_(traits),
      bwModel(traits.bandwidth)
{
    assert(config_.valid());
    assert(traits_.iterations > 0);
    assert(traits_.damping > 0.0 && traits_.damping <= 1.0);
}

std::vector<PerfOutcome>
ContentionModel::evaluate(const RegionLayout &layout,
                          const std::vector<AppDemand> &demands,
                          CoreSharePolicy policy) const
{
    assert(layout.valid());
    const std::size_t n = demands.size();
    // "Ideal" conditions use the machine's full physical cache, as the
    // paper measures TL_i0 / IPC_solo with ample resources.
    const double ideal_ways = static_cast<double>(config_.totalLlcWays);
    const double bw_per_unit = config_.gibpsPerBwUnit();
    const double machine_bw_cap =
        config_.availableMemBwUnits * bw_per_unit;

    std::vector<AppState> st(n);
    for (std::size_t i = 0; i < n; ++i) {
        st[i].ways = std::max(
            1.0, static_cast<double>(layout.reachable(
                     static_cast<AppId>(i), ResourceKind::LlcWays)));
        st[i].speed = demands[i].cpi.speed(st[i].ways, 1.0, ideal_ways);
    }

    const double alpha = traits_.damping;

    for (int iter = 0; iter < traits_.iterations; ++iter) {
        // ---- isolated core grants -------------------------------
        std::vector<double> prev_stretch(n, 1.0);
        for (std::size_t i = 0; i < n; ++i) {
            prev_stretch[i] = st[i].stretch;
            st[i].isoCores = 0.0;
            st[i].sharedGrant = 0.0;
            st[i].stretch = 1.0;
            st[i].beCores = 0.0;
        }
        for (RegionId r = 0; r < layout.numRegions(); ++r) {
            const Region &reg = layout.region(r);
            if (reg.shared || reg.members.empty())
                continue;
            // Non-shared regions are single-member by construction of
            // all scheduler layouts; split evenly if not.
            const double per = static_cast<double>(reg.res.cores) /
                static_cast<double>(reg.members.size());
            for (AppId m : reg.members) {
                auto &s = st[static_cast<std::size_t>(m)];
                const auto &d = demands[static_cast<std::size_t>(m)];
                if (d.latencyCritical)
                    s.isoCores += per;
                else
                    s.beCores += per;
            }
        }

        // ---- shared region core sharing -------------------------
        for (RegionId r = 0; r < layout.numRegions(); ++r) {
            const Region &reg = layout.region(r);
            if (!reg.shared || reg.members.empty())
                continue;
            const double c_r = static_cast<double>(reg.res.cores);

            std::vector<AppId> lc, be;
            for (AppId m : reg.members) {
                if (demands[static_cast<std::size_t>(m)].latencyCritical)
                    lc.push_back(m);
                else
                    be.push_back(m);
            }

            // Mean work each LC member pushes into this region.
            std::vector<double> resid(lc.size(), 0.0);
            std::vector<double> burst_cap(lc.size(), 0.0);
            for (std::size_t k = 0; k < lc.size(); ++k) {
                const auto i = static_cast<std::size_t>(lc[k]);
                const auto &d = demands[i];
                // Timeslice stretching (previous iterate) inflates
                // the occupancy, which feeds back into the stretch —
                // the compounding that makes heavy oversubscription
                // catastrophic on real CFS nodes.
                const double util = d.arrivalRate * d.serviceTimeMs /
                    1000.0 / std::max(1e-9, st[i].speed) *
                    traits_.lcOccupancyHeadroom * prev_stretch[i];
                resid[k] = std::max(0.0, util - st[i].isoCores);
                burst_cap[k] = std::max(
                    0.0, static_cast<double>(d.threads) -
                        st[i].isoCores);
            }

            if (policy == CoreSharePolicy::LcPriority) {
                double occupied = 0.0;
                for (std::size_t k = 0; k < lc.size(); ++k)
                    occupied += std::min(resid[k], burst_cap[k]);
                if (occupied <= c_r) {
                    // Stable: each LC app can burst into whatever the
                    // other LC apps leave idle on average.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double own =
                            std::min(resid[k], burst_cap[k]);
                        const double avail = c_r - (occupied - own);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += std::min(burst_cap[k],
                                                     avail);
                    }
                } else if (occupied > 0.0) {
                    // Overload: ration proportionally to demand.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double own =
                            std::min(resid[k], burst_cap[k]);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += c_r * own / occupied;
                    }
                }
                // BE apps get the leftover, water-filled by threads.
                const double c_be = std::max(0.0, c_r - occupied);
                if (!be.empty() && c_be > 0.0) {
                    std::vector<double> caps, weights;
                    for (AppId m : be) {
                        const auto &d =
                            demands[static_cast<std::size_t>(m)];
                        const double cap =
                            std::max(0.0,
                                     static_cast<double>(d.threads) -
                                         st[static_cast<std::size_t>(m)]
                                             .beCores);
                        caps.push_back(cap);
                        weights.push_back(
                            static_cast<double>(d.threads));
                    }
                    const auto grants = waterFill(c_be, caps, weights);
                    for (std::size_t k = 0; k < be.size(); ++k) {
                        st[static_cast<std::size_t>(be[k])].beCores +=
                            grants[k];
                    }
                }
            } else {
                // FairShare (CFS). Each LC app keeps roughly its
                // mean occupancy plus a partially-awake burst thread
                // runnable; BE threads are always runnable. When the
                // region is over-subscribed, cores are granted by
                // thread-weighted water-filling (the CFS weight) and
                // every request's service stretches by the runnable/
                // cores ratio (timeslicing + wake-up latency).
                double active_total = 0.0;
                std::vector<double> active_lc(lc.size(), 0.0);
                for (std::size_t k = 0; k < lc.size(); ++k) {
                    if (resid[k] > 0.0) {
                        active_lc[k] = std::min(
                            burst_cap[k], 1.2 * resid[k] + 0.5);
                    }
                    active_total += active_lc[k];
                }
                for (AppId m : be) {
                    active_total += static_cast<double>(
                        demands[static_cast<std::size_t>(m)].threads);
                }
                if (active_total <= c_r) {
                    // Enough cores: everyone can burst into the
                    // average idle capacity of the others.
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const double avail =
                            c_r - (active_total - active_lc[k]);
                        st[static_cast<std::size_t>(lc[k])]
                            .sharedGrant += std::min(burst_cap[k],
                                                     avail);
                    }
                    for (AppId m : be) {
                        const auto i = static_cast<std::size_t>(m);
                        st[i].beCores += static_cast<double>(
                            demands[i].threads);
                    }
                } else {
                    const double region_stretch = active_total / c_r;
                    // Thread-weighted fair sharing, capped at what
                    // each member's runnable threads can occupy.
                    std::vector<double> caps, weights;
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        caps.push_back(
                            std::min(burst_cap[k],
                                     1.3 * active_lc[k]));
                        weights.push_back(static_cast<double>(
                            demands[static_cast<std::size_t>(lc[k])]
                                .threads));
                    }
                    for (AppId m : be) {
                        const auto i = static_cast<std::size_t>(m);
                        caps.push_back(static_cast<double>(
                            demands[i].threads));
                        weights.push_back(static_cast<double>(
                            demands[i].threads));
                    }
                    const auto grants =
                        waterFill(c_r, caps, weights);
                    for (std::size_t k = 0; k < lc.size(); ++k) {
                        const auto i =
                            static_cast<std::size_t>(lc[k]);
                        st[i].sharedGrant += grants[k];
                        st[i].stretch =
                            std::max(st[i].stretch, region_stretch);
                    }
                    for (std::size_t k = 0; k < be.size(); ++k) {
                        const auto i =
                            static_cast<std::size_t>(be[k]);
                        st[i].beCores += grants[lc.size() + k];
                    }
                }
            }
        }

        // Cap LC server counts at thread counts and compute busy
        // cores; stretched servers provide proportionally less
        // capacity, which the per-server rate accounts for below.
        for (std::size_t i = 0; i < n; ++i) {
            const auto &d = demands[i];
            if (d.latencyCritical) {
                const double kappa = std::min(
                    static_cast<double>(d.threads),
                    st[i].isoCores + st[i].sharedGrant);
                const double util = d.arrivalRate * d.serviceTimeMs /
                    1000.0 / std::max(1e-9, st[i].speed);
                st[i].busyCores = std::min(util, kappa);
            } else {
                st[i].beCores = std::min(
                    st[i].beCores, static_cast<double>(d.threads));
                st[i].busyCores = st[i].beCores;
            }
        }

        // ---- LLC way sharing -------------------------------------
        std::vector<double> new_ways(n, 0.0);
        for (RegionId r = 0; r < layout.numRegions(); ++r) {
            const Region &reg = layout.region(r);
            if (reg.members.empty() || reg.res.llcWays == 0)
                continue;
            if (!reg.shared) {
                const double per =
                    static_cast<double>(reg.res.llcWays) /
                    static_cast<double>(reg.members.size());
                for (AppId m : reg.members)
                    new_ways[static_cast<std::size_t>(m)] += per;
                continue;
            }
            double intensity_sum = 0.0;
            std::vector<double> intensity(reg.members.size(), 0.0);
            for (std::size_t k = 0; k < reg.members.size(); ++k) {
                const auto i =
                    static_cast<std::size_t>(reg.members[k]);
                const double occ = std::max(0.02, st[i].busyCores);
                intensity[k] =
                    demands[i].cpi.mrc().accessIntensity(st[i].ways) *
                    occ;
                intensity_sum += intensity[k];
            }
            if (intensity_sum <= 0.0)
                continue;
            for (std::size_t k = 0; k < reg.members.size(); ++k) {
                const auto i =
                    static_cast<std::size_t>(reg.members[k]);
                new_ways[i] += static_cast<double>(reg.res.llcWays) *
                    intensity[k] / intensity_sum;
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            st[i].ways = damp(st[i].ways,
                              std::max(0.25, new_ways[i]), alpha);
        }

        // ---- memory bandwidth ------------------------------------
        // Machine pressure counts MBA-throttled traffic: a capped
        // consumer stops pressuring the bus beyond its partition.
        double total_demand = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            st[i].bwDemand = st[i].busyCores *
                demands[i].cpi.bwDemandPerCore(st[i].ways,
                                               st[i].dilation);
            total_demand += st[i].bwDemand * st[i].mbaScale;
        }
        const double rho_machine = total_demand / machine_bw_cap;

        for (std::size_t i = 0; i < n; ++i) {
            // MBA cap of the app: sum of its regions' bandwidth
            // units; shared-region units count fully (they are a cap,
            // not a grant — contention shows up through rho).
            double cap_units = 0.0;
            for (RegionId r :
                 layout.regionsOf(static_cast<AppId>(i))) {
                cap_units += layout.region(r).res.memBw;
            }
            const double cap_gibps =
                std::max(0.25, cap_units) * bw_per_unit;
            const double new_scale = bwModel.throughputScale(
                st[i].bwDemand, cap_gibps);
            const double new_dilation =
                bwModel.dilation(rho_machine);
            st[i].mbaScale = damp(st[i].mbaScale, new_scale, alpha);
            st[i].dilation =
                damp(st[i].dilation, new_dilation, alpha);
        }

        // ---- speed update ----------------------------------------
        for (std::size_t i = 0; i < n; ++i) {
            const double raw =
                demands[i].cpi.speed(st[i].ways, st[i].dilation,
                                     ideal_ways) *
                st[i].mbaScale;
            st[i].speed = damp(st[i].speed, raw, alpha);
        }
    }

    // ---- produce outcomes ---------------------------------------
    std::vector<PerfOutcome> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &d = demands[i];
        PerfOutcome &o = out[i];
        o.effectiveWays = st[i].ways;
        o.bwDilation = st[i].dilation;
        o.speed = st[i].speed;
        o.serviceStretch = st[i].stretch;
        o.bwDemandGibps = st[i].bwDemand;
        if (d.latencyCritical) {
            const double kappa = std::min(
                static_cast<double>(d.threads),
                st[i].isoCores + st[i].sharedGrant);
            o.coreEquivalents = std::max(kappa, 1e-6);
            // Base per-core rate, requests/s.
            const double mu0 =
                1000.0 * st[i].speed / d.serviceTimeMs;
            // Timeslicing stretches latency, not throughput: the
            // granted cores deliver their full service rate, and the
            // stretch is surfaced separately for the latency model.
            // Shared-region cores pay the context-switch/pollution
            // penalty; the app's own thread count bounds capacity.
            const double capacity = std::min(
                static_cast<double>(d.threads) * mu0,
                (st[i].isoCores +
                 st[i].sharedGrant /
                     traits_.sharedServicePenalty) * mu0);
            o.serviceRate = std::max(capacity, 1e-9);
            o.perServerRate = o.serviceRate / o.coreEquivalents;
            o.utilization = d.arrivalRate / o.serviceRate;
            o.ipc = 0.0;
        } else {
            o.coreEquivalents = st[i].beCores;
            o.ipc = d.ipcSolo * st[i].speed *
                std::min(1.0, st[i].beCores /
                    std::max(1.0, static_cast<double>(d.threads)));
            o.serviceRate = 0.0;
            o.perServerRate = 0.0;
            o.utilization = 0.0;
        }
    }
    return out;
}

} // namespace ahq::perf

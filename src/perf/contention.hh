/**
 * @file
 * The contention model: maps a (RegionLayout, per-app demand) pair to
 * per-application performance for one monitoring epoch.
 *
 * The model captures the first-order interference mechanisms of the
 * paper's testbed:
 *
 *  - LLC way contention. Isolated regions give their single member
 *    all their ways; within a shared region, members steal ways from
 *    each other in proportion to access intensity (occupancy-weighted
 *    marginal miss mass), the standard way-competition approximation.
 *
 *  - Core contention. Isolated cores belong to their member. In a
 *    shared region, cores are granted by weighted max-min water-
 *    filling. Under the FairShare policy (Linux CFS) every member's
 *    threads have equal weight, and when runnable threads exceed
 *    cores, every request's service time stretches by the runnable/
 *    cores ratio (processor sharing). Under the LcPriority policy
 *    (SCHED_RR for LC / ARQ's shared region) LC apps preempt BE apps:
 *    LC sees only other LC occupancy, BE receives the leftover.
 *
 *  - Memory bandwidth contention. Each app's bandwidth demand follows
 *    from its miss rate and executing cores; utilisation of the MBA
 *    partition and of the machine dilates memory latency via
 *    BandwidthModel, feeding back into CPI.
 *
 * These interact, so evaluate() runs a damped fixed-point iteration
 * (the quantities are smooth and contractive in practice; tests check
 * convergence).
 */

#ifndef AHQ_PERF_CONTENTION_HH
#define AHQ_PERF_CONTENTION_HH

#include <vector>

#include "machine/config.hh"
#include "machine/layout.hh"
#include "perf/bandwidth.hh"
#include "perf/contention_cache.hh"
#include "perf/cpi.hh"
#include "perf/curve_table.hh"

namespace ahq::perf
{

/** How cores are shared inside shared regions. */
enum class CoreSharePolicy
{
    /** Linux CFS: all threads equal weight, processor sharing. */
    FairShare,

    /** LC apps preempt BE apps (RT priority / ARQ shared region). */
    LcPriority,
};

/** Per-application inputs to the contention model for one epoch. */
struct AppDemand
{
    /** True for latency-critical, false for best-effort. */
    bool latencyCritical = false;

    /** LC: request arrival rate, requests/second. */
    double arrivalRate = 0.0;

    /**
     * LC: base service demand per request, milliseconds of one core
     * at speed 1.0 (solo, full cache, unloaded memory).
     */
    double serviceTimeMs = 1.0;

    /** BE: IPC when running solo under ideal conditions. */
    double ipcSolo = 1.0;

    /** Software thread count (the paper uses 4; STREAM uses 10). */
    int threads = 4;

    /** Cache/CPI behaviour. */
    CpiModel cpi;

    /**
     * Optional precomputed curve table for this app (not owned; must
     * outlive the demand and match cpi). Purely an evaluation
     * accelerator — never part of the model's inputs, so it is
     * excluded from memo keys.
     */
    const AppCurveTable *curves = nullptr;

    AppDemand() : cpi(MissRateCurve(10.0, 1.0, 4.0), CpiTraits{}) {}
};

/** Per-application outputs of the contention model for one epoch. */
struct PerfOutcome
{
    /** Core-equivalents granted (LC: M/M/c server count). */
    double coreEquivalents = 0.0;

    /** Effective LLC ways after sharing/stealing. */
    double effectiveWays = 0.0;

    /** Memory latency dilation applied to the app (>= 1). */
    double bwDilation = 1.0;

    /**
     * Speed factor relative to solo-ideal (cache + memory effects
     * only; core starvation is captured by coreEquivalents and
     * serviceStretch instead).
     */
    double speed = 1.0;

    /**
     * Processor-sharing service-time stretch (>= 1) from timeslicing
     * when runnable threads exceed cores in the app's shared region.
     */
    double serviceStretch = 1.0;

    /** LC: per-server service rate, requests/second per core-eq. */
    double perServerRate = 0.0;

    /** LC: total service capacity, requests/second. */
    double serviceRate = 0.0;

    /** LC: offered utilisation = lambda / serviceRate. */
    double utilization = 0.0;

    /** BE: achieved IPC. */
    double ipc = 0.0;

    /** Memory bandwidth demand, GiB/s. */
    double bwDemandGibps = 0.0;
};

/** Tunables of the contention model. */
struct ContentionTraits
{
    /** Fixed-point iterations. */
    int iterations = 20;

    /** Damping factor for the fixed point (0 = frozen, 1 = jumpy). */
    double damping = 0.6;

    /** Bandwidth dilation curve. */
    BandwidthTraits bandwidth;

    /**
     * LC demand headroom: when computing how much shared-region core
     * capacity an LC app occupies on average, its mean utilisation is
     * multiplied by this factor to account for burstiness.
     */
    double lcOccupancyHeadroom = 1.0;

    /**
     * Service-time inflation for LC work executed on shared-region
     * cores (>= 1). Between LC requests a shared core runs other
     * work, so each request pays context-switch and private-cache
     * refill costs that an isolated core does not — the reason
     * resource isolation has value at all (Section IV-A's overhead
     * triangles).
     */
    double sharedServicePenalty = 1.15;

    /**
     * Entries of the exact-key evaluation memo (0 disables). Hits
     * return byte-identical outcomes for byte-identical inputs, so
     * this changes no observable result — only the cost of epochs
     * whose layout and demands repeat.
     */
    int memoCapacity = 64;
};

/**
 * Evaluates per-epoch application performance under a layout.
 *
 * evaluate() is logically const but reuses an internal scratch
 * workspace across calls, so a single instance must not be used from
 * multiple threads concurrently. Construct one model per thread (the
 * simulators and the oracle already do).
 */
class ContentionModel
{
  public:
    ContentionModel(machine::MachineConfig config,
                    ContentionTraits traits = {});

    /**
     * Evaluate the performance of every application.
     *
     * @param layout A valid layout covering all apps in demands.
     * @param demands Per-app demands, indexed by AppId.
     * @param policy Core sharing policy for shared regions.
     * @return Per-app outcomes, indexed by AppId.
     */
    std::vector<PerfOutcome>
    evaluate(const machine::RegionLayout &layout,
             const std::vector<AppDemand> &demands,
             CoreSharePolicy policy) const;

    /**
     * As evaluate(), but writing the outcomes into @p out (resized to
     * the app count) so steady-state callers recycle the buffer.
     */
    void evaluateInto(const machine::RegionLayout &layout,
                      const std::vector<AppDemand> &demands,
                      CoreSharePolicy policy,
                      std::vector<PerfOutcome> &out) const;

    const machine::MachineConfig &config() const { return config_; }
    const ContentionTraits &traits() const { return traits_; }

    /** Evaluation-memo statistics (tests and telemetry). */
    std::size_t memoHits() const { return memo_.hits(); }
    std::size_t memoMisses() const { return memo_.misses(); }

  private:
    /** Mutable per-app state threaded through the fixed point. */
    struct AppState
    {
        double speed = 1.0;       // cache+memory speed factor
        double ways = 1.0;        // effective LLC ways
        double dilation = 1.0;    // memory latency dilation
        double isoCores = 0.0;    // cores from isolated regions
        double sharedGrant = 0.0; // core-equivalents, shared regions
        double stretch = 1.0;     // PS service-time stretch
        double beCores = 0.0;     // BE: granted cores (iso + shared)
        double busyCores = 0.0;   // cores actively executing
        double bwDemand = 0.0;    // GiB/s
        double mbaScale = 1.0;    // throttle past the MBA cap
    };

    /**
     * Scratch buffers reused across evaluate() calls, plus the
     * iteration-invariant per-app quantities hoisted out of the
     * fixed-point loop (iso-core grants, offered load, MBA caps,
     * shared-region member splits). Once warm, an evaluation
     * allocates only its result vector.
     */
    struct Workspace
    {
        std::vector<AppState> st;
        std::vector<double> prevStretch;
        std::vector<double> isoLc;    // iso cores granted to LC apps
        std::vector<double> isoBe;    // iso cores granted to BE apps
        std::vector<double> lambda;   // LC offered load, core-seconds/s
        std::vector<double> capGibps; // per-app MBA bandwidth cap
        std::vector<std::vector<machine::AppId>> lcOf; // shared regions
        std::vector<std::vector<machine::AppId>> beOf; // shared regions
        std::vector<double> resid, burstCap, activeLc;
        std::vector<double> caps, weights, grants; // water-fill scratch
        std::vector<char> frozen;                  // water-fill scratch
        std::vector<double> intensity, newWays;
        std::vector<double> cpiIdeal; // hoisted per-app ideal CPI
        std::vector<double> mpki;     // per-iteration mpki(ways)
        std::vector<double> memoKey;  // canonicalised memo key
    };

    machine::MachineConfig config_;
    ContentionTraits traits_;
    BandwidthModel bwModel;
    mutable Workspace ws_;
    mutable EvaluationMemo<PerfOutcome> memo_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_CONTENTION_HH

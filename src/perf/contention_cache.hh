/**
 * @file
 * Exact-key memoisation of contention-model evaluations.
 *
 * A monitoring epoch re-evaluates the same (layout, demands, policy)
 * triple whenever the scheduler holds its allocation and the offered
 * load is unchanged — the common steady state of every strategy, and
 * the dominant case of the epoch-throughput benchmarks. The memo
 * canonicalises the triple into a flat key of doubles (every field
 * the model reads: region shapes, resources and members, per-app
 * demand and curve parameters) and returns the previously computed
 * outcomes on an exact byte match, so a hit is bitwise
 * indistinguishable from recomputation. Anything that perturbs any
 * model input — a repartition, a load change, a fault-injected spike
 * — changes the key and misses.
 *
 * The store is a small bounded open array (clear-on-full): lookups
 * stay allocation-free once warm and adversarial key churn (e.g. the
 * oracle sweeping thousands of layouts) degrades to plain
 * recomputation instead of unbounded growth.
 */

#ifndef AHQ_PERF_CONTENTION_CACHE_HH
#define AHQ_PERF_CONTENTION_CACHE_HH

#include <cstdint>
#include <cstring>
#include <vector>

namespace ahq::perf
{

/** Bounded exact-key memo of per-app outcome vectors. */
template <typename Outcome>
class EvaluationMemo
{
  public:
    explicit EvaluationMemo(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /**
     * Look up the outcomes for the key currently staged in @p key.
     * On a miss returns nullptr and remembers the key for the next
     * store(). The returned pointer is invalidated by store().
     */
    const std::vector<Outcome> *
    find(const std::vector<double> &key)
    {
        if (capacity_ == 0)
            return nullptr;
        const std::uint64_t h = hashKey(key);
        for (const Entry &e : entries_) {
            if (e.hash == h && e.key == key) {
                ++hits_;
                return &e.outcomes;
            }
        }
        ++misses_;
        pendingHash_ = h;
        return nullptr;
    }

    /**
     * Store outcomes under the key of the last missed find(). A full
     * store is cleared first, bounding memory and scan cost.
     */
    void
    store(const std::vector<double> &key,
          const std::vector<Outcome> &outcomes)
    {
        if (capacity_ == 0)
            return;
        if (entries_.size() >= capacity_)
            entries_.clear();
        entries_.push_back(Entry{pendingHash_, key, outcomes});
    }

    void
    clear()
    {
        entries_.clear();
    }

    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }

  private:
    static std::uint64_t
    hashKey(const std::vector<double> &key)
    {
        // FNV-1a over the key, one 64-bit word per double (the hit
        // path hashes every lookup, so byte-granularity would cost
        // 8x). The compare is exact, the hash only short-circuits
        // mismatches.
        std::uint64_t h = 1469598103934665603ULL;
        for (const double v : key) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            std::memcpy(&bits, &v, sizeof(bits));
            h ^= bits;
            h *= 1099511628211ULL;
        }
        return h;
    }

    struct Entry
    {
        std::uint64_t hash = 0;
        std::vector<double> key;
        std::vector<Outcome> outcomes;
    };

    std::size_t capacity_;
    std::vector<Entry> entries_;
    std::uint64_t pendingHash_ = 0;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace ahq::perf

#endif // AHQ_PERF_CONTENTION_CACHE_HH

/**
 * @file
 * CPI model implementation.
 */

#include "perf/cpi.hh"

#include <cassert>

namespace ahq::perf
{

CpiModel::CpiModel(MissRateCurve mrc, CpiTraits traits)
    : mrc_(mrc), traits_(traits)
{
    assert(traits.cpiBase > 0.0);
    assert(traits.missPenaltyCycles >= 0.0);
    assert(traits.coreFreqGhz > 0.0);
}

double
CpiModel::cpi(double ways, double dilation) const
{
    assert(dilation >= 1.0);
    return traits_.cpiBase +
        mrc_.mpki(ways) / 1000.0 *
        (traits_.missPenaltyCycles / traits_.mlp) * dilation;
}

double
CpiModel::cpiIdeal(double full_ways) const
{
    return cpi(full_ways, 1.0);
}

double
CpiModel::speed(double ways, double dilation, double full_ways) const
{
    return cpiIdeal(full_ways) / cpi(ways, dilation);
}

double
CpiModel::bwDemandPerCore(double ways, double dilation) const
{
    // instructions/s = freq / CPI; bytes/s = inst/s * mpki/1000 * 64B.
    const double inst_per_ns = traits_.coreFreqGhz / cpi(ways, dilation);
    const double bytes_per_ns =
        inst_per_ns * mrc_.mpki(ways) / 1000.0 * traits_.bytesPerMiss;
    // bytes/ns == GB/s; convert to GiB/s.
    return bytes_per_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
}

} // namespace ahq::perf

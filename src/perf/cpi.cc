/**
 * @file
 * CPI model implementation. The per-evaluation methods are inline in
 * the header (the contention fixed point calls them in its innermost
 * loops); construction and the ideal-conditions helpers stay here.
 */

#include "perf/cpi.hh"

#include <cassert>

namespace ahq::perf
{

CpiModel::CpiModel(MissRateCurve mrc, CpiTraits traits)
    : mrc_(mrc), traits_(traits)
{
    assert(traits.cpiBase > 0.0);
    assert(traits.missPenaltyCycles >= 0.0);
    assert(traits.coreFreqGhz > 0.0);
}

double
CpiModel::cpiIdeal(double full_ways) const
{
    return cpi(full_ways, 1.0);
}

double
CpiModel::speed(double ways, double dilation, double full_ways) const
{
    return cpiIdeal(full_ways) / cpi(ways, dilation);
}

} // namespace ahq::perf

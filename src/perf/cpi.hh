/**
 * @file
 * Cycles-per-instruction model.
 *
 * CPI is decomposed into a core-bound base component plus a memory
 * component proportional to the LLC miss rate and the (contention-
 * dilated) effective miss penalty:
 *
 *     CPI(w, d) = cpi_base + mpki(w)/1000 * miss_penalty * d
 *
 * where w is the effective LLC way allocation and d >= 1 is the
 * memory-latency dilation produced by bandwidth contention. The
 * application's "speed" is CPI at ideal conditions divided by CPI at
 * the current conditions, i.e. 1.0 when running solo with the full
 * cache and an unloaded memory system.
 */

#ifndef AHQ_PERF_CPI_HH
#define AHQ_PERF_CPI_HH

#include <cassert>

#include "perf/mrc.hh"

namespace ahq::perf
{

/** Per-application CPI/bandwidth traits. */
struct CpiTraits
{
    /** Core-bound CPI component (no LLC misses). */
    double cpiBase = 0.6;

    /** Average LLC miss penalty at an unloaded memory system, cycles. */
    double missPenaltyCycles = 180.0;

    /**
     * Memory-level parallelism: the number of outstanding misses the
     * core overlaps. The effective per-miss CPI cost is
     * missPenaltyCycles / mlp. Streaming codes with high MLP lose
     * little CPI per miss yet demand large bandwidth.
     */
    double mlp = 2.0;

    /** Core frequency in GHz (Table III: 2.2 GHz). */
    double coreFreqGhz = 2.2;

    /** Bytes transferred per LLC miss (one cache line). */
    double bytesPerMiss = 64.0;
};

/**
 * CPI model combining a miss-rate curve with CpiTraits.
 */
class CpiModel
{
  public:
    CpiModel(MissRateCurve mrc, CpiTraits traits);

    /** CPI at the given effective ways and memory dilation. */
    double
    cpi(double ways, double dilation) const
    {
        return cpiWithMpki(mrc_.mpki(ways), dilation);
    }

    /**
     * As cpi(), but with the miss rate already evaluated. The
     * contention fixed point needs CPI and bandwidth demand at the
     * same way allocation every iteration; evaluating mpki once and
     * passing it to both is bitwise identical to recomputing it.
     */
    double
    cpiWithMpki(double mpki, double dilation) const
    {
        assert(dilation >= 1.0);
        return traits_.cpiBase +
            mpki / 1000.0 *
            (traits_.missPenaltyCycles / traits_.mlp) * dilation;
    }

    /** CPI under ideal conditions (full cache, no dilation). */
    double cpiIdeal(double full_ways) const;

    /**
     * Speed factor relative to ideal conditions, in (0, 1].
     *
     * @param ways Effective LLC ways available to the app.
     * @param dilation Memory latency dilation (>= 1).
     * @param full_ways The way count that defines "ideal".
     */
    double speed(double ways, double dilation, double full_ways) const;

    /**
     * Memory bandwidth demand in GiB/s of one core running this app
     * flat out at the given conditions.
     */
    double
    bwDemandPerCore(double ways, double dilation) const
    {
        return bwDemandPerCoreWithMpki(mrc_.mpki(ways), dilation);
    }

    /** As bwDemandPerCore() with the miss rate already evaluated. */
    double
    bwDemandPerCoreWithMpki(double mpki, double dilation) const
    {
        // instructions/s = freq / CPI;
        // bytes/s = inst/s * mpki/1000 * 64B.
        const double inst_per_ns =
            traits_.coreFreqGhz / cpiWithMpki(mpki, dilation);
        const double bytes_per_ns =
            inst_per_ns * mpki / 1000.0 * traits_.bytesPerMiss;
        // bytes/ns == GB/s; convert to GiB/s.
        return bytes_per_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
    }

    const MissRateCurve &mrc() const { return mrc_; }
    const CpiTraits &traits() const { return traits_; }

  private:
    MissRateCurve mrc_;
    CpiTraits traits_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_CPI_HH

/**
 * @file
 * Cycles-per-instruction model.
 *
 * CPI is decomposed into a core-bound base component plus a memory
 * component proportional to the LLC miss rate and the (contention-
 * dilated) effective miss penalty:
 *
 *     CPI(w, d) = cpi_base + mpki(w)/1000 * miss_penalty * d
 *
 * where w is the effective LLC way allocation and d >= 1 is the
 * memory-latency dilation produced by bandwidth contention. The
 * application's "speed" is CPI at ideal conditions divided by CPI at
 * the current conditions, i.e. 1.0 when running solo with the full
 * cache and an unloaded memory system.
 */

#ifndef AHQ_PERF_CPI_HH
#define AHQ_PERF_CPI_HH

#include "perf/mrc.hh"

namespace ahq::perf
{

/** Per-application CPI/bandwidth traits. */
struct CpiTraits
{
    /** Core-bound CPI component (no LLC misses). */
    double cpiBase = 0.6;

    /** Average LLC miss penalty at an unloaded memory system, cycles. */
    double missPenaltyCycles = 180.0;

    /**
     * Memory-level parallelism: the number of outstanding misses the
     * core overlaps. The effective per-miss CPI cost is
     * missPenaltyCycles / mlp. Streaming codes with high MLP lose
     * little CPI per miss yet demand large bandwidth.
     */
    double mlp = 2.0;

    /** Core frequency in GHz (Table III: 2.2 GHz). */
    double coreFreqGhz = 2.2;

    /** Bytes transferred per LLC miss (one cache line). */
    double bytesPerMiss = 64.0;
};

/**
 * CPI model combining a miss-rate curve with CpiTraits.
 */
class CpiModel
{
  public:
    CpiModel(MissRateCurve mrc, CpiTraits traits);

    /** CPI at the given effective ways and memory dilation. */
    double cpi(double ways, double dilation) const;

    /** CPI under ideal conditions (full cache, no dilation). */
    double cpiIdeal(double full_ways) const;

    /**
     * Speed factor relative to ideal conditions, in (0, 1].
     *
     * @param ways Effective LLC ways available to the app.
     * @param dilation Memory latency dilation (>= 1).
     * @param full_ways The way count that defines "ideal".
     */
    double speed(double ways, double dilation, double full_ways) const;

    /**
     * Memory bandwidth demand in GiB/s of one core running this app
     * flat out at the given conditions.
     */
    double bwDemandPerCore(double ways, double dilation) const;

    const MissRateCurve &mrc() const { return mrc_; }
    const CpiTraits &traits() const { return traits_; }

  private:
    MissRateCurve mrc_;
    CpiTraits traits_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_CPI_HH

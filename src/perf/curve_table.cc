/**
 * @file
 * Curve-table implementation.
 *
 * Every expression here mirrors the corresponding CpiModel /
 * MissRateCurve expression term for term (same grouping, same
 * constants), so integer-lattice evaluations are bitwise identical
 * to the direct path — the property tests/perf/curve_table_test.cc
 * checks exhaustively.
 */

#include "perf/curve_table.hh"

#include <cassert>
#include <cmath>

namespace ahq::perf
{

AppCurveTable::AppCurveTable(const CpiModel &model, int max_ways)
    : maxWays_(max_ways), cpiBase_(model.traits().cpiBase),
      missCostPerMpki_(model.traits().missPenaltyCycles /
                       model.traits().mlp),
      coreFreqGhz_(model.traits().coreFreqGhz),
      bytesPerMiss_(model.traits().bytesPerMiss),
      cpiIdeal_(model.cpiIdeal(static_cast<double>(max_ways)))
{
    assert(max_ways >= 1);
    mpkiTab_.resize(static_cast<std::size_t>(max_ways) + 1);
    intensityTab_.resize(static_cast<std::size_t>(max_ways) + 1);
    for (int w = 0; w <= max_ways; ++w) {
        mpkiTab_[static_cast<std::size_t>(w)] =
            model.mrc().mpki(static_cast<double>(w));
        intensityTab_[static_cast<std::size_t>(w)] =
            model.mrc().accessIntensity(static_cast<double>(w));
    }
}

double
AppCurveTable::mpkiAt(double ways) const
{
    if (ways <= 0.0)
        return mpkiTab_[0];
    if (ways >= static_cast<double>(maxWays_))
        return mpkiTab_[static_cast<std::size_t>(maxWays_)];
    const double fl = std::floor(ways);
    const auto w0 = static_cast<std::size_t>(fl);
    const double frac = ways - fl;
    if (frac == 0.0)
        return mpkiTab_[w0];
    return mpkiTab_[w0] +
        frac * (mpkiTab_[w0 + 1] - mpkiTab_[w0]);
}

double
AppCurveTable::mpki(double ways) const
{
    return mpkiAt(ways);
}

double
AppCurveTable::accessIntensity(double ways) const
{
    if (ways <= 0.0)
        return intensityTab_[0];
    if (ways >= static_cast<double>(maxWays_))
        return intensityTab_[static_cast<std::size_t>(maxWays_)];
    const double fl = std::floor(ways);
    const auto w0 = static_cast<std::size_t>(fl);
    const double frac = ways - fl;
    if (frac == 0.0)
        return intensityTab_[w0];
    return intensityTab_[w0] +
        frac * (intensityTab_[w0 + 1] - intensityTab_[w0]);
}

double
AppCurveTable::cpi(double ways, double dilation) const
{
    assert(dilation >= 1.0);
    return cpiBase_ +
        mpkiAt(ways) / 1000.0 * missCostPerMpki_ * dilation;
}

double
AppCurveTable::speed(double ways, double dilation) const
{
    return cpiIdeal_ / cpi(ways, dilation);
}

double
AppCurveTable::bwDemandPerCore(double ways, double dilation) const
{
    // instructions/s = freq / CPI; bytes/s = inst/s * mpki/1000 * 64B.
    const double inst_per_ns = coreFreqGhz_ / cpi(ways, dilation);
    const double bytes_per_ns =
        inst_per_ns * mpkiAt(ways) / 1000.0 * bytesPerMiss_;
    // bytes/ns == GB/s; convert to GiB/s.
    return bytes_per_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
}

} // namespace ahq::perf

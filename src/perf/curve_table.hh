/**
 * @file
 * Dense per-application contention-curve tables.
 *
 * The per-app inputs to the contention model — the miss-rate curve
 * and the CPI inflation derived from it — are closed-form algebra in
 * this codebase, but they are evaluated millions of times across an
 * epoch sweep. An AppCurveTable precomputes the per-way values once
 * at app-registration time into dense arrays indexed by the integer
 * LLC-way lattice 0..maxWays:
 *
 *  - at integer way counts every accessor reproduces the direct
 *    perf::CpiModel / perf::MissRateCurve evaluation bit-for-bit
 *    (same operation order, same constants), which is what the
 *    layout-derived allocation sites use;
 *
 *  - between lattice points the miss-rate quantities are linearly
 *    interpolated, the documented approximation for callers probing
 *    fractional effective ways.
 *
 * The dilation axis stays analytic: CPI is affine in the dilation
 * (CPI = cpi_base + mpki/1000 * penalty * d), so tabulating it would
 * add interpolation error without saving work.
 */

#ifndef AHQ_PERF_CURVE_TABLE_HH
#define AHQ_PERF_CURVE_TABLE_HH

#include <vector>

#include "perf/cpi.hh"

namespace ahq::perf
{

/**
 * Precomputed miss-rate / CPI curves of one application over the
 * machine's integer LLC-way lattice.
 */
class AppCurveTable
{
  public:
    /**
     * @param model The app's CPI model to tabulate.
     * @param max_ways The machine's total LLC ways (>= 1); also the
     *                 way count that defines "ideal" speed.
     */
    AppCurveTable(const CpiModel &model, int max_ways);

    /** Misses per kilo-instruction (lerp between integer ways). */
    double mpki(double ways) const;

    /** Way-stealing access intensity (lerp between integer ways). */
    double accessIntensity(double ways) const;

    /** CPI at the given ways and memory dilation. */
    double cpi(double ways, double dilation) const;

    /** CPI under ideal conditions (tabulated once). */
    double cpiIdeal() const { return cpiIdeal_; }

    /** Speed factor relative to ideal, as CpiModel::speed. */
    double speed(double ways, double dilation) const;

    /** Bandwidth demand of one core, as CpiModel::bwDemandPerCore. */
    double bwDemandPerCore(double ways, double dilation) const;

    /** The lattice upper bound the table was built with. */
    int maxWays() const { return maxWays_; }

  private:
    /** mpki at the (clamped, interpolated) way count. */
    double mpkiAt(double ways) const;

    int maxWays_;
    double cpiBase_;
    double missCostPerMpki_; // missPenaltyCycles / mlp
    double coreFreqGhz_;
    double bytesPerMiss_;
    double cpiIdeal_;
    std::vector<double> mpkiTab_;      // index = integer ways, 0..max
    std::vector<double> intensityTab_; // index = integer ways, 0..max
};

} // namespace ahq::perf

#endif // AHQ_PERF_CURVE_TABLE_HH

/**
 * @file
 * Miss-rate curve implementation. The evaluation methods live in the
 * header so the contention model's inner loops can inline them; only
 * construction-time validation stays out of line.
 */

#include "perf/mrc.hh"

#include <cassert>

namespace ahq::perf
{

MissRateCurve::MissRateCurve(double mpki_max, double mpki_min,
                             double ways_half)
    : mpkiMax_(mpki_max), mpkiMin_(mpki_min), waysHalf_(ways_half)
{
    assert(mpki_max >= mpki_min);
    assert(mpki_min >= 0.0);
    assert(ways_half > 0.0);
}

} // namespace ahq::perf

/**
 * @file
 * Miss-rate curve implementation.
 */

#include "perf/mrc.hh"

#include <algorithm>
#include <cassert>

namespace ahq::perf
{

MissRateCurve::MissRateCurve(double mpki_max, double mpki_min,
                             double ways_half)
    : mpkiMax_(mpki_max), mpkiMin_(mpki_min), waysHalf_(ways_half)
{
    assert(mpki_max >= mpki_min);
    assert(mpki_min >= 0.0);
    assert(ways_half > 0.0);
}

double
MissRateCurve::mpki(double ways) const
{
    const double w = std::max(0.0, ways);
    return mpkiMin_ +
        (mpkiMax_ - mpkiMin_) * waysHalf_ / (w + waysHalf_);
}

double
MissRateCurve::accessIntensity(double ways) const
{
    // Reducible miss mass remaining at this allocation: lines a
    // workload would actually re-reference if kept. Streaming apps
    // with flat MRCs touch many lines but evict their own data and
    // retain almost no occupancy under LRU, so only the reducible
    // part competes, with a small floor for residual churn.
    return std::max(0.05, mpki(ways) - mpkiMin_);
}

} // namespace ahq::perf

/**
 * @file
 * Miss-rate curves (MRCs) over LLC way allocations.
 *
 * The contention model uses a hyperbolic MRC parameterisation: misses
 * per kilo-instruction decay from a 1-way maximum towards a full-cache
 * minimum with a half-saturation constant expressed in ways. This is
 * the standard first-order shape of set-associative cache MRCs and is
 * what way-partitioning studies (e.g. KPart, the paper's ref [14])
 * observe for most workloads.
 */

#ifndef AHQ_PERF_MRC_HH
#define AHQ_PERF_MRC_HH

namespace ahq::perf
{

/**
 * Hyperbolic miss-rate curve: mpki(w) decreasing and convex in the
 * number of effective ways w.
 */
class MissRateCurve
{
  public:
    /**
     * @param mpki_max Misses per kilo-instruction with ~0 ways.
     * @param mpki_min Misses per kilo-instruction with unlimited ways.
     * @param ways_half Ways at which half of the reducible misses are
     *                  eliminated; larger means more cache-hungry.
     */
    MissRateCurve(double mpki_max, double mpki_min, double ways_half);

    /**
     * Misses per kilo-instruction with the given (possibly
     * fractional) effective ways. Clamped at w = 0.
     */
    double mpki(double ways) const;

    /**
     * Access intensity used for way-stealing in shared regions:
     * the marginal cache appetite of the application, proportional to
     * the reducible miss mass it still has at the given allocation.
     */
    double accessIntensity(double ways) const;

    double mpkiMax() const { return mpkiMax_; }
    double mpkiMin() const { return mpkiMin_; }
    double waysHalf() const { return waysHalf_; }

  private:
    double mpkiMax_;
    double mpkiMin_;
    double waysHalf_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_MRC_HH

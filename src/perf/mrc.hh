/**
 * @file
 * Miss-rate curves (MRCs) over LLC way allocations.
 *
 * The contention model uses a hyperbolic MRC parameterisation: misses
 * per kilo-instruction decay from a 1-way maximum towards a full-cache
 * minimum with a half-saturation constant expressed in ways. This is
 * the standard first-order shape of set-associative cache MRCs and is
 * what way-partitioning studies (e.g. KPart, the paper's ref [14])
 * observe for most workloads.
 */

#ifndef AHQ_PERF_MRC_HH
#define AHQ_PERF_MRC_HH

namespace ahq::perf
{

/**
 * Hyperbolic miss-rate curve: mpki(w) decreasing and convex in the
 * number of effective ways w.
 */
class MissRateCurve
{
  public:
    /**
     * @param mpki_max Misses per kilo-instruction with ~0 ways.
     * @param mpki_min Misses per kilo-instruction with unlimited ways.
     * @param ways_half Ways at which half of the reducible misses are
     *                  eliminated; larger means more cache-hungry.
     */
    MissRateCurve(double mpki_max, double mpki_min, double ways_half);

    /**
     * Misses per kilo-instruction with the given (possibly
     * fractional) effective ways. Clamped at w = 0. Defined inline:
     * the contention fixed point evaluates this in its innermost
     * loops, and the call must fold into them.
     */
    double
    mpki(double ways) const
    {
        const double w = ways > 0.0 ? ways : 0.0;
        return mpkiMin_ +
            (mpkiMax_ - mpkiMin_) * waysHalf_ / (w + waysHalf_);
    }

    /**
     * Access intensity used for way-stealing in shared regions:
     * the marginal cache appetite of the application, proportional to
     * the reducible miss mass it still has at the given allocation.
     */
    double
    accessIntensity(double ways) const
    {
        // Reducible miss mass remaining at this allocation: lines a
        // workload would actually re-reference if kept. Streaming
        // apps with flat MRCs touch many lines but evict their own
        // data and retain almost no occupancy under LRU, so only the
        // reducible part competes, with a floor for residual churn.
        const double reducible = mpki(ways) - mpkiMin_;
        return reducible > 0.05 ? reducible : 0.05;
    }

    double mpkiMax() const { return mpkiMax_; }
    double mpkiMin() const { return mpkiMin_; }
    double waysHalf() const { return waysHalf_; }

  private:
    double mpkiMax_;
    double mpkiMin_;
    double waysHalf_;
};

} // namespace ahq::perf

#endif // AHQ_PERF_MRC_HH

/**
 * @file
 * MRC fitting implementation.
 */

#include "perf/mrc_fit.hh"

#include <algorithm>
#include <limits>
#include <cmath>
#include <set>
#include <stdexcept>

namespace ahq::perf
{

namespace
{

/**
 * For a fixed half-saturation h the model is linear in
 * (a, b) with basis x = h / (w + h):
 *     mpki = b + (a - b) * x  =  b * (1 - x) + a * x
 * Solve the 2x2 normal equations; return the SSE.
 */
double
solveLinear(const std::vector<MrcSample> &samples, double h,
            double &a, double &b)
{
    double sxx = 0.0, sx1 = 0.0, s11 = 0.0;
    double sxy = 0.0, s1y = 0.0;
    for (const auto &[w, y] : samples) {
        const double x = h / (w + h);
        const double u = 1.0 - x;
        sxx += x * x;
        sx1 += x * u;
        s11 += u * u;
        sxy += x * y;
        s1y += u * y;
    }
    const double det = sxx * s11 - sx1 * sx1;
    if (std::abs(det) < 1e-12) {
        a = b = 0.0;
        return std::numeric_limits<double>::infinity();
    }
    a = (sxy * s11 - s1y * sx1) / det;
    b = (s1y * sxx - sxy * sx1) / det;

    double sse = 0.0;
    for (const auto &[w, y] : samples) {
        const double x = h / (w + h);
        const double pred = b + (a - b) * x;
        sse += (y - pred) * (y - pred);
    }
    return sse;
}

} // namespace

MrcFit
fitMissRateCurve(const std::vector<MrcSample> &samples, double h_lo,
                 double h_hi)
{
    if (samples.size() < 3)
        throw std::invalid_argument("need at least 3 MRC samples");
    std::set<double> distinct;
    for (const auto &[w, y] : samples) {
        if (w < 0.0 || y < 0.0)
            throw std::invalid_argument("MRC samples must be >= 0");
        distinct.insert(w);
    }
    if (distinct.size() < 3) {
        throw std::invalid_argument(
            "need at least 3 distinct way counts");
    }

    // Golden-section search over h (the SSE is smooth and
    // unimodal-enough over the bracket for practical MRCs).
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double lo = h_lo, hi = h_hi;
    double a = 0.0, b = 0.0;
    for (int it = 0; it < 80; ++it) {
        const double m1 = hi - phi * (hi - lo);
        const double m2 = lo + phi * (hi - lo);
        double a1, b1, a2, b2;
        const double f1 = solveLinear(samples, m1, a1, b1);
        const double f2 = solveLinear(samples, m2, a2, b2);
        if (f1 < f2)
            hi = m2;
        else
            lo = m1;
    }
    const double h = 0.5 * (lo + hi);
    const double sse = solveLinear(samples, h, a, b);

    // Clamp into the MissRateCurve's domain.
    const double mpki_min = std::max(0.0, std::min(a, b));
    const double mpki_max = std::max({0.0, a, b});

    MrcFit fit{MissRateCurve(mpki_max, mpki_min, h),
               std::sqrt(sse / static_cast<double>(samples.size()))};
    return fit;
}

} // namespace ahq::perf

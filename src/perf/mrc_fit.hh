/**
 * @file
 * Fitting miss-rate curves from measurements.
 *
 * Real deployments measure (ways, MPKI) points with CAT sweeps
 * (pqos -e llc:... plus performance counters); this utility fits
 * the library's hyperbolic MRC parameterisation to such samples so
 * user workloads can be modelled without hand-tuning.
 */

#ifndef AHQ_PERF_MRC_FIT_HH
#define AHQ_PERF_MRC_FIT_HH

#include <utility>
#include <vector>

#include "perf/mrc.hh"

namespace ahq::perf
{

/** One measured point: (allocated ways, observed MPKI). */
using MrcSample = std::pair<double, double>;

/** The result of a fit. */
struct MrcFit
{
    MissRateCurve curve;

    /** Root-mean-square error of the fit over the samples. */
    double rmse = 0.0;
};

/**
 * Fit mpki(w) = mpki_min + (mpki_max - mpki_min) * h / (w + h) to
 * the samples by golden-section search on the half-saturation
 * constant h with a closed-form linear least-squares solve of
 * (mpki_max, mpki_min) at each h.
 *
 * @param samples At least three points with distinct way counts.
 * @param h_lo Lower bound of the half-saturation search (> 0).
 * @param h_hi Upper bound of the search.
 * @throws std::invalid_argument on insufficient or degenerate
 *         samples.
 */
MrcFit fitMissRateCurve(const std::vector<MrcSample> &samples,
                        double h_lo = 0.1, double h_hi = 64.0);

} // namespace ahq::perf

#endif // AHQ_PERF_MRC_FIT_HH

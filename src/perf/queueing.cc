/**
 * @file
 * M/M/c queueing formula implementations.
 */

#include "perf/queueing.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ahq::perf
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Relative stability margin. The exact formulas divide by the
 * wait-tail rate eta = c*mu - lambda; as lambda creeps within a few
 * ULPs of c*mu, eta underflows towards 0 and percentiles blow up to
 * huge-but-finite values (~1e15) that poison every consumer that
 * checks only for infinity. Anything closer to saturation than this
 * relative margin is treated as saturated outright.
 */
constexpr double kSaturationEps = 1e-9;

/** Whether the queue is at (or indistinguishably near) saturation. */
bool
saturated(double c, double lambda, double mu)
{
    return lambda >= c * mu * (1.0 - kSaturationEps);
}

/** Erlang-C with integer servers; 1 when at/beyond saturation. */
double
erlangCInt(int c, double lambda, double mu)
{
    assert(c >= 1);
    const double a = lambda / mu;
    if (saturated(c, lambda, mu))
        return 1.0;
    const double b = erlangB(c, a);
    return c * b / (c - a * (1.0 - b));
}

/**
 * Tail of W + S where W ~ Exp(eta), S ~ Exp(mu), independent.
 * Handles the eta == mu limit (Erlang-2 tail).
 */
double
waitPlusServiceTail(double t, double eta, double mu)
{
    if (std::abs(eta - mu) < 1e-9 * mu) {
        // Gamma(2, mu) tail.
        return (1.0 + mu * t) * std::exp(-mu * t);
    }
    return (eta * std::exp(-mu * t) - mu * std::exp(-eta * t)) /
        (eta - mu);
}

/** P(T > t) for the M/M/c sojourn time with given Erlang-C value. */
double
sojournTail(double t, double c, double lambda, double mu, double pc_wait)
{
    const double eta = c * mu - lambda; // wait-tail rate
    if (eta <= 0.0)
        return 1.0; // saturated: the sojourn time diverges
    const double no_wait = (1.0 - pc_wait) * std::exp(-mu * t);
    const double with_wait = pc_wait * waitPlusServiceTail(t, eta, mu);
    // The closed forms subtract nearly equal exponentials; clamp the
    // rounding residue so callers always see a valid probability.
    return std::clamp(no_wait + with_wait, 0.0, 1.0);
}

} // namespace

double
erlangB(int c, double a)
{
    assert(c >= 0);
    assert(a >= 0.0);
    double b = 1.0;
    for (int k = 1; k <= c; ++k)
        b = a * b / (k + a * b);
    return b;
}

double
erlangC(double c, double lambda, double mu)
{
    assert(c > 0.0 && mu > 0.0 && lambda >= 0.0);
    if (saturated(c, lambda, mu))
        return 1.0;
    const int lo = std::max(1, static_cast<int>(std::floor(c)));
    const int hi = static_cast<int>(std::ceil(c));
    if (lo == hi || c <= 1.0)
        return erlangCInt(std::max(lo, 1), lambda, mu);
    const double frac = c - lo;
    const double c_lo = erlangCInt(lo, lambda, mu);
    const double c_hi = erlangCInt(hi, lambda, mu);
    return (1.0 - frac) * c_lo + frac * c_hi;
}

double
utilization(double c, double lambda, double mu)
{
    assert(c > 0.0 && mu > 0.0);
    return lambda / (c * mu);
}

double
mmcMeanWait(double c, double lambda, double mu)
{
    if (saturated(c, lambda, mu))
        return kInf;
    const double pc_wait = erlangC(c, lambda, mu);
    return pc_wait / (c * mu - lambda);
}

double
mmcMeanSojourn(double c, double lambda, double mu)
{
    const double wq = mmcMeanWait(c, lambda, mu);
    return wq == kInf ? kInf : wq + 1.0 / mu;
}

double
mmcSojournPercentile(double c, double lambda, double mu, double p)
{
    assert(p > 0.0 && p < 1.0);
    assert(c > 0.0 && mu > 0.0 && lambda >= 0.0);
    if (saturated(c, lambda, mu))
        return kInf;

    const double target = 1.0 - p; // tail mass
    const double pc_wait = erlangC(c, lambda, mu);

    // Bracket the percentile: the tail is decreasing in t.
    double lo = 0.0;
    double hi = std::max(10.0 / mu, 10.0 / (c * mu - lambda));
    while (sojournTail(hi, c, lambda, mu, pc_wait) > target) {
        hi *= 2.0;
        if (hi > 1e12 / mu)
            return kInf; // pathological, treat as unstable
    }
    for (int it = 0; it < 80; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (sojournTail(mid, c, lambda, mu, pc_wait) > target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
sojournPercentileApprox(double c, double lambda, double mu,
                        double svc_pmult, double p)
{
    assert(p > 0.0 && p < 1.0);
    assert(c > 0.0 && mu > 0.0 && lambda >= 0.0);
    assert(svc_pmult > 0.0);
    if (saturated(c, lambda, mu))
        return kInf;
    const double pc_wait = erlangC(c, lambda, mu);
    const double tail = 1.0 - p;
    double wait_p = 0.0;
    if (pc_wait > tail) {
        wait_p = std::log(pc_wait / tail) / (c * mu - lambda);
    }
    return svc_pmult / mu + wait_p;
}

double
mmcSojournTail(double t, double c, double lambda, double mu)
{
    assert(c > 0.0 && mu > 0.0 && lambda >= 0.0);
    if (t <= 0.0)
        return 1.0;
    if (saturated(c, lambda, mu))
        return 1.0;
    return sojournTail(t, c, lambda, mu, erlangC(c, lambda, mu));
}

double
mmcSojournPercentileWithBacklog(double c, double lambda, double mu,
                                double backlog, double p)
{
    assert(backlog >= 0.0);
    const double base = mmcSojournPercentile(c, lambda, mu, p);
    if (base == kInf)
        return kInf;
    const double drain = backlog / (c * mu);
    return base + drain;
}

} // namespace ahq::perf

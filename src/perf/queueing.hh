/**
 * @file
 * M/M/c queueing formulas used to produce per-epoch tail latencies.
 *
 * Each LC application is modelled as an M/M/c queue whose servers are
 * the (possibly fractional) core-equivalents the contention model
 * grants it. The flat-then-exponential latency/load curves of the
 * paper's Fig. 7 are exactly the behaviour of this family. Fractional
 * server counts are handled by linear interpolation between the two
 * neighbouring integer-server systems, which keeps the formulas smooth
 * for the schedulers' feedback loops.
 */

#ifndef AHQ_PERF_QUEUEING_HH
#define AHQ_PERF_QUEUEING_HH

namespace ahq::perf
{

/**
 * Erlang-B blocking probability for offered load a on c servers
 * (integer c), computed with the numerically stable recurrence.
 */
double erlangB(int c, double a);

/**
 * Erlang-C probability that an arriving request waits, for an M/M/c
 * queue with arrival rate lambda and per-server rate mu.
 *
 * Fractional c is linearly interpolated. Returns 1 when the system is
 * at or beyond saturation (lambda >= c*mu).
 */
double erlangC(double c, double lambda, double mu);

/** Server utilisation lambda / (c * mu); may exceed 1 when unstable. */
double utilization(double c, double lambda, double mu);

/** Mean waiting time in queue of the M/M/c (infinite when unstable). */
double mmcMeanWait(double c, double lambda, double mu);

/** Mean sojourn (response) time of the M/M/c. */
double mmcMeanSojourn(double c, double lambda, double mu);

/**
 * Percentile of the sojourn (response) time of an M/M/c queue.
 *
 * Uses the exact tail P(T > t) = (1-C) P(S > t) + C P(W + S > t) with
 * W ~ Exp(c*mu - lambda), S ~ Exp(mu), solved for t by bisection.
 *
 * @param c Number of servers (fractional allowed, > 0).
 * @param lambda Arrival rate (>= 0).
 * @param mu Per-server service rate (> 0).
 * @param p Percentile in (0, 1), e.g. 0.95.
 * @return The percentile, or +infinity when the queue is unstable.
 */
double mmcSojournPercentile(double c, double lambda, double mu, double p);

/**
 * Survival function P(T > t) of the M/M/c sojourn time. Always a
 * valid probability: clamped to [0, 1], 1 for t <= 0, and 1 when
 * the queue is at (or within the numerical stability margin of)
 * saturation, where the sojourn time diverges.
 *
 * @param t Time (same unit as 1/mu).
 * @param c Servers (fractional allowed, > 0).
 * @param lambda Arrival rate (>= 0).
 * @param mu Per-server service rate (> 0).
 */
double mmcSojournTail(double t, double c, double lambda, double mu);

/**
 * Percentile of the sojourn time with an additional queue backlog of
 * b requests already waiting at epoch start. The backlog adds a
 * deterministic drain delay of b / (c*mu) experienced by every request
 * of the epoch, which is how overload in one epoch degrades the next
 * (the paper notes PARTIES' core re-allocations can need more than
 * one 500 ms interval to take effect because of built-up queues).
 */
double mmcSojournPercentileWithBacklog(double c, double lambda, double mu,
                                       double backlog, double p);

/**
 * Approximate sojourn percentile for an M/G/c queue whose service
 * distribution has percentile-p value svc_pmult / mu:
 *
 *     T_p ~= svc_pmult / mu + max(0, ln(C / (1-p)) / (c*mu - lambda))
 *
 * The second term is the exact percentile of the M/M/c waiting time
 * (exponential tail of rate c*mu - lambda with mass C at the origin);
 * the first replaces the exponential service tail with the workload's
 * calibrated one. Tailbench-style services are less variable than
 * exponential, which svc_pmult < 3 expresses. Returns +infinity when
 * unstable.
 *
 * @param c Servers (fractional allowed, > 0).
 * @param lambda Arrival rate (>= 0).
 * @param mu Per-server service rate (> 0; 1/mu is the mean service).
 * @param svc_pmult Service-time percentile multiplier (x mean).
 * @param p Percentile in (0, 1).
 */
double sojournPercentileApprox(double c, double lambda, double mu,
                               double svc_pmult, double p = 0.95);

} // namespace ahq::perf

#endif // AHQ_PERF_QUEUEING_HH

/**
 * @file
 * ASCII chart implementations.
 */

#include "report/ascii_chart.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ahq::report
{

namespace
{

constexpr const char *kGlyphs = "*o+x#@%&";

struct Range
{
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();

    void
    expand(double v)
    {
        if (!std::isfinite(v))
            return;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    bool valid() const { return lo <= hi; }

    double
    span() const
    {
        return hi > lo ? hi - lo : 1.0;
    }
};

} // namespace

void
lineChart(std::ostream &os, const std::vector<Series> &series,
          int width, int height, const std::string &title)
{
    assert(width > 8 && height > 2);
    Range xr, yr;
    for (const auto &s : series) {
        assert(s.xs.size() == s.ys.size());
        for (double x : s.xs)
            xr.expand(x);
        for (double y : s.ys)
            yr.expand(y);
    }
    if (!xr.valid() || !yr.valid()) {
        os << "(no finite data)\n";
        return;
    }

    std::vector<std::string> grid(
        static_cast<std::size_t>(height),
        std::string(static_cast<std::size_t>(width), ' '));

    for (std::size_t si = 0; si < series.size(); ++si) {
        const char glyph = kGlyphs[si % 8];
        const auto &s = series[si];
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i]))
                continue;
            const int col = static_cast<int>(std::lround(
                (s.xs[i] - xr.lo) / xr.span() * (width - 1)));
            const int row = static_cast<int>(std::lround(
                (s.ys[i] - yr.lo) / yr.span() * (height - 1)));
            const int r = height - 1 - row;
            grid[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(col)] = glyph;
        }
    }

    if (!title.empty())
        os << title << "\n";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.3g", yr.hi);
    os << buf << " +" << grid.front() << "\n";
    for (int r = 1; r + 1 < height; ++r) {
        os << std::string(10, ' ') << " |"
           << grid[static_cast<std::size_t>(r)] << "\n";
    }
    std::snprintf(buf, sizeof(buf), "%10.3g", yr.lo);
    os << buf << " +" << grid.back() << "\n";
    std::snprintf(buf, sizeof(buf), "%.3g", xr.lo);
    std::string footer = std::string(12, ' ') + buf;
    std::snprintf(buf, sizeof(buf), "%.3g", xr.hi);
    const std::string hi_label = buf;
    const std::size_t pad_to =
        12 + static_cast<std::size_t>(width) - hi_label.size();
    if (footer.size() < pad_to)
        footer += std::string(pad_to - footer.size(), ' ');
    footer += hi_label;
    os << footer << "\n";
    for (std::size_t si = 0; si < series.size(); ++si) {
        os << "  [" << kGlyphs[si % 8] << "] " << series[si].name
           << "\n";
    }
}

void
heatmap(std::ostream &os, const std::vector<std::vector<double>> &rows,
        const std::vector<std::string> &row_labels,
        const std::string &title)
{
    assert(rows.size() == row_labels.size());
    static const char *kShades = " .:-=+*#%@";
    Range vr;
    for (const auto &row : rows) {
        for (double v : row)
            vr.expand(v);
    }
    if (!vr.valid()) {
        os << "(no finite data)\n";
        return;
    }
    std::size_t label_w = 0;
    for (const auto &l : row_labels)
        label_w = std::max(label_w, l.size());

    if (!title.empty()) {
        os << title << "  [scale " << kShades[0] << "="
           << vr.lo << " .. " << kShades[9] << "=" << vr.hi << "]\n";
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << row_labels[r]
           << std::string(label_w - row_labels[r].size(), ' ')
           << " |";
        for (double v : rows[r]) {
            int shade = 0;
            if (std::isfinite(v)) {
                shade = static_cast<int>(
                    std::lround((v - vr.lo) / vr.span() * 9.0));
                shade = std::clamp(shade, 0, 9);
            }
            os << kShades[shade] << kShades[shade];
        }
        os << "|\n";
    }
}

} // namespace ahq::report

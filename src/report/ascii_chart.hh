/**
 * @file
 * ASCII charts: line series and heatmaps rendered to a stream, so
 * the figure-reproducing benches show the paper's curve shapes
 * directly in the terminal.
 */

#ifndef AHQ_REPORT_ASCII_CHART_HH
#define AHQ_REPORT_ASCII_CHART_HH

#include <ostream>
#include <string>
#include <vector>

namespace ahq::report
{

/** One named series of (x, y) points. */
struct Series
{
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
};

/**
 * Render one or more series as an ASCII scatter/line chart.
 *
 * @param os Output stream.
 * @param series The series; each gets a distinct glyph.
 * @param width Plot width in characters.
 * @param height Plot height in characters.
 * @param title Chart title.
 */
void lineChart(std::ostream &os, const std::vector<Series> &series,
               int width = 72, int height = 18,
               const std::string &title = "");

/**
 * Render a matrix as an ASCII heatmap (dark = high).
 *
 * @param os Output stream.
 * @param rows rows[r][c] values; all rows equal length.
 * @param row_labels Labels printed left of each row.
 * @param title Heatmap title.
 */
void heatmap(std::ostream &os,
             const std::vector<std::vector<double>> &rows,
             const std::vector<std::string> &row_labels,
             const std::string &title = "");

} // namespace ahq::report

#endif // AHQ_REPORT_ASCII_CHART_HH

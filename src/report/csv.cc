/**
 * @file
 * CSV writer implementation.
 */

#include "report/csv.hh"

namespace ahq::report
{

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : out(path, std::ios::trunc)
{
    if (ok())
        addRow(header);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += "\"\"";
        else
            quoted += c;
    }
    quoted += "\"";
    return quoted;
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    if (!ok())
        return;
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i)
            out << ",";
        out << escape(row[i]);
    }
    out << "\n";
}

} // namespace ahq::report

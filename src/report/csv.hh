/**
 * @file
 * CSV output so every bench can also dump machine-readable series
 * (one CSV per table/figure) for external plotting.
 */

#ifndef AHQ_REPORT_CSV_HH
#define AHQ_REPORT_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace ahq::report
{

/**
 * Minimal CSV writer with RFC-4180 quoting.
 */
class CsvWriter
{
  public:
    /**
     * Open (truncate) the file and write the header row.
     * Failure to open is non-fatal: writes become no-ops, so benches
     * still run in read-only environments.
     */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);

    /** Whether the file opened successfully. */
    bool ok() const { return out.is_open() && out.good(); }

    /** Write one row of string cells. */
    void addRow(const std::vector<std::string> &row);

    /** Escape a cell per RFC 4180. */
    static std::string escape(const std::string &cell);

  private:
    std::ofstream out;
};

} // namespace ahq::report

#endif // AHQ_REPORT_CSV_HH

/**
 * @file
 * Text table implementation.
 */

#include "report/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ahq::report
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(headers_.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    if (std::isnan(v))
        return "nan";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell =
                c < row.size() ? row[c] : std::string();
            os << "  " << cell
               << std::string(widths[c] - cell.size(), ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
heading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace ahq::report

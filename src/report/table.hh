/**
 * @file
 * Plain-text table rendering for the benchmark harness, so every
 * bench binary can print the paper's tables/figure series in a
 * readable aligned form.
 */

#ifndef AHQ_REPORT_TABLE_HH
#define AHQ_REPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ahq::report
{

/**
 * A simple column-aligned text table.
 */
class TextTable
{
  public:
    /** @param headers Column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it is padded/truncated to the column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section heading ("== title ==") to the stream. */
void heading(std::ostream &os, const std::string &title);

} // namespace ahq::report

#endif // AHQ_REPORT_TABLE_HH

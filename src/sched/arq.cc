/**
 * @file
 * ARQ controller implementation.
 */

#include "sched/arq.hh"

#include <algorithm>
#include <cassert>

#include "obs/span.hh"

namespace ahq::sched
{

using machine::AppId;
using machine::kAllResourceKinds;
using machine::kNoRegion;
using machine::kNumResourceKinds;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

Arq::Arq(ArqConfig config)
    : cfg(config)
{
}

void
Arq::reset()
{
    prevEs = 1.0;
    isAdjust = false;
    settleLeft = 0;
    lastAction_ = nullptr;
    lastMove = {};
    banUntil.clear();
    fsmIndex.clear();
    lastGoodRet.clear();
    retBuf.clear();
    report = {};
}

void
Arq::onActuation(bool applied)
{
    if (applied || lastAction_ == nullptr)
        return;
    obsScope().count("arq.actuation_failed");
    if (lastAction_ == std::string("move")) {
        // The move never reached the knobs: forget it, or the next
        // interval would judge (and possibly roll back) a phantom
        // adjustment and mis-move a unit.
        isAdjust = false;
        settleLeft = 0;
        lastMove = {};
    } else if (lastAction_ == std::string("rollback")) {
        // The cancellation failed, so the bad move is still live on
        // the knobs; re-arm so the rollback is retried while E_S
        // stays elevated.
        isAdjust = true;
    }
    // hold/settle/skip mutate nothing, so they can never fail to
    // take effect (the injector reports ok for no-op decisions).
}

machine::RegionLayout
Arq::initialLayout(const machine::MachineConfig &config,
                   const std::vector<AppObservation> &apps)
{
    std::vector<AppId> lc, be;
    splitKinds(apps, lc, be);
    if (cfg.sharedRegionEnabled) {
        return RegionLayout::arqInitial(config.availableResources(),
                                        lc, be);
    }

    // Ablation: full isolation. LC apps get even isolated regions;
    // the "shared" region holds only BE apps (an ordinary BE pool).
    const auto avail = config.availableResources();
    RegionLayout layout(avail);
    const int groups =
        static_cast<int>(lc.size()) + (be.empty() ? 0 : 1);
    auto share = [&](ResourceKind kind, int index) {
        const int total = avail.get(kind);
        return total / groups + (index < total % groups ? 1 : 0);
    };
    machine::Region pool;
    pool.name = "shared";
    pool.shared = true;
    pool.members = be;
    for (ResourceKind kind : kAllResourceKinds)
        pool.res.set(kind, share(kind, 0));
    layout.addRegion(std::move(pool));
    int index = 1;
    for (AppId app : lc) {
        machine::Region r;
        r.name = "iso" + std::to_string(app);
        r.shared = false;
        r.members = {app};
        for (ResourceKind kind : kAllResourceKinds)
            r.res.set(kind, share(kind, index));
        layout.addRegion(std::move(r));
        ++index;
    }
    assert(layout.valid());
    return layout;
}

void
Arq::remainingToleranceInto(const std::vector<AppObservation> &obs,
                            std::vector<Tolerance> &ret) const
{
    AppId max_id = -1;
    for (const auto &o : obs)
        max_id = std::max(max_id, o.id);
    ret.assign(static_cast<std::size_t>(max_id + 1), Tolerance{});
    for (const auto &o : obs) {
        if (!o.latencyCritical)
            continue;
        const core::LcBreakdown b = core::lcBreakdown(
            {o.idealP95Ms, o.p95Ms, o.thresholdMs});
        ret[static_cast<std::size_t>(o.id)] = {
            b.remainingTolerance, b.intolerable, true};
    }
}

RegionId
Arq::findVictimRegion(const RegionLayout &layout,
                      const std::vector<Tolerance> &ret,
                      double now_s) const
{
    // Traverse the ReT array in descending order (Algorithm 1,
    // FINDVICTIMREGION). The array is AppId-indexed, so ascending
    // AppId enumeration plus the reverse pair sort reproduce the
    // exact traversal order of the former ordered-map walk.
    orderBuf.clear();
    for (std::size_t i = 0; i < ret.size(); ++i) {
        if (ret[i].lc)
            orderBuf.emplace_back(ret[i].ret,
                                  static_cast<AppId>(i));
    }
    std::sort(orderBuf.rbegin(), orderBuf.rend());

    for (const auto &[r, app] : orderBuf) {
        if (r <= cfg.victimRetThreshold)
            break;
        const RegionId iso = layout.isolatedRegionOf(app);
        if (iso == kNoRegion)
            continue;
        const auto ban = banUntil.find(iso);
        if (ban != banUntil.end() && now_s < ban->second)
            continue; // region is penalty-banned
        if (layout.region(iso).res.empty())
            continue; // nothing to donate
        return iso;
    }
    // The shared region is the fallback donor, but it too can be
    // penalty-banned after a rolled-back adjustment.
    const RegionId shared = layout.sharedRegion();
    if (shared != kNoRegion) {
        const auto ban = banUntil.find(shared);
        if (ban != banUntil.end() && now_s < ban->second)
            return kNoRegion;
    }
    return shared;
}

RegionId
Arq::findBeneficiaryRegion(const RegionLayout &layout,
                           const std::vector<Tolerance> &ret) const
{
    // Identify the application with the smallest ReT (Algorithm 1,
    // FINDBENEFICIARYREGION). ReT saturates at 0 for every violated
    // app, so ties are broken towards the largest intolerable
    // interference Q_i — the app hurting the most. Ascending AppId
    // enumeration keeps the former map's first-seen tie behaviour.
    AppId poorest = machine::kNoApp;
    Tolerance worst{2.0, -1.0, false};
    for (std::size_t i = 0; i < ret.size(); ++i) {
        const Tolerance &t = ret[i];
        if (!t.lc)
            continue;
        const bool better = t.ret < worst.ret ||
            (t.ret == worst.ret && t.q > worst.q);
        if (better) {
            worst = t;
            poorest = static_cast<AppId>(i);
        }
    }
    if (poorest != machine::kNoApp &&
        worst.ret < cfg.beneficiaryRetThreshold) {
        const RegionId iso = layout.isolatedRegionOf(poorest);
        if (iso != kNoRegion)
            return iso;
    }
    return layout.sharedRegion();
}

bool
Arq::adjustResource(RegionLayout &layout,
                    const std::vector<Tolerance> &ret, double now_s)
{
    const RegionId victim = findVictimRegion(layout, ret, now_s);
    const RegionId beneficiary = findBeneficiaryRegion(layout, ret);
    if (victim == kNoRegion || beneficiary == kNoRegion)
        return false;
    if (victim == beneficiary)
        return false; // equilibrium: nobody needs or donates

    // FINDVICTIMRESOURCE: a PARTIES-style FSM over resource types,
    // advancing when the current type cannot be penalised.
    int &fsm = fsmIndex[victim];
    for (int attempt = 0; attempt < kNumResourceKinds; ++attempt) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(
                (fsm + attempt) % kNumResourceKinds)];
        if (layout.moveResource(kind, victim, beneficiary)) {
            fsm = (fsm + attempt) % kNumResourceKinds;
            lastMove = {kind, victim, beneficiary};
            return true;
        }
    }
    fsm = (fsm + 1) % kNumResourceKinds;
    return false;
}

void
Arq::adjust(RegionLayout &layout,
            const std::vector<AppObservation> &obs, double now_s)
{
    const obs::Scope &scope = obsScope();

    // Monitor: compute E_S and the ReT array.
    std::vector<Tolerance> &ret = retBuf;
    {
        obs::Span span(scope, "arq.monitor");
        lcBuf.clear();
        beBuf.clear();
        for (const auto &o : obs) {
            if (o.latencyCritical)
                lcBuf.push_back(
                    {o.idealP95Ms, o.p95Ms, o.thresholdMs});
            else
                beBuf.push_back({o.ipcSolo, o.ipc});
        }
        core::computeEntropyInto(lcBuf, beBuf,
                                 cfg.relativeImportance, report);
        remainingToleranceInto(obs, ret);
    }
    const double es = report.eS;

    // Hold the last good ReT per app: a dropped sample repeats the
    // previous delivery, and the controller must not mistake that
    // staleness for a fresh reading.
    bool degraded = false;
    if (lastGoodRet.size() < ret.size())
        lastGoodRet.resize(ret.size());
    for (const auto &o : obs) {
        if (!o.sampleValid)
            degraded = true;
        if (!o.latencyCritical)
            continue;
        const auto id = static_cast<std::size_t>(o.id);
        if (o.sampleValid) {
            lastGoodRet[id] = ret[id];
        } else if (lastGoodRet[id].lc) {
            ret[id] = lastGoodRet[id];
        }
    }

    const char *action = "hold";
    double ban_until = -1.0;

    // Let the last adjustment's one-off repartitioning overhead
    // drain before judging it by E_S.
    if (settleLeft > 0) {
        --settleLeft;
        action = "settle";
    } else if (degraded) {
        // Degraded inputs: freeze. Steering on a stale repeat could
        // both mis-move a unit and mis-judge the previous move, so
        // neither prevEs nor isAdjust advances this interval.
        action = "skip";
    } else if (cfg.rollbackEnabled && isAdjust && es > prevEs) {
        // Cancel the last adjustment and ban the victim region from
        // being penalised again for banSeconds.
        layout.moveResource(lastMove.kind, lastMove.to,
                            lastMove.from);
        ban_until = now_s + cfg.banSeconds;
        banUntil[lastMove.from] = ban_until;
        isAdjust = false;
        action = "rollback";
        prevEs = es;
    } else {
        {
            // FINDVICTIMREGION + FINDVICTIMRESOURCE: the search
            // for a (victim, beneficiary, resource) move.
            obs::Span span(scope, "arq.search");
            isAdjust = adjustResource(layout, ret, now_s);
        }
        if (isAdjust) {
            settleLeft = cfg.settleEpochs;
            action = "move";
        }
        prevEs = es;
    }
    lastAction_ = action;

    scope.count(std::string("arq.") + action);
    if (scope.tracing()) {
        // One decision event per interval: the entropy inputs, the
        // full ReT/Q arrays and what Algorithm 1 did about them.
        std::vector<int> app_ids;
        std::vector<double> ret_arr, q_arr;
        for (std::size_t i = 0; i < ret.size(); ++i) {
            if (!ret[i].lc)
                continue;
            app_ids.push_back(static_cast<int>(i));
            ret_arr.push_back(ret[i].ret);
            q_arr.push_back(ret[i].q);
        }
        obs::Event ev("arq_decision");
        ev.num("t", now_s)
            .str("action", action)
            .num("e_lc", report.eLc)
            .num("e_be", report.eBe)
            .num("e_s", es)
            .ints("apps", app_ids)
            .nums("ret", ret_arr)
            .nums("q", q_arr);
        if (action == std::string("move") ||
            action == std::string("rollback")) {
            ev.str("kind", machine::toString(lastMove.kind))
                .integer("victim", lastMove.from)
                .integer("beneficiary", lastMove.to);
            const auto fsm = fsmIndex.find(lastMove.from);
            ev.integer("fsm", fsm != fsmIndex.end() ?
                                  fsm->second : 0);
        }
        if (ban_until >= 0.0) {
            ev.integer("ban_region", lastMove.from)
                .num("ban_until_s", ban_until);
        }
        scope.emit(ev);
    }
}

} // namespace ahq::sched

/**
 * @file
 * ARQ: the paper's scheduling strategy (Section IV, Algorithm 1).
 *
 * ARQ divides the node into one shared region (usable by everyone;
 * LC apps take priority there) plus one isolated region per LC app
 * (initially empty). Every monitoring interval it:
 *
 *  1. computes the system entropy E_S and the remaining-tolerance
 *     array ReT from the observations;
 *  2. if the previous adjustment *increased* E_S, cancels it and
 *     bans the previous victim region from being penalised for the
 *     next 60 s (escaping local optima);
 *  3. otherwise moves one resource unit from a victim region (an LC
 *     app with ReT > 0.1 that still owns isolated resources, else
 *     the shared region) to a beneficiary region (the isolated
 *     region of the LC app with the smallest ReT when that is below
 *     0.05, else the shared region), choosing the resource type with
 *     a PARTIES-style finite state machine;
 *  4. when victim and beneficiary are both the shared region the
 *     system is in equilibrium and nothing moves.
 */

#ifndef AHQ_SCHED_ARQ_HH
#define AHQ_SCHED_ARQ_HH

#include <map>
#include <vector>

#include "core/entropy.hh"
#include "sched/scheduler.hh"

namespace ahq::sched
{

/** Tunables of the ARQ controller (defaults are the paper's). */
struct ArqConfig
{
    /** Relative importance of LC over BE in E_S. */
    double relativeImportance = core::kDefaultRelativeImportance;

    /** ReT above which an LC app may donate isolated resources. */
    double victimRetThreshold = 0.10;

    /**
     * ReT below which an LC app's isolated region is grown. A bit
     * above the paper's 0.05 wording so the controller leaves the
     * app measurable headroom against monitoring noise instead of
     * parking its tail latency exactly on the QoS threshold.
     */
    double beneficiaryRetThreshold = 0.08;

    /** How long a cancelled victim region is banned, seconds. */
    double banSeconds = 60.0;

    /** Ablation: disable the rollback-on-entropy-increase step. */
    bool rollbackEnabled = true;

    /**
     * Intervals to let the system settle after an adjustment before
     * judging it by E_S: the adjustment interval itself carries the
     * one-off repartitioning overhead (cache warm-up, migration),
     * which would otherwise make every beneficial move look like an
     * entropy increase and be rolled back.
     */
    int settleEpochs = 1;

    /**
     * Ablation: when false, LC apps may not use the shared region
     * (the layout degenerates to PARTIES-style full isolation with a
     * BE pool).
     */
    bool sharedRegionEnabled = true;
};

/**
 * The ARQ feedback controller.
 */
class Arq : public Scheduler
{
  public:
    explicit Arq(ArqConfig config = {});

    std::string name() const override { return "ARQ"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        return perf::CoreSharePolicy::LcPriority;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;

    void reset() override;

    /**
     * Actuation feedback (fault injection). A failed `move` is
     * forgotten — it never reached the knobs, so judging it by the
     * next E_S would roll back a phantom adjustment and mis-move a
     * unit. A failed `rollback` re-arms the controller so the still
     * live cancelled move is retried next interval.
     */
    void onActuation(bool applied) override;

    /** Last computed entropy report (for introspection/tests). */
    const core::EntropyReport &lastReport() const { return report; }

    /** The controller tunables in force. */
    const ArqConfig &config() const { return cfg; }

    /**
     * What the last adjust() decided: "hold", "move", "rollback",
     * "settle" or "skip" (degraded inputs — see sampleValid); null
     * before the first interval. The invariant auditor (src/check/)
     * keys its FSM-legality checks off this.
     */
    const char *lastAction() const { return lastAction_; }

  private:
    ArqConfig cfg;

    double prevEs = 1.0;
    bool isAdjust = false;
    int settleLeft = 0;
    const char *lastAction_ = nullptr;

    struct Move
    {
        machine::ResourceKind kind = machine::ResourceKind::Cores;
        machine::RegionId from = machine::kNoRegion;
        machine::RegionId to = machine::kNoRegion;
    };
    Move lastMove;

    /** Region id -> time until which it may not be penalised. */
    std::map<machine::RegionId, double> banUntil;

    /** Per-region FSM position for findVictimResource. */
    std::map<machine::RegionId, int> fsmIndex;

    core::EntropyReport report;

    /**
     * Per-app (ReT_i, Q_i) entry of the ReT array. The array is a
     * flat vector indexed by AppId (struct-of-decisions hot path:
     * the per-epoch monitor fills it by index with no node lookups
     * or allocations once warm); `lc` marks the LC entries — BE
     * slots stay defaulted and are skipped by every traversal.
     */
    struct Tolerance
    {
        double ret = 0.0; // remaining tolerance
        double q = 0.0;   // intolerable interference
        bool lc = false;  // entry belongs to an LC app
    };

    /** ReT array scratch, rebuilt every interval (AppId-indexed). */
    std::vector<Tolerance> retBuf;

    /** Entropy-input scratch, rebuilt every interval. */
    std::vector<core::LcObservation> lcBuf;
    std::vector<core::BeObservation> beBuf;

    /**
     * Last ReT computed from a *delivered* measurement per app
     * (AppId-indexed; `lc` doubles as the presence flag). When an
     * app's sample is dropped the controller steers (well, holds)
     * on this instead of the stale repeat.
     */
    std::vector<Tolerance> lastGoodRet;

    /** Victim-search ordering scratch: (ReT, AppId) pairs. */
    mutable std::vector<std::pair<double, machine::AppId>> orderBuf;

    void
    remainingToleranceInto(const std::vector<AppObservation> &obs,
                           std::vector<Tolerance> &ret) const;

    machine::RegionId
    findVictimRegion(const machine::RegionLayout &layout,
                     const std::vector<Tolerance> &ret,
                     double now_s) const;

    machine::RegionId
    findBeneficiaryRegion(const machine::RegionLayout &layout,
                          const std::vector<Tolerance> &ret) const;

    /** Algorithm 1's AdjustResource; true when a unit moved. */
    bool adjustResource(machine::RegionLayout &layout,
                        const std::vector<Tolerance> &ret,
                        double now_s);
};

} // namespace ahq::sched

#endif // AHQ_SCHED_ARQ_HH

/**
 * @file
 * CLITE controller implementation.
 */

#include "sched/clite.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/span.hh"

namespace ahq::sched
{

using machine::AppId;
using machine::kAllResourceKinds;
using machine::kNumResourceKinds;
using machine::RegionLayout;
using machine::ResourceKind;

Clite::Clite(CliteConfig config)
    : cfg(config), rng(config.seed)
{
}

void
Clite::reset()
{
    rng = stats::Rng(cfg.seed);
    xs.clear();
    ys.clear();
    rawAllocs.clear();
    currentAlloc.clear();
    lastLoads.clear();
    exploiting = false;
    exploreCount = 0;
    violationStreak = 0;
    settleLeft = 0;
    numGroups = 0;
}

void
Clite::onActuation(bool applied)
{
    if (applied)
        return;
    obsScope().count("clite.actuation_failed");
    // Reconcile: forget the intended deployment so the next
    // interval re-reads the layout actually in force and scores
    // that, not the configuration that never made it to the knobs.
    currentAlloc.clear();
}

machine::RegionLayout
Clite::initialLayout(const machine::MachineConfig &config,
                     const std::vector<AppObservation> &apps)
{
    std::vector<AppId> lc, be;
    splitKinds(apps, lc, be);
    available = config.availableResources();
    numGroups = static_cast<int>(lc.size()) + (be.empty() ? 0 : 1);
    assert(numGroups > 0);

    RegionLayout layout(available);
    for (AppId app : lc) {
        machine::Region r;
        r.name = "clite-iso" + std::to_string(app);
        r.shared = false;
        r.members = {app};
        layout.addRegion(std::move(r));
    }
    if (!be.empty()) {
        machine::Region pool;
        pool.name = "clite-bepool";
        pool.shared = true;
        pool.members = be;
        layout.addRegion(std::move(pool));
    }

    // Start from the even split; its score is the first sample.
    std::vector<int> alloc(
        static_cast<std::size_t>(numGroups) * kNumResourceKinds, 0);
    for (int k = 0; k < kNumResourceKinds; ++k) {
        const int total = available.get(kAllResourceKinds[
            static_cast<std::size_t>(k)]);
        for (int g = 0; g < numGroups; ++g) {
            alloc[static_cast<std::size_t>(g * kNumResourceKinds +
                                           k)] =
                total / numGroups + (g < total % numGroups ? 1 : 0);
        }
    }
    currentAlloc = alloc;
    applyAlloc(layout, alloc);
    assert(layout.valid());
    return layout;
}

double
Clite::objective(const std::vector<AppObservation> &obs) const
{
    int lc_total = 0, lc_met = 0;
    double be_sum = 0.0;
    int be_total = 0;
    double slack_sum = 0.0;
    double deficit_sum = 0.0;
    for (const auto &o : obs) {
        if (o.latencyCritical) {
            ++lc_total;
            if (o.p95Ms <= cfg.guardBand * o.thresholdMs)
                ++lc_met;
            slack_sum += std::clamp(o.slack(), 0.0, 1.0);
            // Log-scaled deficit keeps a gradient even when the
            // violation is an order of magnitude over the target.
            if (o.p95Ms > o.thresholdMs) {
                deficit_sum += std::min(
                    4.0, std::log(o.p95Ms / o.thresholdMs));
            }
        } else {
            ++be_total;
            be_sum += o.ipc / std::max(1e-9, o.ipcSolo);
        }
    }
    if (lc_total > 0 && lc_met < lc_total) {
        // Penalised region: strictly below every QoS-feasible score,
        // graded by violation magnitude so that when QoS is
        // infeasible the least-bad configuration still wins.
        return static_cast<double>(lc_met) /
            static_cast<double>(lc_total) - 1.0 -
            0.2 * deficit_sum / static_cast<double>(lc_total);
    }
    if (be_total > 0)
        return be_sum / static_cast<double>(be_total);
    // No BE apps: prefer configurations with more LC slack.
    return lc_total > 0 ?
        1.0 + 0.1 * slack_sum / static_cast<double>(lc_total) : 1.0;
}

std::vector<int>
Clite::randomAlloc()
{
    std::vector<int> alloc(
        static_cast<std::size_t>(numGroups) * kNumResourceKinds, 0);
    for (int k = 0; k < kNumResourceKinds; ++k) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const int total = available.get(kind);
        const int min_per =
            (kind == ResourceKind::MemBw) ? 0 :
            (total >= numGroups ? 1 : 0);
        int remaining = total - min_per * numGroups;
        assert(remaining >= 0);

        // Random proportional split via uniform weights.
        std::vector<double> w(static_cast<std::size_t>(numGroups));
        double w_sum = 0.0;
        for (auto &v : w) {
            v = rng.uniform() + 0.05;
            w_sum += v;
        }
        std::vector<int> extra(static_cast<std::size_t>(numGroups),
                               0);
        int assigned = 0;
        for (int g = 0; g < numGroups; ++g) {
            extra[static_cast<std::size_t>(g)] = static_cast<int>(
                std::floor(remaining *
                           w[static_cast<std::size_t>(g)] / w_sum));
            assigned += extra[static_cast<std::size_t>(g)];
        }
        // Distribute the rounding remainder round-robin.
        int leftover = remaining - assigned;
        for (int g = 0; leftover > 0;
             g = (g + 1) % numGroups, --leftover) {
            ++extra[static_cast<std::size_t>(g)];
        }
        for (int g = 0; g < numGroups; ++g) {
            alloc[static_cast<std::size_t>(g * kNumResourceKinds +
                                           k)] =
                min_per + extra[static_cast<std::size_t>(g)];
        }
    }
    return alloc;
}

std::vector<int>
Clite::perturbAlloc(const std::vector<int> &base)
{
    std::vector<int> alloc = base;
    // Move one unit of a random kind between two random groups,
    // preserving the per-group minimum of 1 core / 1 way.
    for (int tries = 0; tries < 8; ++tries) {
        const int k = static_cast<int>(
            rng.uniformInt(kNumResourceKinds));
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const int from = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(numGroups)));
        const int to = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(numGroups)));
        if (from == to)
            continue;
        const auto fi =
            static_cast<std::size_t>(from * kNumResourceKinds + k);
        const auto ti =
            static_cast<std::size_t>(to * kNumResourceKinds + k);
        const int min_keep = kind == ResourceKind::MemBw ? 0 : 1;
        if (alloc[fi] > min_keep) {
            --alloc[fi];
            ++alloc[ti];
            break;
        }
    }
    return alloc;
}

std::vector<int>
Clite::rebalanceAlloc(const std::vector<int> &base,
                      const std::vector<AppObservation> &obs)
{
    std::vector<int> alloc = base;

    // Group order mirrors initialLayout: LC apps in observation
    // order, then the BE pool.
    std::vector<int> violated, donors;
    int g = 0;
    bool has_be = false;
    for (const auto &o : obs) {
        if (!o.latencyCritical) {
            has_be = true;
            continue;
        }
        if (o.p95Ms > o.thresholdMs)
            violated.push_back(g);
        else if (o.slack() > 0.2)
            donors.push_back(g);
        ++g;
    }
    if (has_be)
        donors.push_back(numGroups - 1); // the BE pool donates too
    if (violated.empty() || donors.empty())
        return perturbAlloc(base);

    // Shift a few units of random kinds towards the violated groups.
    const int moves = 1 + static_cast<int>(rng.uniformInt(3));
    for (int m = 0; m < moves; ++m) {
        const int to =
            violated[rng.uniformInt(violated.size())];
        const int from = donors[rng.uniformInt(donors.size())];
        const int k = static_cast<int>(
            rng.uniformInt(kNumResourceKinds));
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const auto fi =
            static_cast<std::size_t>(from * kNumResourceKinds + k);
        const auto ti =
            static_cast<std::size_t>(to * kNumResourceKinds + k);
        const int min_keep = kind == ResourceKind::MemBw ? 0 : 1;
        if (alloc[fi] > min_keep) {
            --alloc[fi];
            ++alloc[ti];
        }
    }
    return alloc;
}

std::vector<double>
Clite::normalise(const std::vector<int> &alloc) const
{
    std::vector<double> x(alloc.size());
    for (int g = 0; g < numGroups; ++g) {
        for (int k = 0; k < kNumResourceKinds; ++k) {
            const int total = available.get(kAllResourceKinds[
                static_cast<std::size_t>(k)]);
            const auto i =
                static_cast<std::size_t>(g * kNumResourceKinds + k);
            x[i] = total > 0 ?
                static_cast<double>(alloc[i]) / total : 0.0;
        }
    }
    return x;
}

void
Clite::applyAlloc(machine::RegionLayout &layout,
                  const std::vector<int> &alloc)
{
    const int groups = layout.numRegions();
    assert(static_cast<int>(alloc.size()) ==
           groups * kNumResourceKinds);
    for (int g = 0; g < groups; ++g) {
        machine::Region &r = layout.region(g);
        for (int k = 0; k < kNumResourceKinds; ++k) {
            r.res.set(kAllResourceKinds[static_cast<std::size_t>(k)],
                      alloc[static_cast<std::size_t>(
                          g * kNumResourceKinds + k)]);
        }
    }
    assert(layout.valid());
}

std::vector<int>
Clite::readAlloc(const machine::RegionLayout &layout)
{
    std::vector<int> alloc;
    for (int g = 0; g < layout.numRegions(); ++g) {
        for (int k = 0; k < kNumResourceKinds; ++k) {
            alloc.push_back(layout.region(g).res.get(
                kAllResourceKinds[static_cast<std::size_t>(k)]));
        }
    }
    return alloc;
}

void
Clite::adjust(machine::RegionLayout &layout,
              const std::vector<AppObservation> &obs, double)
{
    if (currentAlloc.empty())
        currentAlloc = readAlloc(layout);

    // Degraded inputs: scoring a stale measurement repeat would
    // poison the surrogate with a wrong (x, y) pair (and stale
    // loads would confuse shift detection), so skip the interval.
    for (const auto &o : obs) {
        if (!o.sampleValid) {
            obsScope().count("clite.skip_degraded");
            return;
        }
    }

    // Detect load shifts: the pinned optimum is stale, re-explore.
    std::vector<double> loads;
    for (const auto &o : obs) {
        if (o.latencyCritical)
            loads.push_back(o.loadFraction);
    }
    if (!lastLoads.empty() && loads.size() == lastLoads.size()) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            if (std::abs(loads[i] - lastLoads[i]) >
                cfg.loadShiftThreshold) {
                xs.clear();
                ys.clear();
                rawAllocs.clear();
                exploiting = false;
                exploreCount = 0;
                violationStreak = 0;
                settleLeft = 0;
                obsScope().count("clite.load_shift");
                if (obsScope().tracing()) {
                    obs::Event ev("clite_decision");
                    ev.str("action", "re_explore");
                    obsScope().emit(ev);
                }
                break;
            }
        }
    }
    lastLoads = loads;

    // Let the system settle on the deployed sample before scoring:
    // the previous sample's queue backlog would otherwise make a
    // feasible configuration measure as a violation.
    if (!exploiting && settleLeft > 0) {
        --settleLeft;
        obsScope().count("clite.settle");
        return;
    }

    // Score the configuration that was live during this interval.
    obs::Span sample_span(obsScope(), "clite.sample");
    const double score = objective(obs);
    xs.push_back(normalise(currentAlloc));
    ys.push_back(score);
    rawAllocs.push_back(currentAlloc);

    if (exploiting) {
        // A pinned optimum that keeps violating QoS even though a
        // feasible configuration was seen is stale: resume the
        // search. When nothing feasible was ever found, churning
        // through more live samples only hurts, so stay pinned on
        // the least-bad configuration.
        const double best_seen =
            *std::max_element(ys.begin(), ys.end());
        violationStreak = score < 0.0 ? violationStreak + 1 : 0;
        if (violationStreak >= cfg.violationPatience &&
            best_seen >= 0.0) {
            exploiting = false;
            exploreCount = cfg.totalBudget / 2;
            violationStreak = 0;
        }
    } else {
        ++exploreCount;
        if (exploreCount >= cfg.totalBudget)
            exploiting = true;
    }

    std::vector<int> next;
    const auto best_it = std::max_element(ys.begin(), ys.end());
    const std::size_t best_idx =
        static_cast<std::size_t>(best_it - ys.begin());

    if (exploiting) {
        next = rawAllocs[best_idx];
    } else if (score < 0.0 && rng.bernoulli(0.6)) {
        // The live config violated QoS: usually hill-climb from the
        // best configuration seen so far instead of waiting for the
        // surrogate to learn the constraint boundary, but keep some
        // probability mass on the global search for diversity.
        next = rebalanceAlloc(rawAllocs[best_idx], obs);
    } else if (exploreCount < cfg.initialSamples) {
        next = randomAlloc();
    } else {
        obs::Span span(obsScope(), "clite.gp");
        GaussianProcess gp(cfg.gpLengthScale, cfg.gpSignalVar,
                           cfg.gpNoiseVar);
        gp.fit(xs, ys);
        const double best_y = *best_it;

        double best_ei = -1.0;
        for (int cand = 0; cand < cfg.candidatePool; ++cand) {
            // Mix global random draws with local refinements of the
            // incumbent and demand-directed rebalances, CLITE-style.
            std::vector<int> a;
            switch (cand % 4) {
              case 0:
                a = perturbAlloc(rawAllocs[best_idx]);
                break;
              case 1:
                a = rebalanceAlloc(rawAllocs[best_idx], obs);
                break;
              default:
                a = randomAlloc();
                break;
            }
            const double ei =
                gp.expectedImprovement(normalise(a), best_y);
            if (ei > best_ei) {
                best_ei = ei;
                next = std::move(a);
            }
        }
        if (next.empty())
            next = randomAlloc();
    }

    currentAlloc = next;
    applyAlloc(layout, next);
    if (!exploiting)
        settleLeft = cfg.settleEpochs;

    const obs::Scope &scope = obsScope();
    scope.count(exploiting ? "clite.exploit" : "clite.sample");
    if (scope.tracing()) {
        obs::Event ev("clite_decision");
        ev.str("action", exploiting ? "exploit" : "sample")
            .num("score", score)
            .num("best",
                 *std::max_element(ys.begin(), ys.end()))
            .integer("samples",
                     static_cast<long long>(ys.size()));
        scope.emit(ev);
    }
}

} // namespace ahq::sched

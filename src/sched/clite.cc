/**
 * @file
 * CLITE controller implementation.
 *
 * Hot-path note: adjust() runs every monitoring interval, so the
 * decision loop works entirely on member scratch buffers and the
 * persistent incrementally-updated GP — after the first few
 * intervals a decision performs no heap allocation.
 */

#include "sched/clite.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/span.hh"

namespace ahq::sched
{

using machine::AppId;
using machine::kAllResourceKinds;
using machine::kNumResourceKinds;
using machine::RegionLayout;
using machine::ResourceKind;

Clite::Clite(CliteConfig config)
    : cfg(config), rng(config.seed),
      gp(config.gpLengthScale, config.gpSignalVar, config.gpNoiseVar)
{
    gp.setWindowCap(cfg.gpWindowCap > 0
                        ? static_cast<std::size_t>(cfg.gpWindowCap)
                        : 0);
}

void
Clite::reset()
{
    rng = stats::Rng(cfg.seed);
    gp.clear();
    ys.clear();
    rawAllocs.clear();
    currentAlloc.clear();
    lastLoads.clear();
    exploiting = false;
    exploreCount = 0;
    violationStreak = 0;
    settleLeft = 0;
    numGroups = 0;
}

void
Clite::onActuation(bool applied)
{
    if (applied)
        return;
    obsScope().count("clite.actuation_failed");
    // Reconcile: forget the intended deployment so the next
    // interval re-reads the layout actually in force and scores
    // that, not the configuration that never made it to the knobs.
    currentAlloc.clear();
}

machine::RegionLayout
Clite::initialLayout(const machine::MachineConfig &config,
                     const std::vector<AppObservation> &apps)
{
    std::vector<AppId> lc, be;
    splitKinds(apps, lc, be);
    available = config.availableResources();
    numGroups = static_cast<int>(lc.size()) + (be.empty() ? 0 : 1);
    assert(numGroups > 0);

    RegionLayout layout(available);
    for (AppId app : lc) {
        machine::Region r;
        r.name = "clite-iso" + std::to_string(app);
        r.shared = false;
        r.members = {app};
        layout.addRegion(std::move(r));
    }
    if (!be.empty()) {
        machine::Region pool;
        pool.name = "clite-bepool";
        pool.shared = true;
        pool.members = be;
        layout.addRegion(std::move(pool));
    }

    // Start from the even split; its score is the first sample.
    std::vector<int> alloc(
        static_cast<std::size_t>(numGroups) * kNumResourceKinds, 0);
    for (int k = 0; k < kNumResourceKinds; ++k) {
        const int total = available.get(kAllResourceKinds[
            static_cast<std::size_t>(k)]);
        for (int g = 0; g < numGroups; ++g) {
            alloc[static_cast<std::size_t>(g * kNumResourceKinds +
                                           k)] =
                total / numGroups + (g < total % numGroups ? 1 : 0);
        }
    }
    currentAlloc = alloc;
    applyAlloc(layout, alloc);
    assert(layout.valid());
    return layout;
}

double
Clite::objective(const std::vector<AppObservation> &obs) const
{
    int lc_total = 0, lc_met = 0;
    double be_sum = 0.0;
    int be_total = 0;
    double slack_sum = 0.0;
    double deficit_sum = 0.0;
    for (const auto &o : obs) {
        if (o.latencyCritical) {
            ++lc_total;
            if (o.p95Ms <= cfg.guardBand * o.thresholdMs)
                ++lc_met;
            slack_sum += std::clamp(o.slack(), 0.0, 1.0);
            // Log-scaled deficit keeps a gradient even when the
            // violation is an order of magnitude over the target.
            if (o.p95Ms > o.thresholdMs) {
                deficit_sum += std::min(
                    4.0, std::log(o.p95Ms / o.thresholdMs));
            }
        } else {
            ++be_total;
            be_sum += o.ipc / std::max(1e-9, o.ipcSolo);
        }
    }
    if (lc_total > 0 && lc_met < lc_total) {
        // Penalised region: strictly below every QoS-feasible score,
        // graded by violation magnitude so that when QoS is
        // infeasible the least-bad configuration still wins.
        return static_cast<double>(lc_met) /
            static_cast<double>(lc_total) - 1.0 -
            0.2 * deficit_sum / static_cast<double>(lc_total);
    }
    if (be_total > 0)
        return be_sum / static_cast<double>(be_total);
    // No BE apps: prefer configurations with more LC slack.
    return lc_total > 0 ?
        1.0 + 0.1 * slack_sum / static_cast<double>(lc_total) : 1.0;
}

void
Clite::randomAllocInto(std::vector<int> &out)
{
    out.assign(
        static_cast<std::size_t>(numGroups) * kNumResourceKinds, 0);
    for (int k = 0; k < kNumResourceKinds; ++k) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const int total = available.get(kind);
        const int min_per =
            (kind == ResourceKind::MemBw) ? 0 :
            (total >= numGroups ? 1 : 0);
        int remaining = total - min_per * numGroups;
        assert(remaining >= 0);

        // Random proportional split via uniform weights.
        wBuf.assign(static_cast<std::size_t>(numGroups), 0.0);
        double w_sum = 0.0;
        for (auto &v : wBuf) {
            v = rng.uniform() + 0.05;
            w_sum += v;
        }
        extraBuf.assign(static_cast<std::size_t>(numGroups), 0);
        int assigned = 0;
        for (int g = 0; g < numGroups; ++g) {
            extraBuf[static_cast<std::size_t>(g)] = static_cast<int>(
                std::floor(remaining *
                           wBuf[static_cast<std::size_t>(g)] /
                           w_sum));
            assigned += extraBuf[static_cast<std::size_t>(g)];
        }
        // Distribute the rounding remainder round-robin.
        int leftover = remaining - assigned;
        for (int g = 0; leftover > 0;
             g = (g + 1) % numGroups, --leftover) {
            ++extraBuf[static_cast<std::size_t>(g)];
        }
        for (int g = 0; g < numGroups; ++g) {
            out[static_cast<std::size_t>(g * kNumResourceKinds + k)] =
                min_per + extraBuf[static_cast<std::size_t>(g)];
        }
    }
}

void
Clite::perturbAllocInto(const std::vector<int> &base,
                        std::vector<int> &out)
{
    out = base;
    // Move one unit of a random kind between two random groups,
    // preserving the per-group minimum of 1 core / 1 way.
    for (int tries = 0; tries < 8; ++tries) {
        const int k = static_cast<int>(
            rng.uniformInt(kNumResourceKinds));
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const int from = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(numGroups)));
        const int to = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(numGroups)));
        if (from == to)
            continue;
        const auto fi =
            static_cast<std::size_t>(from * kNumResourceKinds + k);
        const auto ti =
            static_cast<std::size_t>(to * kNumResourceKinds + k);
        const int min_keep = kind == ResourceKind::MemBw ? 0 : 1;
        if (out[fi] > min_keep) {
            --out[fi];
            ++out[ti];
            break;
        }
    }
}

void
Clite::rebalanceAllocInto(const std::vector<int> &base,
                          const std::vector<AppObservation> &obs,
                          std::vector<int> &out)
{
    // Group order mirrors initialLayout: LC apps in observation
    // order, then the BE pool.
    violatedBuf.clear();
    donorBuf.clear();
    int g = 0;
    bool has_be = false;
    for (const auto &o : obs) {
        if (!o.latencyCritical) {
            has_be = true;
            continue;
        }
        if (o.p95Ms > o.thresholdMs)
            violatedBuf.push_back(g);
        else if (o.slack() > 0.2)
            donorBuf.push_back(g);
        ++g;
    }
    if (has_be)
        donorBuf.push_back(numGroups - 1); // the BE pool donates too
    if (violatedBuf.empty() || donorBuf.empty()) {
        perturbAllocInto(base, out);
        return;
    }
    out = base;

    // Shift a few units of random kinds towards the violated groups.
    const int moves = 1 + static_cast<int>(rng.uniformInt(3));
    for (int m = 0; m < moves; ++m) {
        const int to =
            violatedBuf[rng.uniformInt(violatedBuf.size())];
        const int from = donorBuf[rng.uniformInt(donorBuf.size())];
        const int k = static_cast<int>(
            rng.uniformInt(kNumResourceKinds));
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(k)];
        const auto fi =
            static_cast<std::size_t>(from * kNumResourceKinds + k);
        const auto ti =
            static_cast<std::size_t>(to * kNumResourceKinds + k);
        const int min_keep = kind == ResourceKind::MemBw ? 0 : 1;
        if (out[fi] > min_keep) {
            --out[fi];
            ++out[ti];
        }
    }
}

void
Clite::normaliseInto(const std::vector<int> &alloc,
                     std::vector<double> &x) const
{
    x.resize(alloc.size());
    for (int g = 0; g < numGroups; ++g) {
        for (int k = 0; k < kNumResourceKinds; ++k) {
            const int total = available.get(kAllResourceKinds[
                static_cast<std::size_t>(k)]);
            const auto i =
                static_cast<std::size_t>(g * kNumResourceKinds + k);
            x[i] = total > 0 ?
                static_cast<double>(alloc[i]) / total : 0.0;
        }
    }
}

void
Clite::applyAlloc(machine::RegionLayout &layout,
                  const std::vector<int> &alloc)
{
    const int groups = layout.numRegions();
    assert(static_cast<int>(alloc.size()) ==
           groups * kNumResourceKinds);
    for (int g = 0; g < groups; ++g) {
        machine::Region &r = layout.region(g);
        for (int k = 0; k < kNumResourceKinds; ++k) {
            r.res.set(kAllResourceKinds[static_cast<std::size_t>(k)],
                      alloc[static_cast<std::size_t>(
                          g * kNumResourceKinds + k)]);
        }
    }
    assert(layout.valid());
}

std::vector<int>
Clite::readAlloc(const machine::RegionLayout &layout)
{
    std::vector<int> alloc;
    for (int g = 0; g < layout.numRegions(); ++g) {
        for (int k = 0; k < kNumResourceKinds; ++k) {
            alloc.push_back(layout.region(g).res.get(
                kAllResourceKinds[static_cast<std::size_t>(k)]));
        }
    }
    return alloc;
}

void
Clite::adjust(machine::RegionLayout &layout,
              const std::vector<AppObservation> &obs, double)
{
    if (currentAlloc.empty())
        currentAlloc = readAlloc(layout);

    // Degraded inputs: scoring a stale measurement repeat would
    // poison the surrogate with a wrong (x, y) pair (and stale
    // loads would confuse shift detection), so skip the interval.
    for (const auto &o : obs) {
        if (!o.sampleValid) {
            obsScope().count("clite.skip_degraded");
            return;
        }
    }

    // Detect load shifts: the pinned optimum is stale, re-explore.
    loadsBuf.clear();
    for (const auto &o : obs) {
        if (o.latencyCritical)
            loadsBuf.push_back(o.loadFraction);
    }
    if (!lastLoads.empty() && loadsBuf.size() == lastLoads.size()) {
        for (std::size_t i = 0; i < loadsBuf.size(); ++i) {
            if (std::abs(loadsBuf[i] - lastLoads[i]) >
                cfg.loadShiftThreshold) {
                gp.clear();
                ys.clear();
                rawAllocs.clear();
                exploiting = false;
                exploreCount = 0;
                violationStreak = 0;
                settleLeft = 0;
                obsScope().count("clite.load_shift");
                if (obsScope().tracing()) {
                    obs::Event ev("clite_decision");
                    ev.str("action", "re_explore");
                    obsScope().emit(ev);
                }
                break;
            }
        }
    }
    std::swap(lastLoads, loadsBuf);

    // Let the system settle on the deployed sample before scoring:
    // the previous sample's queue backlog would otherwise make a
    // feasible configuration measure as a violation.
    if (!exploiting && settleLeft > 0) {
        --settleLeft;
        obsScope().count("clite.settle");
        return;
    }

    // Score the configuration that was live during this interval.
    // The surrogate ingests it immediately (O(window^2) row-append),
    // so no decision ever pays a refit.
    obs::Span sample_span(obsScope(), "clite.sample");
    const double score = objective(obs);
    normaliseInto(currentAlloc, xBuf);
    gp.addSample(xBuf, score);
    ys.push_back(score);
    rawAllocs.push_back(currentAlloc);

    if (exploiting) {
        // A pinned optimum that keeps violating QoS even though a
        // feasible configuration was seen is stale: resume the
        // search. When nothing feasible was ever found, churning
        // through more live samples only hurts, so stay pinned on
        // the least-bad configuration.
        const double best_seen =
            *std::max_element(ys.begin(), ys.end());
        violationStreak = score < 0.0 ? violationStreak + 1 : 0;
        if (violationStreak >= cfg.violationPatience &&
            best_seen >= 0.0) {
            exploiting = false;
            exploreCount = cfg.totalBudget / 2;
            violationStreak = 0;
        }
    } else {
        ++exploreCount;
        if (exploreCount >= cfg.totalBudget)
            exploiting = true;
    }

    const auto best_it = std::max_element(ys.begin(), ys.end());
    const std::size_t best_idx =
        static_cast<std::size_t>(best_it - ys.begin());

    if (exploiting) {
        nextBuf = rawAllocs[best_idx];
    } else if (score < 0.0 && rng.bernoulli(0.6)) {
        // The live config violated QoS: usually hill-climb from the
        // best configuration seen so far instead of waiting for the
        // surrogate to learn the constraint boundary, but keep some
        // probability mass on the global search for diversity.
        rebalanceAllocInto(rawAllocs[best_idx], obs, nextBuf);
    } else if (exploreCount < cfg.initialSamples) {
        randomAllocInto(nextBuf);
    } else {
        obs::Span span(obsScope(), "clite.gp");
        assert(gp.fitted());
        const double best_y = *best_it;

        double best_ei = -1.0;
        bool found = false;
        for (int cand = 0; cand < cfg.candidatePool; ++cand) {
            // Mix global random draws with local refinements of the
            // incumbent and demand-directed rebalances, CLITE-style.
            switch (cand % 4) {
              case 0:
                perturbAllocInto(rawAllocs[best_idx], candBuf);
                break;
              case 1:
                rebalanceAllocInto(rawAllocs[best_idx], obs, candBuf);
                break;
              default:
                randomAllocInto(candBuf);
                break;
            }
            normaliseInto(candBuf, xBuf);
            const double ei = gp.expectedImprovement(xBuf, best_y);
            if (ei > best_ei) {
                best_ei = ei;
                std::swap(nextBuf, candBuf);
                found = true;
            }
        }
        if (!found)
            randomAllocInto(nextBuf);
    }

    currentAlloc = nextBuf;
    applyAlloc(layout, nextBuf);
    if (!exploiting)
        settleLeft = cfg.settleEpochs;

    const obs::Scope &scope = obsScope();
    scope.count(exploiting ? "clite.exploit" : "clite.sample");
    if (scope.tracing()) {
        obs::Event ev("clite_decision");
        ev.str("action", exploiting ? "exploit" : "sample")
            .num("score", score)
            .num("best",
                 *std::max_element(ys.begin(), ys.end()))
            .integer("samples",
                     static_cast<long long>(ys.size()));
        scope.emit(ev);
    }
}

} // namespace ahq::sched

/**
 * @file
 * CLITE (Patel & Tiwari — HPCA 2020), the paper's second baseline:
 * Bayesian-optimisation-driven strict partitioning.
 *
 * Re-implemented from the published approach as Ah-Q describes it:
 * the partitioning configuration space (per-group shares of cores,
 * LLC ways and memory bandwidth, one group per LC app plus one BE
 * pool) is explored online. Each monitoring interval measures the
 * objective of the live configuration; a Gaussian-process surrogate
 * plus expected-improvement acquisition proposes the next
 * configuration. The objective is CLITE's penalised form: when any
 * LC app violates QoS the score is (fraction of QoS met - 1), i.e.
 * negative; otherwise it is the mean normalised BE performance.
 * After the sampling budget the best configuration is pinned until a
 * load shift triggers re-exploration.
 */

#ifndef AHQ_SCHED_CLITE_HH
#define AHQ_SCHED_CLITE_HH

#include <vector>

#include "sched/gp.hh"
#include "sched/scheduler.hh"
#include "stats/rng.hh"

namespace ahq::sched
{

/** Tunables of the CLITE controller. */
struct CliteConfig
{
    /** Random (quasi-LHS) samples before the GP drives proposals. */
    int initialSamples = 6;

    /** Total sampling budget before pinning the best config. */
    int totalBudget = 24;

    /**
     * Intervals to let the system settle after deploying a sample
     * before scoring it (queue backlog from the previous sample
     * would otherwise contaminate the measurement; at high load the
     * drain can take more than one 500 ms interval).
     */
    int settleEpochs = 2;

    /** Consecutive violated intervals that unpin a stale optimum. */
    int violationPatience = 4;

    /**
     * QoS guard band: a sample only counts as meeting QoS when its
     * p95 stays below guardBand * threshold, so the pinned optimum
     * keeps headroom against measurement noise.
     */
    double guardBand = 0.90;

    /**
     * Candidate pool size for the EI maximisation. Sized so a GP
     * decision (pool x O(window^2) posterior evaluations) fits the
     * monitoring interval's compute budget; the pool mixes local
     * perturbations, demand-directed rebalances and global draws,
     * so coverage degrades gracefully as it shrinks.
     */
    int candidatePool = 64;

    /**
     * Sliding-window cap on the GP's training samples (0 =
     * unbounded). The surrogate's Cholesky factor is maintained
     * incrementally, so this bounds the per-decision cost at
     * O(window^2) no matter how long the run accumulates samples
     * (exploit-phase scores stream in every interval). The best
     * score / allocation history is kept in full regardless.
     */
    int gpWindowCap = 10;

    /** Load-fraction change that triggers re-exploration. */
    double loadShiftThreshold = 0.05;

    /** GP kernel length scale (inputs normalised to [0,1]). */
    double gpLengthScale = 0.35;

    /** GP signal variance. */
    double gpSignalVar = 1.0;

    /** GP observation noise variance. */
    double gpNoiseVar = 0.01;

    /** RNG seed for sampling. */
    std::uint64_t seed = 0xc11e;
};

/**
 * The CLITE Bayesian-optimisation controller.
 */
class Clite : public Scheduler
{
  public:
    explicit Clite(CliteConfig config = {});

    std::string name() const override { return "CLITE"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        return perf::CoreSharePolicy::FairShare;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;

    void reset() override;

    /**
     * Actuation feedback (fault injection). CLITE's whole model is
     * "the allocation I deployed": when a deployment fails, the
     * next score must attach to whatever is really on the knobs,
     * so the cached deployment is dropped and re-read from the live
     * layout at the next interval (observed-vs-intended
     * reconciliation).
     */
    void onActuation(bool applied) override;

    /** Number of objective samples collected so far (for tests). */
    int samplesCollected() const
    {
        return static_cast<int>(ys.size());
    }

  private:
    CliteConfig cfg;
    stats::Rng rng;

    /**
     * Persistent surrogate, updated incrementally as samples are
     * scored (one O(window^2) row-append per sample instead of an
     * O(n^3) refit per decision); its factor is reused across the
     * whole candidate pool.
     */
    GaussianProcess gp;

    int numGroups = 0; // LC apps + 1 BE pool
    machine::ResourceVector available;

    /** Measured objective scores, in sample order. */
    std::vector<double> ys;

    /** Raw unit allocations matching ys entries. */
    std::vector<std::vector<int>> rawAllocs;

    /** The configuration currently deployed (awaiting its score). */
    std::vector<int> currentAlloc; // groups x kinds, units
    bool exploiting = false;
    int exploreCount = 0;
    int violationStreak = 0;
    int settleLeft = 0;

    std::vector<double> lastLoads;

    // Decision-loop scratch (reused across intervals so the hot
    // path allocates nothing once warm).
    std::vector<int> candBuf;     // candidate being scored
    std::vector<int> nextBuf;     // best candidate so far
    std::vector<double> xBuf;     // normalised GP input
    std::vector<double> wBuf;     // random-split weights
    std::vector<int> extraBuf;    // random-split remainders
    std::vector<int> violatedBuf; // rebalance: violated groups
    std::vector<int> donorBuf;    // rebalance: donor groups
    std::vector<double> loadsBuf; // load-shift detection

    /** CLITE's penalised objective from this interval's metrics. */
    double objective(const std::vector<AppObservation> &obs) const;

    /** Draw a random feasible allocation (min 1 core/way/group). */
    void randomAllocInto(std::vector<int> &out);

    /** Perturb an allocation by moving a few random units. */
    void perturbAllocInto(const std::vector<int> &base,
                          std::vector<int> &out);

    /**
     * Demand-directed candidate: shift units towards the groups of
     * currently violated LC apps from the slack-rich groups and the
     * BE pool (CLITE's prior-informed sampling).
     */
    void rebalanceAllocInto(const std::vector<int> &base,
                            const std::vector<AppObservation> &obs,
                            std::vector<int> &out);

    /** Normalise an allocation to a [0,1]-ish GP input vector. */
    void normaliseInto(const std::vector<int> &alloc,
                       std::vector<double> &x) const;

    /** Write an allocation into the layout's regions. */
    static void applyAlloc(machine::RegionLayout &layout,
                           const std::vector<int> &alloc);

    /** Read the layout's regions into an allocation vector. */
    static std::vector<int>
    readAlloc(const machine::RegionLayout &layout);
};

} // namespace ahq::sched

#endif // AHQ_SCHED_CLITE_HH

/**
 * @file
 * CoPart-style fairness baseline implementation.
 */

#include "sched/copart.hh"

#include <algorithm>
#include <cassert>

namespace ahq::sched
{

using machine::AppId;
using machine::kAllResourceKinds;
using machine::kNumResourceKinds;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

CoPart::CoPart(CoPartConfig config)
    : cfg(config)
{
}

void
CoPart::reset()
{
    fsmIndex.clear();
}

double
CoPart::slowdownOf(const AppObservation &o)
{
    if (o.latencyCritical) {
        const double ideal = std::max(o.idealP95Ms, 1e-9);
        return std::max(1.0, o.p95Ms / ideal);
    }
    const double real = std::max(o.ipc, 1e-9);
    return std::max(1.0, o.ipcSolo / real);
}

machine::RegionLayout
CoPart::initialLayout(const machine::MachineConfig &config,
                      const std::vector<AppObservation> &apps)
{
    // One strictly isolated partition per application — BE apps get
    // their own partitions too (CoPart treats everyone alike).
    std::vector<AppId> everyone;
    for (const auto &a : apps)
        everyone.push_back(a.id);
    return RegionLayout::evenlyIsolated(config.availableResources(),
                                        everyone);
}

void
CoPart::adjust(RegionLayout &layout,
               const std::vector<AppObservation> &obs, double)
{
    if (obs.size() < 2)
        return;

    // Identify the most- and least-slowed applications.
    const AppObservation *worst = nullptr;
    const AppObservation *best = nullptr;
    for (const auto &o : obs) {
        if (!worst || slowdownOf(o) > slowdownOf(*worst))
            worst = &o;
        if (!best || slowdownOf(o) < slowdownOf(*best))
            best = &o;
    }
    assert(worst && best);
    if (worst->id == best->id)
        return;
    if (slowdownOf(*worst) <
        cfg.imbalanceThreshold * slowdownOf(*best)) {
        return; // fair enough already
    }

    const RegionId to = layout.isolatedRegionOf(worst->id);
    const RegionId from = layout.isolatedRegionOf(best->id);
    if (to == machine::kNoRegion || from == machine::kNoRegion)
        return;

    int &fsm = fsmIndex[worst->id];
    for (int attempt = 0; attempt < kNumResourceKinds; ++attempt) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(
                (fsm + attempt) % kNumResourceKinds)];
        if (layout.moveResource(kind, from, to)) {
            // Rotate so successive transfers spread across kinds.
            fsm = (fsm + attempt + 1) % kNumResourceKinds;
            return;
        }
    }
    fsm = (fsm + 1) % kNumResourceKinds;
}

} // namespace ahq::sched

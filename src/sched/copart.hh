/**
 * @file
 * CoPart-style fairness baseline (Park, Park, Baek — EuroSys 2019),
 * from the paper's related work: coordinated partitioning of LLC
 * and memory bandwidth driven by *fairness* — equalising the
 * colocated applications' slowdowns — rather than by QoS targets or
 * overall experience.
 *
 * Included to make the paper's closing contrast measurable ("Dunn
 * cares more about system fairness while ARQ focuses on both
 * fairness and overall system performance"): under this controller
 * every app converges to a similar slowdown, which is generally
 * *not* the E_S optimum.
 *
 * Slowdown here is the app-appropriate notion: observed tail over
 * ideal tail for LC apps, solo IPC over observed IPC for BE apps.
 * Every interval one resource unit moves from the least-slowed
 * app's partition to the most-slowed app's partition (strict
 * isolation, PARTIES-shaped layout).
 */

#ifndef AHQ_SCHED_COPART_HH
#define AHQ_SCHED_COPART_HH

#include <map>

#include "sched/scheduler.hh"

namespace ahq::sched
{

/** Tunables of the CoPart-style controller. */
struct CoPartConfig
{
    /**
     * Minimum slowdown ratio between the most- and least-slowed
     * apps before a transfer happens (hysteresis).
     */
    double imbalanceThreshold = 1.10;
};

/**
 * Fairness-driven strict partitioner.
 */
class CoPart : public Scheduler
{
  public:
    explicit CoPart(CoPartConfig config = {});

    std::string name() const override { return "CoPart"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        return perf::CoreSharePolicy::FairShare;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;

    void reset() override;

    /** The slowdown notion the controller equalises (exposed). */
    static double slowdownOf(const AppObservation &o);

  private:
    CoPartConfig cfg;

    /** Per-app FSM over resource kinds, PARTIES-style. */
    std::map<machine::AppId, int> fsmIndex;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_COPART_HH

/**
 * @file
 * Gaussian-process implementation.
 *
 * The Cholesky factor lives in a fixed-stride row-major buffer so a
 * row append never moves existing entries. Each appended row is
 * computed with the same operation order a full left-looking refit
 * would use, so the incremental factor (and hence predictions) is
 * bitwise identical to refitting on the same window. Evicting the
 * oldest sample shifts the trailing factor up-left and restores it
 * with a Givens-style rank-1 update (cholupdate), O(n^2).
 */

#include "sched/gp.hh"

#include <cassert>
#include <cmath>
#include <cstring>

namespace ahq::sched
{

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

GaussianProcess::GaussianProcess(double length_scale, double signal_var,
                                 double noise_var)
    : lengthScale(length_scale), signalVar(signal_var),
      noiseVar(noise_var)
{
    assert(length_scale > 0.0);
    assert(signal_var > 0.0);
    assert(noise_var >= 0.0);
}

double
GaussianProcess::kernelRows(const double *a, const double *b) const
{
    double d2 = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return signalVar *
        std::exp(-0.5 * d2 / (lengthScale * lengthScale));
}

void
GaussianProcess::clear()
{
    n_ = 0;
    dim_ = 0;
    ySum = 0.0;
    yMean = 0.0;
    train.clear();
    ys_.clear();
    alpha.clear();
}

void
GaussianProcess::setWindowCap(std::size_t cap)
{
    window_ = cap;
    if (window_ > 0) {
        while (n_ > window_)
            evictOldest();
    }
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &xs,
                     const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    assert(!xs.empty());
    clear();
    for (std::size_t i = 0; i < xs.size(); ++i)
        addSample(xs[i], ys[i]);
}

void
GaussianProcess::addSample(const std::vector<double> &x, double y)
{
    if (n_ == 0) {
        dim_ = x.size();
    } else {
        assert(x.size() == dim_ && "inconsistent dimensionality");
    }
    if (window_ > 0 && n_ >= window_)
        evictOldest();

    const std::size_t i = n_;
    // Grow the strided factor buffer geometrically so existing rows
    // never move on append.
    if (i >= stride_) {
        const std::size_t new_stride =
            stride_ == 0 ? 8 : stride_ * 2;
        std::vector<double> grown(new_stride * new_stride, 0.0);
        for (std::size_t r = 0; r < n_; ++r) {
            std::memcpy(&grown[r * new_stride], &chol[r * stride_],
                        (r + 1) * sizeof(double));
        }
        chol = std::move(grown);
        stride_ = new_stride;
    }

    train.insert(train.end(), x.begin(), x.end());
    ys_.push_back(y);
    ySum += y;
    n_ = i + 1;
    yMean = ySum / static_cast<double>(n_);

    // New factor row, left-looking — entry (i, j) is computed with
    // exactly the operations a full refit would use, so the factor
    // stays bitwise identical to a from-scratch fit of this window.
    double *row = &chol[i * stride_];
    const double *xi = &train[i * dim_];
    for (std::size_t j = 0; j < i; ++j) {
        double sum = kernelRows(xi, &train[j * dim_]);
        const double *rj = &chol[j * stride_];
        for (std::size_t k = 0; k < j; ++k)
            sum -= row[k] * rj[k];
        row[j] = sum / rj[j];
    }
    double diag = kernelRows(xi, xi) + (noiseVar + 1e-10); // jitter
    for (std::size_t k = 0; k < i; ++k)
        diag -= row[k] * row[k];
    assert(diag > 0.0 && "kernel matrix not positive definite");
    row[i] = std::sqrt(diag);

    refreshAlpha();
}

void
GaussianProcess::refreshAlpha()
{
    const std::size_t n = n_;
    zBuf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = ys_[i] - yMean;
        const double *row = &chol[i * stride_];
        for (std::size_t k = 0; k < i; ++k)
            sum -= row[k] * zBuf[k];
        zBuf[i] = sum / row[i];
    }
    alpha.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = zBuf[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= chol[k * stride_ + ii] * alpha[k];
        alpha[ii] = sum / chol[ii * stride_ + ii];
    }
}

void
GaussianProcess::evictOldest()
{
    assert(n_ > 0);
    if (n_ == 1) {
        clear();
        return;
    }
    const std::size_t m = n_ - 1;

    // Removing row/column 0 from K leaves K22, whose factor L22'
    // satisfies L22' L22'^T = L22 L22^T + l21 l21^T with l21 the
    // evicted column of the old factor: a rank-1 *update* of the
    // shifted trailing block.
    downdateBuf.resize(m);
    for (std::size_t k = 0; k < m; ++k)
        downdateBuf[k] = chol[(k + 1) * stride_];
    for (std::size_t r = 0; r < m; ++r) {
        double *dst = &chol[r * stride_];
        const double *src = &chol[(r + 1) * stride_ + 1];
        for (std::size_t c = 0; c <= r; ++c)
            dst[c] = src[c];
    }
    // Givens rotations zeroing the update vector against the factor
    // diagonal (backward stable even for near-singular kernels).
    double *x = downdateBuf.data();
    for (std::size_t k = 0; k < m; ++k) {
        double *rowk = &chol[k * stride_];
        const double r = std::hypot(rowk[k], x[k]);
        const double c = rowk[k] / r;
        const double s = x[k] / r;
        rowk[k] = r;
        for (std::size_t i = k + 1; i < m; ++i) {
            double &lik = chol[i * stride_ + k];
            const double t = lik;
            lik = c * t + s * x[i];
            x[i] = c * x[i] - s * t;
        }
    }

    train.erase(train.begin(),
                train.begin() + static_cast<std::ptrdiff_t>(dim_));
    ys_.erase(ys_.begin());
    n_ = m;
    // Fresh in-order sum: repeated add/subtract would drift.
    ySum = 0.0;
    for (double v : ys_)
        ySum += v;
    yMean = ySum / static_cast<double>(n_);
    refreshAlpha();
}

GaussianProcess::Prediction
GaussianProcess::predict(const std::vector<double> &x) const
{
    assert(fitted());
    assert(x.size() == dim_);
    const std::size_t n = n_;

    kstarBuf.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        kstarBuf[i] = kernelRows(&train[i * dim_], x.data());

    double mean = yMean;
    for (std::size_t i = 0; i < n; ++i)
        mean += kstarBuf[i] * alpha[i];

    // v = L^-1 kstar; var = k(x,x) - v.v
    vBuf.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = kstarBuf[i];
        const double *row = &chol[i * stride_];
        for (std::size_t k = 0; k < i; ++k)
            sum -= row[k] * vBuf[k];
        vBuf[i] = sum / row[i];
    }
    double var = kernelRows(x.data(), x.data());
    for (std::size_t i = 0; i < n; ++i)
        var -= vBuf[i] * vBuf[i];
    var = std::max(var, 1e-12);

    return {mean, var};
}

double
GaussianProcess::expectedImprovement(const std::vector<double> &x,
                                     double best_y, double xi) const
{
    const Prediction p = predict(x);
    const double sigma = std::sqrt(p.variance);
    if (sigma < 1e-12)
        return 0.0;
    const double z = (p.mean - best_y - xi) / sigma;
    return (p.mean - best_y - xi) * normalCdf(z) +
        sigma * normalPdf(z);
}

} // namespace ahq::sched

/**
 * @file
 * Gaussian-process implementation.
 */

#include "sched/gp.hh"

#include <cassert>
#include <cmath>

namespace ahq::sched
{

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

GaussianProcess::GaussianProcess(double length_scale, double signal_var,
                                 double noise_var)
    : lengthScale(length_scale), signalVar(signal_var),
      noiseVar(noise_var)
{
    assert(length_scale > 0.0);
    assert(signal_var > 0.0);
    assert(noise_var >= 0.0);
}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    assert(a.size() == b.size());
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return signalVar *
        std::exp(-0.5 * d2 / (lengthScale * lengthScale));
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &xs,
                     const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    assert(!xs.empty());
    train = xs;

    const std::size_t n = xs.size();
    yMean = 0.0;
    for (double y : ys)
        yMean += y;
    yMean /= static_cast<double>(n);

    // Build K + noise*I and factor it in place (lower Cholesky).
    chol.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double k = kernel(xs[i], xs[j]);
            if (i == j)
                k += noiseVar + 1e-10; // jitter
            chol[i * n + j] = k;
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        double diag = chol[j * n + j];
        for (std::size_t k = 0; k < j; ++k)
            diag -= chol[j * n + k] * chol[j * n + k];
        assert(diag > 0.0 && "kernel matrix not positive definite");
        const double l_jj = std::sqrt(diag);
        chol[j * n + j] = l_jj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = chol[i * n + j];
            for (std::size_t k = 0; k < j; ++k)
                sum -= chol[i * n + k] * chol[j * n + k];
            chol[i * n + j] = sum / l_jj;
        }
    }

    // alpha = K^-1 (y - mean) via forward/back substitution.
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = ys[i] - yMean;
        for (std::size_t k = 0; k < i; ++k)
            sum -= chol[i * n + k] * z[k];
        z[i] = sum / chol[i * n + i];
    }
    alpha.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= chol[k * n + ii] * alpha[k];
        alpha[ii] = sum / chol[ii * n + ii];
    }
}

GaussianProcess::Prediction
GaussianProcess::predict(const std::vector<double> &x) const
{
    assert(fitted());
    const std::size_t n = train.size();

    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i)
        kstar[i] = kernel(train[i], x);

    double mean = yMean;
    for (std::size_t i = 0; i < n; ++i)
        mean += kstar[i] * alpha[i];

    // v = L^-1 kstar; var = k(x,x) - v.v
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = kstar[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= chol[i * n + k] * v[k];
        v[i] = sum / chol[i * n + i];
    }
    double var = kernel(x, x);
    for (std::size_t i = 0; i < n; ++i)
        var -= v[i] * v[i];
    var = std::max(var, 1e-12);

    return {mean, var};
}

double
GaussianProcess::expectedImprovement(const std::vector<double> &x,
                                     double best_y, double xi) const
{
    const Prediction p = predict(x);
    const double sigma = std::sqrt(p.variance);
    if (sigma < 1e-12)
        return 0.0;
    const double z = (p.mean - best_y - xi) / sigma;
    return (p.mean - best_y - xi) * normalCdf(z) +
        sigma * normalPdf(z);
}

} // namespace ahq::sched

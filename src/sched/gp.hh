/**
 * @file
 * Gaussian-process regression and expected improvement — the
 * surrogate model CLITE's Bayesian optimiser uses (HPCA 2020).
 *
 * Squared-exponential kernel, Cholesky-factored exact inference.
 * Problem sizes are tiny (tens of samples, ~10 dimensions), so a
 * dense O(n^3) fit per interval is negligible.
 */

#ifndef AHQ_SCHED_GP_HH
#define AHQ_SCHED_GP_HH

#include <vector>

namespace ahq::sched
{

/** Standard normal probability density. */
double normalPdf(double z);

/** Standard normal cumulative distribution. */
double normalCdf(double z);

/**
 * Gaussian-process regressor with a squared-exponential kernel:
 *
 *   k(x, x') = signal_var * exp(-|x - x'|^2 / (2 * length_scale^2))
 *              (+ noise_var on the diagonal)
 */
class GaussianProcess
{
  public:
    /**
     * @param length_scale Kernel length scale (> 0).
     * @param signal_var Signal variance (> 0).
     * @param noise_var Observation noise variance (>= 0).
     */
    GaussianProcess(double length_scale, double signal_var,
                    double noise_var);

    /**
     * Fit to observations; all xs must share one dimensionality.
     * The target values are centred internally.
     */
    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys);

    /** Whether fit() has been called with at least one sample. */
    bool fitted() const { return !train.empty(); }

    /** Number of training samples. */
    std::size_t numSamples() const { return train.size(); }

    struct Prediction
    {
        double mean;
        double variance;
    };

    /** Posterior mean/variance at a query point. */
    Prediction predict(const std::vector<double> &x) const;

    /**
     * Expected improvement of the query point over the incumbent for
     * a maximisation problem.
     *
     * @param x Query point.
     * @param best_y Incumbent (best observed) value.
     * @param xi Exploration bonus (>= 0).
     */
    double expectedImprovement(const std::vector<double> &x,
                               double best_y, double xi = 0.01) const;

  private:
    double lengthScale;
    double signalVar;
    double noiseVar;

    std::vector<std::vector<double>> train;
    std::vector<double> chol;  // row-major lower Cholesky factor
    std::vector<double> alpha; // K^-1 (y - mean)
    double yMean = 0.0;

    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_GP_HH

/**
 * @file
 * Gaussian-process regression and expected improvement — the
 * surrogate model CLITE's Bayesian optimiser uses (HPCA 2020).
 *
 * Squared-exponential kernel, Cholesky-factored exact inference.
 * The factor is maintained incrementally: appending a sample is an
 * O(n^2) row-append that produces bitwise the same factor a full
 * O(n^3) refit would, and an optional sliding window evicts the
 * oldest sample with an O(n^2) rank-1 down-date so the factor
 * never exceeds the window. predict() reuses the factor and two
 * scratch buffers, so scoring a candidate pool allocates nothing.
 */

#ifndef AHQ_SCHED_GP_HH
#define AHQ_SCHED_GP_HH

#include <cstddef>
#include <vector>

namespace ahq::sched
{

/** Standard normal probability density. */
double normalPdf(double z);

/** Standard normal cumulative distribution. */
double normalCdf(double z);

/**
 * Gaussian-process regressor with a squared-exponential kernel:
 *
 *   k(x, x') = signal_var * exp(-|x - x'|^2 / (2 * length_scale^2))
 *              (+ noise_var on the diagonal)
 */
class GaussianProcess
{
  public:
    /**
     * @param length_scale Kernel length scale (> 0).
     * @param signal_var Signal variance (> 0).
     * @param noise_var Observation noise variance (>= 0).
     */
    GaussianProcess(double length_scale, double signal_var,
                    double noise_var);

    /**
     * Fit to observations; all xs must share one dimensionality.
     * The target values are centred internally. Equivalent to
     * clear() followed by addSample() per pair (the window cap
     * applies, evicting the oldest samples of an over-long stream).
     */
    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys);

    /**
     * Append one observation, extending the Cholesky factor by one
     * row in O(n^2) — bitwise identical to refitting from scratch
     * on the same window. When a window cap is set and the model is
     * full, the oldest sample is evicted first (rank-1 down-date;
     * the evicted factor matches a refit to ~1e-12 relative, not
     * bitwise).
     */
    void addSample(const std::vector<double> &x, double y);

    /** Drop every sample (hyperparameters and window kept). */
    void clear();

    /**
     * Cap the sliding sample window (0 = unbounded). Shrinking
     * below the current sample count evicts the oldest samples.
     */
    void setWindowCap(std::size_t cap);

    /** Current window cap (0 = unbounded). */
    std::size_t windowCap() const { return window_; }

    /** Whether at least one sample is held. */
    bool fitted() const { return n_ > 0; }

    /** Number of training samples currently in the window. */
    std::size_t numSamples() const { return n_; }

    struct Prediction
    {
        double mean;
        double variance;
    };

    /** Posterior mean/variance at a query point (allocation-free). */
    Prediction predict(const std::vector<double> &x) const;

    /**
     * Expected improvement of the query point over the incumbent for
     * a maximisation problem.
     *
     * @param x Query point.
     * @param best_y Incumbent (best observed) value.
     * @param xi Exploration bonus (>= 0).
     */
    double expectedImprovement(const std::vector<double> &x,
                               double best_y, double xi = 0.01) const;

  private:
    double lengthScale;
    double signalVar;
    double noiseVar;

    std::size_t n_ = 0;      // samples in the window
    std::size_t dim_ = 0;    // input dimensionality
    std::size_t stride_ = 0; // allocated row length of chol
    std::size_t window_ = 0; // 0 = unbounded

    std::vector<double> train; // n_ x dim_, row-major
    std::vector<double> ys_;   // raw targets, window order
    std::vector<double> chol;  // n_ x stride_ row-major lower factor
    std::vector<double> alpha; // K^-1 (y - mean)
    double ySum = 0.0;
    double yMean = 0.0;

    mutable std::vector<double> kstarBuf; // predict scratch
    mutable std::vector<double> vBuf;     // predict scratch
    std::vector<double> zBuf;             // alpha-solve scratch
    std::vector<double> downdateBuf;      // eviction scratch

    double kernelRows(const double *a, const double *b) const;

    /** Recompute alpha from chol/ys_ (O(n^2)). */
    void refreshAlpha();

    /** Evict the oldest sample via a rank-1 factor down-date. */
    void evictOldest();
};

} // namespace ahq::sched

#endif // AHQ_SCHED_GP_HH

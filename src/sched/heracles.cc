/**
 * @file
 * Heracles-style controller implementation.
 */

#include "sched/heracles.hh"

#include <algorithm>
#include <cassert>

namespace ahq::sched
{

using machine::kAllResourceKinds;
using machine::kNumResourceKinds;
using machine::RegionLayout;
using machine::ResourceKind;

Heracles::Heracles(HeraclesConfig config)
    : cfg(config)
{
}

void
Heracles::reset()
{
    fsm = 0;
}

machine::RegionLayout
Heracles::initialLayout(const machine::MachineConfig &config,
                        const std::vector<AppObservation> &apps)
{
    std::vector<machine::AppId> lc, be;
    splitKinds(apps, lc, be);

    const auto avail = config.availableResources();
    RegionLayout layout(avail);

    // Start conservatively: most resources to the LC pool, a small
    // starter allocation for BE (Heracles grows it when safe).
    machine::Region lc_pool;
    lc_pool.name = "heracles-lc";
    lc_pool.shared = true;
    lc_pool.members = lc;
    machine::Region be_pool;
    be_pool.name = "heracles-be";
    be_pool.shared = true;
    be_pool.members = be;

    for (ResourceKind kind : kAllResourceKinds) {
        const int total = avail.get(kind);
        const int be_share = be.empty() ? 0 : std::max(1, total / 5);
        be_pool.res.set(kind, be_share);
        lc_pool.res.set(kind, total - be_share);
    }
    if (lc.empty()) {
        // Degenerate: BE-only node.
        be_pool.res = avail;
        lc_pool.res = {};
    }
    layout.addRegion(std::move(lc_pool));
    if (!be.empty())
        layout.addRegion(std::move(be_pool));
    assert(layout.valid());
    return layout;
}

void
Heracles::adjust(RegionLayout &layout,
                 const std::vector<AppObservation> &obs, double)
{
    if (layout.numRegions() < 2)
        return; // no BE pool to manage

    // The binding LC app drives the decision.
    double min_slack = 1.0;
    double max_load = 0.0;
    bool any_lc = false;
    for (const auto &o : obs) {
        if (!o.latencyCritical)
            continue;
        any_lc = true;
        min_slack = std::min(min_slack, o.slack());
        max_load = std::max(max_load, o.loadFraction);
    }
    if (!any_lc)
        return;

    const bool shrink = min_slack < cfg.shrinkSlack;
    const bool may_grow = min_slack > cfg.growSlack &&
        max_load < cfg.loadFreeze;

    if (!shrink && !may_grow)
        return; // hold region: do nothing

    const machine::RegionId from = shrink ? kBePool : kLcPool;
    const machine::RegionId to = shrink ? kLcPool : kBePool;
    for (int attempt = 0; attempt < kNumResourceKinds; ++attempt) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(
                (fsm + attempt) % kNumResourceKinds)];
        if (layout.moveResource(kind, from, to)) {
            fsm = (fsm + attempt + 1) % kNumResourceKinds;
            return;
        }
    }
    fsm = (fsm + 1) % kNumResourceKinds;
}

} // namespace ahq::sched

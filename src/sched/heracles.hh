/**
 * @file
 * Heracles-style baseline (Lo et al., ISCA 2015), the precursor the
 * paper's related-work section positions PARTIES/CLITE/ARQ against:
 * a threshold-based controller that decides each interval whether
 * BE work may grow, must hold, or must shrink, based on the LC
 * applications' load and latency slack.
 *
 * Not part of the paper's measured comparison, but included so
 * downstream users can extend the evaluation (and because the
 * library's scheduler suite should cover the lineage). The
 * adaptation to multiple LC apps follows the obvious reading: the
 * binding LC app (minimum slack) drives the decision.
 */

#ifndef AHQ_SCHED_HERACLES_HH
#define AHQ_SCHED_HERACLES_HH

#include "sched/scheduler.hh"

namespace ahq::sched
{

/** Tunables of the Heracles-style controller. */
struct HeraclesConfig
{
    /** Slack below which BE work is shrunk ("disabled" region). */
    double shrinkSlack = 0.10;

    /** Slack above which BE work may grow. */
    double growSlack = 0.25;

    /**
     * LC load fraction above which BE growth is frozen regardless
     * of slack (Heracles disallows BE growth near peak load).
     */
    double loadFreeze = 0.85;
};

/**
 * Threshold controller: one LC pool, one BE pool, BE pool grows or
 * shrinks one resource unit per interval based on the binding LC
 * slack.
 */
class Heracles : public Scheduler
{
  public:
    explicit Heracles(HeraclesConfig config = {});

    std::string name() const override { return "Heracles"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        // Inside the LC pool the LC apps share with priority
        // semantics; the BE pool is BE-only.
        return perf::CoreSharePolicy::LcPriority;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;

    void reset() override;

  private:
    HeraclesConfig cfg;
    int fsm = 0; // resource rotation for grow/shrink steps

    /** The LC pool (region 0) and BE pool (region 1) ids. */
    static constexpr machine::RegionId kLcPool = 0;
    static constexpr machine::RegionId kBePool = 1;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_HERACLES_HH

/**
 * @file
 * LC-first baseline implementation.
 */

#include "sched/lc_first.hh"

namespace ahq::sched
{

machine::RegionLayout
LcFirst::initialLayout(const machine::MachineConfig &config,
                       const std::vector<AppObservation> &apps)
{
    std::vector<machine::AppId> all;
    all.reserve(apps.size());
    for (const auto &a : apps)
        all.push_back(a.id);
    return machine::RegionLayout::fullyShared(
        config.availableResources(), all);
}

void
LcFirst::adjust(machine::RegionLayout &,
                const std::vector<AppObservation> &, double)
{
    // Static policy: priority is enforced by the core-share policy.
}

} // namespace ahq::sched

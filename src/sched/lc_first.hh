/**
 * @file
 * The LC-first baseline: LC apps at real-time priority (§V).
 */

#ifndef AHQ_SCHED_LC_FIRST_HH
#define AHQ_SCHED_LC_FIRST_HH

#include "sched/scheduler.hh"

namespace ahq::sched
{

/**
 * LC-first: all resources are shared, but the LC applications run at
 * real-time priority and preempt BE work whenever they are runnable.
 */
class LcFirst : public Scheduler
{
  public:
    std::string name() const override { return "LC-first"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        return perf::CoreSharePolicy::LcPriority;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_LC_FIRST_HH

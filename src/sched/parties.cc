/**
 * @file
 * PARTIES controller implementation.
 */

#include "sched/parties.hh"

#include <algorithm>
#include <cassert>

#include "obs/span.hh"

namespace ahq::sched
{

using machine::AppId;
using machine::kAllResourceKinds;
using machine::kNumResourceKinds;
using machine::RegionId;
using machine::RegionLayout;
using machine::ResourceKind;

Parties::Parties(PartiesConfig config)
    : cfg(config)
{
}

void
Parties::reset()
{
    fsmIndex.clear();
    cooldown.clear();
    comfort.clear();
    trial = {};
    trialJustStarted = false;
}

void
Parties::onActuation(bool applied)
{
    const bool started = trialJustStarted;
    trialJustStarted = false;
    if (applied)
        return;
    obsScope().count("parties.actuation_failed");
    if (started && trial.active) {
        // The trial downsize never made it onto the knobs; cancel
        // the watch instead of later "reverting" a move that never
        // happened (which would strand a pool unit).
        trial.active = false;
        obsScope().count("parties.trial_aborted");
    }
}

RegionId
Parties::bePool(const RegionLayout &layout)
{
    return layout.sharedRegion();
}

machine::RegionLayout
Parties::initialLayout(const machine::MachineConfig &config,
                       const std::vector<AppObservation> &apps)
{
    // One isolated region per LC app plus one pooled region for all
    // BE apps; resources split evenly across those groups.
    std::vector<AppId> lc, be;
    splitKinds(apps, lc, be);

    const auto avail = config.availableResources();
    RegionLayout layout(avail);

    const int groups =
        static_cast<int>(lc.size()) + (be.empty() ? 0 : 1);
    assert(groups > 0);

    auto group_share = [&](ResourceKind kind, int index) {
        const int total = avail.get(kind);
        return total / groups + (index < total % groups ? 1 : 0);
    };

    int index = 0;
    for (AppId app : lc) {
        machine::Region r;
        r.name = "parties-iso" + std::to_string(app);
        r.shared = false;
        r.members = {app};
        for (ResourceKind kind : kAllResourceKinds)
            r.res.set(kind, group_share(kind, index));
        layout.addRegion(std::move(r));
        ++index;
    }
    if (!be.empty()) {
        machine::Region pool;
        pool.name = "parties-bepool";
        pool.shared = true;
        pool.members = be;
        for (ResourceKind kind : kAllResourceKinds)
            pool.res.set(kind, group_share(kind, index));
        layout.addRegion(std::move(pool));
    }
    assert(layout.valid());
    return layout;
}

namespace
{

/** Units a donor region must retain after donating one unit. */
int
donorFloor(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Cores:
        return 2;
      case ResourceKind::LlcWays:
        return 3;
      case ResourceKind::MemBw:
        return 1;
    }
    return 1;
}

} // namespace

bool
Parties::upsizeApp(RegionLayout &layout,
                   const std::vector<AppObservation> &obs, AppId app)
{
    const RegionId target = layout.isolatedRegionOf(app);
    if (target == machine::kNoRegion)
        return false;

    double victim_slack = 0.0;
    for (const auto &o : obs) {
        if (o.id == app)
            victim_slack = o.slack();
    }

    int &fsm = fsmIndex[app];
    for (int attempt = 0; attempt < kNumResourceKinds; ++attempt) {
        const ResourceKind kind =
            kAllResourceKinds[static_cast<std::size_t>(
                (fsm + attempt) % kNumResourceKinds)];

        // Preferred donor: the BE pool.
        const RegionId pool = bePool(layout);
        if (pool != machine::kNoRegion &&
            layout.moveResource(kind, pool, target)) {
            fsm = (fsm + attempt) % kNumResourceKinds;
            recordMove("upsize", app, kind, pool, target);
            return true;
        }

        // Fall back to the LC app with the largest slack, provided
        // it is clearly better off than the victim and would stay
        // safely provisioned after donating.
        AppId donor = machine::kNoApp;
        double best_slack = std::max(0.10, victim_slack + 0.15);
        for (const auto &o : obs) {
            if (!o.latencyCritical || o.id == app || !o.sampleValid)
                continue;
            const RegionId r = layout.isolatedRegionOf(o.id);
            if (r == machine::kNoRegion ||
                layout.region(r).res.get(kind) <=
                    donorFloor(kind))
                continue;
            if (o.slack() > best_slack) {
                best_slack = o.slack();
                donor = o.id;
            }
        }
        if (donor != machine::kNoApp) {
            const RegionId donor_region =
                layout.isolatedRegionOf(donor);
            if (layout.moveResource(kind, donor_region, target)) {
                fsm = (fsm + attempt) % kNumResourceKinds;
                recordMove("upsize", app, kind, donor_region,
                           target);
                return true;
            }
        }
    }
    // Nothing movable this interval; rotate the FSM for next time.
    fsm = (fsm + 1) % kNumResourceKinds;
    return false;
}

void
Parties::recordMove(const char *action, AppId app,
                    ResourceKind kind, RegionId from,
                    RegionId to) const
{
    const obs::Scope &scope = obsScope();
    scope.count(std::string("parties.") + action);
    if (!scope.tracing())
        return;
    obs::Event ev("parties_decision");
    ev.str("action", action)
        .integer("app", app)
        .str("kind", machine::toString(kind))
        .integer("from", from)
        .integer("to", to);
    scope.emit(ev);
}

void
Parties::adjust(RegionLayout &layout,
                const std::vector<AppObservation> &obs, double)
{
    trialJustStarted = false;

    // Age the downsize cooldowns and track comfort streaks. A stale
    // sample (dropped measurement repeat) neither extends nor
    // resets a streak — it says nothing new about the app.
    for (auto &[app, c] : cooldown) {
        if (c > 0)
            --c;
    }
    for (const auto &o : obs) {
        if (!o.latencyCritical || !o.sampleValid)
            continue;
        if (o.slack() >= cfg.upsizeSlack)
            ++comfort[o.id];
        else
            comfort[o.id] = 0;
    }

    // 1) Watch the in-flight downsize trial: revert on violation,
    //    commit once the watch window passes cleanly. While the
    //    trial app's sample is stale the verdict is deferred — the
    //    watch window is held open rather than judged on a repeat.
    if (trial.active) {
        obs::Span trial_span(obsScope(), "parties.trial");
        bool trial_stale = false;
        for (const auto &o : obs) {
            if (o.id == trial.app && o.latencyCritical &&
                !o.sampleValid)
                trial_stale = true;
        }
        bool reverted = false;
        if (!trial_stale) {
            for (const auto &o : obs) {
                if (o.id == trial.app && o.latencyCritical &&
                    o.slack() < cfg.upsizeSlack) {
                    // Revert from the pool; if the pool unit was
                    // taken by someone else in the meantime,
                    // reclaim through the ordinary upsize path so
                    // the app cannot be stranded below its viable
                    // partition.
                    const RegionId pool = bePool(layout);
                    const RegionId region =
                        layout.isolatedRegionOf(trial.app);
                    bool undone = pool != machine::kNoRegion &&
                        region != machine::kNoRegion &&
                        layout.moveResource(trial.kind, pool,
                                            region);
                    if (!undone)
                        upsizeApp(layout, obs, trial.app);
                    cooldown[trial.app] = cfg.revertCooldown;
                    trial.active = false;
                    reverted = true;
                    recordMove("revert", trial.app, trial.kind,
                               bePool(layout),
                               layout.isolatedRegionOf(trial.app));
                    break;
                }
            }
            if (!reverted && --trial.watchLeft <= 0) {
                cooldown[trial.app] = cfg.commitCooldown;
                trial.active = false;
                recordMove("commit", trial.app, trial.kind,
                           layout.isolatedRegionOf(trial.app),
                           bePool(layout));
            }
        }
    }

    // 2) Upsize every violated LC app by one unit, worst first.
    bool any_violation = false;
    {
        obs::Span span(obsScope(), "parties.upsize");
        std::vector<const AppObservation *> violated;
        for (const auto &o : obs) {
            if (o.latencyCritical && o.sampleValid &&
                o.slack() < cfg.upsizeSlack) {
                violated.push_back(&o);
                any_violation = true;
            }
        }
        std::sort(
            violated.begin(), violated.end(),
            [](const AppObservation *a, const AppObservation *b) {
                return a->slack() < b->slack();
            });
        for (const AppObservation *o : violated)
            upsizeApp(layout, obs, o->id);
    }

    // 3) With everyone comfortable for long enough and no trial in
    //    flight, tentatively downsize the most over-provisioned app
    //    to grow the BE pool.
    if (!any_violation && !trial.active) {
        obs::Span span(obsScope(), "parties.downsize");
        const AppObservation *richest = nullptr;
        for (const auto &o : obs) {
            if (!o.latencyCritical || !o.sampleValid ||
                o.slack() < cfg.downsizeSlack)
                continue;
            if (cooldown[o.id] > 0 ||
                comfort[o.id] < cfg.comfortStreak)
                continue;
            if (!richest || o.slack() > richest->slack())
                richest = &o;
        }
        if (richest) {
            const RegionId region =
                layout.isolatedRegionOf(richest->id);
            const RegionId pool = bePool(layout);
            if (region != machine::kNoRegion &&
                pool != machine::kNoRegion) {
                int &fsm = fsmIndex[richest->id];
                for (int attempt = 0; attempt < kNumResourceKinds;
                     ++attempt) {
                    const ResourceKind kind = kAllResourceKinds[
                        static_cast<std::size_t>(
                            (fsm + attempt) % kNumResourceKinds)];
                    if (layout.moveResource(kind, region, pool)) {
                        trial = {true, richest->id, kind,
                                 cfg.trialWatch};
                        trialJustStarted = true;
                        recordMove("downsize_trial", richest->id,
                                   kind, region, pool);
                        break;
                    }
                }
            }
        }
    }
}

} // namespace ahq::sched

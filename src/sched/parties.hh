/**
 * @file
 * PARTIES (Chen, Delimitrou, Martinez — ASPLOS 2019), the paper's
 * primary baseline: QoS-aware strict partitioning for multiple
 * interactive services.
 *
 * Re-implemented from the published algorithm as Ah-Q describes it:
 * every LC application owns a strictly isolated partition and the BE
 * applications share the leftover pool. Each monitoring interval the
 * controller computes per-app slack = (target - p95)/target, upsizes
 * the partitions of violated apps by one unit of their finite-state
 * machine's current resource type (cores -> LLC ways -> memory
 * bandwidth, rotating when a type cannot be adjusted), and
 * tentatively downsizes the most over-provisioned app when everyone
 * has ample slack, reverting if the downsize caused a violation (the
 * "spikes" Ah-Q's Fig. 13 shows).
 */

#ifndef AHQ_SCHED_PARTIES_HH
#define AHQ_SCHED_PARTIES_HH

#include <map>
#include <vector>

#include "sched/scheduler.hh"

namespace ahq::sched
{

/** Tunables of the PARTIES controller. */
struct PartiesConfig
{
    /**
     * Slack below which an app is upsized. PARTIES reacts to actual
     * QoS violations, so the trigger sits just above zero slack.
     */
    double upsizeSlack = 0.02;

    /** Slack above which an app may be tentatively downsized. */
    double downsizeSlack = 0.25;

    /** Minimum slack for an LC app to donate to a violated one. */
    double donorSlack = 0.35;

    /** Comfortable intervals required before a downsize trial. */
    int comfortStreak = 6;

    /** Intervals a trial downsize is watched for a violation. */
    int trialWatch = 4;

    /** Cooldown after a reverted (failed) downsize. */
    int revertCooldown = 40;

    /** Cooldown after a committed (successful) downsize. */
    int commitCooldown = 8;
};

/**
 * The PARTIES strict-partitioning controller.
 */
class Parties : public Scheduler
{
  public:
    explicit Parties(PartiesConfig config = {});

    std::string name() const override { return "PARTIES"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        // Only the BE pool is shared; policy is immaterial there.
        return perf::CoreSharePolicy::FairShare;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;

    void reset() override;

    /**
     * Actuation feedback (fault injection). A downsize trial whose
     * move never reached the knobs is cancelled — there is nothing
     * on the machine to revert or commit, so watching it would end
     * in a phantom pool-to-partition move. Failed upsizes need no
     * bookkeeping: the violation persists and is retried next
     * interval from the live layout.
     */
    void onActuation(bool applied) override;

  private:
    PartiesConfig cfg;

    /** Per-app FSM position in the resource rotation. */
    std::map<machine::AppId, int> fsmIndex;

    /** Cooldown until the next tentative downsize per app. */
    std::map<machine::AppId, int> cooldown;

    /** Consecutive comfortable intervals per app. */
    std::map<machine::AppId, int> comfort;

    /** An in-flight tentative downsize being watched. */
    struct Trial
    {
        bool active = false;
        machine::AppId app = machine::kNoApp;
        machine::ResourceKind kind = machine::ResourceKind::Cores;
        int watchLeft = 0;
    };
    Trial trial;

    /**
     * Whether `trial` was started by the most recent adjust() (the
     * only trial an actuation failure can have cancelled on-knob).
     */
    bool trialJustStarted = false;

    /** Upsize one violated app by one unit; true on success. */
    bool upsizeApp(machine::RegionLayout &layout,
                   const std::vector<AppObservation> &obs,
                   machine::AppId app);

    /** Report one decision through the attached telemetry scope. */
    void recordMove(const char *action, machine::AppId app,
                    machine::ResourceKind kind,
                    machine::RegionId from,
                    machine::RegionId to) const;

    /** The BE pool region id (the shared region). */
    static machine::RegionId bePool(const machine::RegionLayout &l);
};

} // namespace ahq::sched

#endif // AHQ_SCHED_PARTIES_HH

/**
 * @file
 * Strategy registry implementation.
 */

#include "sched/registry.hh"

#include <stdexcept>

#include "sched/arq.hh"
#include "sched/clite.hh"
#include "sched/copart.hh"
#include "sched/heracles.hh"
#include "sched/lc_first.hh"
#include "sched/parties.hh"
#include "sched/unmanaged.hh"

namespace ahq::sched
{

std::unique_ptr<Scheduler>
makeScheduler(const std::string &name)
{
    if (name == "Unmanaged")
        return std::make_unique<Unmanaged>();
    if (name == "LC-first")
        return std::make_unique<LcFirst>();
    if (name == "PARTIES")
        return std::make_unique<Parties>();
    if (name == "CLITE")
        return std::make_unique<Clite>();
    if (name == "ARQ")
        return std::make_unique<Arq>();
    if (name == "Heracles")
        return std::make_unique<Heracles>();
    if (name == "CoPart")
        return std::make_unique<CoPart>();
    throw std::invalid_argument("unknown strategy: " + name);
}

const std::vector<std::string> &
allStrategyNames()
{
    static const std::vector<std::string> v{
        "Unmanaged", "LC-first", "PARTIES", "CLITE",
        "ARQ",       "Heracles", "CoPart"};
    return v;
}

} // namespace ahq::sched

/**
 * @file
 * The strategy registry: one name -> scheduler factory shared by
 * the bench binaries, the CLI and the batch scenario runner
 * (previously each kept its own copy).
 */

#ifndef AHQ_SCHED_REGISTRY_HH
#define AHQ_SCHED_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hh"

namespace ahq::sched
{

/**
 * Fresh scheduler instance for a registered strategy name.
 * Thread-safe; the batch runner calls it from pool workers.
 *
 * @throws std::invalid_argument for unknown names.
 */
std::unique_ptr<Scheduler> makeScheduler(const std::string &name);

/** Every registered strategy name, in presentation order. */
const std::vector<std::string> &allStrategyNames();

} // namespace ahq::sched

#endif // AHQ_SCHED_REGISTRY_HH

/**
 * @file
 * Scheduler base helpers.
 */

#include "sched/scheduler.hh"

namespace ahq::sched
{

void
Scheduler::splitKinds(const std::vector<AppObservation> &apps,
                      std::vector<machine::AppId> &lc,
                      std::vector<machine::AppId> &be)
{
    lc.clear();
    be.clear();
    for (const auto &a : apps) {
        if (a.latencyCritical)
            lc.push_back(a.id);
        else
            be.push_back(a.id);
    }
}

} // namespace ahq::sched

/**
 * @file
 * The scheduling strategy interface.
 *
 * A scheduler sees exactly what the paper's controllers see every
 * monitoring interval — the measured p95 tail latency of each LC
 * application (with its QoS target and current-load ideal), the IPC
 * of each BE application — and reacts by mutating the RegionLayout
 * one (or a few) resource units at a time. The node simulator then
 * makes the new layout take effect in the following epoch.
 */

#ifndef AHQ_SCHED_SCHEDULER_HH
#define AHQ_SCHED_SCHEDULER_HH

#include <string>
#include <vector>

#include "machine/config.hh"
#include "machine/layout.hh"
#include "obs/scope.hh"
#include "perf/contention.hh"

namespace ahq::sched
{

/** Everything a scheduler may observe about one app per interval. */
struct AppObservation
{
    machine::AppId id = 0;
    bool latencyCritical = true;
    int threads = 4;

    /** Current load fraction of max load (LC). */
    double loadFraction = 0.0;

    /** Current request arrival rate, requests/s (LC). */
    double arrivalRate = 0.0;

    /** Measured p95 tail latency this interval, ms (LC). */
    double p95Ms = 0.0;

    /** TL_i0: ideal p95 at the current load, ms (LC). */
    double idealP95Ms = 0.0;

    /** M_i: QoS threshold, ms (LC). */
    double thresholdMs = 1.0;

    /** Measured IPC this interval (BE). */
    double ipc = 0.0;

    /** Solo IPC (BE). */
    double ipcSolo = 1.0;

    /**
     * Whether this interval's measurement was actually delivered.
     * Under fault injection a dropped sample repeats the previous
     * delivery with this flag cleared; schedulers should treat such
     * observations as stale (hold, don't steer) rather than fresh.
     */
    bool sampleValid = true;

    /** QoS slack (M_i - p95) / M_i; negative means violation. */
    double slack() const
    {
        return (thresholdMs - p95Ms) / thresholdMs;
    }
};

/**
 * Base class of all scheduling strategies.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Strategy name for reports ("ARQ", "PARTIES", ...). */
    virtual std::string name() const = 0;

    /**
     * Build the strategy's starting layout for a fresh colocation.
     *
     * @param config The node.
     * @param apps Static app descriptors (id/kind/threads filled).
     */
    virtual machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) = 0;

    /** Core-sharing discipline inside shared regions. */
    virtual perf::CoreSharePolicy corePolicy() const = 0;

    /**
     * React to one monitoring interval by mutating the layout.
     *
     * @param layout In/out current layout.
     * @param obs This interval's observations, indexed by AppId.
     * @param now_s Simulated time (for time-based penalties).
     */
    virtual void adjust(machine::RegionLayout &layout,
                        const std::vector<AppObservation> &obs,
                        double now_s) = 0;

    /** Reset any internal controller state (new run). */
    virtual void reset() {}

    /**
     * Actuation feedback: whether the layout produced by the last
     * adjust() actually took effect on the knobs (`false` under an
     * injected actuation fault — the live layout then differs from
     * the intent). Strategies keeping a model of "the allocation I
     * set" must reconcile here; the default ignores the signal.
     */
    virtual void onActuation(bool applied) { (void)applied; }

    /**
     * Attach the telemetry scope decisions are reported through.
     * The simulator sets this every run (and re-points it at the
     * current epoch while tracing), so schedulers never need to.
     */
    void setObsScope(obs::Scope scope) { obs_ = std::move(scope); }

  protected:
    /** The attached telemetry scope (null sinks by default). */
    const obs::Scope &obsScope() const { return obs_; }

    /** Split observations into LC and BE app id lists. */
    static void splitKinds(const std::vector<AppObservation> &apps,
                           std::vector<machine::AppId> &lc,
                           std::vector<machine::AppId> &be);

  private:
    obs::Scope obs_;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_SCHEDULER_HH

/**
 * @file
 * Space-time model implementation.
 */

#include "sched/spacetime.hh"

#include <cassert>

namespace ahq::sched
{

namespace
{

std::size_t
horizon(const std::vector<SpacetimeDemand> &demands)
{
    assert(!demands.empty());
    const std::size_t t = demands.front().needs.size();
    for (const auto &d : demands) {
        assert(d.needs.size() == t);
        (void)d;
    }
    return t;
}

} // namespace

double
SpacetimeResult::utilization() const
{
    const int total = served + idleSlices;
    return total > 0 ? static_cast<double>(served) / total : 0.0;
}

SpacetimeResult
simulateIsolated(const std::vector<SpacetimeDemand> &demands,
                 std::size_t owner)
{
    assert(owner < demands.size());
    const std::size_t t_max = horizon(demands);

    SpacetimeResult res;
    res.outcomes.assign(demands.size(), {});
    for (auto &row : res.outcomes)
        row.assign(t_max, SlotOutcome::NotNeeded);

    for (std::size_t t = 0; t < t_max; ++t) {
        bool used = false;
        for (std::size_t a = 0; a < demands.size(); ++a) {
            if (!demands[a].needs[t])
                continue;
            if (a == owner) {
                res.outcomes[a][t] = SlotOutcome::Served;
                ++res.served;
                used = true;
            } else {
                res.outcomes[a][t] = SlotOutcome::Denied;
                ++res.denied;
            }
        }
        if (!used)
            ++res.idleSlices;
    }
    return res;
}

SpacetimeResult
simulateSharedPriority(const std::vector<SpacetimeDemand> &demands)
{
    const std::size_t t_max = horizon(demands);

    SpacetimeResult res;
    res.outcomes.assign(demands.size(), {});
    for (auto &row : res.outcomes)
        row.assign(t_max, SlotOutcome::NotNeeded);

    constexpr std::size_t no_owner = static_cast<std::size_t>(-1);
    std::size_t prev_owner = no_owner;

    for (std::size_t t = 0; t < t_max; ++t) {
        // Highest priority demander wins: LC apps first (in index
        // order), then BE apps.
        std::size_t winner = no_owner;
        for (int pass = 0; pass < 2 && winner == no_owner; ++pass) {
            const bool want_lc = pass == 0;
            for (std::size_t a = 0; a < demands.size(); ++a) {
                if (demands[a].latencyCritical == want_lc &&
                    demands[a].needs[t]) {
                    winner = a;
                    break;
                }
            }
        }

        for (std::size_t a = 0; a < demands.size(); ++a) {
            if (!demands[a].needs[t])
                continue;
            if (a == winner) {
                const bool transition =
                    prev_owner != no_owner && prev_owner != a;
                res.outcomes[a][t] = transition ?
                    SlotOutcome::ServedWithOverhead :
                    SlotOutcome::Served;
                ++res.served;
                if (transition)
                    ++res.overheads;
            } else {
                res.outcomes[a][t] = SlotOutcome::Denied;
                ++res.denied;
            }
        }
        if (winner == no_owner)
            ++res.idleSlices;
        else
            prev_owner = winner;
    }
    return res;
}

} // namespace ahq::sched

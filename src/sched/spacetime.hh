/**
 * @file
 * The space-time resource utilisation model of Section IV-A (Fig. 4):
 * one resource slice observed over discrete time slices, comparing
 * exclusive isolation against prioritised sharing.
 *
 * Each application declares which time slices it needs the resource
 * slice in. Isolation serves only the owner (other demand is wasted,
 * and owner-idle slices are wasted capacity); prioritised sharing
 * hands the slice to the highest-priority demander, paying a
 * transition overhead (the figure's triangles) whenever ownership
 * changes — context switching and cache pollution.
 */

#ifndef AHQ_SCHED_SPACETIME_HH
#define AHQ_SCHED_SPACETIME_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ahq::sched
{

/** One application's demand pattern over the modelled time slices. */
struct SpacetimeDemand
{
    std::string name;
    bool latencyCritical = true;

    /** needs[t] is true when the app wants the slice at time t. */
    std::vector<bool> needs;
};

/** What happened to one app in one time slice. */
enum class SlotOutcome
{
    NotNeeded,          // app did not want the slice
    Served,             // app used the slice (a tick)
    ServedWithOverhead, // used it, paying a transition (a triangle)
    Denied,             // wanted the slice but could not use it (x)
};

/** Aggregate result of a space-time simulation. */
struct SpacetimeResult
{
    /** outcomes[app][t]. */
    std::vector<std::vector<SlotOutcome>> outcomes;

    int served = 0;    // ticks (including overhead slices)
    int overheads = 0; // triangles
    int denied = 0;    // crosses
    int idleSlices = 0; // slices nobody used

    /** Fraction of time slices in which the slice did useful work. */
    double utilization() const;
};

/**
 * Scenario (b): the slice is exclusively allocated to one owner.
 *
 * @param demands All apps' demand patterns (equal lengths).
 * @param owner Index of the owning app in demands.
 */
SpacetimeResult
simulateIsolated(const std::vector<SpacetimeDemand> &demands,
                 std::size_t owner);

/**
 * Scenario (c): the slice is shared; LC apps take precedence over BE
 * apps (earlier-indexed apps win ties), and every ownership change
 * costs a transition overhead.
 */
SpacetimeResult
simulateSharedPriority(const std::vector<SpacetimeDemand> &demands);

} // namespace ahq::sched

#endif // AHQ_SCHED_SPACETIME_HH

/**
 * @file
 * Unmanaged baseline implementation.
 */

#include "sched/unmanaged.hh"

namespace ahq::sched
{

machine::RegionLayout
Unmanaged::initialLayout(const machine::MachineConfig &config,
                         const std::vector<AppObservation> &apps)
{
    std::vector<machine::AppId> all;
    all.reserve(apps.size());
    for (const auto &a : apps)
        all.push_back(a.id);
    return machine::RegionLayout::fullyShared(
        config.availableResources(), all);
}

void
Unmanaged::adjust(machine::RegionLayout &,
                  const std::vector<AppObservation> &, double)
{
    // The OS default scheduler never repartitions anything.
}

} // namespace ahq::sched

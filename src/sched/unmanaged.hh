/**
 * @file
 * The Unmanaged baseline: Linux CFS with no isolation (§V).
 */

#ifndef AHQ_SCHED_UNMANAGED_HH
#define AHQ_SCHED_UNMANAGED_HH

#include "sched/scheduler.hh"

namespace ahq::sched
{

/**
 * Unmanaged: every application shares all resources under the OS's
 * default fair scheduler; no isolation, no reaction to QoS.
 */
class Unmanaged : public Scheduler
{
  public:
    std::string name() const override { return "Unmanaged"; }

    machine::RegionLayout
    initialLayout(const machine::MachineConfig &config,
                  const std::vector<AppObservation> &apps) override;

    perf::CoreSharePolicy
    corePolicy() const override
    {
        return perf::CoreSharePolicy::FairShare;
    }

    void adjust(machine::RegionLayout &layout,
                const std::vector<AppObservation> &obs,
                double now_s) override;
};

} // namespace ahq::sched

#endif // AHQ_SCHED_UNMANAGED_HH

/**
 * @file
 * Multi-class region simulator implementation.
 *
 * Dispatch discipline:
 *  - an arriving LC request first takes an idle private server of
 *    its class, then an idle shared server, then preempts a shared
 *    server running BE work; otherwise it queues (per-class FIFO,
 *    served globally oldest-first), subject to the class's
 *    concurrency cap;
 *  - a completing private server serves its own class's queue;
 *  - a completing shared server serves the oldest eligible queued
 *    LC request of any class, else takes a BE chunk;
 *  - BE work saturates: idle shared servers always run BE chunks
 *    (when a BE rate is configured), and preempted chunks are
 *    discarded (memoryless service makes the restart equivalent).
 */

#include "sim/multiclass_sim.hh"

#include <cassert>
#include <deque>

namespace ahq::sim
{

namespace
{

struct Server
{
    enum class What { Idle, Lc, Be };
    What what = What::Idle;
    int lcClass = -1;          // valid when what == Lc
    std::uint64_t generation = 0; // invalidates stale events
    bool shared = false;
};

struct Pending
{
    double arrival;
    int cls;
};

} // namespace

MultiClassSimulator::MultiClassSimulator(
    std::vector<LcClassSpec> classes, int shared_servers,
    double be_chunk_rate)
    : classes_(std::move(classes)), sharedServers(shared_servers),
      beChunkRate(be_chunk_rate)
{
    assert(shared_servers >= 0);
    assert(be_chunk_rate >= 0.0);
    for (const auto &c : classes_) {
        assert(c.arrivalRate >= 0.0);
        assert(c.serviceRate > 0.0);
        assert(c.isolatedServers >= 0);
        assert(c.maxConcurrency >= 1);
        (void)c;
    }
}

MultiClassResult
MultiClassSimulator::run(double duration, stats::Rng &rng,
                         double warmup) const
{
    Simulator sim;
    MultiClassResult res;
    res.duration = duration;
    res.lcSojournTimes.resize(classes_.size());

    // Server table: per-class private blocks, then the shared pool.
    std::vector<Server> servers;
    std::vector<std::pair<std::size_t, std::size_t>> private_range;
    for (const auto &c : classes_) {
        private_range.emplace_back(
            servers.size(),
            servers.size() + static_cast<std::size_t>(
                                 c.isolatedServers));
        for (int s = 0; s < c.isolatedServers; ++s)
            servers.push_back({});
    }
    const std::size_t shared_begin = servers.size();
    for (int s = 0; s < sharedServers; ++s) {
        Server sv;
        sv.shared = true;
        servers.push_back(sv);
    }
    const std::size_t shared_end = servers.size();

    std::vector<std::deque<Pending>> queues(classes_.size());
    std::vector<int> in_service(classes_.size(), 0);

    std::function<void(std::size_t)> start_be;
    std::function<void(std::size_t, Pending)> start_lc;
    std::function<void(std::size_t)> server_freed;

    auto oldest_eligible = [&]() -> int {
        int best = -1;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            if (queues[c].empty())
                continue;
            if (in_service[c] >=
                classes_[c].maxConcurrency)
                continue;
            if (best < 0 ||
                queues[c].front().arrival <
                    queues[static_cast<std::size_t>(best)]
                        .front().arrival) {
                best = static_cast<int>(c);
            }
        }
        return best;
    };

    start_be = [&](std::size_t s) {
        if (beChunkRate <= 0.0) {
            servers[s].what = Server::What::Idle;
            ++servers[s].generation;
            return;
        }
        servers[s].what = Server::What::Be;
        servers[s].lcClass = -1;
        const std::uint64_t gen = ++servers[s].generation;
        sim.scheduleAfter(rng.exponential(beChunkRate),
                          [&, s, gen]() {
            if (servers[s].generation != gen)
                return;
            if (sim.now() <= duration &&
                sim.now() >= warmup)
                ++res.beChunksCompleted;
            server_freed(s);
        });
    };

    start_lc = [&](std::size_t s, Pending req) {
        servers[s].what = Server::What::Lc;
        servers[s].lcClass = req.cls;
        const std::uint64_t gen = ++servers[s].generation;
        ++in_service[static_cast<std::size_t>(req.cls)];
        const double svc = rng.exponential(
            classes_[static_cast<std::size_t>(req.cls)]
                .serviceRate);
        sim.scheduleAfter(svc, [&, s, gen, req]() {
            if (servers[s].generation != gen)
                return;
            --in_service[static_cast<std::size_t>(req.cls)];
            if (req.arrival >= warmup) {
                res.lcSojournTimes[static_cast<std::size_t>(
                                       req.cls)]
                    .push_back(sim.now() - req.arrival);
            }
            server_freed(s);
        });
    };

    server_freed = [&](std::size_t s) {
        servers[s].what = Server::What::Idle;
        if (!servers[s].shared) {
            // A private server serves only its own class.
            for (std::size_t c = 0; c < classes_.size(); ++c) {
                const auto &[lo, hi] = private_range[c];
                if (s >= lo && s < hi) {
                    if (!queues[c].empty() &&
                        in_service[c] <
                            classes_[c].maxConcurrency) {
                        Pending req = queues[c].front();
                        queues[c].pop_front();
                        start_lc(s, req);
                    }
                    return;
                }
            }
            return;
        }
        // A shared server serves the globally oldest eligible LC
        // request, else BE work.
        const int cls = oldest_eligible();
        if (cls >= 0) {
            Pending req =
                queues[static_cast<std::size_t>(cls)].front();
            queues[static_cast<std::size_t>(cls)].pop_front();
            start_lc(s, req);
        } else {
            start_be(s);
        }
    };

    auto place_arrival = [&](int cls) {
        const auto c = static_cast<std::size_t>(cls);
        const Pending req{sim.now(), cls};
        if (in_service[c] < classes_[c].maxConcurrency) {
            // Private servers first.
            const auto &[lo, hi] = private_range[c];
            for (std::size_t s = lo; s < hi; ++s) {
                if (servers[s].what == Server::What::Idle) {
                    start_lc(s, req);
                    return;
                }
            }
            // Idle shared server.
            for (std::size_t s = shared_begin; s < shared_end;
                 ++s) {
                if (servers[s].what == Server::What::Idle) {
                    start_lc(s, req);
                    return;
                }
            }
            // Preempt BE work on a shared server.
            for (std::size_t s = shared_begin; s < shared_end;
                 ++s) {
                if (servers[s].what == Server::What::Be) {
                    start_lc(s, req);
                    return;
                }
            }
        }
        queues[c].push_back(req);
    };

    // Arrival processes.
    std::function<void(int)> arrive = [&](int cls) {
        place_arrival(cls);
        const double rate =
            classes_[static_cast<std::size_t>(cls)].arrivalRate;
        if (rate > 0.0) {
            const double gap = rng.exponential(rate);
            if (sim.now() + gap <= duration)
                sim.scheduleAfter(gap, [&, cls]() { arrive(cls); });
        }
    };

    for (std::size_t c = 0; c < classes_.size(); ++c) {
        if (classes_[c].arrivalRate > 0.0) {
            sim.schedule(rng.exponential(classes_[c].arrivalRate),
                         [&, c]() {
                             arrive(static_cast<int>(c));
                         });
        }
    }
    if (beChunkRate > 0.0) {
        for (std::size_t s = shared_begin; s < shared_end; ++s)
            start_be(s);
    }

    sim.run(duration);
    return res;
}

} // namespace ahq::sim

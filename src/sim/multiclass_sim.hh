/**
 * @file
 * Request-level simulator of an ARQ-style region layout: several LC
 * classes, each with optional private (isolated) servers plus access
 * to a shared server pool where LC work preempts saturating BE work.
 *
 * This is the independent validation path for the analytic
 * LcPriority contention model: the epoch simulator predicts each
 * class's capacity and tail latency from closed-form approximations;
 * this simulator measures them from first principles (tests compare
 * the two).
 */

#ifndef AHQ_SIM_MULTICLASS_SIM_HH
#define AHQ_SIM_MULTICLASS_SIM_HH

#include <vector>

#include "sim/simulator.hh"
#include "stats/rng.hh"

namespace ahq::sim
{

/** One LC class of the multi-class simulation. */
struct LcClassSpec
{
    /** Poisson arrival rate, requests/second. */
    double arrivalRate = 100.0;

    /** Exponential service rate per server, requests/second. */
    double serviceRate = 500.0;

    /** Private servers only this class may use. */
    int isolatedServers = 0;

    /**
     * Concurrency cap: max requests of this class in service at
     * once (its thread count). <= isolated + shared servers.
     */
    int maxConcurrency = 4;
};

/** Result of one multi-class run. */
struct MultiClassResult
{
    /** Per-class sojourn times, seconds, completion order. */
    std::vector<std::vector<double>> lcSojournTimes;

    /** BE work chunks completed on the shared pool. */
    std::uint64_t beChunksCompleted = 0;

    double duration = 0.0;

    /** BE throughput, chunks/second. */
    double
    beThroughput() const
    {
        return duration > 0.0 ?
            static_cast<double>(beChunksCompleted) / duration : 0.0;
    }
};

/**
 * The multi-class preemptive-priority region simulator.
 */
class MultiClassSimulator
{
  public:
    /**
     * @param classes The LC classes.
     * @param shared_servers Shared pool size (>= 0).
     * @param be_chunk_rate BE chunk service rate per shared server;
     *        0 disables BE work.
     */
    MultiClassSimulator(std::vector<LcClassSpec> classes,
                        int shared_servers, double be_chunk_rate);

    /**
     * Run for the given simulated duration.
     *
     * @param duration Simulated seconds.
     * @param rng Seeded random source.
     * @param warmup Discard samples arriving before this time.
     */
    MultiClassResult run(double duration, stats::Rng &rng,
                         double warmup = 0.0) const;

  private:
    std::vector<LcClassSpec> classes_;
    int sharedServers;
    double beChunkRate;
};

} // namespace ahq::sim

#endif // AHQ_SIM_MULTICLASS_SIM_HH

/**
 * @file
 * Request-level queue simulator implementations.
 */

#include "sim/queue_sim.hh"

#include <cassert>
#include <deque>

namespace ahq::sim
{

MmcSimulator::MmcSimulator(int servers, double lambda, double mu)
    : servers_(servers), lambda_(lambda), mu_(mu)
{
    assert(servers >= 1);
    assert(lambda >= 0.0);
    assert(mu > 0.0);
}

QueueSimResult
MmcSimulator::run(double duration, stats::Rng &rng, double warmup) const
{
    Simulator sim;
    QueueSimResult res;
    std::deque<double> waiting; // arrival times of queued requests
    int busy = 0;

    // One departure handler shared by all requests.
    std::function<void(double)> start_service =
        [&](double arrival_time)
    {
        const double svc = rng.exponential(mu_);
        res.busyTime += svc;
        sim.scheduleAfter(svc, [&, arrival_time]() {
            const double sojourn = sim.now() - arrival_time;
            ++res.completions;
            if (arrival_time >= warmup)
                res.sojournTimes.push_back(sojourn);
            if (!waiting.empty()) {
                const double next_arrival = waiting.front();
                waiting.pop_front();
                start_service(next_arrival);
            } else {
                --busy;
            }
        });
    };

    std::function<void()> arrive = [&]()
    {
        ++res.arrivals;
        if (busy < servers_) {
            ++busy;
            start_service(sim.now());
        } else {
            waiting.push_back(sim.now());
        }
        if (lambda_ > 0.0) {
            const double gap = rng.exponential(lambda_);
            if (sim.now() + gap <= duration)
                sim.scheduleAfter(gap, arrive);
        }
    };

    if (lambda_ > 0.0)
        sim.schedule(rng.exponential(lambda_), arrive);
    sim.runAll();
    return res;
}

PrioritySimulator::PrioritySimulator(int servers, double lc_lambda,
                                     double lc_mu, double be_chunk_rate)
    : servers_(servers), lcLambda(lc_lambda), lcMu(lc_mu),
      beChunkRate(be_chunk_rate)
{
    assert(servers >= 1);
    assert(lc_lambda >= 0.0);
    assert(lc_mu > 0.0);
    assert(be_chunk_rate > 0.0);
}

PrioritySimulator::Result
PrioritySimulator::run(double duration, stats::Rng &rng) const
{
    Simulator sim;
    Result res;
    res.duration = duration;

    enum class ServerState { Lc, Be };
    struct Server
    {
        ServerState state = ServerState::Be;
        std::uint64_t generation = 0; // invalidates stale events
    };
    std::vector<Server> servers(static_cast<std::size_t>(servers_));
    std::deque<double> lc_waiting;

    std::function<void(std::size_t)> run_be;
    std::function<void(std::size_t, double)> run_lc;

    // BE work is saturating: an idle server always takes a BE chunk.
    run_be = [&](std::size_t s)
    {
        servers[s].state = ServerState::Be;
        const std::uint64_t gen = ++servers[s].generation;
        const double svc = rng.exponential(beChunkRate);
        sim.scheduleAfter(svc, [&, s, gen]() {
            if (servers[s].generation != gen)
                return; // preempted; chunk progress discarded
            if (sim.now() <= duration)
                ++res.beChunksCompleted;
            run_be(s);
        });
    };

    run_lc = [&](std::size_t s, double arrival_time)
    {
        servers[s].state = ServerState::Lc;
        const std::uint64_t gen = ++servers[s].generation;
        const double svc = rng.exponential(lcMu);
        sim.scheduleAfter(svc, [&, s, gen, arrival_time]() {
            if (servers[s].generation != gen)
                return;
            res.lcSojournTimes.push_back(sim.now() - arrival_time);
            if (!lc_waiting.empty()) {
                const double next = lc_waiting.front();
                lc_waiting.pop_front();
                run_lc(s, next);
            } else {
                run_be(s);
            }
        });
    };

    std::function<void()> lc_arrive = [&]()
    {
        // Find a BE server to preempt; LC-occupied servers can't be.
        bool placed = false;
        for (std::size_t s = 0; s < servers.size() && !placed; ++s) {
            if (servers[s].state == ServerState::Be) {
                run_lc(s, sim.now());
                placed = true;
            }
        }
        if (!placed)
            lc_waiting.push_back(sim.now());
        const double gap = rng.exponential(lcLambda);
        if (sim.now() + gap <= duration)
            sim.scheduleAfter(gap, lc_arrive);
    };

    for (std::size_t s = 0; s < servers.size(); ++s)
        run_be(s);
    if (lcLambda > 0.0)
        sim.schedule(rng.exponential(lcLambda), lc_arrive);
    sim.run(duration);
    return res;
}

} // namespace ahq::sim

/**
 * @file
 * Request-level queue simulators built on the discrete-event engine.
 *
 * MmcSimulator reproduces the analytic M/M/c results empirically and
 * PrioritySimulator models two service classes with preemptive
 * priority, which is what the LC-first policy does to BE work on
 * shared cores.
 */

#ifndef AHQ_SIM_QUEUE_SIM_HH
#define AHQ_SIM_QUEUE_SIM_HH

#include <vector>

#include "sim/simulator.hh"
#include "stats/rng.hh"

namespace ahq::sim
{

/** Result of a queue simulation run. */
struct QueueSimResult
{
    std::vector<double> sojournTimes; // seconds, completion order
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    double busyTime = 0.0; // aggregate server-busy seconds
};

/**
 * Simulates an M/M/c queue at request granularity.
 */
class MmcSimulator
{
  public:
    /**
     * @param servers Number of servers (integer, >= 1).
     * @param lambda Arrival rate, requests/second.
     * @param mu Per-server service rate, requests/second.
     */
    MmcSimulator(int servers, double lambda, double mu);

    /**
     * Run for the given simulated duration.
     *
     * @param duration Simulated seconds.
     * @param rng Random source (seeded by the caller).
     * @param warmup Seconds of initial samples to discard.
     */
    QueueSimResult run(double duration, stats::Rng &rng,
                       double warmup = 0.0) const;

  private:
    int servers_;
    double lambda_;
    double mu_;
};

/**
 * Two-class preemptive-priority multi-server queue: class 0 (LC)
 * preempts class 1 (BE). BE "requests" model fixed-size work chunks,
 * so BE throughput degradation is measurable as chunk completion
 * rate.
 */
class PrioritySimulator
{
  public:
    /**
     * @param servers Number of servers.
     * @param lc_lambda LC arrival rate (requests/s).
     * @param lc_mu LC per-server service rate.
     * @param be_chunk_rate BE work-chunk service rate per server.
     */
    PrioritySimulator(int servers, double lc_lambda, double lc_mu,
                      double be_chunk_rate);

    struct Result
    {
        std::vector<double> lcSojournTimes;
        std::uint64_t beChunksCompleted = 0;
        double duration = 0.0;

        /** BE throughput in chunks/second. */
        double beThroughput() const
        {
            return duration > 0.0 ? beChunksCompleted / duration : 0.0;
        }
    };

    /** Run for the given simulated duration. */
    Result run(double duration, stats::Rng &rng) const;

  private:
    int servers_;
    double lcLambda;
    double lcMu;
    double beChunkRate;
};

} // namespace ahq::sim

#endif // AHQ_SIM_QUEUE_SIM_HH

/**
 * @file
 * Discrete-event simulator implementation.
 */

#include "sim/simulator.hh"

#include <cassert>
#include <cmath>
#include <limits>

namespace ahq::sim
{

void
Simulator::schedule(Time at, Handler handler)
{
    assert(at >= now_ && "cannot schedule into the past");
    events.push(Entry{at, nextSeq++, std::move(handler)});
}

void
Simulator::scheduleAfter(Time delay, Handler handler)
{
    assert(delay >= 0.0);
    schedule(now_ + delay, std::move(handler));
}

std::uint64_t
Simulator::run(Time until)
{
    std::uint64_t executed = 0;
    while (!events.empty() && events.top().at <= until) {
        // Copy out before pop: the handler may schedule new events.
        Entry e = events.top();
        events.pop();
        now_ = e.at;
        e.handler();
        ++executed;
    }
    // Leave the clock at the last executed event when draining to
    // infinity; otherwise advance it to the horizon.
    if (std::isfinite(until) && now_ < until)
        now_ = until;
    return executed;
}

std::uint64_t
Simulator::runAll()
{
    return run(std::numeric_limits<Time>::infinity());
}

} // namespace ahq::sim

/**
 * @file
 * A minimal discrete-event simulation engine.
 *
 * The epoch-level system simulator (cluster/) is analytic, but the
 * library also ships a request-level discrete-event path used to
 * cross-validate the analytic queueing formulas (tests/ and
 * bench/fig07) and to let downstream users plug in custom workloads.
 */

#ifndef AHQ_SIM_SIMULATOR_HH
#define AHQ_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ahq::sim
{

/** Simulated time in seconds. */
using Time = double;

/**
 * Discrete-event simulator: a time-ordered queue of callbacks.
 *
 * Events scheduled for the same instant fire in scheduling order
 * (stable FIFO tie-break), which keeps runs deterministic.
 */
class Simulator
{
  public:
    using Handler = std::function<void()>;

    Simulator() = default;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule a handler at an absolute time.
     * @pre at >= now().
     */
    void schedule(Time at, Handler handler);

    /** Schedule a handler after a relative delay (>= 0). */
    void scheduleAfter(Time delay, Handler handler);

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /**
     * Run events until the queue empties or the horizon passes.
     *
     * @param until Stop once the next event is later than this time;
     *              the clock is left at min(until, last event time).
     * @return Number of events executed.
     */
    std::uint64_t run(Time until);

    /** Run all pending events to exhaustion. */
    std::uint64_t runAll();

  private:
    struct Entry
    {
        Time at;
        std::uint64_t seq;
        Handler handler;

        bool
        operator>(const Entry &o) const
        {
            return at > o.at || (at == o.at && seq > o.seq);
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        events;
    Time now_ = 0.0;
    std::uint64_t nextSeq = 0;
};

} // namespace ahq::sim

#endif // AHQ_SIM_SIMULATOR_HH

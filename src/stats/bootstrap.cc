/**
 * @file
 * Bootstrap implementation.
 */

#include "stats/bootstrap.hh"

#include <cassert>

#include "stats/percentile.hh"
#include "stats/summary.hh"

namespace ahq::stats
{

ConfidenceInterval
bootstrapCi(const std::vector<double> &samples,
            const std::function<double(
                const std::vector<double> &)> &statistic,
            Rng &rng, double confidence, int resamples)
{
    assert(!samples.empty());
    assert(confidence > 0.0 && confidence < 1.0);
    assert(resamples >= 2);

    ConfidenceInterval ci;
    ci.estimate = statistic(samples);

    std::vector<double> stats;
    stats.reserve(static_cast<std::size_t>(resamples));
    std::vector<double> resample(samples.size());
    for (int b = 0; b < resamples; ++b) {
        for (auto &v : resample)
            v = samples[rng.uniformInt(samples.size())];
        stats.push_back(statistic(resample));
    }
    const double alpha = 1.0 - confidence;
    ci.lo = exactPercentile(stats, 100.0 * alpha / 2.0);
    ci.hi = exactPercentile(stats, 100.0 * (1.0 - alpha / 2.0));
    return ci;
}

ConfidenceInterval
bootstrapMeanCi(const std::vector<double> &samples, Rng &rng,
                double confidence, int resamples)
{
    return bootstrapCi(
        samples,
        [](const std::vector<double> &s) { return mean(s); }, rng,
        confidence, resamples);
}

} // namespace ahq::stats

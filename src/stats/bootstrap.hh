/**
 * @file
 * Bootstrap confidence intervals for simulation aggregates.
 *
 * The bench harness reports means over seeds/epochs; a reproduction
 * repo should say how stable those means are. The percentile
 * bootstrap is distribution-free and plays well with the seeded Rng.
 */

#ifndef AHQ_STATS_BOOTSTRAP_HH
#define AHQ_STATS_BOOTSTRAP_HH

#include <functional>
#include <vector>

#include "stats/rng.hh"

namespace ahq::stats
{

/** A two-sided confidence interval around a point estimate. */
struct ConfidenceInterval
{
    double estimate = 0.0;
    double lo = 0.0;
    double hi = 0.0;

    /** Half-width of the interval. */
    double
    halfWidth() const
    {
        return 0.5 * (hi - lo);
    }

    /** Whether the interval contains the value. */
    bool
    contains(double v) const
    {
        return v >= lo && v <= hi;
    }
};

/**
 * Percentile-bootstrap confidence interval for an arbitrary
 * statistic of a sample.
 *
 * @param samples The observed sample (size >= 1).
 * @param statistic Maps a resample to its statistic.
 * @param rng Seeded random source.
 * @param confidence Coverage, e.g. 0.95.
 * @param resamples Bootstrap iterations (default 1000).
 */
ConfidenceInterval
bootstrapCi(const std::vector<double> &samples,
            const std::function<double(
                const std::vector<double> &)> &statistic,
            Rng &rng, double confidence = 0.95,
            int resamples = 1000);

/** Convenience: bootstrap CI of the mean. */
ConfidenceInterval bootstrapMeanCi(const std::vector<double> &samples,
                                   Rng &rng,
                                   double confidence = 0.95,
                                   int resamples = 1000);

} // namespace ahq::stats

#endif // AHQ_STATS_BOOTSTRAP_HH

/**
 * @file
 * Histogram implementations.
 */

#include "stats/histogram.hh"

#include <cassert>
#include <cmath>

namespace ahq::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width((hi - lo) / static_cast<double>(bins)),
      counts(bins, 0), under(0), over(0), total(0), sum(0.0)
{
    assert(hi > lo);
    assert(bins >= 1);
}

void
Histogram::add(double x)
{
    add(x, 1);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    total += weight;
    sum += x * static_cast<double>(weight);
    if (x < lo_) {
        under += weight;
    } else if (x >= hi_) {
        over += weight;
    } else {
        auto bin = static_cast<std::size_t>((x - lo_) / width);
        if (bin >= counts.size())
            bin = counts.size() - 1; // float edge case at hi_
        counts[bin] += weight;
    }
}

double
Histogram::mean() const
{
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double
Histogram::binLo(std::size_t bin) const
{
    return lo_ + width * static_cast<double>(bin);
}

double
Histogram::quantile(double q) const
{
    assert(q >= 0.0 && q <= 1.0);
    if (total == 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    double acc = static_cast<double>(under);
    if (target <= acc)
        return lo_;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        const double next = acc + static_cast<double>(counts[b]);
        if (target <= next && counts[b] > 0) {
            const double frac = (target - acc) /
                static_cast<double>(counts[b]);
            return binLo(b) + frac * width;
        }
        acc = next;
    }
    return hi_;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    under = over = total = 0;
    sum = 0.0;
}

LogHistogram::LogHistogram(double lo, double hi,
                           std::size_t bins_per_decade)
    : logHist(std::log10(lo), std::log10(hi),
              static_cast<std::size_t>(
                  std::ceil((std::log10(hi) - std::log10(lo)) *
                            static_cast<double>(bins_per_decade))))
{
    assert(lo > 0.0 && hi > lo);
}

void
LogHistogram::add(double x)
{
    assert(x > 0.0);
    logHist.add(std::log10(x));
}

double
LogHistogram::quantile(double q) const
{
    if (logHist.count() == 0)
        return 0.0;
    return std::pow(10.0, logHist.quantile(q));
}

void
LogHistogram::reset()
{
    logHist.reset();
}

} // namespace ahq::stats

/**
 * @file
 * Histograms for latency distributions: a linear fixed-bin histogram
 * and a log-spaced histogram suited to heavy-tailed latency data.
 */

#ifndef AHQ_STATS_HISTOGRAM_HH
#define AHQ_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ahq::stats
{

/**
 * Linear fixed-width histogram over [lo, hi) with out-of-range
 * underflow/overflow buckets and interpolated quantile queries.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound of the tracked range; must exceed lo.
     * @param bins Number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /** Record an observation with the given weight (count). */
    void add(double x, std::uint64_t weight);

    /** Total number of recorded observations (including out of range). */
    std::uint64_t count() const { return total; }

    /** Number of observations below the tracked range. */
    std::uint64_t underflow() const { return under; }

    /** Number of observations at or above the tracked range. */
    std::uint64_t overflow() const { return over; }

    /** Mean of all recorded observations (exact, not binned). */
    double mean() const;

    /**
     * Interpolated quantile (q in [0,1]) from the binned data.
     * Out-of-range mass is attributed to the range edges.
     */
    double quantile(double q) const;

    /** Count in the given bin. @pre bin < numBins(). */
    std::uint64_t binCount(std::size_t bin) const { return counts[bin]; }

    /** Number of bins. */
    std::size_t numBins() const { return counts.size(); }

    /** Lower edge of the given bin. */
    double binLo(std::size_t bin) const;

    /** Clear all recorded data. */
    void reset();

  private:
    double lo_, hi_, width;
    std::vector<std::uint64_t> counts;
    std::uint64_t under, over, total;
    double sum;
};

/**
 * Log-spaced histogram over [lo, hi) for data spanning several orders
 * of magnitude (e.g. microsecond-to-second latencies).
 */
class LogHistogram
{
  public:
    /**
     * @param lo Lower bound; must be > 0.
     * @param hi Upper bound; must exceed lo.
     * @param bins_per_decade Resolution; must be >= 1.
     */
    LogHistogram(double lo, double hi, std::size_t bins_per_decade);

    /** Record one observation. */
    void add(double x);

    /** Total number of recorded observations. */
    std::uint64_t count() const { return logHist.count(); }

    /** Interpolated quantile (q in [0,1]) in the original scale. */
    double quantile(double q) const;

    /** Clear all recorded data. */
    void reset();

  private:
    Histogram logHist;
};

} // namespace ahq::stats

#endif // AHQ_STATS_HISTOGRAM_HH

/**
 * @file
 * Percentile estimator implementations.
 */

#include "stats/percentile.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ahq::stats
{

double
exactPercentile(std::vector<double> samples, double p)
{
    assert(p >= 0.0 && p <= 100.0);
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = (p / 100.0) * (samples.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

P2Quantile::P2Quantile(double quantile)
    : q(quantile), n(0)
{
    assert(quantile > 0.0 && quantile < 1.0);
    reset();
}

void
P2Quantile::reset()
{
    n = 0;
    for (int i = 0; i < 5; ++i) {
        heights[i] = 0.0;
        positions[i] = i + 1;
    }
    desired[0] = 1.0;
    desired[1] = 1.0 + 2.0 * q;
    desired[2] = 1.0 + 4.0 * q;
    desired[3] = 3.0 + 2.0 * q;
    desired[4] = 5.0;
    increments[0] = 0.0;
    increments[1] = q / 2.0;
    increments[2] = q;
    increments[3] = (1.0 + q) / 2.0;
    increments[4] = 1.0;
}

void
P2Quantile::initialise()
{
    std::sort(heights, heights + 5);
}

double
P2Quantile::parabolic(const double *hts, const double *pos, int i, double d)
{
    return hts[i] + d / (pos[i + 1] - pos[i - 1]) *
        ((pos[i] - pos[i - 1] + d) * (hts[i + 1] - hts[i]) /
             (pos[i + 1] - pos[i]) +
         (pos[i + 1] - pos[i] - d) * (hts[i] - hts[i - 1]) /
             (pos[i] - pos[i - 1]));
}

void
P2Quantile::add(double x)
{
    if (n < 5) {
        heights[n++] = x;
        if (n == 5)
            initialise();
        return;
    }

    int k;
    if (x < heights[0]) {
        heights[0] = x;
        k = 0;
    } else if (x >= heights[4]) {
        heights[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights[k + 1])
            ++k;
    }

    for (int i = k + 1; i < 5; ++i)
        positions[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired[i] += increments[i];

    for (int i = 1; i <= 3; ++i) {
        const double d = desired[i] - positions[i];
        const bool move_right = d >= 1.0 &&
            positions[i + 1] - positions[i] > 1.0;
        const bool move_left = d <= -1.0 &&
            positions[i - 1] - positions[i] < -1.0;
        if (move_right || move_left) {
            const double dir = d >= 1.0 ? 1.0 : -1.0;
            double candidate = parabolic(heights, positions, i, dir);
            if (heights[i - 1] < candidate && candidate < heights[i + 1]) {
                heights[i] = candidate;
            } else {
                // Linear fallback when the parabolic step overshoots.
                const int j = static_cast<int>(dir);
                heights[i] += dir * (heights[i + j] - heights[i]) /
                    (positions[i + j] - positions[i]);
            }
            positions[i] += dir;
        }
    }
    ++n;
}

double
P2Quantile::value() const
{
    if (n == 0)
        return 0.0;
    if (n < 5) {
        std::vector<double> seen(heights, heights + n);
        return exactPercentile(std::move(seen), q * 100.0);
    }
    return heights[2];
}

} // namespace ahq::stats

/**
 * @file
 * Percentile estimator implementations.
 */

#include "stats/percentile.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ahq::stats
{

double
exactPercentile(std::vector<double> samples, double p)
{
    if (std::isnan(p) || p < 0.0 || p > 100.0) {
        throw std::invalid_argument(
            "exactPercentile: p = " + std::to_string(p) +
            " outside [0, 100]");
    }
    if (samples.empty())
        return 0.0; // by definition: no samples, zero latency
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (std::isnan(samples[i])) {
            throw std::invalid_argument(
                "exactPercentile: sample " + std::to_string(i) +
                " is NaN");
        }
    }
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const std::size_t last = samples.size() - 1;
    const double rank = (p / 100.0) * static_cast<double>(last);
    // Clamp both ranks into the array: p == 100 must return the
    // maximum without indexing past the final bucket, whatever
    // floating-point rounding did to rank.
    const auto lo = std::min(
        static_cast<std::size_t>(std::floor(rank)), last);
    const auto hi = std::min(
        static_cast<std::size_t>(std::ceil(rank)), last);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

P2Quantile::P2Quantile(double quantile)
    : q(quantile), n(0)
{
    assert(quantile > 0.0 && quantile < 1.0);
    reset();
}

void
P2Quantile::reset()
{
    n = 0;
    for (int i = 0; i < 5; ++i) {
        heights[i] = 0.0;
        positions[i] = i + 1;
    }
    desired[0] = 1.0;
    desired[1] = 1.0 + 2.0 * q;
    desired[2] = 1.0 + 4.0 * q;
    desired[3] = 3.0 + 2.0 * q;
    desired[4] = 5.0;
    increments[0] = 0.0;
    increments[1] = q / 2.0;
    increments[2] = q;
    increments[3] = (1.0 + q) / 2.0;
    increments[4] = 1.0;
}

void
P2Quantile::initialise()
{
    std::sort(heights, heights + 5);
}

double
P2Quantile::parabolic(const double *hts, const double *pos, int i, double d)
{
    // Degenerate streams (long constant runs) can collapse adjacent
    // marker positions; every position difference below is then a
    // zero denominator. Returning the current height makes the
    // caller fall through to its in-range test and keep the marker
    // where it is instead of propagating an inf/NaN.
    if (pos[i + 1] - pos[i - 1] == 0.0 ||
        pos[i + 1] - pos[i] == 0.0 || pos[i] - pos[i - 1] == 0.0)
        return hts[i];
    return hts[i] + d / (pos[i + 1] - pos[i - 1]) *
        ((pos[i] - pos[i - 1] + d) * (hts[i + 1] - hts[i]) /
             (pos[i + 1] - pos[i]) +
         (pos[i + 1] - pos[i] - d) * (hts[i] - hts[i - 1]) /
             (pos[i] - pos[i - 1]));
}

void
P2Quantile::add(double x)
{
    if (n < 5) {
        heights[n++] = x;
        if (n == 5)
            initialise();
        return;
    }

    int k;
    if (x < heights[0]) {
        heights[0] = x;
        k = 0;
    } else if (x >= heights[4]) {
        heights[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights[k + 1])
            ++k;
    }

    for (int i = k + 1; i < 5; ++i)
        positions[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired[i] += increments[i];

    for (int i = 1; i <= 3; ++i) {
        const double d = desired[i] - positions[i];
        const bool move_right = d >= 1.0 &&
            positions[i + 1] - positions[i] > 1.0;
        const bool move_left = d <= -1.0 &&
            positions[i - 1] - positions[i] < -1.0;
        if (move_right || move_left) {
            const double dir = d >= 1.0 ? 1.0 : -1.0;
            double candidate = parabolic(heights, positions, i, dir);
            if (heights[i - 1] < candidate && candidate < heights[i + 1]) {
                heights[i] = candidate;
            } else {
                // Linear fallback when the parabolic step overshoots
                // (or when duplicate heights made the candidate sit
                // on a neighbour). Guarded against collapsed marker
                // positions: a zero gap would divide by zero.
                const int j = static_cast<int>(dir);
                const double gap =
                    positions[i + j] - positions[i];
                if (gap != 0.0) {
                    heights[i] += dir *
                        (heights[i + j] - heights[i]) / gap;
                }
            }
            positions[i] += dir;
        }
    }
    ++n;
}

std::vector<double>
P2Quantile::markerHeights() const
{
    if (n < 5)
        return {};
    return {heights, heights + 5};
}

std::vector<double>
P2Quantile::markerPositions() const
{
    if (n < 5)
        return {};
    return {positions, positions + 5};
}

double
P2Quantile::value() const
{
    if (n == 0)
        return 0.0;
    if (n < 5) {
        std::vector<double> seen(heights, heights + n);
        return exactPercentile(std::move(seen), q * 100.0);
    }
    return heights[2];
}

} // namespace ahq::stats

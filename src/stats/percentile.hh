/**
 * @file
 * Percentile computation: an exact batch estimator and the streaming
 * P-square estimator used by the per-epoch latency monitors.
 *
 * The paper reports 95th-percentile tail latency over 500 ms windows;
 * within a window the number of completed requests can be large, so
 * the monitor uses the constant-space P-square estimator and the tests
 * validate it against the exact batch computation.
 */

#ifndef AHQ_STATS_PERCENTILE_HH
#define AHQ_STATS_PERCENTILE_HH

#include <cstddef>
#include <vector>

namespace ahq::stats
{

/**
 * Exact percentile of a sample set by linear interpolation between
 * closest ranks (the "linear" / type-7 rule used by numpy).
 *
 * Edge cases are pinned down by the test suite: an empty sample set
 * returns 0.0 by definition (the monitors treat "no completed
 * requests this window" as zero latency rather than an error);
 * `p == 100` returns the maximum without reading past the last
 * rank; single-element inputs return that element for every p.
 *
 * @param samples The sample values; the vector is copied and sorted.
 * @param p Percentile in [0, 100].
 * @return The interpolated percentile, or 0 when samples is empty.
 * @throws std::invalid_argument when p is NaN or outside [0, 100],
 *         or when any sample is NaN (NaN would poison the sort's
 *         strict weak ordering and silently corrupt the result).
 */
double exactPercentile(std::vector<double> samples, double p);

/**
 * Streaming quantile estimator (Jain & Chlamtac's P-square algorithm).
 *
 * Tracks a single quantile with five markers in O(1) space and O(1)
 * amortised time per observation.
 */
class P2Quantile
{
  public:
    /** @param quantile Target quantile in (0, 1), e.g. 0.95. */
    explicit P2Quantile(double quantile);

    /** Observe one sample. */
    void add(double x);

    /**
     * Current estimate of the quantile.
     *
     * Before five samples have been observed this falls back to the
     * exact value over the seen samples.
     */
    double value() const;

    /** Number of samples observed so far. */
    std::size_t count() const { return n; }

    /** Reset to the empty state, keeping the target quantile. */
    void reset();

    /**
     * The five marker heights, non-decreasing by construction.
     * Empty before five samples have been observed (markers are
     * only meaningful once initialised).
     */
    std::vector<double> markerHeights() const;

    /**
     * The five marker positions, strictly increasing by
     * construction. Empty before five samples have been observed.
     */
    std::vector<double> markerPositions() const;

  private:
    double q;
    std::size_t n;
    double heights[5];
    double positions[5];
    double desired[5];
    double increments[5];

    void initialise();
    static double parabolic(const double *hts, const double *pos, int i,
                            double d);
};

} // namespace ahq::stats

#endif // AHQ_STATS_PERCENTILE_HH

/**
 * @file
 * Implementation of the xoshiro256** generator and distributions.
 */

#include "stats/rng.hh"

#include <cassert>
#include <cmath>

namespace ahq::stats
{

namespace
{

/** splitmix64 step, used for seeding and stream derivation. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedNormal(0.0), hasCachedNormal(false)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // Use the top 53 bits for a double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double rate)
{
    assert(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalNoise(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

std::uint64_t
Rng::poisson(double mean)
{
    assert(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion for small means.
        const double limit = std::exp(-mean);
        double p = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction for large means;
    // adequate for epoch-level arrival counts.
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    std::uint64_t mix = state[0] ^ rotl(state[2], 13) ^
        (stream_id * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
    return Rng(mix);
}

} // namespace ahq::stats

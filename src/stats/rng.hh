/**
 * @file
 * Seeded pseudo-random number generation for the Ah-Q simulator.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng passed in by the caller, which keeps whole-system runs
 * reproducible bit-for-bit. The generator is xoshiro256**, which is
 * small, fast and of high statistical quality.
 */

#ifndef AHQ_STATS_RNG_HH
#define AHQ_STATS_RNG_HH

#include <cstdint>

namespace ahq::stats
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Provides the distributions the simulator needs: uniform, exponential,
 * normal, lognormal and Poisson. The state is fully determined by the
 * seed, and independent streams can be created via split().
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output of xoshiro256**. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponential variate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Standard normal variate (Box-Muller with caching). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal multiplicative noise factor.
     *
     * Returns exp(N(-sigma^2/2, sigma)), which has mean 1, so that
     * applying it to a measurement leaves the expectation unchanged.
     *
     * @param sigma Standard deviation of the underlying normal.
     */
    double lognormalNoise(double sigma);

    /** Poisson variate with the given mean (inversion / PTRS hybrid). */
    std::uint64_t poisson(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator.
     *
     * The child stream is a deterministic function of the parent state
     * and the supplied stream id; the parent state is not advanced.
     */
    Rng split(std::uint64_t stream_id) const;

  private:
    std::uint64_t state[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace ahq::stats

#endif // AHQ_STATS_RNG_HH

/**
 * @file
 * Incremental statistics implementations.
 */

#include "stats/running.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ahq::stats
{

RunningStats::RunningStats()
{
    reset();
}

void
RunningStats::reset()
{
    n = 0;
    mu = 0.0;
    m2 = 0.0;
    minV = 0.0;
    maxV = 0.0;
}

void
RunningStats::add(double x)
{
    ++n;
    if (n == 1) {
        minV = maxV = x;
    } else {
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n + other.n);
    const double delta = other.mu - mu;
    m2 += other.m2 +
        delta * delta * static_cast<double>(n) *
            static_cast<double>(other.n) / total;
    mu += delta * static_cast<double>(other.n) / total;
    minV = std::min(minV, other.minV);
    maxV = std::max(maxV, other.maxV);
    n += other.n;
}

Ewma::Ewma(double alpha)
    : a(alpha), val(0.0), primed(false)
{
    assert(alpha > 0.0 && alpha <= 1.0);
}

void
Ewma::add(double x)
{
    if (!primed) {
        val = x;
        primed = true;
    } else {
        val = a * x + (1.0 - a) * val;
    }
}

void
Ewma::reset()
{
    val = 0.0;
    primed = false;
}

} // namespace ahq::stats

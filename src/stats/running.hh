/**
 * @file
 * Incremental statistics: Welford running mean/variance and an
 * exponentially weighted moving average used by scheduler monitors.
 */

#ifndef AHQ_STATS_RUNNING_HH
#define AHQ_STATS_RUNNING_HH

#include <cstdint>

namespace ahq::stats
{

/**
 * Running mean / variance / extrema via Welford's algorithm.
 */
class RunningStats
{
  public:
    RunningStats();

    /** Observe one sample. */
    void add(double x);

    /** Number of observations. */
    std::uint64_t count() const { return n; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return n == 0 ? 0.0 : mu; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (0 when empty). */
    double min() const { return n == 0 ? 0.0 : minV; }

    /** Largest observation (0 when empty). */
    double max() const { return n == 0 ? 0.0 : maxV; }

    /** Sum of all observations. */
    double sum() const { return n == 0 ? 0.0 : mu * n; }

    /** Clear all state. */
    void reset();

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

  private:
    std::uint64_t n;
    double mu;
    double m2;
    double minV;
    double maxV;
};

/**
 * Exponentially weighted moving average with configurable smoothing.
 */
class Ewma
{
  public:
    /** @param alpha Smoothing factor in (0, 1]; larger reacts faster. */
    explicit Ewma(double alpha);

    /** Observe one sample. */
    void add(double x);

    /** Current smoothed value (0 until the first sample). */
    double value() const { return val; }

    /** Whether at least one sample has been observed. */
    bool seeded() const { return primed; }

    /** Clear all state. */
    void reset();

  private:
    double a;
    double val;
    bool primed;
};

} // namespace ahq::stats

#endif // AHQ_STATS_RUNNING_HH

/**
 * @file
 * Batch summary implementations.
 */

#include "stats/summary.hh"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "stats/percentile.hh"
#include "stats/running.hh"

namespace ahq::stats
{

SampleSummary
summarize(const std::vector<double> &samples)
{
    SampleSummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    RunningStats rs;
    for (double v : samples)
        rs.add(v);
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.min();
    s.max = rs.max();
    s.p50 = exactPercentile(samples, 50.0);
    s.p95 = exactPercentile(samples, 95.0);
    s.p99 = exactPercentile(samples, 99.0);
    return s;
}

std::string
SampleSummary::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g "
                  "p99=%.4g max=%.4g",
                  count, mean, stddev, min, p50, p95, p99, max);
    return buf;
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : samples)
        acc += v;
    return acc / static_cast<double>(samples.size());
}

double
harmonicMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : samples) {
        assert(v > 0.0);
        acc += 1.0 / v;
    }
    return static_cast<double>(samples.size()) / acc;
}

double
geometricMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : samples) {
        assert(v > 0.0);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(samples.size()));
}

} // namespace ahq::stats

/**
 * @file
 * Batch summaries of sample vectors: the SampleSummary aggregate used
 * by benches and reports.
 */

#ifndef AHQ_STATS_SUMMARY_HH
#define AHQ_STATS_SUMMARY_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ahq::stats
{

/** Aggregate statistics over a batch of samples. */
struct SampleSummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    /** Render as a compact single-line string for reports. */
    std::string toString() const;
};

/** Compute a SampleSummary over the given samples. */
SampleSummary summarize(const std::vector<double> &samples);

/** Arithmetic mean (0 when empty). */
double mean(const std::vector<double> &samples);

/**
 * Harmonic mean (0 when empty).
 * @pre All samples strictly positive.
 */
double harmonicMean(const std::vector<double> &samples);

/** Geometric mean (0 when empty). @pre All samples strictly positive. */
double geometricMean(const std::vector<double> &samples);

} // namespace ahq::stats

#endif // AHQ_STATS_SUMMARY_HH

/**
 * @file
 * Zipf sampler implementation.
 */

#include "stats/zipf.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ahq::stats
{

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s)
    : n_(n), s_(s)
{
    assert(n >= 1);
    cdf.resize(n);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k), s);
        cdf[k - 1] = acc;
    }
    for (auto &v : cdf)
        v /= acc;
    // Guard against floating point drift in the final entry.
    cdf.back() = 1.0;
}

std::uint64_t
ZipfDistribution::sample(Rng &rng) const
{
    return sampleAt(rng.uniform());
}

std::uint64_t
ZipfDistribution::sampleAt(double u) const
{
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    // cdf.back() is pinned to 1.0, so only u > 1.0 can fall past
    // the table; clamp it to the last rank rather than return n+1.
    if (it == cdf.end())
        return n_;
    return static_cast<std::uint64_t>(it - cdf.begin()) + 1;
}

double
ZipfDistribution::pmf(std::uint64_t rank) const
{
    assert(rank >= 1 && rank <= n_);
    const double lo = rank == 1 ? 0.0 : cdf[rank - 2];
    return cdf[rank - 1] - lo;
}

} // namespace ahq::stats

/**
 * @file
 * Zipfian sampler used to drive skewed request popularity, matching the
 * paper's Xapian setup ("query terms are chosen randomly, following a
 * Zipfian distribution").
 */

#ifndef AHQ_STATS_ZIPF_HH
#define AHQ_STATS_ZIPF_HH

#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace ahq::stats
{

/**
 * Zipf(s, n) sampler over ranks 1..n with exponent s.
 *
 * Uses a precomputed cumulative table with binary search, which is
 * exact and fast for the catalogue sizes the workload generators use
 * (up to a few hundred thousand items).
 */
class ZipfDistribution
{
  public:
    /**
     * @param n Number of ranked items; must be >= 1.
     * @param s Skew exponent; s = 0 degenerates to uniform.
     */
    ZipfDistribution(std::uint64_t n, double s);

    /** Sample a rank in [1, n]. */
    std::uint64_t sample(Rng &rng) const;

    /**
     * Rank for a given uniform draw u in [0, 1] (the inverse-CDF
     * step sample() performs). Exposed so tests can pin the
     * boundary draws: u == 0.0 maps to rank 1 and u == 1.0 maps to
     * rank n, never past the table.
     */
    std::uint64_t sampleAt(double u) const;

    /** Probability mass of the given rank. */
    double pmf(std::uint64_t rank) const;

    /** Number of ranked items. */
    std::uint64_t size() const { return n_; }

    /** Skew exponent. */
    double skew() const { return s_; }

  private:
    std::uint64_t n_;
    double s_;
    std::vector<double> cdf;
};

} // namespace ahq::stats

#endif // AHQ_STATS_ZIPF_HH

/**
 * @file
 * Fleet load generator implementation.
 */

#include "trace/fleet_load.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/rng.hh"

namespace ahq::trace
{

namespace
{

/** RNG stream ids (cf. fault::kFaultStream's discipline). */
constexpr std::uint64_t kAssignStream = 0xa5516;
constexpr std::uint64_t kTenantStream = 0x7e9a9;

constexpr double kTwoPi = 6.283185307179586476925286766559;

/**
 * One tenant's load: a phase-shifted diurnal sinusoid scaled to the
 * tenant's popularity peak, plus an optional periodic flash-crowd
 * overlay, clamped to the configured cap.
 */
class TenantTrace final : public LoadTrace
{
  public:
    TenantTrace(double peak, double low_fraction, double period_s,
                double phase_s, bool flashes, double flash_amp,
                double flash_period_s, double flash_phase_s,
                double flash_duration_s, double cap)
        : peak_(peak), lowFraction(low_fraction), period(period_s),
          phase(phase_s), flashes_(flashes), flashAmp(flash_amp),
          flashPeriod(flash_period_s), flashPhase(flash_phase_s),
          flashDuration(flash_duration_s), cap_(cap)
    {
    }

    double at(double time_s) const override
    {
        // Diurnal: lowFraction of peak at "night", full peak at
        // midday, sinusoidal in between.
        const double day = 0.5 *
            (1.0 - std::cos(kTwoPi * (time_s + phase) / period));
        double load = peak_ *
            (lowFraction + (1.0 - lowFraction) * day);
        if (flashes_) {
            const double t = time_s + flashPhase;
            const double in_period =
                t - std::floor(t / flashPeriod) * flashPeriod;
            if (in_period < flashDuration)
                load += flashAmp;
        }
        return std::clamp(load, 0.0, cap_);
    }

  private:
    double peak_, lowFraction, period, phase;
    bool flashes_;
    double flashAmp, flashPeriod, flashPhase, flashDuration;
    double cap_;
};

} // namespace

FleetLoadGenerator::FleetLoadGenerator(FleetLoadConfig config)
    : cfg(config),
      zipf(static_cast<std::uint64_t>(
               std::max(config.numTenants, 1)),
           config.zipfSkew)
{
    assert(cfg.numTenants >= 1);
    assert(cfg.peakLoad >= cfg.baseLoad);
    const auto m = static_cast<std::uint64_t>(cfg.numTenants);
    traces.reserve(m);
    peaks.reserve(m);
    flashes.reserve(m);
    const stats::Rng root(cfg.seed);
    const double pmf1 = zipf.pmf(1);
    for (std::uint64_t r = 1; r <= m; ++r) {
        // Per-tenant stream: the draw order below is part of the
        // determinism contract (phase, flash gate, flash phase).
        stats::Rng rng = root.split(kTenantStream).split(r);
        const double peak = cfg.baseLoad +
            (cfg.peakLoad - cfg.baseLoad) * (zipf.pmf(r) / pmf1);
        const double phase = rng.uniform(0.0, cfg.diurnalPeriodS);
        const bool flash = rng.bernoulli(cfg.flashFraction);
        const double flash_phase =
            rng.uniform(0.0, cfg.flashPeriodS);
        peaks.push_back(peak);
        flashes.push_back(flash);
        traces.push_back(std::make_shared<TenantTrace>(
            peak, cfg.diurnalLowFraction, cfg.diurnalPeriodS,
            phase, flash, cfg.flashAmplitude, cfg.flashPeriodS,
            flash_phase, cfg.flashDurationS, cfg.loadCap));
    }
}

std::uint64_t
FleetLoadGenerator::tenant(int node, int slot) const
{
    // One uniform draw on a split keyed by (node, slot): stateless,
    // so materializing any node is independent of every other.
    stats::Rng rng = stats::Rng(cfg.seed)
                         .split(kAssignStream)
                         .split(static_cast<std::uint64_t>(node) + 1)
                         .split(static_cast<std::uint64_t>(slot) + 1);
    return zipf.sampleAt(rng.uniform());
}

std::shared_ptr<LoadTrace>
FleetLoadGenerator::tenantTrace(std::uint64_t rank) const
{
    assert(rank >= 1 && rank <= traces.size());
    return traces[rank - 1];
}

double
FleetLoadGenerator::tenantPeakLoad(std::uint64_t rank) const
{
    assert(rank >= 1 && rank <= peaks.size());
    return peaks[rank - 1];
}

bool
FleetLoadGenerator::tenantFlashes(std::uint64_t rank) const
{
    assert(rank >= 1 && rank <= flashes.size());
    return flashes[rank - 1];
}

} // namespace ahq::trace

/**
 * @file
 * Datacenter-scale load synthesis: diurnal traffic curves, Zipf
 * tenant skew and flash crowds over N nodes x M tenants. The paper
 * motivates E_S with "high load in the daytime, low at night"
 * datacenters serving millions of users; this generator makes that a
 * runnable scenario by assigning every LC slot in the fleet to a
 * tenant (popularity-skewed) and giving each tenant a deterministic
 * time-varying load trace shared by all of its replicas.
 */

#ifndef AHQ_TRACE_FLEET_LOAD_HH
#define AHQ_TRACE_FLEET_LOAD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/zipf.hh"
#include "trace/load_trace.hh"

namespace ahq::trace
{

/** Shape of the synthesized global load (defaults = small fleet). */
struct FleetLoadConfig
{
    /** Nodes in the fleet. */
    int numNodes = 16;

    /** Latency-critical application slots per node. */
    int lcPerNode = 2;

    /** Best-effort filler applications per node. */
    int bePerNode = 1;

    /**
     * Distinct tenants (services). Each LC slot is assigned one
     * tenant, Zipf-skewed, so popular tenants replicate across many
     * nodes while the tail shares leftovers.
     */
    int numTenants = 64;

    /** Zipf skew exponent over tenant popularity ranks. */
    double zipfSkew = 1.1;

    /** Peak load fraction of the least popular tenant. */
    double baseLoad = 0.15;

    /** Peak load fraction of the rank-1 tenant. */
    double peakLoad = 0.85;

    /** Length of one simulated "day", seconds. */
    double diurnalPeriodS = 240.0;

    /** Night-time load as a fraction of the tenant's peak. */
    double diurnalLowFraction = 0.35;

    /** Fraction of tenants that exhibit flash crowds. */
    double flashFraction = 0.15;

    /** Extra load during a flash crowd. */
    double flashAmplitude = 0.35;

    /** Time between flash-crowd starts, seconds. */
    double flashPeriodS = 90.0;

    /** Flash-crowd duration, seconds. */
    double flashDurationS = 10.0;

    /** Hard cap on any tenant's load fraction. */
    double loadCap = 0.95;

    /** Seed for tenant assignment, phases and flash gating. */
    std::uint64_t seed = 42;
};

/**
 * Deterministic global load generator.
 *
 * All randomness (tenant popularity draws, diurnal phases, flash
 * gating) is a pure function of (config.seed, tenant rank) or
 * (config.seed, node, slot) on dedicated RNG splits, so any
 * subrange of the fleet can be materialized independently — node
 * 9731's workload is the same whether the fleet simulates 10 nodes
 * or 10k, and whether nodes build in parallel or serially.
 *
 * Tenant traces are precomputed once in the constructor and shared
 * (shared_ptr) across every node that hosts a replica: a 10k-node
 * fleet holds M tenant traces, not N x M.
 */
class FleetLoadGenerator
{
  public:
    explicit FleetLoadGenerator(FleetLoadConfig config = {});

    /** The shape this generator was built with. */
    const FleetLoadConfig &config() const { return cfg; }

    /**
     * Tenant popularity rank (1-based, 1 = most popular) hosted by
     * the given LC slot of the given node. Pure function of
     * (seed, node, slot).
     */
    std::uint64_t tenant(int node, int slot) const;

    /**
     * The shared load trace of the given tenant rank (1-based).
     * Traces are immutable after construction; the pointer is
     * non-const so it slots directly into ColocatedApp::load.
     */
    std::shared_ptr<LoadTrace> tenantTrace(std::uint64_t rank) const;

    /** Peak (daytime) load fraction of the given tenant rank. */
    double tenantPeakLoad(std::uint64_t rank) const;

    /** Whether the given tenant rank exhibits flash crowds. */
    bool tenantFlashes(std::uint64_t rank) const;

  private:
    FleetLoadConfig cfg;
    stats::ZipfDistribution zipf;
    std::vector<std::shared_ptr<LoadTrace>> traces;
    std::vector<double> peaks;
    std::vector<bool> flashes;
};

} // namespace ahq::trace

#endif // AHQ_TRACE_FLEET_LOAD_HH

/**
 * @file
 * Load trace implementations.
 */

#include "trace/load_trace.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace ahq::trace
{

ConstantTrace::ConstantTrace(double load_fraction)
    : load(load_fraction)
{
    assert(load_fraction >= 0.0);
}

double
ConstantTrace::at(double) const
{
    return load;
}

StepTrace::StepTrace(std::vector<std::pair<double, double>> steps)
    : steps_(std::move(steps))
{
    assert(!steps_.empty());
    for (std::size_t i = 1; i < steps_.size(); ++i)
        assert(steps_[i].first >= steps_[i - 1].first);
}

double
StepTrace::at(double time_s) const
{
    double load = steps_.front().second;
    for (const auto &[start, value] : steps_) {
        if (time_s >= start)
            load = value;
        else
            break;
    }
    return load;
}

DiurnalTrace::DiurnalTrace(double low, double high, double period_s)
    : low_(low), high_(high), period(period_s)
{
    assert(low >= 0.0 && high >= low && period_s > 0.0);
}

double
DiurnalTrace::at(double time_s) const
{
    const double phase = 2.0 * M_PI * time_s / period;
    // Trough at t = 0 ("night"), peak at half period ("day").
    return low_ + (high_ - low_) * 0.5 * (1.0 - std::cos(phase));
}

BurstTrace::BurstTrace(double base, double amplitude,
                       double period_s, double burst_s)
    : base_(base), amplitude_(amplitude), period(period_s),
      burst(burst_s)
{
    assert(base >= 0.0 && amplitude >= 0.0);
    assert(period_s > 0.0);
    assert(burst_s >= 0.0 && burst_s <= period_s);
}

double
BurstTrace::at(double time_s) const
{
    const double phase = std::fmod(time_s, period);
    return phase < burst ? base_ + amplitude_ : base_;
}

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/**
 * Parses one field as a finite, non-negative double. The whole
 * field must be consumed — "1.5x" is malformed, not 1.5.
 */
bool
parseField(const std::string &field, double &out)
{
    const std::string tok = trim(field);
    if (tok.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stod(tok, &pos);
        return pos == tok.size() && std::isfinite(out) &&
               out >= 0.0;
    } catch (const std::exception &) {
        return false;
    }
}

[[noreturn]] void
malformed(const std::string &path, int line_no,
          const std::string &line, const std::string &why)
{
    throw std::runtime_error(
        path + ":" + std::to_string(line_no) +
        ": malformed trace row (" + why + "): \"" + line + "\"");
}

} // namespace

FileTrace::FileTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        throw std::runtime_error("cannot open trace file: " + path);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty())
            continue; // blank lines are fine anywhere
        const auto comma = line.find(',');
        if (comma == std::string::npos) {
            malformed(path, line_no, line,
                      "expected \"time_s,load\"");
        }
        double t = 0.0, load = 0.0;
        const bool t_ok = parseField(line.substr(0, comma), t);
        const bool load_ok = parseField(line.substr(comma + 1), load);
        if (!t_ok || !load_ok) {
            // A single non-numeric header row is the one exception.
            if (line_no == 1 && !t_ok && !load_ok)
                continue;
            malformed(path, line_no, line,
                      std::string(!t_ok ? "time" : "load") +
                          " is not a finite non-negative number");
        }
        steps_.emplace_back(t, load);
    }
    std::sort(steps_.begin(), steps_.end());
    if (steps_.empty()) {
        throw std::runtime_error("trace file has no usable rows: " +
                                 path);
    }
}

double
FileTrace::at(double time_s) const
{
    double load = steps_.front().second;
    for (const auto &[start, value] : steps_) {
        if (time_s >= start)
            load = value;
        else
            break;
    }
    return load;
}

std::unique_ptr<LoadTrace>
fig13XapianTrace()
{
    // 250 s total: 20 s ramp levels up to 90% and back down.
    return std::make_unique<StepTrace>(
        std::vector<std::pair<double, double>>{
            {0.0, 0.10},
            {20.0, 0.30},
            {40.0, 0.10},
            {60.0, 0.50},
            {80.0, 0.30},
            {100.0, 0.70},
            {120.0, 0.90},
            {140.0, 0.50},
            {160.0, 0.70},
            {180.0, 0.30},
            {200.0, 0.50},
            {220.0, 0.10},
        });
}

} // namespace ahq::trace

/**
 * @file
 * Load traces: time-varying load fractions driving the LC request
 * generators. Covers the paper's constant-load sweeps (§VI-A), the
 * fluctuating-load experiment (§VI-B, Fig. 13) and a diurnal pattern
 * for the "high load in the daytime, low at night" motivation.
 */

#ifndef AHQ_TRACE_LOAD_TRACE_HH
#define AHQ_TRACE_LOAD_TRACE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ahq::trace
{

/**
 * A load trace maps simulated time to a load fraction of the
 * application's max load.
 */
class LoadTrace
{
  public:
    virtual ~LoadTrace() = default;

    /** Load fraction (>= 0) at the given time in seconds. */
    virtual double at(double time_s) const = 0;
};

/** Constant load. */
class ConstantTrace : public LoadTrace
{
  public:
    explicit ConstantTrace(double load_fraction);

    double at(double time_s) const override;

  private:
    double load;
};

/**
 * Piecewise-constant steps: (start_time_s, load_fraction) pairs in
 * ascending time order; the first step's load also applies before
 * its start time.
 */
class StepTrace : public LoadTrace
{
  public:
    explicit StepTrace(std::vector<std::pair<double, double>> steps);

    double at(double time_s) const override;

  private:
    std::vector<std::pair<double, double>> steps_;
};

/** Sinusoidal diurnal pattern between a low and a high load. */
class DiurnalTrace : public LoadTrace
{
  public:
    /**
     * @param low Minimum load fraction.
     * @param high Maximum load fraction.
     * @param period_s Period of one "day".
     */
    DiurnalTrace(double low, double high, double period_s);

    double at(double time_s) const override;

  private:
    double low_, high_, period;
};

/**
 * Baseline load with periodic rectangular bursts, modelling flash
 * crowds: load = base outside bursts, base + amplitude inside.
 */
class BurstTrace : public LoadTrace
{
  public:
    /**
     * @param base Baseline load fraction.
     * @param amplitude Additional load during a burst.
     * @param period_s Time between burst starts.
     * @param burst_s Burst duration; must be <= period_s.
     */
    BurstTrace(double base, double amplitude, double period_s,
               double burst_s);

    double at(double time_s) const override;

  private:
    double base_, amplitude_, period, burst;
};

/**
 * A trace loaded from a CSV of "time_s,load" rows, interpreted as a
 * step function like StepTrace. Parsing is strict: a non-numeric
 * header is tolerated on the first line only, blank lines are
 * skipped, and any other malformed row (missing comma, trailing
 * garbage, negative / NaN / infinite values) raises with the file
 * path and 1-based line number. Silently dropping rows would shift
 * every later load step in time and corrupt the experiment.
 */
class FileTrace : public LoadTrace
{
  public:
    /**
     * @param path CSV file path.
     * @throws std::runtime_error when the file cannot be opened,
     *         contains a malformed row (message carries
     *         "path:line"), or contains no usable rows.
     */
    explicit FileTrace(const std::string &path);

    double at(double time_s) const override;

    /** Number of loaded steps. */
    std::size_t size() const { return steps_.size(); }

  private:
    std::vector<std::pair<double, double>> steps_;
};

/**
 * The Fig. 13 fluctuation: Xapian's load over a 250 s run, stepping
 * 10% -> 30% -> 50% -> 70% -> 90% -> back down, 20 s per level plus
 * a low-load head and tail.
 */
std::unique_ptr<LoadTrace> fig13XapianTrace();

} // namespace ahq::trace

#endif // AHQ_TRACE_LOAD_TRACE_HH

/**
 * @file
 * Tests for the fluent application-profile builder.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/builder.hh"

namespace
{

using namespace ahq::apps;

TEST(AppBuilder, BuildsCalibratedLcProfile)
{
    const auto p = AppBuilder("my-api")
                       .latencyCritical()
                       .maxLoadQps(2500.0)
                       .tailThresholdMs(8.0)
                       .idealTailAt20Ms(3.0)
                       .cache(18.0, 3.0, 5.0)
                       .build();
    EXPECT_EQ(p.name, "my-api");
    EXPECT_TRUE(p.latencyCritical);
    EXPECT_EQ(p.threads, 4);
    // Anchors reproduced by the calibration.
    EXPECT_NEAR(p.soloTailP95Ms(0.2), 3.0, 0.03);
    EXPECT_NEAR(p.soloTailP95Ms(1.0), 8.0, 0.08);
    EXPECT_NEAR(p.cpi.mrc().mpkiMax(), 18.0, 1e-12);
}

TEST(AppBuilder, BuildsBeProfile)
{
    const auto p = AppBuilder("encoder")
                       .bestEffort(1.8)
                       .threads(8)
                       .cache(25.0, 6.0, 8.0)
                       .cpiBase(0.7)
                       .mlp(3.0)
                       .build();
    EXPECT_FALSE(p.latencyCritical);
    EXPECT_EQ(p.threads, 8);
    EXPECT_NEAR(p.ipcSolo, 1.8, 1e-12);
    EXPECT_NEAR(p.cpi.traits().mlp, 3.0, 1e-12);
}

TEST(AppBuilder, RejectsMissingKind)
{
    EXPECT_THROW((void)AppBuilder("x").build(),
                 std::invalid_argument);
}

TEST(AppBuilder, RejectsMissingLcAnchors)
{
    EXPECT_THROW((void)AppBuilder("x")
                     .latencyCritical()
                     .maxLoadQps(1000.0)
                     .build(),
                 std::invalid_argument);
}

TEST(AppBuilder, RejectsInconsistentAnchors)
{
    // Ideal tail above the threshold.
    EXPECT_THROW((void)AppBuilder("x")
                     .latencyCritical()
                     .maxLoadQps(1000.0)
                     .tailThresholdMs(2.0)
                     .idealTailAt20Ms(3.0)
                     .build(),
                 std::invalid_argument);
}

TEST(AppBuilder, RejectsBadTraits)
{
    EXPECT_THROW((void)AppBuilder("x")
                     .bestEffort(2.0)
                     .cache(1.0, 5.0, 4.0) // max < min
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW((void)AppBuilder("x").bestEffort(-1.0).build(),
                 std::invalid_argument);
    EXPECT_THROW((void)AppBuilder("x")
                     .bestEffort(1.0)
                     .threads(0)
                     .build(),
                 std::invalid_argument);
}

TEST(AppBuilder, BuiltProfileRunsInSimulator)
{
    const auto p = AppBuilder("svc")
                       .latencyCritical()
                       .maxLoadQps(900.0)
                       .tailThresholdMs(12.0)
                       .idealTailAt20Ms(4.0)
                       .build();
    const auto d = p.toDemand(0.5);
    EXPECT_NEAR(d.arrivalRate, 450.0, 1e-9);
    EXPECT_GT(p.serviceTimeMs, 0.0);
}

} // namespace

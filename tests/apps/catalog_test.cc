/**
 * @file
 * Tests for the workload catalogue against the paper's published
 * parameters (Tables II and IV, Section V).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/catalog.hh"

namespace
{

using namespace ahq::apps;

TEST(Catalog, TableIvThresholds)
{
    EXPECT_DOUBLE_EQ(xapian().tailThresholdMs, 4.22);
    EXPECT_DOUBLE_EQ(moses().tailThresholdMs, 10.53);
    EXPECT_DOUBLE_EQ(imgDnn().tailThresholdMs, 3.98);
    EXPECT_DOUBLE_EQ(masstree().tailThresholdMs, 1.05);
    EXPECT_DOUBLE_EQ(sphinx().tailThresholdMs, 2682.0);
    EXPECT_DOUBLE_EQ(silo().tailThresholdMs, 1.27);
}

TEST(Catalog, TableIvMaxLoads)
{
    EXPECT_DOUBLE_EQ(xapian().maxLoadQps, 3400.0);
    EXPECT_DOUBLE_EQ(moses().maxLoadQps, 1800.0);
    EXPECT_DOUBLE_EQ(imgDnn().maxLoadQps, 5300.0);
    EXPECT_DOUBLE_EQ(masstree().maxLoadQps, 4420.0);
    EXPECT_DOUBLE_EQ(sphinx().maxLoadQps, 4.8);
    EXPECT_DOUBLE_EQ(silo().maxLoadQps, 220.0);
}

TEST(Catalog, TableIiIdealTails)
{
    // Table II's TL_i0 column at 20% load.
    EXPECT_NEAR(xapian().soloTailP95Ms(0.2), 2.77, 0.02);
    EXPECT_NEAR(moses().soloTailP95Ms(0.2), 2.80, 0.02);
    EXPECT_NEAR(imgDnn().soloTailP95Ms(0.2), 1.41, 0.02);
}

TEST(Catalog, LcAppsHaveFourThreads)
{
    // "These LC applications are from Tailbench and are instantiated
    // with 4 threads" (Section V).
    for (const char *name :
         {"xapian", "moses", "img-dnn", "masstree", "sphinx",
          "silo"}) {
        EXPECT_EQ(byName(name).threads, 4) << name;
        EXPECT_TRUE(byName(name).latencyCritical) << name;
    }
}

TEST(Catalog, StreamHasTenThreads)
{
    // "we instantiate Stream with 10 threads" (Section V).
    const AppProfile s = stream();
    EXPECT_EQ(s.threads, 10);
    EXPECT_FALSE(s.latencyCritical);
}

TEST(Catalog, BeAppsAreBestEffort)
{
    for (const char *name :
         {"fluidanimate", "streamcluster", "stream"}) {
        const AppProfile p = byName(name);
        EXPECT_FALSE(p.latencyCritical) << name;
        EXPECT_GT(p.ipcSolo, 0.0) << name;
    }
}

TEST(Catalog, StreamIsBandwidthBound)
{
    // Flat MRC, high demand: the defining traits of STREAM.
    const AppProfile s = stream();
    const double reducible =
        s.cpi.mrc().mpkiMax() - s.cpi.mrc().mpkiMin();
    EXPECT_LT(reducible, 10.0);
    EXPECT_GT(s.cpi.mrc().mpkiMin(), 40.0);
    EXPECT_GE(s.cpi.traits().mlp, 4.0);
}

TEST(Catalog, StreamclusterIsCacheSensitive)
{
    const AppProfile s = streamcluster();
    const double reducible =
        s.cpi.mrc().mpkiMax() - s.cpi.mrc().mpkiMin();
    EXPECT_GT(reducible, 15.0);
}

TEST(Catalog, AllNamesResolve)
{
    for (const auto &name : allNames())
        EXPECT_NO_THROW((void)byName(name)) << name;
    EXPECT_EQ(allNames().size(), 9u);
}

TEST(Catalog, UnknownNameThrows)
{
    EXPECT_THROW((void)byName("redis"), std::invalid_argument);
    EXPECT_THROW((void)byName(""), std::invalid_argument);
    EXPECT_THROW((void)byName("Xapian"), std::invalid_argument);
}

} // namespace

/**
 * @file
 * Tests for application profiles and the calibration solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/catalog.hh"
#include "apps/profile.hh"

namespace
{

using namespace ahq::apps;

TEST(Calibration, ReproducesPublishedConstants)
{
    AppProfile p;
    p.name = "synthetic";
    p.threads = 4;
    CalibrationTargets t{2000.0, 8.0, 3.0};
    calibrateLcProfile(p, t);

    EXPECT_NEAR(p.soloTailP95Ms(0.2), 3.0, 0.02);
    EXPECT_NEAR(p.soloTailP95Ms(1.0), 8.0, 0.05);
    EXPECT_EQ(p.maxLoadQps, 2000.0);
    EXPECT_EQ(p.tailThresholdMs, 8.0);
}

TEST(Calibration, ServiceTimeWithinStabilityBound)
{
    AppProfile p;
    p.threads = 4;
    calibrateLcProfile(p, {2000.0, 8.0, 3.0});
    // c / lambda_max is the absolute stability bound per request.
    EXPECT_LT(p.serviceTimeMs, 4.0 * 1000.0 / 2000.0);
    EXPECT_GT(p.serviceTimeMs, 0.0);
    EXPECT_GE(p.svcP95Mult, 0.02);
}

TEST(Profile, ArrivalRateScalesWithLoad)
{
    const AppProfile p = xapian();
    EXPECT_NEAR(p.arrivalRate(0.5), 1700.0, 1e-9);
    EXPECT_EQ(p.arrivalRate(0.0), 0.0);
}

TEST(Profile, SoloTailMonotoneInLoad)
{
    const AppProfile p = moses();
    double prev = 0.0;
    for (double load = 0.1; load <= 0.95; load += 0.05) {
        const double t = p.soloTailP95Ms(load);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Profile, SoloTailInfiniteBeyondSaturation)
{
    const AppProfile p = xapian();
    // Max load is at the knee (p95 = M), not saturation; far beyond
    // the queue is genuinely unstable.
    EXPECT_TRUE(std::isinf(p.soloTailP95Ms(5.0)));
}

TEST(Profile, ToDemandCopiesFields)
{
    const AppProfile p = imgDnn();
    const auto d = p.toDemand(0.4);
    EXPECT_TRUE(d.latencyCritical);
    EXPECT_NEAR(d.arrivalRate, 0.4 * 5300.0, 1e-9);
    EXPECT_EQ(d.threads, 4);
    EXPECT_EQ(d.serviceTimeMs, p.serviceTimeMs);
}

TEST(Profile, BeToDemandHasNoArrivals)
{
    const AppProfile p = stream();
    const auto d = p.toDemand(0.9);
    EXPECT_FALSE(d.latencyCritical);
    EXPECT_EQ(d.arrivalRate, 0.0);
    EXPECT_EQ(d.ipcSolo, p.ipcSolo);
    EXPECT_EQ(d.threads, 10);
}


TEST(Percentile, P95MethodsAgree)
{
    const AppProfile p = xapian();
    EXPECT_NEAR(p.soloTailPercentileMs(0.4, 0.95),
                p.soloTailP95Ms(0.4), 1e-9);
    EXPECT_NEAR(p.svcMultAt(0.95), p.svcP95Mult, 1e-12);
}

TEST(Percentile, HigherPercentileIsSlower)
{
    const AppProfile p = moses();
    const double p95 = p.soloTailPercentileMs(0.5, 0.95);
    const double p99 = p.soloTailPercentileMs(0.5, 0.99);
    const double p50 = p.soloTailPercentileMs(0.5, 0.50);
    EXPECT_GT(p99, p95);
    EXPECT_GT(p95, p50);
}

TEST(Percentile, ExponentialTailScaling)
{
    const AppProfile p = imgDnn();
    // svcMultAt scales with -log(1-p): p99/p95 = log(0.01)/log(0.05).
    EXPECT_NEAR(p.svcMultAt(0.99) / p.svcMultAt(0.95),
                std::log(0.01) / std::log(0.05), 1e-9);
}

/** Calibration must hit both published anchors for every LC app. */
class LcCalibrationSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LcCalibrationSweep, AnchorsReproduced)
{
    const AppProfile p = byName(GetParam());
    ASSERT_TRUE(p.latencyCritical);
    // Anchor 1: p95 at max load equals the threshold (Table IV).
    EXPECT_NEAR(p.soloTailP95Ms(1.0) / p.tailThresholdMs, 1.0, 0.01)
        << p.name;
    // Anchor 2: the ideal tail at 20% load sits strictly below the
    // threshold with room to breathe (A_i > 0).
    const double tl0 = p.soloTailP95Ms(0.2);
    EXPECT_LT(tl0, p.tailThresholdMs) << p.name;
    EXPECT_GT(tl0, 0.0) << p.name;
}

TEST_P(LcCalibrationSweep, KneeShape)
{
    // Fig. 7: flat-then-exponential. The p95 growth from 20% to 60%
    // load must be much smaller than from 60% to 100%.
    const AppProfile p = byName(GetParam());
    const double lo = p.soloTailP95Ms(0.2);
    const double mid = p.soloTailP95Ms(0.6);
    const double hi = p.soloTailP95Ms(1.0);
    EXPECT_LT(mid - lo, hi - mid) << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllLcApps, LcCalibrationSweep,
                         ::testing::Values("xapian", "moses",
                                           "img-dnn", "masstree",
                                           "sphinx", "silo"));

} // namespace

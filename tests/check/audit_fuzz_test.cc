/**
 * @file
 * Randomized strict-audit sweep: every registered scheduler runs
 * over 100+ randomized colocation scenarios (app mix, loads,
 * machine size, seeds — all drawn from one fixed-seed RNG) with
 * AHQ_CHECK-strict semantics forced on. Any capacity, entropy or
 * controller-FSM invariant violation throws InvariantViolation and
 * fails the sweep. `ctest -L check` runs exactly this driver; CI
 * builds it under -DAHQ_SANITIZE=address,undefined as well.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "exec/scenario_runner.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "sched/arq.hh"
#include "sched/registry.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq;

const std::vector<std::string> kLcNames{
    "xapian", "moses", "img-dnn", "masstree", "sphinx", "silo"};
const std::vector<std::string> kBeNames{
    "fluidanimate", "streamcluster", "stream"};

TEST(AuditFuzz, AllSchedulersSurviveRandomScenariosStrict)
{
    stats::Rng rng(987654321); // fixed seed: the sweep is replayable
    obs::MetricsRegistry metrics;
    const auto &strategies = sched::allStrategyNames();
    ASSERT_GE(strategies.size(), 6u);

    int scenarios = 0;
    for (int trial = 0; trial < 16; ++trial) {
        const int n_lc = 1 + static_cast<int>(rng.uniformInt(3));
        const int n_be = static_cast<int>(rng.uniformInt(3));

        std::vector<cluster::ColocatedApp> colocated;
        for (int i = 0; i < n_lc; ++i) {
            colocated.push_back(cluster::lcAt(
                apps::byName(kLcNames[rng.uniformInt(
                    kLcNames.size())]),
                rng.uniform(0.05, 0.95)));
        }
        for (int i = 0; i < n_be; ++i) {
            colocated.push_back(cluster::be(apps::byName(
                kBeNames[rng.uniformInt(kBeNames.size())])));
        }

        // Keep the drawn machine feasible: every scheduler must be
        // able to give each app >= 1 core and >= 1 LLC way even
        // when it partitions per app.
        const int apps_total = n_lc + n_be;
        const int cores = std::max(
            apps_total + 1,
            4 + static_cast<int>(rng.uniformInt(7)));
        const int ways = std::max(
            apps_total + 1,
            8 + static_cast<int>(rng.uniformInt(13)));
        const int bw = 4 + static_cast<int>(rng.uniformInt(7));
        const auto mc = machine::MachineConfig::xeonE52630v4()
                            .withAvailable(cores, ways, bw);
        cluster::Node node(mc, colocated);

        cluster::SimulationConfig cfg;
        cfg.durationSeconds = 10.0;
        cfg.warmupEpochs = 4;
        cfg.seed = rng.uniformInt(1u << 30);
        cfg.checkMode = check::Mode::Strict;
        cfg.obs.metrics = &metrics;

        for (const auto &name : strategies) {
            auto sched = sched::makeScheduler(name);
            cluster::EpochSimulator sim(node, cfg);
            try {
                sim.run(*sched);
            } catch (const check::InvariantViolation &e) {
                FAIL() << name << " violated "
                       << e.violation().check << " in trial "
                       << trial << " (epoch "
                       << e.violation().epoch
                       << "): " << e.what();
            }
            ++scenarios;
        }
    }

    EXPECT_GE(scenarios, 100);
    EXPECT_EQ(metrics.counter("check.violations"), 0.0);
    // The sweep must actually have run audited epochs.
    EXPECT_GT(metrics.counter("sim.epochs"), 1000.0);
}

TEST(AuditFuzz, StrictAuditSurvivesParallelBatches)
{
    // Each EpochSimulator::run owns a private auditor, so a strict
    // batch fanned across the pool must behave exactly like the
    // serial runs above — no shared audit state, no cross-job
    // false positives.
    std::vector<exec::ScenarioJob> jobs;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 20.0;
    cfg.warmupEpochs = 4;
    cfg.checkMode = check::Mode::Strict;
    for (const auto &name : sched::allStrategyNames()) {
        cfg.seed = 7u + jobs.size();
        cluster::Node node(
            machine::MachineConfig::xeonE52630v4().withAvailable(
                6, 12, 6),
            {cluster::lcAt(apps::xapian(), 0.6),
             cluster::lcAt(apps::moses(), 0.4),
             cluster::be(apps::stream())});
        jobs.push_back({name, node, cfg, ""});
    }

    exec::ThreadPool pool(4);
    exec::ScenarioRunner runner(&pool);
    std::vector<cluster::SimulationResult> results;
    EXPECT_NO_THROW(results = runner.run(jobs));
    EXPECT_EQ(results.size(), jobs.size());
}

TEST(AuditFuzz, ArqAblationsSurviveStrictAudit)
{
    // The rollback / shared-region ablations change which FSM
    // transitions are reachable; audit them all.
    stats::Rng rng(13579);
    for (const bool rollback : {true, false}) {
        for (const bool shared : {true, false}) {
            for (const int settle : {0, 2}) {
                sched::ArqConfig acfg;
                acfg.rollbackEnabled = rollback;
                acfg.sharedRegionEnabled = shared;
                acfg.settleEpochs = settle;
                sched::Arq arq(acfg);

                cluster::Node node(
                    machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 12, 6),
                    {cluster::lcAt(apps::xapian(),
                                   rng.uniform(0.3, 0.9)),
                     cluster::lcAt(apps::moses(),
                                   rng.uniform(0.3, 0.9)),
                     cluster::be(apps::stream())});
                cluster::SimulationConfig cfg;
                cfg.durationSeconds = 30.0;
                cfg.warmupEpochs = 5;
                cfg.seed = rng.uniformInt(1u << 30);
                cfg.checkMode = check::Mode::Strict;

                cluster::EpochSimulator sim(node, cfg);
                EXPECT_NO_THROW(sim.run(arq))
                    << "rollback=" << rollback
                    << " shared=" << shared
                    << " settle=" << settle;
            }
        }
    }
}

} // namespace

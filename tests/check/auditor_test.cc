/**
 * @file
 * InvariantAuditor unit tests: mode parsing, the check registry,
 * detection of broken layouts / entropy reports, strict-mode
 * throwing and the log-mode telemetry (counter + JSONL event).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>

#include "apps/catalog.hh"
#include "check/auditor.hh"
#include "check/check.hh"
#include "cluster/epoch_sim.hh"
#include "machine/layout.hh"
#include "obs/scope.hh"
#include "sched/arq.hh"
#include "sched/registry.hh"
#include "stats/percentile.hh"

namespace
{

using namespace ahq;
using check::InvariantAuditor;
using check::InvariantViolation;
using check::Mode;

TEST(CheckMode, ParsesNames)
{
    EXPECT_EQ(check::modeFromString("off"), Mode::Off);
    EXPECT_EQ(check::modeFromString(""), Mode::Off);
    EXPECT_EQ(check::modeFromString("log"), Mode::Log);
    EXPECT_EQ(check::modeFromString("strict"), Mode::Strict);
    EXPECT_EQ(check::modeFromString("STRICT"), Mode::Strict);
    EXPECT_EQ(check::modeFromString("Log"), Mode::Log);
    EXPECT_THROW(check::modeFromString("yes"),
                 std::invalid_argument);
    EXPECT_STREQ(check::toString(Mode::Strict), "strict");
}

TEST(CheckMode, ReadsEnvironmentEachCall)
{
    ::unsetenv("AHQ_CHECK");
    EXPECT_EQ(check::modeFromEnv(), Mode::Off);
    ::setenv("AHQ_CHECK", "strict", 1);
    EXPECT_EQ(check::modeFromEnv(), Mode::Strict);
    ::setenv("AHQ_CHECK", "log", 1);
    EXPECT_EQ(check::modeFromEnv(), Mode::Log);
    ::unsetenv("AHQ_CHECK");
    EXPECT_EQ(check::modeFromEnv(), Mode::Off);
}

TEST(CheckRegistry, NamesAreUniqueAndResolvable)
{
    const auto &checks = check::registeredChecks();
    EXPECT_GE(checks.size(), 10u);
    std::set<std::string> names;
    for (const auto &c : checks) {
        EXPECT_TRUE(names.insert(c.name).second)
            << "duplicate check " << c.name;
        EXPECT_FALSE(c.summary.empty()) << c.name;
        EXPECT_TRUE(check::isRegisteredCheck(c.name));
    }
    EXPECT_TRUE(check::isRegisteredCheck("capacity.conserved"));
    EXPECT_FALSE(check::isRegisteredCheck("capacity.nope"));
}

/** A layout whose single shared region oversubscribes the node. */
machine::RegionLayout
oversubscribedLayout()
{
    machine::RegionLayout layout(machine::ResourceVector{4, 8, 4});
    machine::Region r;
    r.name = "shared";
    r.shared = true;
    r.members = {0};
    r.res = machine::ResourceVector{10, 20, 10};
    layout.addRegion(std::move(r));
    return layout;
}

TEST(Auditor, OffModeIsInert)
{
    InvariantAuditor auditor(Mode::Off);
    EXPECT_FALSE(auditor.enabled());
    auditor.checkLayout(oversubscribedLayout(), 0, 0.0);
    EXPECT_EQ(auditor.violationCount(), 0u);
    EXPECT_TRUE(auditor.violations().empty());
}

TEST(Auditor, DetectsOversubscription)
{
    InvariantAuditor auditor(Mode::Log);
    auditor.checkLayout(oversubscribedLayout(), 3, 1.5);
    ASSERT_EQ(auditor.violationCount(), 1u);
    const auto &v = auditor.violations().front();
    EXPECT_EQ(v.check, "capacity.fits");
    EXPECT_EQ(v.epoch, 3);
    EXPECT_EQ(v.time, 1.5);
    EXPECT_TRUE(check::isRegisteredCheck(v.check));
}

TEST(Auditor, DetectsMultiMemberIsolatedRegion)
{
    machine::RegionLayout layout(machine::ResourceVector{8, 8, 8});
    machine::Region r;
    r.name = "iso";
    r.shared = false;
    r.members = {0, 1};
    r.res = machine::ResourceVector{4, 4, 4};
    layout.addRegion(std::move(r));

    InvariantAuditor auditor(Mode::Log);
    auditor.checkLayout(layout, 0, 0.0);
    ASSERT_EQ(auditor.violationCount(), 1u);
    EXPECT_EQ(auditor.violations().front().check,
              "capacity.region_shape");
}

TEST(Auditor, DetectsUnreachableApp)
{
    machine::RegionLayout layout(machine::ResourceVector{8, 8, 8});
    machine::Region r;
    r.name = "iso0";
    r.shared = false;
    r.members = {0};
    r.res = machine::ResourceVector{2, 0, 1}; // no LLC way
    layout.addRegion(std::move(r));

    InvariantAuditor auditor(Mode::Log);
    auditor.checkLayout(layout, 0, 0.0);
    ASSERT_EQ(auditor.violationCount(), 1u);
    EXPECT_EQ(auditor.violations().front().check,
              "capacity.reachable");
}

TEST(Auditor, StrictModeThrowsWithViolationAttached)
{
    InvariantAuditor auditor(Mode::Strict);
    try {
        auditor.checkLayout(oversubscribedLayout(), 7, 3.5);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation &e) {
        EXPECT_EQ(e.violation().check, "capacity.fits");
        EXPECT_EQ(e.violation().epoch, 7);
        EXPECT_NE(std::string(e.what()).find("capacity.fits"),
                  std::string::npos);
    }
    // The violation is recorded even though it threw.
    EXPECT_EQ(auditor.violationCount(), 1u);
}

TEST(Auditor, DetectsEntropyOutOfRangeAndBadWeighting)
{
    obs::BufferTraceSink sink;
    obs::MetricsRegistry metrics;
    obs::Scope scope;
    scope.sink = &sink;
    scope.metrics = &metrics;

    core::EntropyReport rep;
    rep.eLc = 0.5;
    rep.eBe = 0.5;
    rep.eS = 1.5; // out of range AND != 0.8*0.5 + 0.2*0.5
    InvariantAuditor auditor(Mode::Log, scope);
    auditor.checkEntropy(rep, 0.8, true, true, 4, 2.0);

    EXPECT_EQ(auditor.violationCount(), 2u);
    EXPECT_EQ(auditor.violations()[0].check, "entropy.range");
    EXPECT_EQ(auditor.violations()[1].check, "entropy.weighting");
    EXPECT_EQ(metrics.counter("check.violations"), 2.0);
    EXPECT_EQ(metrics.counter("check.violations.entropy.range"),
              1.0);

    // Violations are schema-stamped JSONL events.
    const auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"v\":1"), std::string::npos);
    EXPECT_NE(lines[0].find("\"type\":\"violation\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"check\":\"entropy.range\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"epoch\":4"), std::string::npos);
}

TEST(Auditor, DetectsSimultaneousRetAndQ)
{
    core::EntropyReport rep; // eLc = eBe = eS = 0: weighting holds
    core::LcBreakdown b;
    b.tolerance = 0.5;
    b.interference = 0.3;
    b.remainingTolerance = 0.2; // fine so far...
    b.intolerable = 0.4;        // ...but Q > 0 with ReT > 0
    rep.lcDetail.push_back(b);

    InvariantAuditor auditor(Mode::Log);
    auditor.checkEntropy(rep, 0.8, true, true, 0, 0.0);
    ASSERT_GE(auditor.violationCount(), 1u);
    for (const auto &v : auditor.violations())
        EXPECT_EQ(v.check, "entropy.ret_q_exclusive");
}

TEST(Auditor, DegenerateClassWeightingIsEnforced)
{
    // With zero BE apps Eq. 7 degenerates to E_S = E_LC; an
    // RI-weighted E_S would under-report interference by 20%.
    core::EntropyReport rep;
    rep.eLc = 0.4;
    rep.eBe = 0.0;
    rep.eS = 0.4;
    InvariantAuditor ok(Mode::Log);
    ok.checkEntropy(rep, 0.8, true, false, 0, 0.0);
    EXPECT_EQ(ok.violationCount(), 0u);

    rep.eS = 0.8 * 0.4; // the Eq. 7 formula applied blindly
    InvariantAuditor bad(Mode::Log);
    bad.checkEntropy(rep, 0.8, true, false, 0, 0.0);
    ASSERT_EQ(bad.violationCount(), 1u);
    EXPECT_EQ(bad.violations().front().check, "entropy.weighting");
}

TEST(Auditor, HealthyP2EstimatorPasses)
{
    stats::P2Quantile p2(0.95);
    InvariantAuditor auditor(Mode::Strict);
    auditor.checkP2(p2); // uninitialised: nothing to check
    for (int i = 0; i < 1000; ++i) {
        p2.add((i * 7919) % 1000);
        auditor.checkP2(p2);
    }
    // Degenerate constant stream: duplicate heights stay legal.
    stats::P2Quantile flat(0.9);
    for (int i = 0; i < 500; ++i) {
        flat.add(1.0);
        auditor.checkP2(flat);
    }
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(Auditor, RecordCapBoundsMemoryNotTheCount)
{
    InvariantAuditor auditor(Mode::Log);
    const auto bad = oversubscribedLayout();
    for (int i = 0; i < 300; ++i)
        auditor.checkLayout(bad, i, 0.0);
    EXPECT_EQ(auditor.violationCount(), 300u);
    EXPECT_EQ(auditor.violations().size(), 256u);
}

// ---- end-to-end: the real simulator under audit -----------------

TEST(AuditorSim, ArqRollbacksAndBansStayLegal)
{
    // An overloaded node makes ARQ move, roll back and ban; the
    // auditor independently re-derives the FSM rules and must see
    // the real controller obey all of them.
    cluster::Node node(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::lcAt(apps::xapian(), 0.8),
         cluster::lcAt(apps::moses(), 0.7),
         cluster::be(apps::stream())});
    obs::MetricsRegistry metrics;
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 60.0;
    cfg.warmupEpochs = 10;
    cfg.checkMode = Mode::Strict;
    cfg.obs.metrics = &metrics;

    sched::Arq arq;
    cluster::EpochSimulator sim(node, cfg);
    EXPECT_NO_THROW(sim.run(arq));
    EXPECT_EQ(metrics.counter("check.violations"), 0.0);
    // The run actually exercised the audited transitions.
    EXPECT_GT(metrics.counter("arq.move"), 0.0);
}

TEST(AuditorSim, AllBannedVictimsEpochsHold)
{
    // With an effectively infinite ban window every rolled-back
    // victim stays banned for the rest of the run; ARQ must keep
    // holding (victim == kNoRegion) instead of violating a ban.
    sched::ArqConfig acfg;
    acfg.banSeconds = 1e9;
    acfg.settleEpochs = 0;
    sched::Arq arq(acfg);

    cluster::Node node(
        machine::MachineConfig::xeonE52630v4().withAvailable(4, 8,
                                                             4),
        {cluster::lcAt(apps::xapian(), 0.9),
         cluster::lcAt(apps::sphinx(), 0.8),
         cluster::be(apps::stream())});
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 60.0;
    cfg.warmupEpochs = 10;
    cfg.checkMode = Mode::Strict;

    cluster::EpochSimulator sim(node, cfg);
    EXPECT_NO_THROW(sim.run(arq));
}

TEST(AuditorSim, LcOnlyAndBeOnlyNodesAudited)
{
    // Degenerate single-class colocations (Eq. 7 edge cases) must
    // pass the strict audit under every registered scheduler.
    cluster::SimulationConfig cfg;
    cfg.durationSeconds = 15.0;
    cfg.warmupEpochs = 5;
    cfg.checkMode = Mode::Strict;

    cluster::Node lc_only(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::lcAt(apps::xapian(), 0.5),
         cluster::lcAt(apps::imgDnn(), 0.4)});
    cluster::Node be_only(
        machine::MachineConfig::xeonE52630v4().withAvailable(6, 12,
                                                             6),
        {cluster::be(apps::fluidanimate()),
         cluster::be(apps::streamcluster())});

    for (const auto &name : sched::allStrategyNames()) {
        auto s = sched::makeScheduler(name);
        EXPECT_NO_THROW(
            cluster::EpochSimulator(lc_only, cfg).run(*s))
            << name << " on the LC-only node";
        auto s2 = sched::makeScheduler(name);
        EXPECT_NO_THROW(
            cluster::EpochSimulator(be_only, cfg).run(*s2))
            << name << " on the BE-only node";
    }
}

} // namespace

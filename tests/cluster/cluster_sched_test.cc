/**
 * @file
 * Tests for the cluster-level control plane: deterministic
 * measurement/rebalance rounds, migration off the hottest node,
 * and threshold gating.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/cluster_sched.hh"
#include "exec/thread_pool.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

SimulationConfig
base()
{
    SimulationConfig c;
    c.durationSeconds = 1.0; // overridden per round
    return c;
}

/** One clearly hot node (overloaded mix) among cool peers. */
ClusterScheduler
imbalanced(ClusterConfig cc)
{
    ClusterScheduler cs(std::move(cc), "ARQ");
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    cs.addNode(mc, {lcAt(apps::xapian(), 0.85),
                    lcAt(apps::moses(), 0.6), be(apps::stream()),
                    be(apps::fluidanimate())});
    cs.addNode(mc, {lcAt(apps::sphinx(), 0.15)});
    cs.addNode(mc, {lcAt(apps::imgDnn(), 0.15)});
    return cs;
}

TEST(ClusterSched, DeterministicForSeed)
{
    ClusterConfig cc;
    cc.rounds = 2;
    cc.spreadThreshold = 0.01;

    exec::ThreadPool p1(1);
    exec::ThreadPool p8(8);
    auto cs1 = imbalanced(cc);
    auto cs2 = imbalanced(cc);
    const auto r1 = cs1.run(base(), &p1);
    const auto r2 = cs2.run(base(), &p8);

    EXPECT_EQ(r1.eS, r2.eS);
    EXPECT_EQ(r1.roundES, r2.roundES);
    EXPECT_EQ(r1.roundSpread, r2.roundSpread);
    EXPECT_EQ(r1.violations, r2.violations);
    ASSERT_EQ(r1.migrations.size(), r2.migrations.size());
    for (std::size_t m = 0; m < r1.migrations.size(); ++m) {
        EXPECT_EQ(r1.migrations[m].round, r2.migrations[m].round);
        EXPECT_EQ(r1.migrations[m].fromNode,
                  r2.migrations[m].fromNode);
        EXPECT_EQ(r1.migrations[m].toNode, r2.migrations[m].toNode);
        EXPECT_EQ(r1.migrations[m].app, r2.migrations[m].app);
    }
    EXPECT_EQ(r1.finalNodeES, r2.finalNodeES);
}

TEST(ClusterSched, MigratesOffHotNode)
{
    ClusterConfig cc;
    cc.rounds = 3;
    cc.spreadThreshold = 0.01; // force rebalancing
    auto cs = imbalanced(cc);
    const int total_before = 4 + 1 + 1;

    const auto res = cs.run(base());

    ASSERT_FALSE(res.migrations.empty());
    // The first migration must come off node 0, the only node that
    // is both hot and eligible (>= 2 apps).
    EXPECT_EQ(res.migrations.front().fromNode, 0);
    EXPECT_NE(res.migrations.front().toNode, 0);

    // Apps are conserved: moved, never dropped or duplicated.
    int total_after = 0;
    for (int n = 0; n < cs.numNodes(); ++n)
        total_after += static_cast<int>(cs.apps(n).size());
    EXPECT_EQ(total_after, total_before);
    ASSERT_EQ(res.finalAppsPerNode.size(), 3u);
    EXPECT_EQ(res.finalAppsPerNode[0] + res.finalAppsPerNode[1] +
                  res.finalAppsPerNode[2],
              total_before);

    ASSERT_EQ(res.roundES.size(), 3u);
    ASSERT_EQ(res.roundSpread.size(), 3u);
    ASSERT_EQ(res.finalNodeES.size(), 3u);
}

TEST(ClusterSched, NoMigrationsWhenThresholdHigh)
{
    ClusterConfig cc;
    cc.rounds = 2;
    cc.spreadThreshold = 1.0; // spread can never exceed this
    auto cs = imbalanced(cc);
    const auto res = cs.run(base());
    EXPECT_TRUE(res.migrations.empty());
    EXPECT_EQ(res.roundES.size(), 2u);
}

TEST(ClusterSched, FleetNodeAppsIsPureAndTagged)
{
    trace::FleetLoadConfig lc;
    lc.numNodes = 32;
    const trace::FleetLoadGenerator gen(lc);

    const auto a = fleetNodeApps(gen, 7);
    const auto b = fleetNodeApps(gen, 7);
    ASSERT_EQ(a.size(),
              static_cast<std::size_t>(lc.lcPerNode + lc.bePerNode));
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s].profile.name, b[s].profile.name);
        EXPECT_EQ(a[s].profile.latencyCritical,
                  b[s].profile.latencyCritical);
    }
    // LC slots carry the tenant tag and the tenant's shared trace.
    for (int s = 0; s < lc.lcPerNode; ++s) {
        const auto &app = a[static_cast<std::size_t>(s)];
        EXPECT_TRUE(app.profile.latencyCritical);
        EXPECT_NE(app.profile.name.find("#t"), std::string::npos);
        const auto rank = gen.tenant(7, s);
        EXPECT_EQ(app.load, gen.tenantTrace(rank));
    }
    for (int s = lc.lcPerNode; s < lc.lcPerNode + lc.bePerNode; ++s)
        EXPECT_FALSE(
            a[static_cast<std::size_t>(s)].profile.latencyCritical);
}

} // namespace

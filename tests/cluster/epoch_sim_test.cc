/**
 * @file
 * Tests for the epoch simulator: record shapes, queue dynamics,
 * overhead injection and aggregation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/catalog.hh"
#include "cluster/epoch_sim.hh"
#include "sched/lc_first.hh"
#include "sched/unmanaged.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
smallNode(double xapian_load)
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcAt(apps::xapian(), xapian_load),
                 lcAt(apps::moses(), 0.2),
                 be(apps::fluidanimate())});
}

SimulationConfig
quickConfig()
{
    SimulationConfig c;
    c.durationSeconds = 30.0;
    c.warmupEpochs = 20;
    return c;
}

TEST(EpochSim, ProducesOneRecordPerEpoch)
{
    EpochSimulator sim(smallNode(0.2), quickConfig());
    sched::Unmanaged s;
    const auto res = sim.run(s);
    EXPECT_EQ(res.epochs.size(), 60u);
    EXPECT_EQ(res.warmupEpochs, 20);
    for (const auto &rec : res.epochs) {
        EXPECT_EQ(rec.obs.size(), 3u);
        EXPECT_EQ(rec.outcomes.size(), 3u);
        EXPECT_FALSE(rec.regionRes.empty());
    }
    EXPECT_NEAR(res.epochs[10].time, 5.0, 1e-9);
}

TEST(EpochSim, MeasurementsPopulated)
{
    EpochSimulator sim(smallNode(0.2), quickConfig());
    sched::LcFirst s;
    const auto res = sim.run(s);
    const auto &rec = res.epochs.back();
    EXPECT_GT(rec.obs[0].p95Ms, 0.0);
    EXPECT_GT(rec.obs[0].idealP95Ms, 0.0);
    EXPECT_NEAR(rec.obs[0].loadFraction, 0.2, 1e-12);
    EXPECT_NEAR(rec.obs[0].arrivalRate, 680.0, 1e-9);
    EXPECT_GT(rec.obs[2].ipc, 0.0);
    EXPECT_EQ(rec.obs[2].p95Ms, 0.0); // BE apps have no latency
}

TEST(EpochSim, EntropyReportedPerEpoch)
{
    EpochSimulator sim(smallNode(0.2), quickConfig());
    sched::LcFirst s;
    const auto res = sim.run(s);
    for (const auto &rec : res.epochs) {
        EXPECT_GE(rec.entropy.eS, 0.0);
        EXPECT_LE(rec.entropy.eS, 1.0);
        EXPECT_EQ(rec.entropy.lcDetail.size(), 2u);
    }
    EXPECT_GE(res.meanES, 0.0);
    EXPECT_LE(res.meanES, 1.0);
}

TEST(EpochSim, LowLoadMeetsQoS)
{
    EpochSimulator sim(smallNode(0.1), quickConfig());
    sched::LcFirst s;
    const auto res = sim.run(s);
    EXPECT_EQ(res.yieldValue, 1.0);
    EXPECT_LT(res.meanELc, 0.02);
    EXPECT_LT(res.meanP95Ms[0], 4.22 * 1.05);
}

TEST(EpochSim, OverloadSaturatesNotDiverges)
{
    // Far beyond max load the measured p95 must stay finite (the
    // load generator bounds outstanding requests).
    Node node(machine::MachineConfig::xeonE52630v4()
                  .withAvailable(4, 8, 4),
              {lcAt(apps::xapian(), 0.95),
               lcAt(apps::moses(), 0.9),
               be(apps::stream())});
    EpochSimulator sim(node, quickConfig());
    sched::Unmanaged s;
    const auto res = sim.run(s);
    for (const auto &rec : res.epochs) {
        EXPECT_TRUE(std::isfinite(rec.obs[0].p95Ms));
        EXPECT_TRUE(std::isfinite(rec.obs[1].p95Ms));
    }
    EXPECT_GT(res.meanP95Ms[0], 4.22); // but clearly violated
    EXPECT_EQ(res.yieldValue, 0.0);
    EXPECT_GT(res.violations, 0);
}

TEST(EpochSim, NoiseDisabledIsNoiseFree)
{
    SimulationConfig c = quickConfig();
    c.noiseSigma = 0.0;
    c.overheadEnabled = false;
    EpochSimulator sim(smallNode(0.2), c);
    sched::LcFirst s;
    const auto res = sim.run(s);
    // With a static scheduler, no noise and drained queues, steady
    // epochs are identical.
    const auto &a = res.epochs[40];
    const auto &b = res.epochs[50];
    EXPECT_DOUBLE_EQ(a.obs[0].p95Ms, b.obs[0].p95Ms);
    EXPECT_DOUBLE_EQ(a.obs[2].ipc, b.obs[2].ipc);
}

TEST(EpochSim, ViolationsCountedAgainstElasticThreshold)
{
    SimulationConfig c = quickConfig();
    c.noiseSigma = 0.0;
    c.overheadEnabled = false;
    EpochSimulator sim(smallNode(0.1), c);
    sched::LcFirst s;
    const auto res = sim.run(s);
    EXPECT_EQ(res.violations, 0);
}

TEST(EpochSim, BacklogCouplesConsecutiveEpochs)
{
    // A load step into overload must keep p95 elevated for at least
    // the following epoch (queue drain), even after the load drops.
    Node node(machine::MachineConfig::xeonE52630v4()
                  .withAvailable(4, 20, 10),
              {lcWith(apps::xapian(),
                      std::make_shared<trace::StepTrace>(
                          std::vector<std::pair<double, double>>{
                              {0.0, 0.2},
                              {10.0, 2.0}, // overload burst
                              {12.0, 0.2},
                          })),
               be(apps::fluidanimate())});
    SimulationConfig c = quickConfig();
    c.noiseSigma = 0.0;
    c.overheadEnabled = false;
    EpochSimulator sim(node, c);
    sched::LcFirst s;
    const auto res = sim.run(s);
    // Epoch 24 is the first after the burst ends (t = 12).
    const double during = res.epochs[23].obs[0].p95Ms;
    const double just_after = res.epochs[24].obs[0].p95Ms;
    const double steady = res.epochs[40].obs[0].p95Ms;
    EXPECT_GT(during, steady * 3.0);
    EXPECT_GT(just_after, steady * 1.5);
}

TEST(EpochSim, RepartitionOverheadVisible)
{
    // Compare two identical runs, one with overhead modelling off:
    // a strategy that never repartitions must be unaffected.
    SimulationConfig with = quickConfig();
    with.noiseSigma = 0.0;
    SimulationConfig without = with;
    without.overheadEnabled = false;
    sched::LcFirst s;
    const auto r1 = EpochSimulator(smallNode(0.2), with).run(s);
    const auto r2 = EpochSimulator(smallNode(0.2), without).run(s);
    EXPECT_NEAR(r1.meanP95Ms[0], r2.meanP95Ms[0], 1e-9);
}


TEST(EpochSim, P99MonitoringIsStricter)
{
    SimulationConfig c95 = quickConfig();
    c95.noiseSigma = 0.0;
    c95.overheadEnabled = false;
    SimulationConfig c99 = c95;
    c99.tailPercentile = 0.99;
    sched::LcFirst s;
    const auto r95 = EpochSimulator(smallNode(0.4), c95).run(s);
    const auto r99 = EpochSimulator(smallNode(0.4), c99).run(s);
    // The measured tail and the ideal both rise with the percentile.
    EXPECT_GT(r99.meanP95Ms[0], r95.meanP95Ms[0]);
    EXPECT_GT(r99.epochs.back().obs[0].idealP95Ms,
              r95.epochs.back().obs[0].idealP95Ms);
}

TEST(EpochSim, MeanAggregatesExcludeWarmup)
{
    SimulationConfig c = quickConfig();
    c.warmupEpochs = 50;
    EpochSimulator sim(smallNode(0.2), c);
    sched::LcFirst s;
    const auto res = sim.run(s);
    EXPECT_EQ(res.warmupEpochs, 50);
    // Recompute the steady mean by hand and compare.
    double sum = 0.0;
    int n = 0;
    for (std::size_t e = 50; e < res.epochs.size(); ++e) {
        sum += res.epochs[e].entropy.eS;
        ++n;
    }
    EXPECT_NEAR(res.meanES, sum / n, 1e-12);
}

} // namespace

/**
 * @file
 * Tests for the streaming fleet aggregation and the three
 * fleet-accounting fixes: warmup-polluted load pooling, vanishing
 * survivor violations, and stale placement entropy.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/catalog.hh"
#include "cluster/cluster_sched.hh"
#include "cluster/fleet.hh"
#include "exec/thread_pool.hh"
#include "fault/plan.hh"
#include "obs/trace_sink.hh"
#include "sched/arq.hh"
#include "sched/registry.hh"
#include "sched/unmanaged.hh"
#include "trace/fleet_load.hh"
#include "trace/load_trace.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

SimulationConfig
quick()
{
    SimulationConfig c;
    c.durationSeconds = 30.0;
    c.warmupEpochs = 30;
    return c;
}

/**
 * The solo-tail reference of a pooled LC app must be evaluated at
 * its steady-state mean load, not the whole-run mean. The trace
 * ramps only during warmup (0.9 before the 15 s warmup boundary,
 * 0.3 after), so pooling over all epochs would evaluate the solo
 * tail at ~0.6 — a regime the steady state never saw.
 */
TEST(FleetStream, WarmupExcludedFromPooledLoad)
{
    auto ramp = std::make_shared<trace::StepTrace>(
        std::vector<std::pair<double, double>>{{0.0, 0.9},
                                               {15.0, 0.3}});
    Node node(machine::MachineConfig::xeonE52630v4(),
              {lcWith(apps::xapian(), ramp),
               be(apps::fluidanimate())});
    sched::Arq s;
    const auto res = EpochSimulator(node, quick()).run(s);

    // The simulator's own steady-state load must see only the
    // post-warmup plateau.
    ASSERT_EQ(res.steadyMeanLoad.size(), 2u);
    EXPECT_NEAR(res.steadyMeanLoad[0], 0.3, 1e-12);

    const auto rep = fleetEntropy({&node}, {&res});
    const auto manual = core::computeEntropy(
        {{node.profile(0).soloTailP95Ms(0.3), res.meanP95Ms[0],
          node.profile(0).tailThresholdMs}},
        {{node.profile(1).ipcSolo, res.meanIpc[1]}});
    EXPECT_NEAR(rep.eS, manual.eS, 1e-9);
    EXPECT_NEAR(rep.meanTolerance, manual.meanTolerance, 1e-9);
    EXPECT_NEAR(rep.meanInterference, manual.meanInterference,
                1e-9);

    // The pre-fix reference (whole-run mean load ~0.6) is visibly
    // wrong: the tolerance/interference breakdown anchors on the
    // solo tail, and solo(0.6) != solo(0.3).
    const auto polluted = core::computeEntropy(
        {{node.profile(0).soloTailP95Ms(0.6), res.meanP95Ms[0],
          node.profile(0).tailThresholdMs}},
        {{node.profile(1).ipcSolo, res.meanIpc[1]}});
    EXPECT_GT(std::abs(rep.meanTolerance - polluted.meanTolerance),
              1e-6);
}

/**
 * Hand-built results without steadyMeanLoad fall back to scanning
 * the retained epochs — post-warmup only, the identical sum.
 */
TEST(FleetStream, EpochScanFallbackMatchesSteadyMeanLoad)
{
    auto ramp = std::make_shared<trace::StepTrace>(
        std::vector<std::pair<double, double>>{{0.0, 0.8},
                                               {15.0, 0.4}});
    Node node(machine::MachineConfig::xeonE52630v4(),
              {lcWith(apps::xapian(), ramp), be(apps::stream())});
    sched::Arq s;
    auto res = EpochSimulator(node, quick()).run(s);
    const auto with_field = fleetEntropy({&node}, {&res});
    res.steadyMeanLoad.clear();
    const auto with_scan = fleetEntropy({&node}, {&res});
    EXPECT_EQ(with_field.eS, with_scan.eS);
    EXPECT_EQ(with_field.eLc, with_scan.eLc);
}

/**
 * keepEpochs=false must change only what is retained: every
 * steady-state aggregate — and the pooled fleet entropy bits —
 * stay identical, while the per-epoch records are dropped.
 */
TEST(FleetStream, StreamingMatchesCollect)
{
    auto make = [] {
        Fleet fleet;
        fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                           {lcAt(apps::xapian(), 0.5),
                            lcAt(apps::moses(), 0.2),
                            be(apps::stream())}),
                      sched::makeScheduler("ARQ"));
        fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                           {lcAt(apps::sphinx(), 0.4),
                            be(apps::fluidanimate())}),
                      sched::makeScheduler("ARQ"));
        return fleet;
    };
    SimulationConfig keep = quick();
    SimulationConfig stream_cfg = quick();
    stream_cfg.keepEpochs = false;

    auto f1 = make();
    auto f2 = make();
    const auto collected = f1.run(keep);
    const auto streamed = f2.run(stream_cfg);

    EXPECT_EQ(collected.eS, streamed.eS);
    EXPECT_EQ(collected.eLc, streamed.eLc);
    EXPECT_EQ(collected.eBe, streamed.eBe);
    EXPECT_EQ(collected.yieldValue, streamed.yieldValue);
    EXPECT_EQ(collected.violations, streamed.violations);
    ASSERT_EQ(collected.nodes.size(), streamed.nodes.size());
    for (std::size_t n = 0; n < collected.nodes.size(); ++n) {
        EXPECT_FALSE(collected.nodes[n].epochs.empty());
        EXPECT_TRUE(streamed.nodes[n].epochs.empty());
        EXPECT_EQ(collected.nodes[n].meanES,
                  streamed.nodes[n].meanES);
        EXPECT_EQ(collected.nodes[n].violations,
                  streamed.nodes[n].violations);
    }
}

/**
 * A survivor's pre-crash QoS violations must not vanish when its
 * result slot is overwritten with the recovered segment. Node 0
 * (the survivor) runs overloaded the whole time; the crash lands
 * near the end, so almost all of its violations are phase A.
 */
TEST(FleetStream, SurvivorViolationsIncludePreCrash)
{
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(4, 8, 4);
    auto survivor_apps = [] {
        return std::vector<ColocatedApp>{lcAt(apps::xapian(), 0.9),
                                         be(apps::stream()),
                                         be(apps::stream())};
    };
    SimulationConfig cfg;
    cfg.durationSeconds = 30.0;
    cfg.warmupEpochs = 5;

    fault::FaultPlan plan;
    plan.addCrash({1, 28.0}); // epoch 56 of 60
    cfg.faults = &plan;

    Fleet fleet;
    fleet.addNode(Node(mc, survivor_apps()),
                  sched::makeScheduler("ARQ"));
    fleet.addNode(Node(mc, {lcAt(apps::moses(), 0.2)}),
                  sched::makeScheduler("ARQ"));
    const auto res = fleet.run(cfg);
    ASSERT_EQ(res.crashedNodes, std::vector<int>{1});

    // Reproduce the survivor's phase A standalone: same node,
    // same derived seed (node 0, salt 0), duration cut at the
    // crash instant.
    SimulationConfig cfg_a = cfg;
    cfg_a.faults = nullptr;
    cfg_a.durationSeconds = 28.0;
    cfg_a.seed = cfg.seed + 0x9e37 * 1;
    Node standalone(mc, survivor_apps());
    const auto sched = sched::makeScheduler("ARQ");
    const auto phase_a =
        EpochSimulator(standalone, cfg_a).run(*sched);
    ASSERT_GT(phase_a.violations, 10)
        << "test premise: the survivor must violate before the "
           "crash";

    // The survivor's slot (and the fleet total) must cover both
    // phases; before the fix it held only the ~2 s phase B tail.
    EXPECT_GE(res.nodes[0].violations, phase_a.violations);
    EXPECT_GE(res.violations, res.nodes[0].violations);
}

/**
 * Placement must report the final entropy of every node — nodes
 * that carry initial apps but win no refugee reported 0.0 before
 * the fix, skewing meanEntropy.
 */
TEST(FleetStream, PlacementEntropyCoversAllNodes)
{
    PlacementAdvisor advisor(
        machine::MachineConfig::xeonE52630v4(), 3,
        [] { return std::make_unique<sched::Unmanaged>(); });
    // Three occupied nodes, one refugee: at least two nodes end
    // the greedy loop untouched. Each initial colocation carries a
    // BE app, so its true entropy is nonzero — exactly what the
    // untouched nodes used to report as 0.0.
    const std::vector<std::vector<ColocatedApp>> initial{
        {lcAt(apps::xapian(), 0.5), be(apps::stream())},
        {lcAt(apps::moses(), 0.5), be(apps::stream())},
        {lcAt(apps::sphinx(), 0.5), be(apps::stream())}};
    SimulationConfig trial;
    trial.durationSeconds = 10.0;
    trial.warmupEpochs = 10;
    const auto placement = advisor.place(
        {be(apps::fluidanimate())}, trial, nullptr, &initial);

    ASSERT_EQ(placement.nodeEntropy.size(), 3u);
    double sum = 0.0;
    for (double e : placement.nodeEntropy) {
        EXPECT_GT(e, 0.0) << "an occupied node reported zero "
                             "entropy";
        sum += e;
    }
    EXPECT_DOUBLE_EQ(placement.meanEntropy, sum / 3.0);
}

/**
 * 256-node streaming run: traces and the pooled E_S bits are
 * byte-identical at 1, 4 and 16 worker threads.
 */
TEST(FleetStream, FleetScaleDeterminismAcrossJobs)
{
    trace::FleetLoadConfig lc;
    lc.numNodes = 256;
    const trace::FleetLoadGenerator gen(lc);
    const auto mc = machine::MachineConfig::xeonE52630v4();

    std::string ref_trace;
    double ref_es = 0.0;
    bool first = true;
    for (int threads : {1, 4, 16}) {
        exec::ThreadPool pool(threads);
        Fleet fleet;
        for (int n = 0; n < lc.numNodes; ++n) {
            fleet.addNode(Node(mc, fleetNodeApps(gen, n)),
                          sched::makeScheduler("ARQ"));
        }
        obs::BufferTraceSink sink;
        SimulationConfig cfg;
        cfg.durationSeconds = 5.0;
        cfg.warmupEpochs = 3;
        cfg.keepEpochs = false;
        cfg.obs.sink = &sink;
        cfg.obs.scenario = "fleet";
        const auto res = fleet.run(cfg, &pool);
        if (first) {
            ref_trace = sink.str();
            ref_es = res.eS;
            first = false;
            EXPECT_FALSE(ref_trace.empty());
        } else {
            EXPECT_EQ(sink.str(), ref_trace)
                << "trace differs at " << threads << " threads";
            EXPECT_EQ(std::memcmp(&ref_es, &res.eS,
                                  sizeof(double)),
                      0)
                << "pooled E_S bits differ at " << threads
                << " threads";
        }
    }
}

} // namespace

/**
 * @file
 * Tests for the fleet aggregation and the placement advisor.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/fleet.hh"
#include "sched/arq.hh"
#include "sched/unmanaged.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

SimulationConfig
quick()
{
    SimulationConfig c;
    c.durationSeconds = 30.0;
    c.warmupEpochs = 30;
    return c;
}

TEST(Fleet, RunsEveryNodeAndAggregates)
{
    Fleet fleet;
    fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                       {lcAt(apps::xapian(), 0.2),
                        be(apps::fluidanimate())}),
                  std::make_unique<sched::Arq>());
    fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                       {lcAt(apps::moses(), 0.2),
                        be(apps::stream())}),
                  std::make_unique<sched::Arq>());
    ASSERT_EQ(fleet.numNodes(), 2);

    const auto res = fleet.run(quick());
    ASSERT_EQ(res.nodes.size(), 2u);
    EXPECT_GE(res.eS, 0.0);
    EXPECT_LE(res.eS, 1.0);
    EXPECT_GE(res.yieldValue, 0.0);
    EXPECT_LE(res.yieldValue, 1.0);
}

TEST(Fleet, PooledEntropyMatchesManualComputation)
{
    Node n1(machine::MachineConfig::xeonE52630v4(),
            {lcAt(apps::xapian(), 0.2), be(apps::fluidanimate())});
    Node n2(machine::MachineConfig::xeonE52630v4(),
            {lcAt(apps::moses(), 0.3), be(apps::stream())});
    sched::Arq s1, s2;
    const auto r1 = EpochSimulator(n1, quick()).run(s1);
    const auto r2 = EpochSimulator(n2, quick()).run(s2);

    const auto rep = fleetEntropy({&n1, &n2}, {&r1, &r2});
    EXPECT_EQ(rep.lcDetail.size(), 2u);

    std::vector<core::LcObservation> lc{
        {n1.profile(0).soloTailP95Ms(0.2), r1.meanP95Ms[0],
         n1.profile(0).tailThresholdMs},
        {n2.profile(0).soloTailP95Ms(0.3), r2.meanP95Ms[0],
         n2.profile(0).tailThresholdMs}};
    std::vector<core::BeObservation> be_obs{
        {n1.profile(1).ipcSolo, r1.meanIpc[1]},
        {n2.profile(1).ipcSolo, r2.meanIpc[1]}};
    const auto manual = core::computeEntropy(lc, be_obs);
    EXPECT_NEAR(rep.eS, manual.eS, 1e-9);
}

TEST(Fleet, BetterSchedulersLowerFleetEntropy)
{
    auto make_fleet = [](bool use_arq) {
        Fleet fleet;
        for (int n = 0; n < 2; ++n) {
            Node node(machine::MachineConfig::xeonE52630v4()
                          .withAvailable(6, 12, 10),
                      {lcAt(apps::xapian(), 0.5),
                       lcAt(apps::moses(), 0.2),
                       be(apps::stream())});
            if (use_arq) {
                fleet.addNode(std::move(node),
                              std::make_unique<sched::Arq>());
            } else {
                fleet.addNode(std::move(node),
                              std::make_unique<sched::Unmanaged>());
            }
        }
        return fleet;
    };
    auto arq_fleet = make_fleet(true);
    auto base_fleet = make_fleet(false);
    const auto ra = arq_fleet.run(quick());
    const auto rb = base_fleet.run(quick());
    EXPECT_LT(ra.eS, rb.eS);
}


TEST(Fleet, DeterministicForSeed)
{
    auto make = [] {
        Fleet fleet;
        fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                           {lcAt(apps::xapian(), 0.4),
                            be(apps::stream())}),
                      std::make_unique<sched::Arq>());
        fleet.addNode(Node(machine::MachineConfig::xeonE52630v4(),
                           {lcAt(apps::moses(), 0.3),
                            be(apps::fluidanimate())}),
                      std::make_unique<sched::Arq>());
        return fleet;
    };
    auto f1 = make();
    auto f2 = make();
    const auto r1 = f1.run(quick());
    const auto r2 = f2.run(quick());
    EXPECT_DOUBLE_EQ(r1.eS, r2.eS);
    EXPECT_EQ(r1.violations, r2.violations);
    // Nodes see different noise streams (derived seeds)...
    EXPECT_NE(r1.nodes[0].epochs[5].obs[0].p95Ms,
              r1.nodes[1].epochs[5].obs[0].p95Ms);
}

TEST(Fleet, EmptyFleetIsCleanZero)
{
    Fleet fleet;
    const auto res = fleet.run(quick());
    EXPECT_EQ(res.nodes.size(), 0u);
    EXPECT_EQ(res.eS, 0.0);
    EXPECT_EQ(res.yieldValue, 1.0);
    EXPECT_EQ(res.violations, 0);
}

TEST(Placement, SpreadsHungryAppsAcrossNodes)
{
    PlacementAdvisor advisor(
        machine::MachineConfig::xeonE52630v4(), 2,
        [] { return std::make_unique<sched::Arq>(); });

    // Two bandwidth hogs and two LC apps: any sane entropy-driven
    // placement separates the hogs.
    const std::vector<ColocatedApp> apps_to_place{
        be(apps::stream()), be(apps::stream()),
        lcAt(apps::xapian(), 0.5), lcAt(apps::moses(), 0.3)};

    SimulationConfig trial;
    trial.durationSeconds = 15.0;
    trial.warmupEpochs = 15;
    const auto placement = advisor.place(apps_to_place, trial);

    ASSERT_EQ(placement.assignment.size(), 4u);
    for (int a : placement.assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, 2);
    }
    EXPECT_NE(placement.assignment[0], placement.assignment[1])
        << "both STREAM instances on one node";
    EXPECT_GE(placement.meanEntropy, 0.0);
    EXPECT_LE(placement.meanEntropy, 1.0);
}

TEST(Placement, SingleNodeTakesEverything)
{
    PlacementAdvisor advisor(
        machine::MachineConfig::xeonE52630v4(), 1,
        [] { return std::make_unique<sched::Arq>(); });
    const std::vector<ColocatedApp> apps_to_place{
        lcAt(apps::xapian(), 0.2), be(apps::fluidanimate())};
    SimulationConfig trial;
    trial.durationSeconds = 10.0;
    trial.warmupEpochs = 10;
    const auto placement = advisor.place(apps_to_place, trial);
    for (int a : placement.assignment)
        EXPECT_EQ(a, 0);
}

} // namespace

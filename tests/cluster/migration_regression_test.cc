/**
 * @file
 * Regression tests for the two cluster-migration bugs: the
 * oscillation mode (near-equal nodes trading the same app back and
 * forth every rebalance) and the migrations-are-free assumption (a
 * move charged no cold-start cost, so marginal migrations that a
 * real drain-and-rewarm would erase looked profitable).
 *
 * Both fixes are config-driven, so each test reproduces the pre-fix
 * behaviour by zeroing the corresponding knobs and then shows the
 * defaults suppress it: these tests fail when run against the
 * pre-fix decision loop.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/cluster_sched.hh"
#include "cluster/epoch_sim.hh"
#include "obs/metrics.hh"
#include "sched/registry.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

SimulationConfig
base()
{
    SimulationConfig c;
    c.durationSeconds = 1.0; // overridden per round
    return c;
}

/** Pre-fix knob settings: greedy, cooldown-free, free migrations. */
ClusterConfig
preFix(ClusterConfig cc)
{
    cc.migrationEpsilon = 0.0;
    cc.migrationCooldownRounds = 0;
    cc.migrationCostEpochs = 0;
    cc.migrationPenalty = 0.0;
    return cc;
}

/**
 * Two near-equal nodes plus the odd app out: whichever node holds
 * the third LC app looks marginally hotter, so a greedy rebalancer
 * keeps handing it back and forth.
 */
ClusterScheduler
nearEqual(ClusterConfig cc)
{
    ClusterScheduler cs(std::move(cc), "ARQ");
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    cs.addNode(mc, {lcAt(apps::xapian(), 0.5),
                    lcAt(apps::moses(), 0.45),
                    lcAt(apps::sphinx(), 0.4)});
    cs.addNode(mc, {lcAt(apps::xapian(), 0.5),
                    lcAt(apps::moses(), 0.45)});
    return cs;
}

/** True iff some app later retraces one of its own moves. */
bool
hasReverseMigration(const std::vector<Migration> &ms)
{
    for (std::size_t i = 0; i < ms.size(); ++i)
        for (std::size_t j = i + 1; j < ms.size(); ++j)
            if (ms[i].app == ms[j].app &&
                ms[j].fromNode == ms[i].toNode &&
                ms[j].toNode == ms[i].fromNode)
                return true;
    return false;
}

ClusterConfig
oscillationConfig()
{
    ClusterConfig cc;
    cc.rounds = 6;
    cc.spreadThreshold = 0.005; // near-equal spread still trips it
    cc.maxMigrationsPerRound = 1;
    return cc;
}

TEST(MigrationRegression, GreedyRebalancerOscillates)
{
    // Pre-fix semantics: the same app ping-pongs between the two
    // near-equal nodes. This pins the bug so the fixed defaults
    // below are shown to remove real behaviour, not a strawman.
    auto cs = nearEqual(preFix(oscillationConfig()));
    const auto res = cs.run(base());
    ASSERT_GE(res.migrations.size(), 2u);
    EXPECT_TRUE(hasReverseMigration(res.migrations));
}

TEST(MigrationRegression, HysteresisAndCooldownSettle)
{
    // Default epsilon + cooldown: no app retraces its own move, and
    // the rebalancer stops churning instead of migrating every
    // round.
    auto cs = nearEqual(oscillationConfig());
    const auto res = cs.run(base());
    EXPECT_FALSE(hasReverseMigration(res.migrations));
    const auto rebalances =
        static_cast<std::size_t>(oscillationConfig().rounds - 1);
    EXPECT_LT(res.migrations.size(), rebalances);
}

/**
 * A mildly hot node: rebalancing it is profitable if moves are
 * free, but the gain is small enough that a charged cold-start
 * window erases it.
 */
ClusterScheduler
marginal(ClusterConfig cc)
{
    ClusterScheduler cs(std::move(cc), "ARQ");
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    cs.addNode(mc, {lcAt(apps::xapian(), 0.48),
                    lcAt(apps::moses(), 0.42),
                    lcAt(apps::sphinx(), 0.38)});
    cs.addNode(mc, {lcAt(apps::imgDnn(), 0.4),
                    lcAt(apps::sphinx(), 0.35)});
    return cs;
}

TEST(MigrationRegression, ColdStartCostBlocksMarginalMove)
{
    ClusterConfig cc;
    cc.rounds = 2;
    cc.spreadThreshold = 0.01;
    // A negligible margin (epsilon = 0 disables the gate outright,
    // so nothing could ever reject a move): any genuine projected
    // improvement passes, only the cost knob varies between arms.
    cc.migrationEpsilon = 1e-9;
    cc.migrationCooldownRounds = 0;

    // Free migrations: the marginal move is taken.
    auto free_cc = cc;
    free_cc.migrationCostEpochs = 0;
    free_cc.migrationPenalty = 0.0;
    auto cs_free = marginal(free_cc);
    const auto res_free = cs_free.run(base());
    ASSERT_FALSE(res_free.migrations.empty());

    // Charged migrations (a heavy drain: the cold window spans the
    // whole trial): the destination trial runs the candidate
    // through it, the projected gain disappears, and the move is
    // rejected.
    auto paid_cc = cc;
    paid_cc.migrationCostEpochs = 12;
    paid_cc.migrationPenalty = 2.0;
    auto cs_paid = marginal(paid_cc);
    const auto res_paid = cs_paid.run(base());
    EXPECT_TRUE(res_paid.migrations.empty());
}

TEST(MigrationRegression, MigrationCostEpochsMetricSurfaced)
{
    // A strongly imbalanced fleet still migrates under the default
    // cost model, and every applied migration surfaces its charged
    // window through the cluster.migration_cost_epochs counter.
    ClusterConfig cc;
    cc.rounds = 3;
    cc.spreadThreshold = 0.01;
    ClusterScheduler cs(cc, "ARQ");
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    cs.addNode(mc, {lcAt(apps::xapian(), 0.85),
                    lcAt(apps::moses(), 0.6), be(apps::stream()),
                    be(apps::fluidanimate())});
    cs.addNode(mc, {lcAt(apps::sphinx(), 0.15)});
    cs.addNode(mc, {lcAt(apps::imgDnn(), 0.15)});

    obs::MetricsRegistry metrics;
    auto cfg = base();
    cfg.obs.metrics = &metrics;
    const auto res = cs.run(cfg);

    ASSERT_FALSE(res.migrations.empty());
    EXPECT_EQ(metrics.counter("cluster.migrations"),
              static_cast<double>(res.migrations.size()));
    EXPECT_EQ(metrics.counter("cluster.migration_cost_epochs"),
              static_cast<double>(res.migrations.size() *
                                  cc.migrationCostEpochs));
}

TEST(MigrationRegression, ColdStartWindowInflatesEarlyTail)
{
    // EpochSimulator-level: an app entering a run cold sees its
    // first coldEpochs epochs degraded, then rejoins the exact warm
    // path (same seed, same noise stream).
    const auto mc = machine::MachineConfig::xeonE52630v4()
                        .withAvailable(6, 10, 6);
    auto cold_app = lcAt(apps::xapian(), 0.3);
    cold_app.coldEpochs = 4;
    cold_app.coldPenalty = 0.5;

    SimulationConfig cfg;
    cfg.durationSeconds = 6.0;
    cfg.warmupEpochs = 0;

    EpochSimulator warm_sim(Node(mc, {lcAt(apps::xapian(), 0.3)}),
                            cfg);
    EpochSimulator cold_sim(Node(mc, {cold_app}), cfg);
    auto warm_sched = sched::makeScheduler("Unmanaged");
    auto cold_sched = sched::makeScheduler("Unmanaged");
    const auto warm = warm_sim.run(*warm_sched);
    const auto cold = cold_sim.run(*cold_sched);

    ASSERT_EQ(warm.epochs.size(), cold.epochs.size());
    // Inside the window the tail is strictly inflated...
    for (int e = 0; e < cold_app.coldEpochs; ++e) {
        const auto ue = static_cast<std::size_t>(e);
        EXPECT_GT(cold.epochs[ue].obs[0].p95Ms,
                  warm.epochs[ue].obs[0].p95Ms)
            << "epoch " << e;
    }
    // ...and once it closes (and no backlog accumulated at this
    // load), the cold run is indistinguishable from the warm one.
    const auto after =
        static_cast<std::size_t>(cold_app.coldEpochs);
    ASSERT_GT(warm.epochs.size(), after);
    for (std::size_t e = after; e < warm.epochs.size(); ++e)
        EXPECT_DOUBLE_EQ(cold.epochs[e].obs[0].p95Ms,
                         warm.epochs[e].obs[0].p95Ms)
            << "epoch " << e;
}

} // namespace

/**
 * @file
 * Tests for the Node colocation description.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "cluster/node.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
makeNode()
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcAt(apps::xapian(), 0.3),
                 lcAt(apps::moses(), 0.2),
                 be(apps::stream())});
}

TEST(Node, ClassifiesApps)
{
    const Node n = makeNode();
    EXPECT_EQ(n.numApps(), 3);
    EXPECT_EQ(n.lcApps(), (std::vector<machine::AppId>{0, 1}));
    EXPECT_EQ(n.beApps(), (std::vector<machine::AppId>{2}));
    EXPECT_EQ(n.profile(0).name, "xapian");
    EXPECT_EQ(n.profile(2).name, "stream");
}

TEST(Node, LoadAtUsesTraces)
{
    const Node n = makeNode();
    EXPECT_NEAR(n.loadAt(0, 5.0), 0.3, 1e-12);
    EXPECT_NEAR(n.loadAt(1, 5.0), 0.2, 1e-12);
    EXPECT_EQ(n.loadAt(2, 5.0), 0.0); // BE apps have no load
}

TEST(Node, TimeVaryingTrace)
{
    Node n(machine::MachineConfig::xeonE52630v4(),
           {lcWith(apps::xapian(),
                   std::make_shared<trace::StepTrace>(
                       std::vector<std::pair<double, double>>{
                           {0.0, 0.1}, {10.0, 0.9}})),
            be(apps::fluidanimate())});
    EXPECT_NEAR(n.loadAt(0, 5.0), 0.1, 1e-12);
    EXPECT_NEAR(n.loadAt(0, 15.0), 0.9, 1e-12);
}

TEST(Node, DemandsMatchProfilesAndLoads)
{
    const Node n = makeNode();
    const auto d = n.demandsAt(0.0);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_TRUE(d[0].latencyCritical);
    EXPECT_NEAR(d[0].arrivalRate, 0.3 * 3400.0, 1e-9);
    EXPECT_FALSE(d[2].latencyCritical);
    EXPECT_EQ(d[2].threads, 10);
}

TEST(Node, StaticObservationsCarryQosTargets)
{
    const Node n = makeNode();
    const auto obs = n.staticObservations();
    ASSERT_EQ(obs.size(), 3u);
    EXPECT_EQ(obs[0].id, 0);
    EXPECT_TRUE(obs[0].latencyCritical);
    EXPECT_DOUBLE_EQ(obs[0].thresholdMs, 4.22);
    EXPECT_DOUBLE_EQ(obs[1].thresholdMs, 10.53);
    EXPECT_FALSE(obs[2].latencyCritical);
    EXPECT_GT(obs[2].ipcSolo, 0.0);
}

} // namespace

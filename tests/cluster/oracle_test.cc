/**
 * @file
 * Tests for the static-partition oracle search.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include <cmath>

#include "cluster/oracle.hh"

namespace
{

using namespace ahq;
using namespace ahq::cluster;

Node
smallNode(double xapian_load = 0.5)
{
    return Node(machine::MachineConfig::xeonE52630v4(),
                {lcAt(apps::xapian(), xapian_load),
                 lcAt(apps::moses(), 0.2), be(apps::stream())});
}

OracleConfig
coarse()
{
    OracleConfig cfg;
    cfg.wayStep = 4; // keep tests fast
    cfg.coreStep = 1;
    return cfg;
}

TEST(Oracle, SteadyStateEntropyIsDeterministicAndBounded)
{
    const auto node = smallNode();
    auto layout = machine::RegionLayout::fullyShared(
        node.config().availableResources(), {0, 1, 2});
    const auto a = steadyStateEntropy(
        node, layout, perf::CoreSharePolicy::LcPriority);
    const auto b = steadyStateEntropy(
        node, layout, perf::CoreSharePolicy::LcPriority);
    EXPECT_DOUBLE_EQ(a.eS, b.eS);
    EXPECT_GE(a.eS, 0.0);
    EXPECT_LE(a.eS, 1.0);
}

TEST(Oracle, BestLayoutsAreValidAndFullyAllocated)
{
    const auto node = smallNode();
    const auto iso = bestIsolatedPartition(node, coarse());
    const auto hyb = bestHybridPartition(node, coarse());
    EXPECT_TRUE(iso.layout.valid());
    EXPECT_TRUE(hyb.layout.valid());
    EXPECT_GT(iso.evaluated, 10);
    EXPECT_GT(hyb.evaluated, 10);
    // The search assigns every core and way.
    EXPECT_EQ(iso.layout.allocated().cores, 10);
    EXPECT_EQ(hyb.layout.allocated().cores, 10);
}

TEST(Oracle, HybridFamilyAtLeastMatchesIsolation)
{
    // The paper's key insight, quantified: the best hybrid layout
    // can never lose to the best fully-isolated layout by more than
    // model noise, and with a bandwidth-hog BE app it should win.
    const auto node = smallNode(0.5);
    const auto iso = bestIsolatedPartition(node, coarse());
    const auto hyb = bestHybridPartition(node, coarse());
    EXPECT_LE(hyb.report.eS, iso.report.eS + 0.01);
}

TEST(Oracle, IsolatedOracleBeatsEvenSplit)
{
    const auto node = smallNode(0.7);
    const auto iso = bestIsolatedPartition(node, coarse());

    // The PARTIES starting layout (even split) evaluated under the
    // same steady-state objective.
    auto even = machine::RegionLayout::evenlyIsolated(
        {10, 20, 10}, {0, 1});
    machine::Region pool;
    pool.name = "bepool";
    pool.shared = true;
    pool.members = {2};
    // Carve the pool from the second region's share.
    even.region(1).res = {2, 4, 3};
    pool.res = {3, 6, 4};
    even.region(0).res = {5, 10, 3};
    even.addRegion(std::move(pool));
    ASSERT_TRUE(even.valid());
    const auto even_rep = steadyStateEntropy(
        node, even, perf::CoreSharePolicy::FairShare, coarse());

    EXPECT_LE(iso.report.eS, even_rep.eS + 1e-9);
}


TEST(Oracle, SaturatedScenarioStaysFiniteAndBad)
{
    // A hopeless node: heavy load on 4 cores. The steady-state
    // objective must stay finite with Q near its ceiling, not blow
    // up (the oracle search relies on comparable values).
    Node node(machine::MachineConfig::xeonE52630v4()
                  .withAvailable(4, 8, 4),
              {lcAt(apps::xapian(), 0.95),
               lcAt(apps::moses(), 0.9), be(apps::stream())});
    auto layout = machine::RegionLayout::fullyShared(
        {4, 8, 4}, {0, 1, 2});
    const auto rep = steadyStateEntropy(
        node, layout, perf::CoreSharePolicy::LcPriority);
    EXPECT_TRUE(std::isfinite(rep.eS));
    EXPECT_GT(rep.eLc, 0.3);
    EXPECT_LE(rep.eS, 1.0);
}

TEST(Oracle, HighLoadShiftsResourcesToLoadedApp)
{
    const auto cfg = coarse();
    const auto hot = bestHybridPartition(smallNode(0.9), cfg);
    const auto cold = bestHybridPartition(smallNode(0.1), cfg);
    // Xapian's reachable cores at 90% load >= at 10% load.
    EXPECT_GE(hot.layout.reachable(0, machine::ResourceKind::Cores),
              cold.layout.reachable(
                  0, machine::ResourceKind::Cores) - 1);
}

} // namespace

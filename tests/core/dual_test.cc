/**
 * @file
 * Tests for dual-metric entropy (the paper's §VII future work).
 */

#include <gtest/gtest.h>

#include "core/dual.hh"
#include "stats/rng.hh"

namespace
{

using namespace ahq::core;

DualObservation
obs(double tl1, double ipc_real, double w = 0.5)
{
    DualObservation o;
    o.latency = {2.0, tl1, 8.0};
    o.throughput = {2.0, ipc_real};
    o.latencyWeight = w;
    return o;
}

TEST(Dual, HealthyAppContributesNothing)
{
    const auto o = obs(3.0, 2.0); // QoS met, full throughput
    EXPECT_EQ(dualIntolerable(o, DualPolicy::MoreCritical), 0.0);
    EXPECT_EQ(dualIntolerable(o, DualPolicy::WeightedAggregate),
              0.0);
}

TEST(Dual, MoreCriticalTakesTheWorseView)
{
    // Latency violated (Q = 1 - 8/16 = 0.5), throughput perfect.
    const auto lat = obs(16.0, 2.0);
    EXPECT_NEAR(dualIntolerable(lat, DualPolicy::MoreCritical), 0.5,
                1e-12);
    // Throughput halved (0.5), latency fine.
    const auto thr = obs(3.0, 1.0);
    EXPECT_NEAR(dualIntolerable(thr, DualPolicy::MoreCritical), 0.5,
                1e-12);
    // Both hurt: max wins.
    const auto both = obs(16.0, 0.5); // q_lat 0.5, q_thr 0.75
    EXPECT_NEAR(dualIntolerable(both, DualPolicy::MoreCritical),
                0.75, 1e-12);
}

TEST(Dual, WeightedAggregateBlends)
{
    const auto both = obs(16.0, 0.5, 0.8); // q_lat .5, q_thr .75
    EXPECT_NEAR(
        dualIntolerable(both, DualPolicy::WeightedAggregate),
        0.8 * 0.5 + 0.2 * 0.75, 1e-12);
    // Weight 1 degenerates to the pure latency view.
    const auto lat_only = obs(16.0, 0.5, 1.0);
    EXPECT_NEAR(
        dualIntolerable(lat_only, DualPolicy::WeightedAggregate),
        0.5, 1e-12);
}

TEST(Dual, EntropyIsMeanOfContributions)
{
    const std::vector<DualObservation> apps_v{obs(16.0, 2.0),
                                              obs(3.0, 2.0)};
    EXPECT_NEAR(dualEntropy(apps_v, DualPolicy::MoreCritical), 0.25,
                1e-12);
    EXPECT_EQ(dualEntropy({}, DualPolicy::MoreCritical), 0.0);
}

TEST(Dual, MixedSystemReducesToClassicWithoutDualApps)
{
    const std::vector<LcObservation> lc{{2.0, 16.0, 8.0}};
    const std::vector<BeObservation> be{{2.0, 1.0}};
    const double classic = systemEntropy(lcEntropy(lc),
                                         beEntropy(be), 0.8, true,
                                         true);
    EXPECT_NEAR(mixedSystemEntropy(lc, be, {},
                                   DualPolicy::MoreCritical, 0.8),
                classic, 1e-12);
}

TEST(Dual, DualAppsJoinTheLcSide)
{
    // One classic LC app with Q = 0.5, one dual app with
    // contribution 0.75: E_LC side = 0.625.
    const std::vector<LcObservation> lc{{2.0, 16.0, 8.0}};
    const std::vector<DualObservation> dual{obs(16.0, 0.5)};
    const double es = mixedSystemEntropy(
        lc, {}, dual, DualPolicy::MoreCritical, 0.8);
    EXPECT_NEAR(es, 0.625, 1e-12); // only-LC scenario: E_S = E_LC
}

TEST(Dual, AlwaysInUnitInterval)
{
    ahq::stats::Rng rng(99);
    for (int t = 0; t < 1000; ++t) {
        DualObservation o;
        const double m = rng.uniform(1.0, 20.0);
        const double tl0 = rng.uniform(0.01, m);
        o.latency = {tl0, tl0 * rng.uniform(0.9, 40.0), m};
        const double solo = rng.uniform(0.5, 3.0);
        o.throughput = {solo, solo * rng.uniform(0.01, 1.2)};
        o.latencyWeight = rng.uniform();
        for (auto policy : {DualPolicy::MoreCritical,
                            DualPolicy::WeightedAggregate}) {
            const double q = dualIntolerable(o, policy);
            EXPECT_GE(q, 0.0);
            EXPECT_LE(q, 1.0);
        }
    }
}

TEST(Dual, MoreCriticalDominatesAggregate)
{
    // max(a, b) >= w*a + (1-w)*b for any w in [0,1].
    ahq::stats::Rng rng(7);
    for (int t = 0; t < 500; ++t) {
        DualObservation o;
        const double m = rng.uniform(1.0, 20.0);
        const double tl0 = rng.uniform(0.01, m);
        o.latency = {tl0, tl0 * rng.uniform(1.0, 30.0), m};
        const double solo = rng.uniform(0.5, 3.0);
        o.throughput = {solo, solo * rng.uniform(0.05, 1.0)};
        o.latencyWeight = rng.uniform();
        EXPECT_GE(dualIntolerable(o, DualPolicy::MoreCritical),
                  dualIntolerable(o,
                                  DualPolicy::WeightedAggregate) -
                      1e-12);
    }
}

} // namespace
